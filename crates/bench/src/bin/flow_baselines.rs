//! The conventional-flow baselines of Sec. IIIB that are not separate
//! figures: thermal-aware floorplanning (Corblivar-style weight sweep)
//! and thermal-aware task scheduling.

use tsc_bench::{banner, compare, series};
use tsc_core::beol::BeolProperties;
use tsc_core::stack::{solve, StackConfig};
use tsc_designs::gemmini;
use tsc_phydes::anneal::Schedule;
use tsc_phydes::floorplan::{floorplan, FloorplanConfig, Module, Net};
use tsc_phydes::schedule::{assign, rank_tiers, Task, TierRanking};
use tsc_thermal::Heatsink;
use tsc_units::{Length, Power, Ratio};

fn rocket_modules() -> (Vec<Module>, Vec<Net>) {
    let um = Length::from_micrometers;
    let modules = vec![
        Module::soft("PU", um(120.0), um(100.0), Power::from_milliwatts(14.4)),
        Module::soft("FPU", um(80.0), um(100.0), Power::from_milliwatts(7.2)),
        Module::hard_macro("ICache", um(84.0), um(84.0), Power::from_milliwatts(2.0)),
        Module::hard_macro("DCache", um(84.0), um(84.0), Power::from_milliwatts(2.0)),
        Module::soft("PTW", um(60.0), um(80.0), Power::from_milliwatts(1.7)),
        Module::soft("ctrl", um(80.0), um(80.0), Power::from_milliwatts(2.6)),
    ];
    let nets = vec![
        Net { a: 0, b: 1 },
        Net { a: 0, b: 2 },
        Net { a: 0, b: 3 },
        Net { a: 0, b: 4 },
        Net { a: 0, b: 5 },
        Net { a: 1, b: 3 },
    ];
    (modules, nets)
}

fn main() -> Result<(), tsc_thermal::SolveError> {
    banner("Sec. IIIB: thermal-aware floorplanning weight sweep (Rocket)");
    let (modules, nets) = rocket_modules();
    let mut pts_area = Vec::new();
    let mut pts_hot = Vec::new();
    let mut area_at_0 = None;
    let mut area_at_1 = None;
    for pct in [0.0, 25.0, 50.0, 75.0, 100.0] {
        let cfg = FloorplanConfig {
            temperature_weight: Ratio::from_percent(pct),
            wirelength_budget: Ratio::from_percent(106.0),
            schedule: Schedule::standard(),
            seed: 11,
        };
        let r = floorplan(&modules, &nets, &cfg);
        let area = r.plan.area().square_millimeters();
        pts_area.push((pct, area));
        pts_hot.push((pct, r.hotspot.watts_per_square_cm()));
        if pct == 0.0 {
            area_at_0 = Some(area);
        }
        if pct == 100.0 {
            area_at_1 = Some(area);
        }
    }
    series("floorplan area mm² vs temperature weight %", pts_area);
    series("hotspot proxy W/cm² vs temperature weight %", pts_hot);
    let (a0, a1) = (area_at_0.expect("swept"), area_at_1.expect("swept"));
    compare(
        "area growth from 100 % area- to 100 % temperature-weighting",
        "16 % (4-tier core)",
        format!("{:.0} %", (a1 / a0 - 1.0) * 100.0),
    );

    banner("Sec. IIIB: thermal-aware task scheduling (6-tier Gemmini)");
    // Rank tier copies by solo thermal resistance (all others gated).
    let d = gemmini::design();
    let tiers = 6;
    let mut rankings = Vec::new();
    for t in 0..tiers {
        let mut utils = vec![Ratio::ZERO; tiers];
        utils[t] = Ratio::ONE;
        let cfg = StackConfig::uniform(tiers, BeolProperties::scaffolded(), Heatsink::two_phase())
            .with_lateral_cells(10)
            .with_utilizations(utils);
        let sol = solve(&d, &cfg)?;
        rankings.push(TierRanking {
            tier: t,
            solo_rise: sol.junction_temperature() - Heatsink::two_phase().ambient,
        });
    }
    let ranked = rank_tiers(rankings.clone());
    println!("tier ranking by solo rise (coolest first):");
    for r in &ranked {
        println!("  tier {}: {:.2} K solo rise", r.tier, r.solo_rise.kelvin());
    }
    compare(
        "lowest-resistance copy",
        "closest to the heatsink (tier 0)",
        format!("tier {}", ranked[0].tier),
    );

    // Assign a mixed workload and compare junction temperature against
    // the naive (top-down) assignment.
    let utils_by_power = [1.0, 0.9, 0.72, 0.5, 0.3, 0.1];
    let tasks: Vec<Task> = utils_by_power
        .iter()
        .enumerate()
        .map(|(i, &u)| Task::new(format!("task{i}"), d.total_power(Ratio::from_fraction(u))))
        .collect();
    let plan = assign(rankings, &tasks);
    let mut smart = vec![Ratio::ZERO; tiers];
    for &(tier, task) in &plan {
        smart[tier] = Ratio::from_fraction(utils_by_power[task]);
    }
    let naive: Vec<Ratio> = (0..tiers)
        .map(|t| Ratio::from_fraction(utils_by_power[tiers - 1 - t]))
        .collect();
    let tj = |utils: Vec<Ratio>| -> Result<f64, tsc_thermal::SolveError> {
        let cfg = StackConfig::uniform(tiers, BeolProperties::scaffolded(), Heatsink::two_phase())
            .with_lateral_cells(10)
            .with_utilizations(utils);
        Ok(solve(&d, &cfg)?.junction_temperature().celsius())
    };
    let smart_tj = tj(smart)?;
    let naive_tj = tj(naive)?;
    compare(
        "Tj, thermal-aware assignment (hot tasks near the sink)",
        "(lower)",
        format!("{smart_tj:.2} °C"),
    );
    compare(
        "Tj, inverted assignment (hot tasks on top)",
        "(higher)",
        format!("{naive_tj:.2} °C"),
    );
    compare(
        "scheduling benefit",
        "(mimics [4])",
        format!("{:.2} °C", naive_tj - smart_tj),
    );
    Ok(())
}
