//! Facade crate re-exporting the whole thermal-scaffolding workspace.
//!
//! See the crate-level docs of each member crate; the README gives the
//! architecture overview and EXPERIMENTS.md the paper-vs-measured index.

// No crate outside tsc-thermal may contain `unsafe` (enforced
// statically here and by `cargo run -p tsc-analyze`).
#![forbid(unsafe_code)]

pub use tsc_core as core;
pub use tsc_designs as designs;
pub use tsc_geometry as geometry;
pub use tsc_homogenize as homogenize;
pub use tsc_materials as materials;
pub use tsc_pdk as pdk;
pub use tsc_phydes as phydes;
pub use tsc_thermal as thermal;
pub use tsc_units as units;
