//! Fixture: an `unsafe` block with no SAFETY comment.

pub fn peek(xs: &[f64]) -> f64 {
    let p = xs.as_ptr();
    unsafe { *p.add(0) }
}
