//! Fine voxel models of BEOL structures.

use tsc_geometry::{Dim3, Grid3};
use tsc_units::{Length, ThermalConductivity};

/// A voxelized material model: each voxel carries an anisotropic
/// conductivity pair `(vertical kz, lateral kxy)`.
///
/// Coordinates are voxel indices; physical extents are carried alongside
/// so extraction can convert flux to conductivity. Paint methods take
/// half-open voxel ranges.
#[derive(Debug, Clone)]
pub struct VoxelModel {
    dim: Dim3,
    size_x: Length,
    size_y: Length,
    size_z: Length,
    kz: Grid3<f64>,
    kxy: Grid3<f64>,
}

impl VoxelModel {
    /// Creates an `nx × ny × nz` voxel model spanning the given physical
    /// extents, filled with an isotropic background.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, any extent non-positive, or the
    /// background conductivity non-positive.
    #[must_use]
    pub fn new(
        nx: usize,
        ny: usize,
        nz: usize,
        size_x: Length,
        size_y: Length,
        size_z: Length,
        background: ThermalConductivity,
    ) -> Self {
        assert!(
            size_x.meters() > 0.0 && size_y.meters() > 0.0 && size_z.meters() > 0.0,
            "extents must be positive"
        );
        assert!(background.get() > 0.0, "background k must be positive");
        let dim = Dim3::new(nx, ny, nz);
        Self {
            dim,
            size_x,
            size_y,
            size_z,
            kz: Grid3::filled(dim, background.get()),
            kxy: Grid3::filled(dim, background.get()),
        }
    }

    /// Voxel dimensions.
    #[must_use]
    pub fn dim(&self) -> Dim3 {
        self.dim
    }

    /// Physical extents `(x, y, z)`.
    #[must_use]
    pub fn extents(&self) -> (Length, Length, Length) {
        (self.size_x, self.size_y, self.size_z)
    }

    /// Anisotropic conductivity at a voxel: `(vertical, lateral)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn k_at(&self, i: usize, j: usize, k: usize) -> (ThermalConductivity, ThermalConductivity) {
        (
            ThermalConductivity::new(self.kz[(i, j, k)]),
            ThermalConductivity::new(self.kxy[(i, j, k)]),
        )
    }

    /// Paints an isotropic box over half-open voxel ranges.
    ///
    /// # Panics
    ///
    /// Panics when a range is empty, exceeds the model, or `k` is
    /// non-positive.
    pub fn paint_box(
        &mut self,
        x: core::ops::Range<usize>,
        y: core::ops::Range<usize>,
        z: core::ops::Range<usize>,
        k: ThermalConductivity,
    ) {
        self.paint_box_anisotropic(x, y, z, k, k);
    }

    /// Paints an anisotropic box (`vertical`, `lateral`) over half-open
    /// voxel ranges.
    ///
    /// # Panics
    ///
    /// Panics when a range is empty, exceeds the model, or either
    /// conductivity is non-positive.
    pub fn paint_box_anisotropic(
        &mut self,
        x: core::ops::Range<usize>,
        y: core::ops::Range<usize>,
        z: core::ops::Range<usize>,
        vertical: ThermalConductivity,
        lateral: ThermalConductivity,
    ) {
        assert!(
            !x.is_empty() && !y.is_empty() && !z.is_empty(),
            "paint ranges must be non-empty"
        );
        assert!(
            x.end <= self.dim.nx && y.end <= self.dim.ny && z.end <= self.dim.nz,
            "paint ranges exceed the model"
        );
        assert!(
            vertical.get() > 0.0 && lateral.get() > 0.0,
            "conductivity must be positive"
        );
        for k in z {
            for j in y.clone() {
                for i in x.clone() {
                    self.kz[(i, j, k)] = vertical.get();
                    self.kxy[(i, j, k)] = lateral.get();
                }
            }
        }
    }

    /// Paints all voxels with `z ∈ [z0, z1)` (a full layer).
    ///
    /// # Panics
    ///
    /// As for [`VoxelModel::paint_box`].
    pub fn paint_z_range(&mut self, z0: usize, z1: usize, k: ThermalConductivity) {
        self.paint_box(0..self.dim.nx, 0..self.dim.ny, z0..z1, k);
    }

    /// Volume fraction of voxels whose lateral conductivity differs from
    /// `background` — a quick metal-density readout for calibration.
    #[must_use]
    pub fn fraction_not(&self, background: ThermalConductivity) -> f64 {
        let n = self.dim.len() as f64;
        let painted = self
            .kxy
            .iter()
            .filter(|&&v| (v - background.get()).abs() > 1e-12)
            .count() as f64;
        painted / n
    }

    /// A copy with axes permuted so the requested axis becomes +z — this
    /// lets the z-boundary solver extract any direction.
    #[must_use]
    pub fn rotated_to_z(&self, axis: crate::Axis) -> VoxelModel {
        match axis {
            crate::Axis::Z => self.clone(),
            crate::Axis::X => {
                // New z = old x; new x = old z. The *vertical* conductivity
                // along new z is the old lateral (x) value, and vice versa.
                let dim = Dim3::new(self.dim.nz, self.dim.ny, self.dim.nx);
                let mut out = VoxelModel {
                    dim,
                    size_x: self.size_z,
                    size_y: self.size_y,
                    size_z: self.size_x,
                    kz: Grid3::filled(dim, 1.0),
                    kxy: Grid3::filled(dim, 1.0),
                };
                for k in 0..dim.nz {
                    for j in 0..dim.ny {
                        for i in 0..dim.nx {
                            // (i', j', k') = (k, j, i) in the old frame.
                            // Conduction along the new z axis is conduction
                            // along old x, i.e. the old lateral value.
                            out.kz[(i, j, k)] = self.kxy[(k, j, i)];
                            // The transversely-isotropic FVM cell cannot
                            // distinguish the two rotated lateral
                            // directions (old z and old y); we keep the old
                            // lateral value, a second-order approximation
                            // that only affects cross-redistribution.
                            out.kxy[(i, j, k)] = self.kxy[(k, j, i)];
                        }
                    }
                }
                out
            }
            crate::Axis::Y => {
                let dim = Dim3::new(self.dim.nx, self.dim.nz, self.dim.ny);
                let mut out = VoxelModel {
                    dim,
                    size_x: self.size_x,
                    size_y: self.size_z,
                    size_z: self.size_y,
                    kz: Grid3::filled(dim, 1.0),
                    kxy: Grid3::filled(dim, 1.0),
                };
                for k in 0..dim.nz {
                    for j in 0..dim.ny {
                        for i in 0..dim.nx {
                            out.kz[(i, j, k)] = self.kxy[(i, k, j)];
                            out.kxy[(i, j, k)] = self.kxy[(i, k, j)];
                        }
                    }
                }
                out
            }
        }
    }

    /// Raw vertical-conductivity field (for the extraction solver).
    pub(crate) fn kz_field(&self) -> &Grid3<f64> {
        &self.kz
    }

    /// Raw lateral-conductivity field (for the extraction solver).
    pub(crate) fn kxy_field(&self) -> &Grid3<f64> {
        &self.kxy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Axis;

    fn nm(v: f64) -> Length {
        Length::from_nanometers(v)
    }

    fn model() -> VoxelModel {
        VoxelModel::new(
            4,
            3,
            2,
            nm(400.0),
            nm(300.0),
            nm(200.0),
            ThermalConductivity::new(0.2),
        )
    }

    #[test]
    fn paint_and_read_back() {
        let mut m = model();
        m.paint_box(1..3, 0..2, 0..1, ThermalConductivity::new(242.0));
        let (v, l) = m.k_at(1, 1, 0);
        assert_eq!(v.get(), 242.0);
        assert_eq!(l.get(), 242.0);
        let (v, l) = m.k_at(0, 0, 0);
        assert_eq!(v.get(), 0.2);
        assert_eq!(l.get(), 0.2);
    }

    #[test]
    fn metal_fraction() {
        let mut m = model();
        m.paint_box(0..2, 0..3, 0..2, ThermalConductivity::new(242.0));
        assert!((m.fraction_not(ThermalConductivity::new(0.2)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rotation_swaps_extents() {
        let m = model();
        let rx = m.rotated_to_z(Axis::X);
        assert_eq!(rx.dim(), Dim3::new(2, 3, 4));
        let (sx, sy, sz) = rx.extents();
        assert!((sx.nanometers() - 200.0).abs() < 1e-9);
        assert!((sy.nanometers() - 300.0).abs() < 1e-9);
        assert!((sz.nanometers() - 400.0).abs() < 1e-9);
        let ry = m.rotated_to_z(Axis::Y);
        assert_eq!(ry.dim(), Dim3::new(4, 2, 3));
    }

    #[test]
    fn x_rotation_maps_lateral_to_vertical() {
        let mut m = model();
        // Column of high lateral k along x at (j=1, k=1).
        m.paint_box_anisotropic(
            0..4,
            1..2,
            1..2,
            ThermalConductivity::new(0.2),
            ThermalConductivity::new(100.0),
        );
        let r = m.rotated_to_z(Axis::X);
        // In the rotated frame, that column runs along z at (i=1, j=1).
        let (v, _) = r.k_at(1, 1, 0);
        assert_eq!(v.get(), 100.0);
        let (v2, _) = r.k_at(1, 1, 3);
        assert_eq!(v2.get(), 100.0);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn paint_out_of_bounds_rejected() {
        let mut m = model();
        m.paint_box(0..5, 0..1, 0..1, ThermalConductivity::new(1.0));
    }
}
