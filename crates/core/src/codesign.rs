//! Co-design with power gating and task scheduling — the Fig. 12 toy
//! study.
//!
//! Four fine-grained heat sources (individually gated multiply-
//! accumulate units) sit in a 2×2 arrangement; software guarantees only
//! one is active at a time. Two coolings are compared against the
//! pillar-free baseline:
//!
//! * **scaffolding-aware**: a *single* pillar at the center, reachable
//!   from every source through the thermal dielectric's lateral
//!   conduction;
//! * **conventional**: pillar covering placed within each source
//!   (4× the pillar area) with no thermal dielectric.
//!
//! The paper finds the single pillar + dielectric reduces peak
//! temperature more (40 % vs 32 %), rising above 70 % as the dielectric
//! conductivity improves (Fig. 12b) — at 75 % less pillar area.

use crate::beol::{self, BeolProperties};
use tsc_geometry::{Grid2, Rect};
use tsc_homogenize::pillar::PillarDesign;
use tsc_materials::Anisotropic;
use tsc_thermal::{CgSolver, Heatsink, Problem, SolveContext, SolveError};
use tsc_units::{HeatFlux, Length, Ratio, TempDelta, ThermalConductivity};

/// Geometry of the toy problem.
#[derive(Debug, Clone)]
pub struct ToyConfig {
    /// Side of the square domain.
    pub domain: Length,
    /// Side of each (square) heat source.
    pub source_side: Length,
    /// Flux of the single active source.
    pub flux: HeatFlux,
    /// Lateral mesh cells.
    pub cells: usize,
    /// Heatsink below the handle.
    pub heatsink: Heatsink,
}

impl Default for ToyConfig {
    fn default() -> Self {
        Self {
            domain: Length::from_micrometers(20.0),
            source_side: Length::from_micrometers(2.0),
            flux: HeatFlux::from_watts_per_square_cm(95.0),
            cells: 40,
            heatsink: Heatsink::two_phase(),
        }
    }
}

/// Which pillar arrangement to apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrangement {
    /// No pillars (baseline).
    None,
    /// One pillar block at the domain center.
    SingleCentral {
        /// Side of the pillar block.
        side: Length,
    },
    /// Gating-unaware uniform pillar covering over the whole domain at
    /// 4× the single-central pillar area (the placement cannot know
    /// which unit the scheduler will wake, so it covers everything).
    UniformCovering {
        /// Side of the single-pillar reference; the covering spends four
        /// of these spread uniformly.
        reference_side: Length,
    },
}

/// Result of one toy solve.
#[derive(Debug, Clone)]
pub struct ToyResult {
    /// Peak rise of the active source above ambient.
    pub peak_rise: TempDelta,
    /// Total pillar footprint as a fraction of the domain.
    pub pillar_area: Ratio,
}

fn source_rects(cfg: &ToyConfig) -> [Rect; 4] {
    let d = cfg.domain;
    let s = cfg.source_side;
    let q = d / 4.0;
    let mk = |cx: Length, cy: Length| Rect::from_origin_size(cx - s / 2.0, cy - s / 2.0, s, s);
    [mk(q, q), mk(d - q, q), mk(q, d - q), mk(d - q, d - q)]
}

/// Solves the toy problem: one active source, one tier over handle
/// silicon, the given upper-BEOL dielectric and pillar arrangement.
///
/// # Errors
///
/// Propagates solver failures.
pub fn solve_toy(
    cfg: &ToyConfig,
    upper_dielectric: Anisotropic,
    arrangement: Arrangement,
) -> Result<ToyResult, SolveError> {
    solve_toy_with(cfg, upper_dielectric, arrangement, &mut SolveContext::new())
}

/// [`solve_toy`] against a caller-owned [`SolveContext`]: every toy
/// variant shares the mesh geometry, so sweeps over dielectrics and
/// arrangements warm-start from the previous variant's field.
///
/// # Errors
///
/// Propagates solver failures.
pub fn solve_toy_with(
    cfg: &ToyConfig,
    upper_dielectric: Anisotropic,
    arrangement: Arrangement,
    ctx: &mut SolveContext,
) -> Result<ToyResult, SolveError> {
    let n = cfg.cells;
    let beol = BeolProperties {
        upper: upper_dielectric,
        ..BeolProperties::conventional()
    };
    // Slabs: handle, tier-1 (device, lower, upper, ILV), tier-2 device.
    // The gated MAC units live on tier 2, so their heat must cross
    // tier 1's BEOL — where the pillar and the thermal dielectric sit.
    let dz = vec![
        Length::from_micrometers(10.0),
        Length::from_nanometers(100.0),
        beol::lower_thickness(),
        beol::upper_thickness(),
        beol::ilv_thickness(),
        Length::from_nanometers(100.0),
    ];
    let mut p = Problem::new(
        n,
        n,
        cfg.domain / n as f64,
        cfg.domain / n as f64,
        dz,
        ThermalConductivity::new(1.0),
    );
    p.set_layer_conductivity(
        0,
        tsc_materials::BULK_SILICON.conductivity.vertical,
        tsc_materials::BULK_SILICON.conductivity.lateral,
    );
    for dev in [1usize, 5] {
        p.set_layer_conductivity(
            dev,
            tsc_materials::DEVICE_SILICON_THIN.conductivity.vertical,
            tsc_materials::DEVICE_SILICON_THIN.conductivity.lateral,
        );
    }
    p.set_layer_conductivity(2, beol.lower.vertical, beol.lower.lateral);
    p.set_layer_conductivity(3, beol.upper.vertical, beol.upper.lateral);
    p.set_layer_conductivity(4, beol.ilv.vertical, beol.ilv.lateral);

    // Only source 0 is active (power gating).
    let domain_rect = Rect::from_origin_size(Length::ZERO, Length::ZERO, cfg.domain, cfg.domain);
    let sources = source_rects(cfg);
    let mut map = Grid2::filled(n, n, 0.0);
    map.paint_rect(&domain_rect, &sources[0], cfg.flux.watts_per_square_meter());
    p.add_flux_map(5, &map);

    // Pillars: vertical inclusions through BEOL layers 2 and 3.
    let k_pillar = PillarDesign::asap7_100nm().effective_vertical_k();
    let mut pillar_area = 0.0;
    let mut blocks: Vec<Rect> = Vec::new();
    match arrangement {
        Arrangement::None => {}
        Arrangement::SingleCentral { side } => {
            let c = cfg.domain / 2.0;
            blocks.push(Rect::centered(tsc_geometry::Point::new(c, c), side, side));
        }
        Arrangement::UniformCovering { reference_side } => {
            // Handled below as a uniform density blend.
            let _ = reference_side;
        }
    }
    if let Arrangement::UniformCovering { reference_side } = arrangement {
        let total = 4.0 * reference_side.squared().square_meters();
        let f = (total / domain_rect.area().square_meters()).min(0.95);
        pillar_area += total;
        for k in [2usize, 3, 4] {
            for j in 0..n {
                for i in 0..n {
                    p.blend_vertical_inclusion(i, j, k, f, k_pillar);
                }
            }
        }
    }
    for b in &blocks {
        pillar_area += b.area().square_meters();
        let mut bm = Grid2::filled(n, n, 0.0);
        let painted = bm.paint_rect(&domain_rect, b, 1.0);
        if painted == 0 {
            // Block smaller than a cell: blend its area fraction into the
            // containing cell.
            // tsc-analyze: allow(no-unwrap): block centers are placed
            // inside the domain rect by construction above.
            let ij = bm.locate(&domain_rect, b.center()).expect("inside");
            let cell_area = domain_rect.area().square_meters() / (n * n) as f64;
            bm[ij] = (b.area().square_meters() / cell_area).min(1.0);
        }
        for k in [2usize, 3, 4] {
            for j in 0..n {
                for i in 0..n {
                    if bm[(i, j)] > 0.0 {
                        p.blend_vertical_inclusion(i, j, k, bm[(i, j)], k_pillar);
                    }
                }
            }
        }
    }
    p.set_bottom_heatsink(cfg.heatsink);

    let solver = CgSolver::new()
        .with_tolerance(1e-9)
        .with_preconditioner(tsc_thermal::Preconditioner::Multigrid);
    let sol = ctx.solve(&p, &solver)?;
    let peak = sol.temperatures.layer_max(5);
    Ok(ToyResult {
        peak_rise: peak - cfg.heatsink.ambient,
        pillar_area: Ratio::from_fraction(pillar_area / domain_rect.area().square_meters()),
    })
}

/// Peak-temperature reduction of an arrangement relative to the
/// pillar-free baseline with the same dielectric as the baseline uses
/// ultra-low-k (the Fig. 12b y-axis).
///
/// # Errors
///
/// Propagates solver failures.
pub fn reduction_vs_baseline(
    cfg: &ToyConfig,
    upper_dielectric: Anisotropic,
    arrangement: Arrangement,
) -> Result<Ratio, SolveError> {
    reduction_vs_baseline_with(cfg, upper_dielectric, arrangement, &mut SolveContext::new())
}

/// [`reduction_vs_baseline`] against a caller-owned [`SolveContext`];
/// the baseline and the arrangement solve share warm starts.
///
/// # Errors
///
/// Propagates solver failures.
pub fn reduction_vs_baseline_with(
    cfg: &ToyConfig,
    upper_dielectric: Anisotropic,
    arrangement: Arrangement,
    ctx: &mut SolveContext,
) -> Result<Ratio, SolveError> {
    let base = solve_toy_with(
        cfg,
        crate::beol::upper_ultra_low_k(),
        Arrangement::None,
        ctx,
    )?;
    let with = solve_toy_with(cfg, upper_dielectric, arrangement, ctx)?;
    Ok(Ratio::from_fraction(
        1.0 - with.peak_rise.kelvin() / base.peak_rise.kelvin(),
    ))
}

/// The Fig. 12b sweep: single central pillar, thermal-dielectric lateral
/// conductivity swept; returns `(k_lateral W/m/K, reduction)` pairs.
///
/// # Errors
///
/// Propagates solver failures.
pub fn dielectric_sweep(
    cfg: &ToyConfig,
    pillar_side: Length,
    ks: &[f64],
) -> Result<Vec<(f64, Ratio)>, SolveError> {
    // One context for the whole sweep: the baseline is dielectric-
    // independent, so it is solved once, and every sweep point
    // warm-starts from its predecessor's field.
    dielectric_sweep_with(cfg, pillar_side, ks, &mut SolveContext::new())
}

/// [`dielectric_sweep`] against a caller-owned [`SolveContext`]:
/// repeated sweeps over the same toy geometry (the solve service, Fig.
/// 12b refinements) reuse the warm field and cached hierarchy across
/// whole sweep invocations.
///
/// # Errors
///
/// Propagates solver failures.
pub fn dielectric_sweep_with(
    cfg: &ToyConfig,
    pillar_side: Length,
    ks: &[f64],
    ctx: &mut SolveContext,
) -> Result<Vec<(f64, Ratio)>, SolveError> {
    let base = sweep_baseline_with(cfg, ctx)?;
    let mut out = Vec::with_capacity(ks.len());
    for &k in ks {
        out.push(sweep_point_with(cfg, pillar_side, k, &base, ctx)?);
    }
    Ok(out)
}

/// The dielectric-independent baseline of a Fig. 12b sweep (no pillars,
/// ultra-low-k upper dielectric). Step-sliced callers (the `tsc-jobs`
/// sweep engine) solve this once as its own work unit, then fan the
/// [`sweep_point_with`] evaluations across workers.
///
/// # Errors
///
/// Propagates solver failures.
pub fn sweep_baseline_with(
    cfg: &ToyConfig,
    ctx: &mut SolveContext,
) -> Result<ToyResult, SolveError> {
    solve_toy_with(
        cfg,
        crate::beol::upper_ultra_low_k(),
        Arrangement::None,
        ctx,
    )
}

/// One Fig. 12b sweep point: the reduction of the single-central-pillar
/// arrangement at lateral dielectric conductivity `k` relative to
/// `baseline` (from [`sweep_baseline_with`]). Points are independent of
/// each other given the baseline, so they parallelize freely.
///
/// # Errors
///
/// Propagates solver failures.
pub fn sweep_point_with(
    cfg: &ToyConfig,
    pillar_side: Length,
    k: f64,
    baseline: &ToyResult,
    ctx: &mut SolveContext,
) -> Result<(f64, Ratio), SolveError> {
    // Through-plane tracks in-plane at the ETC ratio of the design
    // point (88/105.7).
    let upper = Anisotropic::new(
        ThermalConductivity::new((k * 88.0 / 105.7).max(0.2)),
        ThermalConductivity::new(k.max(0.2)),
    );
    let with = solve_toy_with(
        cfg,
        upper,
        Arrangement::SingleCentral { side: pillar_side },
        ctx,
    )?;
    Ok((
        k,
        Ratio::from_fraction(1.0 - with.peak_rise.kelvin() / baseline.peak_rise.kelvin()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ToyConfig {
        ToyConfig {
            cells: 24,
            ..ToyConfig::default()
        }
    }

    fn pillar_side() -> Length {
        Length::from_micrometers(1.0)
    }

    #[test]
    fn single_pillar_with_dielectric_beats_four_without() {
        // The Fig. 12 headline: 1 pillar + thermal dielectric cools the
        // gated sources better than 4x pillar area without it.
        let c = cfg();
        let single_td = reduction_vs_baseline(
            &c,
            crate::beol::upper_thermal_dielectric(),
            Arrangement::SingleCentral {
                side: pillar_side(),
            },
        )
        .expect("solves");
        let quad_ulk = reduction_vs_baseline(
            &c,
            crate::beol::upper_ultra_low_k(),
            Arrangement::UniformCovering {
                reference_side: pillar_side(),
            },
        )
        .expect("solves");
        // The paper's 40% vs 32%: the single shared pillar edges out the
        // gating-unaware covering despite 75% less pillar area.
        assert!(
            single_td.percent() > quad_ulk.percent() - 1.0,
            "single+TD {single_td} must match/beat 4x covering {quad_ulk}"
        );
        assert!(single_td.percent() > 20.0, "single+TD: {single_td}");
        assert!(
            quad_ulk.percent() > 5.0,
            "4x covering helps some: {quad_ulk}"
        );
        // Without the dielectric the shared pillar is useless — the
        // co-design claim in one line.
        let single_ulk = reduction_vs_baseline(
            &c,
            crate::beol::upper_ultra_low_k(),
            Arrangement::SingleCentral {
                side: pillar_side(),
            },
        )
        .expect("solves");
        assert!(
            single_ulk.percent() < 0.3 * single_td.percent(),
            "central pillar needs the dielectric: {single_ulk} vs {single_td}"
        );
    }

    #[test]
    fn pillar_area_accounting() {
        let c = cfg();
        let single = solve_toy(
            &c,
            crate::beol::upper_thermal_dielectric(),
            Arrangement::SingleCentral {
                side: pillar_side(),
            },
        )
        .expect("solves");
        let quad = solve_toy(
            &c,
            crate::beol::upper_ultra_low_k(),
            Arrangement::UniformCovering {
                reference_side: pillar_side(),
            },
        )
        .expect("solves");
        // 75% less area: single is a quarter of per-source.
        assert!((quad.pillar_area.fraction() / single.pillar_area.fraction() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_grows_with_dielectric_k() {
        let c = cfg();
        let sweep =
            dielectric_sweep(&c, pillar_side(), &[5.0, 50.0, 200.0, 500.0]).expect("solves");
        for w in sweep.windows(2) {
            assert!(
                w[1].1.fraction() >= w[0].1.fraction() - 1e-9,
                "reduction must grow with k: {sweep:?}"
            );
        }
        let last = sweep.last().expect("non-empty").1;
        assert!(
            last.percent() > 40.0,
            "a 500 W/m/K dielectric exceeds 40% reduction: {last}"
        );
    }

    #[test]
    fn baseline_reduction_is_zero() {
        let c = cfg();
        let r = reduction_vs_baseline(&c, crate::beol::upper_ultra_low_k(), Arrangement::None)
            .expect("solves");
        assert!(r.fraction().abs() < 1e-9);
    }
}
