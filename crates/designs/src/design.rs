//! The design abstraction consumed by the cooling flows.

use tsc_geometry::{Grid2, Rect};
use tsc_phydes::power::{density, UnitClass};
use tsc_units::{Area, Frequency, HeatFlux, Length, Power, Ratio};

/// One placed functional unit of a design.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignUnit {
    /// Unit name, e.g. `"systolic-array"` or `"ICache"`.
    pub name: String,
    /// Placement on the die.
    pub rect: Rect,
    /// Power class (drives the density model).
    pub class: UnitClass,
    /// Hard macros (SRAM blocks) exclude pillar insertion.
    pub is_macro: bool,
}

impl DesignUnit {
    /// Creates a unit.
    #[must_use]
    pub fn new(name: impl Into<String>, rect: Rect, class: UnitClass, is_macro: bool) -> Self {
        Self {
            name: name.into(),
            rect,
            class,
            is_macro,
        }
    }

    /// Power density of this unit at the given operating point.
    #[must_use]
    pub fn flux(&self, utilization: Ratio, clock: Frequency) -> HeatFlux {
        density(self.class, utilization, clock)
    }

    /// Total power of this unit at the given operating point.
    #[must_use]
    pub fn power(&self, utilization: Ratio, clock: Frequency) -> Power {
        self.flux(utilization, clock) * self.rect.area()
    }
}

/// A heat source as seen by the pillar-placement algorithm: a region and
/// its dissipated flux.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatSource {
    /// Name of the originating unit.
    pub name: String,
    /// Source region.
    pub rect: Rect,
    /// Heat flux over the region.
    pub flux: HeatFlux,
    /// Whether the region is a hard macro (pillars must go around it).
    pub is_macro: bool,
}

/// A single-tier design: die outline plus placed units.
///
/// One `Design` describes one tier; the 3D IC stacks `N` copies (the
/// paper's designs replicate the tier with the LLC interleaved).
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// Design name.
    pub name: String,
    /// Die outline (origin at (0, 0)).
    pub die: Rect,
    /// Placed functional units.
    pub units: Vec<DesignUnit>,
    /// Nominal clock.
    pub clock: Frequency,
}

impl Design {
    /// Creates a design after validating that every unit fits on the die
    /// and units do not overlap.
    ///
    /// # Panics
    ///
    /// Panics if a unit leaves the die or two units overlap.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        die: Rect,
        units: Vec<DesignUnit>,
        clock: Frequency,
    ) -> Self {
        for u in &units {
            assert!(die.contains_rect(&u.rect), "unit {} leaves the die", u.name);
        }
        for i in 0..units.len() {
            for j in (i + 1)..units.len() {
                assert!(
                    !units[i].rect.intersects(&units[j].rect),
                    "units {} and {} overlap",
                    units[i].name,
                    units[j].name
                );
            }
        }
        Self {
            name: name.into(),
            die,
            units,
            clock,
        }
    }

    /// Die area.
    #[must_use]
    pub fn die_area(&self) -> Area {
        self.die.area()
    }

    /// Total power of one tier at the given utilization.
    #[must_use]
    pub fn total_power(&self, utilization: Ratio) -> Power {
        self.units
            .iter()
            .map(|u| u.power(utilization, self.clock))
            .sum()
    }

    /// Die-average heat flux of one tier.
    #[must_use]
    pub fn average_flux(&self, utilization: Ratio) -> HeatFlux {
        self.total_power(utilization) / self.die_area()
    }

    /// The per-unit heat sources at the given utilization — the input to
    /// pillar placement.
    #[must_use]
    pub fn heat_sources(&self, utilization: Ratio) -> Vec<HeatSource> {
        self.units
            .iter()
            .map(|u| HeatSource {
                name: u.name.clone(),
                rect: u.rect,
                flux: u.flux(utilization, self.clock),
                is_macro: u.is_macro,
            })
            .collect()
    }

    /// Power-density map (W/m²) over an `nx × ny` grid covering the die.
    /// Whitespace dissipates nothing; deposition is area-weighted, so the
    /// rasterized total power equals [`Design::total_power`] at any
    /// resolution.
    #[must_use]
    pub fn power_map(&self, nx: usize, ny: usize, utilization: Ratio) -> Grid2<f64> {
        let mut map = Grid2::filled(nx, ny, 0.0);
        for u in &self.units {
            let flux = u.flux(utilization, self.clock).watts_per_square_meter();
            map.deposit_rect(&self.die, &u.rect, flux);
        }
        map
    }

    /// Fraction of the die covered by hard macros.
    #[must_use]
    pub fn macro_fraction(&self) -> Ratio {
        let covered: f64 = self
            .units
            .iter()
            .filter(|u| u.is_macro)
            .map(|u| u.rect.area().square_meters())
            .sum();
        Ratio::from_fraction(covered / self.die_area().square_meters())
    }

    /// Fraction of the die covered by any unit.
    #[must_use]
    pub fn utilization_of_area(&self) -> Ratio {
        let covered: f64 = self
            .units
            .iter()
            .map(|u| u.rect.area().square_meters())
            .sum();
        Ratio::from_fraction(covered / self.die_area().square_meters())
    }

    /// A copy with the die (and every unit) scaled by `factor` in each
    /// lateral dimension — used for the Fujitsu-scale study.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Design {
        assert!(factor > 0.0, "scale factor must be positive, got {factor}");
        let scale_rect = |r: &Rect| {
            Rect::from_origin_size(
                Length::from_meters(r.min_x().meters() * factor),
                Length::from_meters(r.min_y().meters() * factor),
                Length::from_meters(r.width().meters() * factor),
                Length::from_meters(r.height().meters() * factor),
            )
        };
        Design {
            name: format!("{} (x{factor})", self.name),
            die: scale_rect(&self.die),
            units: self
                .units
                .iter()
                .map(|u| DesignUnit {
                    name: u.name.clone(),
                    rect: scale_rect(&u.rect),
                    class: u.class,
                    is_macro: u.is_macro,
                })
                .collect(),
            clock: self.clock,
        }
    }
}

impl core::fmt::Display for Design {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: {:.3} mm² die, {} units",
            self.name,
            self.die_area().square_millimeters(),
            self.units.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn tiny() -> Design {
        let die = Rect::from_origin_size(Length::ZERO, Length::ZERO, um(100.0), um(100.0));
        Design::new(
            "tiny",
            die,
            vec![
                DesignUnit::new(
                    "array",
                    Rect::from_origin_size(um(0.0), um(0.0), um(60.0), um(60.0)),
                    UnitClass::SystolicArray,
                    false,
                ),
                DesignUnit::new(
                    "sram",
                    Rect::from_origin_size(um(60.0), um(0.0), um(40.0), um(40.0)),
                    UnitClass::Sram,
                    true,
                ),
            ],
            Frequency::from_gigahertz(1.0),
        )
    }

    #[test]
    fn power_accounting() {
        let d = tiny();
        let p = d.total_power(Ratio::ONE);
        // array: 95 W/cm² * 3.6e-5 cm² = 3.42 mW; sram: 25 * 1.6e-5 = 0.4 mW.
        assert!((p.milliwatts() - (3.42 + 0.4)).abs() < 0.01, "{p}");
        let avg = d.average_flux(Ratio::ONE);
        assert!((avg.watts_per_square_cm() - (3.82e-3 / 1e-4)).abs() < 0.1);
    }

    #[test]
    fn power_map_conserves_power() {
        let d = tiny();
        let map = d.power_map(50, 50, Ratio::ONE);
        let cell_area = d.die_area().square_meters() / 2500.0;
        let total: f64 = map.iter().sum::<f64>() * cell_area;
        assert!(
            (total - d.total_power(Ratio::ONE).watts()).abs()
                < 1e-9 * d.total_power(Ratio::ONE).watts(),
            "area-weighted rasterization is exact: {total} vs {}",
            d.total_power(Ratio::ONE)
        );
    }

    #[test]
    fn heat_sources_mirror_units() {
        let d = tiny();
        let hs = d.heat_sources(Ratio::ONE);
        assert_eq!(hs.len(), 2);
        assert!(hs.iter().any(|h| h.is_macro && h.name == "sram"));
        let array = hs.iter().find(|h| h.name == "array").expect("array");
        assert!((array.flux.watts_per_square_cm() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_fractions() {
        let d = tiny();
        assert!((d.macro_fraction().percent() - 16.0).abs() < 1e-9);
        assert!((d.utilization_of_area().percent() - 52.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_preserves_flux_and_grows_power() {
        let d = tiny();
        let s = d.scaled(10.0);
        assert!((s.die_area().square_meters() / d.die_area().square_meters() - 100.0).abs() < 1e-9);
        let f0 = d.average_flux(Ratio::ONE).watts_per_square_cm();
        let f1 = s.average_flux(Ratio::ONE).watts_per_square_cm();
        assert!((f0 - f1).abs() < 1e-9, "flux is scale-invariant");
        assert!(
            (s.total_power(Ratio::ONE).watts() / d.total_power(Ratio::ONE).watts() - 100.0).abs()
                < 1e-9
        );
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_units_rejected() {
        let die = Rect::from_origin_size(Length::ZERO, Length::ZERO, um(100.0), um(100.0));
        let r = Rect::from_origin_size(um(0.0), um(0.0), um(50.0), um(50.0));
        let _ = Design::new(
            "bad",
            die,
            vec![
                DesignUnit::new("a", r, UnitClass::Control, false),
                DesignUnit::new("b", r, UnitClass::Control, false),
            ],
            Frequency::from_gigahertz(1.0),
        );
    }

    #[test]
    #[should_panic(expected = "leaves the die")]
    fn out_of_die_units_rejected() {
        let die = Rect::from_origin_size(Length::ZERO, Length::ZERO, um(100.0), um(100.0));
        let _ = Design::new(
            "bad",
            die,
            vec![DesignUnit::new(
                "a",
                Rect::from_origin_size(um(90.0), um(0.0), um(50.0), um(50.0)),
                UnitClass::Control,
                false,
            )],
            Frequency::from_gigahertz(1.0),
        );
    }
}
