//! The metal stack: layers, groups, and dielectric assignment.

use tsc_materials::Material;
use tsc_units::{Capacitance, Delay, Length, RelativePermittivity};

/// Which group of the BEOL a layer belongs to — the thermal abstraction
/// boundary of the paper (M8–M9 modeled separately from V0–V7, which \[5\]
/// shows is necessary for 5 % accuracy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerGroup {
    /// Local/intermediate routing lumped as V0–V7.
    Lower,
    /// The uppermost group M8/V8/M9 — the scaffolding dielectric target.
    Upper,
}

/// One interconnect layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Name, e.g. `"M8"` or `"V3"`.
    pub name: &'static str,
    /// Layer thickness.
    pub thickness: Length,
    /// Minimum wire width (vias: via dimension).
    pub width: Length,
    /// Minimum wire pitch (width + spacing).
    pub pitch: Length,
    /// `true` for via layers.
    pub is_via: bool,
    /// Group for thermal lumping.
    pub group: LayerGroup,
}

impl Layer {
    /// Minimum spacing between wires on this layer.
    #[must_use]
    pub fn spacing(&self) -> Length {
        self.pitch - self.width
    }
}

/// A 7 nm-class metal stack with per-group dielectric assignment.
///
/// The default [`MetalStack::asap7`] uses published ASAP7-class numbers:
/// 1× metals M1–M3 (36 nm pitch class), 2× M4–M5, 4× M6–M7, and the
/// thick top metals M8–M9 at 80 nm with 80 nm vias — the uppermost
/// 240 nm that scaffolding re-fabricates in thermal dielectric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetalStack {
    layers: Vec<Layer>,
    lower_dielectric: Material,
    upper_dielectric: Material,
}

impl MetalStack {
    /// The ASAP7-class stack with ultra-low-k dielectric everywhere
    /// (the conventional baseline).
    #[must_use]
    pub fn asap7() -> Self {
        let nm = Length::from_nanometers;
        let m = |name, t, w, p, group| Layer {
            name,
            thickness: nm(t),
            width: nm(w),
            pitch: nm(p),
            is_via: false,
            group,
        };
        let v = |name, t, w, group| Layer {
            name,
            thickness: nm(t),
            width: nm(w),
            pitch: nm(2.0 * w),
            is_via: true,
            group,
        };
        use LayerGroup::{Lower, Upper};
        let layers = vec![
            m("M1", 36.0, 18.0, 36.0, Lower),
            v("V1", 39.0, 18.0, Lower),
            m("M2", 36.0, 18.0, 36.0, Lower),
            v("V2", 39.0, 18.0, Lower),
            m("M3", 36.0, 18.0, 36.0, Lower),
            v("V3", 39.0, 18.0, Lower),
            m("M4", 48.0, 24.0, 48.0, Lower),
            v("V4", 52.0, 24.0, Lower),
            m("M5", 48.0, 24.0, 48.0, Lower),
            v("V5", 52.0, 24.0, Lower),
            m("M6", 96.0, 48.0, 96.0, Lower),
            v("V6", 104.0, 48.0, Lower),
            m("M7", 96.0, 48.0, 96.0, Lower),
            v("V7", 104.0, 48.0, Lower),
            m("M8", 80.0, 40.0, 80.0, Upper),
            v("V8", 80.0, 40.0, Upper),
            m("M9", 80.0, 40.0, 80.0, Upper),
        ];
        Self {
            layers,
            lower_dielectric: tsc_materials::ULTRA_LOW_K_ILD,
            upper_dielectric: tsc_materials::ULTRA_LOW_K_ILD,
        }
    }

    /// The scaffolding modification: the upper group (M8/V8/M9) is
    /// fabricated with the thermal dielectric at its design point.
    #[must_use]
    pub fn with_thermal_dielectric_upper(mut self) -> Self {
        self.upper_dielectric = tsc_materials::THERMAL_DIELECTRIC_DESIGN;
        self
    }

    /// Replaces the upper-group dielectric with an arbitrary material
    /// (for dielectric-conductivity sweeps, e.g. Fig. 12b).
    #[must_use]
    pub fn with_upper_dielectric(mut self, material: Material) -> Self {
        self.upper_dielectric = material;
        self
    }

    /// All layers, bottom to top.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Looks up a layer by name.
    #[must_use]
    pub fn layer(&self, name: &str) -> Option<&Layer> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Dielectric of a group.
    #[must_use]
    pub fn dielectric(&self, group: LayerGroup) -> &Material {
        match group {
            LayerGroup::Lower => &self.lower_dielectric,
            LayerGroup::Upper => &self.upper_dielectric,
        }
    }

    /// Total thickness of a group.
    #[must_use]
    pub fn group_thickness(&self, group: LayerGroup) -> Length {
        self.layers
            .iter()
            .filter(|l| l.group == group)
            .map(|l| l.thickness)
            .sum()
    }

    /// Total BEOL thickness.
    #[must_use]
    pub fn total_thickness(&self) -> Length {
        self.layers.iter().map(|l| l.thickness).sum()
    }

    /// Signal-wire capacitance per length on the upper metals (M8/M9)
    /// with the assigned upper dielectric.
    #[must_use]
    pub fn upper_wire_capacitance_per_length(&self) -> f64 {
        // tsc-analyze: allow(no-unwrap): every constructor of this stack
        // lays down the full M1..M9 ladder, so M8 is always present.
        let layer = self.layer("M8").expect("M8 exists");
        let eps = self
            .upper_dielectric
            .permittivity
            .unwrap_or(RelativePermittivity::ULTRA_LOW_K);
        crate::wire::capacitance_per_length(layer, eps)
    }

    /// Signal-wire capacitance per length on a representative lower metal
    /// (M2) with the assigned lower dielectric.
    #[must_use]
    pub fn lower_wire_capacitance_per_length(&self) -> f64 {
        // tsc-analyze: allow(no-unwrap): every constructor of this stack
        // lays down the full M1..M9 ladder, so M2 is always present.
        let layer = self.layer("M2").expect("M2 exists");
        let eps = self
            .lower_dielectric
            .permittivity
            .unwrap_or(RelativePermittivity::ULTRA_LOW_K);
        crate::wire::capacitance_per_length(layer, eps)
    }

    /// Repeatered (buffered) signal delay per length on the upper metals.
    #[must_use]
    pub fn upper_repeatered_delay_per_length(&self) -> f64 {
        // tsc-analyze: allow(no-unwrap): every constructor of this stack
        // lays down the full M1..M9 ladder, so M8 is always present.
        let layer = self.layer("M8").expect("M8 exists");
        let eps = self
            .upper_dielectric
            .permittivity
            .unwrap_or(RelativePermittivity::ULTRA_LOW_K);
        crate::wire::repeatered_delay_per_length(layer, eps)
    }

    /// Repeatered delay per length on a representative lower metal.
    #[must_use]
    pub fn lower_repeatered_delay_per_length(&self) -> f64 {
        // tsc-analyze: allow(no-unwrap): every constructor of this stack
        // lays down the full M1..M9 ladder, so M2 is always present.
        let layer = self.layer("M2").expect("M2 exists");
        let eps = self
            .lower_dielectric
            .permittivity
            .unwrap_or(RelativePermittivity::ULTRA_LOW_K);
        crate::wire::repeatered_delay_per_length(layer, eps)
    }

    /// Unbuffered Elmore delay of a wire of the given length on `layer`
    /// with that group's dielectric — exposed for spot checks against the
    /// repeatered model.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a metal layer of this stack.
    #[must_use]
    pub fn elmore_delay(&self, name: &str, length: Length) -> Delay {
        // tsc-analyze: allow(no-unwrap): documented panic contract above
        // (`# Panics`); callers pass layer names they own.
        let layer = self.layer(name).expect("layer exists");
        assert!(!layer.is_via, "vias do not route signals");
        let eps = self
            .dielectric(layer.group)
            .permittivity
            .unwrap_or(RelativePermittivity::ULTRA_LOW_K);
        let r = crate::wire::resistance_per_length(layer);
        let c = crate::wire::capacitance_per_length(layer, eps);
        let l = length.meters();
        // Distributed RC: 0.5·r·c·L².
        Delay::new(0.5 * r * c * l * l)
    }

    /// Total capacitance of a wire on `name` of the given length.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a metal layer of this stack.
    #[must_use]
    pub fn wire_capacitance(&self, name: &str, length: Length) -> Capacitance {
        // tsc-analyze: allow(no-unwrap): documented panic contract above
        // (`# Panics`); callers pass layer names they own.
        let layer = self.layer(name).expect("layer exists");
        assert!(!layer.is_via, "vias do not route signals");
        let eps = self
            .dielectric(layer.group)
            .permittivity
            .unwrap_or(RelativePermittivity::ULTRA_LOW_K);
        Capacitance::new(crate::wire::capacitance_per_length(layer, eps) * length.meters())
    }
}

impl Default for MetalStack {
    fn default() -> Self {
        Self::asap7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_group_is_240nm() {
        let s = MetalStack::asap7();
        assert!(
            (s.group_thickness(LayerGroup::Upper).nanometers() - 240.0).abs() < 1e-9,
            "M8+V8+M9 must be the paper's 240 nm scaffolding target"
        );
    }

    #[test]
    fn lower_group_is_about_a_micron() {
        let s = MetalStack::asap7();
        let t = s.group_thickness(LayerGroup::Lower).micrometers();
        assert!((0.7..1.3).contains(&t), "lower BEOL ≈ 1 µm, got {t}");
    }

    #[test]
    fn dielectric_swap_only_touches_upper() {
        let s = MetalStack::asap7().with_thermal_dielectric_upper();
        assert_eq!(
            s.dielectric(LayerGroup::Upper).name,
            "thermal dielectric (design point)"
        );
        assert_eq!(s.dielectric(LayerGroup::Lower).name, "ultra-low-k ILD");
    }

    #[test]
    fn capacitance_doubles_with_epsilon() {
        let base = MetalStack::asap7();
        let scaf = MetalStack::asap7().with_thermal_dielectric_upper();
        let ratio =
            scaf.upper_wire_capacitance_per_length() / base.upper_wire_capacitance_per_length();
        assert!((ratio - 2.0).abs() < 1e-9);
        // Lower layers untouched.
        assert_eq!(
            base.lower_wire_capacitance_per_length(),
            scaf.lower_wire_capacitance_per_length()
        );
    }

    #[test]
    fn layer_lookup() {
        let s = MetalStack::asap7();
        assert!(s.layer("M8").is_some());
        assert!(s.layer("V8").expect("V8").is_via);
        assert!(s.layer("M17").is_none());
        assert_eq!(s.layers().len(), 17);
    }

    #[test]
    fn elmore_grows_quadratically() {
        let s = MetalStack::asap7();
        let d1 = s.elmore_delay("M8", Length::from_micrometers(100.0));
        let d2 = s.elmore_delay("M8", Length::from_micrometers(200.0));
        assert!((d2 / d1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn upper_wires_are_faster_per_length() {
        // Thick top metals beat thin lower metals for global routes.
        let s = MetalStack::asap7();
        assert!(s.upper_repeatered_delay_per_length() < s.lower_repeatered_delay_per_length());
    }

    #[test]
    #[should_panic(expected = "vias do not route")]
    fn via_layers_reject_signal_delay() {
        let _ = MetalStack::asap7().elmore_delay("V8", Length::from_micrometers(1.0));
    }
}
