//! Transient thermal simulation: implicit-Euler time stepping on the
//! same finite-volume discretization as the steady solver.
//!
//! PACT (the paper's chip-scale simulator) provides both steady and
//! transient modes; the paper's discussion of thermal-aware scheduling
//! ("scheduling task execution to control temporal power profiles" \[4\])
//! and fine-grained power gating (Fig. 12) is inherently temporal, so
//! this module completes the substitution.
//!
//! Each step solves `(C/Δt + A)·T' = C/Δt·T + b` with the same
//! Jacobi-preconditioned CG kernel; implicit Euler is unconditionally
//! stable, so Δt is chosen for accuracy, not stability.

use crate::field::TemperatureField;
use crate::multigrid::{MgHierarchy, MgParams, MgWorkspace};
use crate::problem::Problem;
use crate::solver::{Assembled, CgParams, SolveError, SolverStats, DEFAULT_PARALLEL_CROSSOVER};
use tsc_geometry::Grid3;
use tsc_units::Temperature;

/// Volumetric heat capacities (J/m³/K) of the stack materials, for
/// building capacity fields.
pub mod capacity {
    /// Crystalline silicon.
    pub const SILICON: f64 = 1.63e6;
    /// Copper.
    pub const COPPER: f64 = 3.45e6;
    /// Porous organosilicate / ultra-low-k dielectric.
    pub const ULTRA_LOW_K: f64 = 1.5e6;
    /// Polycrystalline diamond.
    pub const DIAMOND: f64 = 1.78e6;
}

/// A running transient simulation.
///
/// Assembles the conduction operator once; each [`TransientRun::step`]
/// advances time by `dt`. Power can be re-staged mid-run (power gating,
/// task migration) with [`TransientRun::restage_power`].
///
/// ```
/// use tsc_geometry::Grid3;
/// use tsc_thermal::{transient::{capacity, TransientRun}, Heatsink, Problem};
/// use tsc_units::{Length, Power, Temperature, ThermalConductivity};
///
/// let mut p = Problem::uniform_block(4, 4, 2,
///     Length::from_millimeters(1.0), Length::from_millimeters(1.0),
///     Length::from_micrometers(100.0), ThermalConductivity::new(100.0));
/// p.set_bottom_heatsink(Heatsink::two_phase());
/// p.add_power(2, 2, 1, Power::from_watts(1.0));
/// let caps = Grid3::filled(p.dim(), capacity::SILICON);
/// let mut run = TransientRun::new(&p, &caps, 1e-6,
///     Temperature::from_celsius(100.0))?;
/// run.step()?;
/// assert!(run.time_seconds() > 0.0);
/// assert!(run.temperatures().max_temperature() > Temperature::from_celsius(100.0));
/// # Ok::<(), tsc_thermal::SolveError>(())
/// ```
#[derive(Debug)]
pub struct TransientRun {
    asm: Assembled,
    /// Per-cell heat capacity over Δt: `c_v · V / Δt` (W/K).
    cap_over_dt: Vec<f64>,
    temperatures: Vec<f64>,
    dt: f64,
    time: f64,
    tol: f64,
    max_iter: usize,
    threads: usize,
    crossover: usize,
    mg: Option<TransientMg>,
}

/// Multigrid state for the implicit matrix `A + diag(C/Δt)`: the shift
/// is constant across steps, so the shifted operator and its hierarchy
/// are built once per (re-)staging and reused by every step.
#[derive(Debug)]
struct TransientMg {
    shifted: Assembled,
    hierarchy: MgHierarchy,
    workspace: MgWorkspace,
}

impl TransientMg {
    fn build(
        asm: &Assembled,
        cap_over_dt: &[f64],
        threads: usize,
        crossover: usize,
    ) -> Result<Self, SolveError> {
        let shifted = asm.shifted(cap_over_dt);
        let hierarchy = MgHierarchy::build(&shifted, &MgParams::with_exec(threads, crossover))?;
        let workspace = hierarchy.workspace();
        Ok(Self {
            shifted,
            hierarchy,
            workspace,
        })
    }
}

impl TransientRun {
    /// Starts a run from a uniform initial temperature.
    ///
    /// `capacity_per_volume` holds volumetric heat capacities (J/m³/K)
    /// per cell; `dt` is the time step in seconds.
    ///
    /// # Errors
    ///
    /// [`SolveError::NoBoundary`] when the problem has no heatsink.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive, or the capacity grid's
    /// dimensions mismatch the problem, or any capacity is non-positive.
    pub fn new(
        problem: &Problem,
        capacity_per_volume: &Grid3<f64>,
        dt: f64,
        initial: Temperature,
    ) -> Result<Self, SolveError> {
        assert!(dt > 0.0, "time step must be positive, got {dt}");
        assert_eq!(
            capacity_per_volume.dim(),
            problem.dim(),
            "capacity grid must match the problem mesh"
        );
        assert!(
            capacity_per_volume.iter().all(|&c| c > 0.0),
            "heat capacities must be positive"
        );
        let asm = Assembled::build(problem)?;
        let dim = problem.dim();
        let cell_base = (problem.dx() * problem.dy()).square_meters();
        let mut cap_over_dt = vec![0.0; dim.len()];
        for k in 0..dim.nz {
            let vol = cell_base * problem.dz()[k].meters();
            for j in 0..dim.ny {
                for i in 0..dim.nx {
                    let c = capacity_per_volume[(i, j, k)];
                    cap_over_dt[dim.flat(i, j, k)] = c * vol / dt;
                }
            }
        }
        Ok(Self {
            asm,
            cap_over_dt,
            temperatures: vec![initial.kelvin(); dim.len()],
            dt,
            time: 0.0,
            tol: 1e-9,
            max_iter: 20_000,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            crossover: DEFAULT_PARALLEL_CROSSOVER,
            mg: None,
        })
    }

    /// Builder: preconditions every step's inner CG solve with a
    /// geometric-multigrid V-cycle over the shifted implicit matrix
    /// `A + diag(C/Δt)`. The hierarchy is built once here and reused by
    /// every [`TransientRun::step`]; [`TransientRun::restage_power`]
    /// rebuilds it (the operator may change).
    ///
    /// # Errors
    ///
    /// Propagates a coarse-grid factorization failure (non-SPD operator).
    pub fn with_multigrid(mut self) -> Result<Self, SolveError> {
        self.mg = Some(TransientMg::build(
            &self.asm,
            &self.cap_over_dt,
            self.threads,
            self.crossover,
        )?);
        Ok(self)
    }

    /// Builder: caps the worker threads of the inner CG solves (default:
    /// one per available core above the parallel crossover).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// Whether multigrid preconditioning is active.
    #[must_use]
    pub fn uses_multigrid(&self) -> bool {
        self.mg.is_some()
    }

    /// Elapsed simulated time in seconds.
    #[must_use]
    pub fn time_seconds(&self) -> f64 {
        self.time
    }

    /// Time step in seconds.
    #[must_use]
    pub fn dt_seconds(&self) -> f64 {
        self.dt
    }

    /// Current temperature field.
    #[must_use]
    pub fn temperatures(&self) -> TemperatureField {
        let mut grid = Grid3::filled(self.asm.dim(), 0.0);
        grid.as_mut_slice().copy_from_slice(&self.temperatures);
        TemperatureField::from_kelvin(grid)
    }

    /// Re-derives heat sources and boundary conditions from a modified
    /// problem (same mesh): the power-gating / task-migration hook.
    ///
    /// # Errors
    ///
    /// [`SolveError::NoBoundary`] when the new problem has no heatsink.
    ///
    /// # Panics
    ///
    /// Panics if the mesh dimensions changed.
    pub fn restage_power(&mut self, problem: &Problem) -> Result<(), SolveError> {
        assert_eq!(
            problem.dim(),
            self.asm.dim(),
            "restaged problem must keep the same mesh"
        );
        self.asm = Assembled::build(problem)?;
        if self.mg.is_some() {
            self.mg = Some(TransientMg::build(
                &self.asm,
                &self.cap_over_dt,
                self.threads,
                self.crossover,
            )?);
        }
        Ok(())
    }

    /// Advances one implicit-Euler step.
    ///
    /// # Errors
    ///
    /// [`SolveError::NotConverged`] if the inner CG solve stalls.
    pub fn step(&mut self) -> Result<SolverStats, SolveError> {
        // rhs = b + (C/dt)·T ; matrix = A + diag(C/dt).
        let mut rhs = self.asm.rhs().to_vec();
        for ((r, c), t) in rhs
            .iter_mut()
            .zip(&self.cap_over_dt)
            .zip(&self.temperatures)
        {
            *r += c * t;
        }
        let params = CgParams {
            tol: self.tol,
            max_iter: self.max_iter,
            threads: self.threads,
            crossover: self.crossover,
            traj_stride: usize::MAX,
        };
        let stats = match &mut self.mg {
            Some(mg) => mg.shifted.cg_core_mg(
                &rhs,
                &mut self.temperatures,
                &params,
                &mg.hierarchy,
                &mut mg.workspace,
            )?,
            None => self.asm.cg_core(
                Some(&self.cap_over_dt),
                &rhs,
                &mut self.temperatures,
                &params,
            )?,
        };
        self.time += self.dt;
        Ok(stats)
    }

    /// Advances `steps` steps, returning the stats of the last one.
    ///
    /// # Errors
    ///
    /// Propagates the first inner-solve failure.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn run(&mut self, steps: usize) -> Result<SolverStats, SolveError> {
        assert!(steps > 0, "need at least one step");
        let mut last = None;
        for _ in 0..steps {
            last = Some(self.step()?);
        }
        // tsc-analyze: allow(no-unwrap): the assert above guarantees at
        // least one loop iteration, so `last` is always Some.
        Ok(last.expect("steps > 0"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatsink::Heatsink;
    use crate::solver::CgSolver;
    use tsc_units::{Length, Power, ThermalConductivity};

    fn problem(powered: bool) -> Problem {
        let mut p = Problem::uniform_block(
            4,
            4,
            3,
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.0),
            Length::from_micrometers(100.0),
            ThermalConductivity::new(100.0),
        );
        p.set_bottom_heatsink(Heatsink::two_phase());
        if powered {
            p.add_power(2, 2, 2, Power::from_watts(2.0));
        }
        p
    }

    fn caps(p: &Problem) -> Grid3<f64> {
        Grid3::filled(p.dim(), capacity::SILICON)
    }

    #[test]
    fn converges_to_steady_state() {
        let p = problem(true);
        let steady = CgSolver::new().solve(&p).expect("steady");
        let mut run = TransientRun::new(&p, &caps(&p), 5e-6, Heatsink::two_phase().ambient)
            .expect("well-posed");
        run.run(400).expect("steps");
        let t_end = run.temperatures().max_temperature().kelvin();
        let t_ss = steady.temperatures.max_temperature().kelvin();
        assert!(
            (t_end - t_ss).abs() < 0.01 * (t_ss - 373.15).max(0.1),
            "transient must settle at steady state: {t_end} vs {t_ss}"
        );
    }

    #[test]
    fn heating_is_monotone_from_ambient() {
        let p = problem(true);
        let mut run = TransientRun::new(&p, &caps(&p), 2e-6, Heatsink::two_phase().ambient)
            .expect("well-posed");
        let mut last = run.temperatures().max_temperature().kelvin();
        for _ in 0..20 {
            run.step().expect("step");
            let now = run.temperatures().max_temperature().kelvin();
            assert!(now >= last - 1e-12, "implicit Euler heating is monotone");
            last = now;
        }
    }

    #[test]
    fn lumped_rc_time_constant() {
        // A single giant step (dt >> tau) lands directly on steady state;
        // a step of exactly tau covers 1/(1+dt/tau)... for implicit Euler
        // the single-step update is T1 = (T0 + (dt/C)(q + G·Ta)) / (1 + dt·G/C);
        // with dt -> infinity that is the steady solution. Verify.
        let p = problem(true);
        let steady = CgSolver::new().solve(&p).expect("steady");
        let mut run = TransientRun::new(&p, &caps(&p), 1.0, Heatsink::two_phase().ambient)
            .expect("well-posed"); // 1 s >> all time constants
        run.step().expect("step");
        let t1 = run.temperatures().max_temperature().kelvin();
        let t_ss = steady.temperatures.max_temperature().kelvin();
        assert!((t1 - t_ss).abs() < 0.05, "{t1} vs {t_ss}");
    }

    #[test]
    fn gating_cools_the_stack() {
        let p_on = problem(true);
        let p_off = problem(false);
        let mut run = TransientRun::new(&p_on, &caps(&p_on), 5e-6, Heatsink::two_phase().ambient)
            .expect("well-posed");
        run.run(100).expect("heat up");
        let hot = run.temperatures().max_temperature();
        run.restage_power(&p_off).expect("same mesh");
        run.run(100).expect("cool down");
        let cooled = run.temperatures().max_temperature();
        assert!(cooled < hot, "gating must cool: {hot} -> {cooled}");
        let residual_rise = cooled.kelvin() - Heatsink::two_phase().ambient.kelvin();
        let hot_rise = hot.kelvin() - Heatsink::two_phase().ambient.kelvin();
        assert!(
            residual_rise < 0.25 * hot_rise,
            "gated stack must decay most of its rise: {residual_rise} of {hot_rise}"
        );
    }

    #[test]
    fn smaller_dt_tracks_the_same_trajectory() {
        let p = problem(true);
        let amb = Heatsink::two_phase().ambient;
        let mut coarse = TransientRun::new(&p, &caps(&p), 4e-6, amb).expect("well-posed");
        let mut fine = TransientRun::new(&p, &caps(&p), 1e-6, amb).expect("well-posed");
        coarse.run(5).expect("coarse");
        fine.run(20).expect("fine");
        let tc = coarse.temperatures().max_temperature().kelvin() - amb.kelvin();
        let tf = fine.temperatures().max_temperature().kelvin() - amb.kelvin();
        // First-order scheme: coarse lags fine but within ~25%.
        assert!(
            (tc - tf).abs() / tf.max(1e-9) < 0.25,
            "dt refinement consistency: {tc} vs {tf}"
        );
    }

    #[test]
    fn multigrid_stepping_tracks_jacobi_stepping() {
        let p_on = problem(true);
        let p_off = problem(false);
        let amb = Heatsink::two_phase().ambient;
        let mut plain = TransientRun::new(&p_on, &caps(&p_on), 5e-6, amb).expect("well-posed");
        let mut mg = TransientRun::new(&p_on, &caps(&p_on), 5e-6, amb)
            .expect("well-posed")
            .with_multigrid()
            .expect("spd operator");
        assert!(mg.uses_multigrid());
        for _ in 0..10 {
            plain.step().expect("plain step");
            let stats = mg.step().expect("mg step");
            assert_eq!(
                stats.preconditioner,
                crate::solver::Preconditioner::Multigrid
            );
        }
        // Restage to gated power: the MG hierarchy is rebuilt and both
        // runs keep tracking each other.
        plain.restage_power(&p_off).expect("same mesh");
        mg.restage_power(&p_off).expect("same mesh");
        for _ in 0..10 {
            plain.step().expect("plain step");
            mg.step().expect("mg step");
        }
        let a = plain.temperatures();
        let b = mg.temperatures();
        let max_dev = a
            .iter_kelvin()
            .zip(b.iter_kelvin())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0_f64, f64::max);
        // Each step solves to 1e-9 relative residual with a different
        // preconditioner; twenty steps accumulate O(1e-6) K of drift.
        assert!(
            max_dev < 1e-5,
            "MG and Jacobi trajectories must agree, max |dT| = {max_dev}"
        );
    }

    #[test]
    #[should_panic(expected = "time step must be positive")]
    fn zero_dt_rejected() {
        let p = problem(true);
        let _ = TransientRun::new(&p, &caps(&p), 0.0, Heatsink::two_phase().ambient);
    }

    #[test]
    fn no_boundary_is_reported() {
        let mut p = problem(true);
        p = {
            // Rebuild without a heatsink.
            let mut q = Problem::uniform_block(
                4,
                4,
                3,
                Length::from_millimeters(1.0),
                Length::from_millimeters(1.0),
                Length::from_micrometers(100.0),
                ThermalConductivity::new(100.0),
            );
            q.add_power(0, 0, 0, Power::from_watts(1.0));
            let _ = p;
            q
        };
        let caps = Grid3::filled(p.dim(), capacity::SILICON);
        let err = TransientRun::new(&p, &caps, 1e-6, Temperature::from_celsius(25.0));
        assert!(matches!(err, Err(SolveError::NoBoundary)));
    }
}
