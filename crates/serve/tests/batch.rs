//! `/v1/batch` and admission-control integration tests against an
//! in-process server.

mod common;

use std::time::Duration;

use common::one_shot;
use tsc_bench::json::{self, Json};
use tsc_serve::{Server, ServerConfig};

fn start_server() -> Server {
    Server::start(ServerConfig::default()).expect("bind ephemeral port")
}

fn item_status(items: &[Json], i: usize) -> usize {
    items[i]
        .get("status")
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("item {i} has no status: {:?}", items[i]))
}

#[test]
fn batch_preserves_order_and_isolates_bad_items() {
    let server = start_server();
    let addr = server.addr();

    let body = br#"{"items": [
        {"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6},
        {"design": "not-a-design"},
        {"endpoint": "flow", "design": "gemmini", "tiers": 2, "max_tiers": 2},
        {"endpoint": "teleport"},
        {"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6, "utilization_percent": 50}
    ]}"#;
    let response = one_shot(addr, "POST", "/v1/batch", &[], body);
    assert_eq!(response.status, 200, "body: {}", response.body_str());
    let envelope = json::parse(&response.body_str()).expect("envelope parses");
    let items = envelope
        .get("items")
        .and_then(Json::as_array)
        .expect("items array");
    assert_eq!(items.len(), 5);
    assert_eq!(envelope.get("count").and_then(Json::as_usize), Some(5));
    assert_eq!(envelope.get("errors").and_then(Json::as_usize), Some(2));

    // Results come back in envelope order: good, bad, good, bad, good.
    assert_eq!(item_status(items, 0), 200);
    assert_eq!(item_status(items, 1), 400);
    assert_eq!(item_status(items, 2), 200, "flow item: {:?}", items[2]);
    assert_eq!(item_status(items, 3), 400);
    assert_eq!(item_status(items, 4), 200);

    // Successful solve items carry the normal solve body, nested.
    let junction = items[0]
        .get("body")
        .and_then(|b| b.get("junction_celsius"))
        .and_then(Json::as_f64)
        .expect("nested solve body");
    assert!(junction > 20.0 && junction < 400.0);
    // The bad items carry the parse error.
    assert!(items[1]
        .get("body")
        .and_then(|b| b.get("error"))
        .and_then(Json::as_str)
        .is_some());

    // Items 0 and 4 differ only in utilization: one operator group, one
    // stack build, one repowered warm item.
    assert_eq!(server.metrics().batch_requests_total.get(), 1);
    assert_eq!(server.metrics().batch_items_total.get(), 5);
    assert_eq!(server.metrics().batch_item_errors_total.get(), 2);
    assert!(server.metrics().batch_groups_total.get() >= 1);
    assert_eq!(server.metrics().batch_group_warm_items_total.get(), 1);

    server.shutdown();
}

#[test]
fn batch_envelope_errors_fail_whole_request() {
    let server = start_server();
    let addr = server.addr();
    for bad in [
        &b"garbage"[..],
        br#"{"no_items": true}"#,
        br#"{"items": {}}"#,
        br#"{"items": []}"#,
    ] {
        let response = one_shot(addr, "POST", "/v1/batch", &[], bad);
        assert_eq!(response.status, 400, "input {bad:?}");
    }
    // Method guard.
    assert_eq!(one_shot(addr, "GET", "/v1/batch", &[], b"").status, 405);
    server.shutdown();
}

#[test]
fn identical_batch_items_coalesce_to_one_solve() {
    let server = start_server();
    let addr = server.addr();

    let body = br#"{"items": [
        {"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6},
        {"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6},
        {"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6}
    ]}"#;
    let response = one_shot(addr, "POST", "/v1/batch", &[], body);
    assert_eq!(response.status, 200, "body: {}", response.body_str());
    let envelope = json::parse(&response.body_str()).expect("envelope parses");
    let items = envelope.get("items").and_then(Json::as_array).unwrap();
    assert!(items
        .iter()
        .enumerate()
        .all(|(i, _)| item_status(items, i) == 200));

    // One owner, two latched duplicates, one backend solve.
    assert_eq!(server.metrics().coalesced_total.get(), 2);
    assert_eq!(server.metrics().backend_solves_total.get(), 1);
    // All three items carry identical bodies.
    let bodies: Vec<String> = items
        .iter()
        .map(|i| i.get("body").expect("body").pretty())
        .collect();
    assert_eq!(bodies[0], bodies[1]);
    assert_eq!(bodies[1], bodies[2]);

    server.shutdown();
}

/// A batch utilization sweep over one design is an affine power family:
/// the service answers it with the two extreme solves plus exact
/// superposition, not one solver run per item.
#[test]
fn utilization_sweep_superposes_instead_of_resolving() {
    let server = start_server();
    let addr = server.addr();

    let items: Vec<String> = (0..8)
        .map(|i| {
            format!(
                r#"{{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 8,
                    "utilization_percent": {}}}"#,
                30 + 8 * i
            )
        })
        .collect();
    let body = format!(r#"{{"items": [{}]}}"#, items.join(","));
    let response = one_shot(addr, "POST", "/v1/batch", &[], body.as_bytes());
    assert_eq!(response.status, 200, "body: {}", response.body_str());
    let envelope = json::parse(&response.body_str()).expect("envelope parses");
    let items = envelope.get("items").and_then(Json::as_array).unwrap();
    assert_eq!(items.len(), 8);
    assert_eq!(envelope.get("errors").and_then(Json::as_usize), Some(0));

    // Junction temperature strictly increases with utilization: the
    // superposed items really carry their own power level.
    let temps: Vec<f64> = items
        .iter()
        .map(|item| {
            item.get("body")
                .and_then(|b| b.get("junction_celsius"))
                .and_then(Json::as_f64)
                .expect("solve body")
        })
        .collect();
    assert!(
        temps.windows(2).all(|w| w[0] < w[1]),
        "temps not monotone in utilization: {temps:?}"
    );

    // Two anchor solves priced the whole sweep; the six interior items
    // were superposed.
    assert_eq!(server.metrics().backend_solves_total.get(), 2);
    assert_eq!(server.metrics().batch_affine_rescales_total.get(), 6);
    assert_eq!(server.metrics().batch_group_warm_items_total.get(), 1);

    server.shutdown();
}

#[test]
fn invalid_priority_header_is_a_400() {
    let server = start_server();
    let addr = server.addr();
    let response = one_shot(
        addr,
        "POST",
        "/v1/solve",
        &[("X-Priority", "urgent")],
        br#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6}"#,
    );
    assert_eq!(response.status, 400);
    assert!(response.body_str().contains("unknown priority"));
    server.shutdown();
}

/// Under a deliberately tiny queue, background requests shed first (429
/// with both retry hints), while interactive requests keep being
/// admitted up to the full capacity.
#[test]
fn background_sheds_before_interactive_under_overload() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_cap: 2, // background quota 1, interactive quota 2
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Occupy the single worker with a large cold solve so subsequent
    // pushes stay queued for the whole assertion sequence.
    let blocker = std::thread::spawn(move || {
        one_shot(
            addr,
            "POST",
            "/v1/solve",
            &[],
            br#"{"design": "gemmini", "tiers": 8, "lateral_cells": 48}"#,
        )
    });
    let wait_start = std::time::Instant::now();
    while server.metrics().inflight.get() == 0 {
        assert!(
            wait_start.elapsed() < Duration::from_secs(30),
            "worker never picked up the blocking solve"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Queue a background job (distinct body, so no coalescing).  It is
    // admitted (total 0 < quota 1) — use a 1ms deadline so the waiter
    // returns 504 immediately while the job stays queued.
    let queued_bg = one_shot(
        addr,
        "POST",
        "/v1/solve",
        &[("X-Priority", "background"), ("X-Deadline-Ms", "1")],
        br#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6, "area_budget_percent": 11}"#,
    );
    assert_eq!(queued_bg.status, 504, "admitted, then waiter deadline");

    // Second background job: total occupancy 1 >= background quota 1 →
    // shed with load-scaled jittered hints.
    let shed = one_shot(
        addr,
        "POST",
        "/v1/solve",
        &[("X-Priority", "background")],
        br#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6, "area_budget_percent": 12}"#,
    );
    assert_eq!(shed.status, 429);
    let retry_after: u32 = shed
        .header("retry-after")
        .expect("Retry-After on 429")
        .parse()
        .expect("integral seconds");
    assert!(retry_after >= 1);
    let retry_ms: u64 = shed
        .header("x-retry-after-ms")
        .expect("X-Retry-After-Ms on 429")
        .parse()
        .expect("integral milliseconds");
    // Background base is 2000ms scaled by fullness 0.5..2.0 and ±25%
    // jitter: must be comfortably above the interactive base.
    assert!(
        (500..=8000).contains(&retry_ms),
        "retry hint {retry_ms}ms out of the background band"
    );

    // Interactive still has headroom (total 1 < cap 2).
    let interactive = one_shot(
        addr,
        "POST",
        "/v1/solve",
        &[("X-Priority", "interactive"), ("X-Deadline-Ms", "1")],
        br#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6, "area_budget_percent": 13}"#,
    );
    assert_eq!(interactive.status, 504, "admitted, then waiter deadline");

    // Now the queue is truly full: even interactive sheds.
    let full = one_shot(
        addr,
        "POST",
        "/v1/solve",
        &[("X-Priority", "interactive")],
        br#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6, "area_budget_percent": 14}"#,
    );
    assert_eq!(full.status, 429);

    assert_eq!(server.metrics().class_shed[2].get(), 1, "background shed");
    assert_eq!(server.metrics().class_shed[0].get(), 1, "interactive shed");
    assert_eq!(server.metrics().class_admitted[2].get(), 1);
    assert!(server.metrics().class_admitted[0].get() >= 2);

    let blocked = blocker.join().expect("blocker thread");
    assert_eq!(blocked.status, 200, "body: {}", blocked.body_str());
    server.shutdown();
}
