//! Randomized property tests of the scaffolding core: physical
//! monotonicity of the flows and the pillar-efficiency model.
//!
//! Cases come from a deterministic [`Rng64`] stream per test; shrunk
//! counterexamples from the former proptest suite are kept explicit.

use tsc_core::beol::BeolProperties;
use tsc_core::pillars::uniform_routable_map;
use tsc_core::stack::{pillar_efficiency, solve, StackConfig};
use tsc_designs::gemmini;
use tsc_rng::Rng64;
use tsc_thermal::Heatsink;
use tsc_units::{Length, Ratio, ThermalConductivity};

#[test]
fn pillar_efficiency_is_a_proper_fraction() {
    let mut rng = Rng64::seed_from_u64(0x5001);
    for _ in 0..12 {
        let f = rng.gen_range_f64(0.001..0.95);
        let pitch_um = rng.gen_range_f64(0.5..20.0);
        for beol in [BeolProperties::conventional(), BeolProperties::scaffolded()] {
            let eta = pillar_efficiency(
                f,
                Length::from_micrometers(pitch_um),
                ThermalConductivity::new(105.0),
                &beol,
            );
            assert!(eta > 0.0 && eta <= 1.0, "eta = {eta}");
        }
    }
}

#[test]
fn scaffolded_gathering_beats_conventional() {
    let mut rng = Rng64::seed_from_u64(0x5002);
    for _ in 0..12 {
        let f = rng.gen_range_f64(0.01..0.6);
        let pitch_um = rng.gen_range_f64(1.0..12.0);
        // The thermal dielectric always improves (or preserves) the
        // gathering efficiency — its whole purpose.
        let pitch = Length::from_micrometers(pitch_um);
        let k = ThermalConductivity::new(105.0);
        let conv = pillar_efficiency(f, pitch, k, &BeolProperties::conventional());
        let scaf = pillar_efficiency(f, pitch, k, &BeolProperties::scaffolded());
        assert!(scaf >= conv - 1e-12, "conv {conv} vs scaf {scaf}");
    }
}

fn check_efficiency_falls_with_density(pitch_um: f64, f1: f64, factor: f64) {
    // Denser constellations are more gathering-limited. (Analytic
    // caveat: η ∝ 1/(1 + c·f·ln(1/√f)) is only monotone below
    // f = 1/e ≈ 0.37, so the property is stated on the sparse regime
    // where pillar budgets actually live.)
    let pitch = Length::from_micrometers(pitch_um);
    let k = ThermalConductivity::new(105.0);
    let beol = BeolProperties::conventional();
    let f2 = (f1 * factor).min(0.3);
    let e1 = pillar_efficiency(f1, pitch, k, &beol);
    let e2 = pillar_efficiency(f2, pitch, k, &beol);
    assert!(e2 <= e1 + 1e-12, "eta({f1}) = {e1}, eta({f2}) = {e2}");
}

#[test]
fn efficiency_falls_with_density() {
    // Shrunk counterexample found by the former proptest suite.
    check_efficiency_falls_with_density(1.0, 0.28623716942946037, 1.9406979565986522);
    let mut rng = Rng64::seed_from_u64(0x5003);
    for _ in 0..12 {
        check_efficiency_falls_with_density(
            rng.gen_range_f64(1.0..10.0),
            rng.gen_range_f64(0.01..0.15),
            rng.gen_range_f64(1.2..2.0),
        );
    }
}

#[test]
fn routable_map_hits_any_budget() {
    let mut rng = Rng64::seed_from_u64(0x5004);
    for _ in 0..12 {
        let pct = rng.gen_range_f64(0.5..40.0);
        let d = gemmini::design();
        let map = uniform_routable_map(&d, Ratio::from_percent(pct), 20);
        assert!(
            (map.mean() * 100.0 - pct).abs() < 0.1 * pct + 0.2,
            "budget {pct}%, mean {}",
            map.mean() * 100.0
        );
    }
}

#[test]
fn more_pillars_never_heat_the_stack() {
    let mut rng = Rng64::seed_from_u64(0x5005);
    for _ in 0..6 {
        let budget1 = rng.gen_range_f64(2.0..15.0);
        let extra = rng.gen_range_f64(1.05..2.0);
        let tiers = rng.gen_range(4..10);
        let d = gemmini::design();
        let solve_at = |pct: f64| {
            let cfg =
                StackConfig::uniform(tiers, BeolProperties::scaffolded(), Heatsink::two_phase())
                    .with_lateral_cells(8)
                    .with_pillar_map(uniform_routable_map(&d, Ratio::from_percent(pct), 8));
            solve(&d, &cfg)
                .expect("solves")
                .junction_temperature()
                .kelvin()
        };
        let t1 = solve_at(budget1);
        let t2 = solve_at(budget1 * extra);
        assert!(t2 <= t1 + 1e-6, "denser pillars heated: {t1} -> {t2}");
    }
}

#[test]
fn added_tiers_always_heat() {
    let mut rng = Rng64::seed_from_u64(0x5006);
    for _ in 0..6 {
        let tiers = rng.gen_range(2..9);
        let budget = rng.gen_range_f64(2.0..12.0);
        let d = gemmini::design();
        let solve_n = |n: usize| {
            let cfg = StackConfig::uniform(n, BeolProperties::scaffolded(), Heatsink::two_phase())
                .with_lateral_cells(8)
                .with_pillar_map(uniform_routable_map(&d, Ratio::from_percent(budget), 8));
            solve(&d, &cfg)
                .expect("solves")
                .junction_temperature()
                .kelvin()
        };
        assert!(solve_n(tiers + 1) > solve_n(tiers));
    }
}
