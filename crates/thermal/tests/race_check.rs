//! Solver-level race-check suite (`--features race-check` only):
//! forced-parallel CG/SOR/multigrid solves with the write-set checker
//! live, plus schedule-perturbation bitwise-identity checks.
//!
//! The process-global schedule seed and region counter are shared by
//! every test in this binary, so all tests serialize on one lock.

#![cfg(feature = "race-check")]

use std::sync::{Mutex, MutexGuard};
use tsc_thermal::race;
use tsc_thermal::{
    CgSolver, Heatsink, MgSolver, Precision, Preconditioner, Problem, Smoother, Solution,
    SolveError, SorSolver,
};
use tsc_units::{HeatFlux, Length, ThermalConductivity};

static GLOBALS: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Small layered stack: enough slabs for a four-band plan, a buried
/// low-k slab so bands carry different coefficients.
fn problem() -> Problem {
    let mut p = Problem::uniform_block(
        12,
        12,
        8,
        Length::from_millimeters(0.5),
        Length::from_millimeters(0.5),
        Length::from_micrometers(40.0),
        ThermalConductivity::new(148.0),
    );
    p.set_layer_conductivity(
        3,
        ThermalConductivity::new(1.5),
        ThermalConductivity::new(3.0),
    );
    p.set_bottom_heatsink(Heatsink::two_phase());
    p.add_uniform_top_flux(HeatFlux::from_watts_per_square_cm(120.0));
    p
}

/// Runs `solve` with the region counter reset and asserts the checker
/// actually audited parallel regions during the solve.
fn solve_checked(name: &str, solve: impl Fn(&Problem) -> Result<Solution, SolveError>) -> Solution {
    race::set_schedule_seed(None);
    race::reset_regions();
    let sol = solve(&problem()).unwrap_or_else(|e| panic!("{name}: solve failed: {e}"));
    assert!(
        race::regions_checked() > 0,
        "{name}: no parallel regions were audited — instrumentation did not run"
    );
    sol
}

fn field_bits(sol: &Solution) -> Vec<u64> {
    sol.temperatures.iter_kelvin().map(f64::to_bits).collect()
}

type SolveFn = fn(&Problem) -> Result<Solution, SolveError>;

#[test]
fn cg_parallel_solve_is_race_checked() {
    let _g = lock();
    let sol = solve_checked("cg", |p| {
        CgSolver::new()
            .with_threads(4)
            .with_parallel_crossover(0)
            .solve(p)
    });
    assert!(sol.temperatures.max_temperature().kelvin().is_finite());
}

#[test]
fn sor_parallel_solve_is_race_checked() {
    let _g = lock();
    let sol = solve_checked("sor", |p| {
        SorSolver::new()
            .with_threads(4)
            .with_parallel_crossover(0)
            .solve(p)
    });
    assert!(sol.temperatures.max_temperature().kelvin().is_finite());
}

#[test]
fn multigrid_parallel_solve_is_race_checked() {
    let _g = lock();
    let sol = solve_checked("mg", |p| {
        MgSolver::new()
            .with_threads(4)
            .with_parallel_crossover(0)
            .solve(p)
    });
    assert!(sol.temperatures.max_temperature().kelvin().is_finite());
}

#[test]
fn mg_preconditioned_cg_is_race_checked() {
    let _g = lock();
    let sol = solve_checked("cg+mg", |p| {
        CgSolver::new()
            .with_preconditioner(Preconditioner::Multigrid)
            .with_threads(4)
            .with_parallel_crossover(0)
            .solve(p)
    });
    assert!(sol.temperatures.max_temperature().kelvin().is_finite());
}

#[test]
fn mixed_precision_solve_is_race_checked() {
    let _g = lock();
    let sol = solve_checked("cg-mixed", |p| {
        CgSolver::new()
            .with_precision(Precision::Mixed)
            .with_threads(4)
            .with_parallel_crossover(0)
            .solve(p)
    });
    assert!(sol.temperatures.max_temperature().kelvin().is_finite());
}

#[test]
fn chebyshev_multigrid_solve_is_race_checked() {
    let _g = lock();
    let sol = solve_checked("cg+mg-cheb", |p| {
        CgSolver::new()
            .with_preconditioner(Preconditioner::Multigrid)
            .with_smoother(Smoother::Chebyshev)
            .with_threads(4)
            .with_parallel_crossover(0)
            .solve(p)
    });
    assert!(sol.temperatures.max_temperature().kelvin().is_finite());
}

/// Permuting the band execution order must not change a single bit of
/// the solution — the engine's order-independence claim, tested for
/// each solver family.
#[test]
fn permuted_schedules_are_bitwise_identical() {
    let _g = lock();
    let p = problem();
    let solvers: [(&str, SolveFn); 5] = [
        ("cg", |p| {
            CgSolver::new()
                .with_threads(4)
                .with_parallel_crossover(0)
                .solve(p)
        }),
        ("sor", |p| {
            SorSolver::new()
                .with_threads(4)
                .with_parallel_crossover(0)
                .solve(p)
        }),
        ("mg", |p| {
            MgSolver::new()
                .with_threads(4)
                .with_parallel_crossover(0)
                .solve(p)
        }),
        ("cg-mixed", |p| {
            CgSolver::new()
                .with_precision(Precision::Mixed)
                .with_threads(4)
                .with_parallel_crossover(0)
                .solve(p)
        }),
        ("cg+mg-cheb", |p| {
            CgSolver::new()
                .with_preconditioner(Preconditioner::Multigrid)
                .with_smoother(Smoother::Chebyshev)
                .with_threads(4)
                .with_parallel_crossover(0)
                .solve(p)
        }),
    ];
    for (name, solve) in solvers {
        race::set_schedule_seed(None);
        let baseline = field_bits(&solve(&p).unwrap_or_else(|e| panic!("{name}: {e}")));
        for seed in [5_u64, 17, 29] {
            race::set_schedule_seed(Some(seed));
            let perturbed = solve(&p);
            race::set_schedule_seed(None);
            let perturbed =
                field_bits(&perturbed.unwrap_or_else(|e| panic!("{name} seed {seed}: {e}")));
            assert_eq!(
                perturbed, baseline,
                "{name}: schedule seed {seed} changed the field"
            );
        }
    }
}
