//! Wire parasitics and delay-per-length models.
//!
//! Simple closed forms adequate for *ratio* analysis — the paper's delay
//! penalties are relative numbers (3 %, 7 %, 17 %), so what matters is
//! how delay responds to dielectric constant, wirelength and coupling
//! loading, not absolute picoseconds.

use crate::stack::Layer;
use tsc_units::{RelativePermittivity, VACUUM_PERMITTIVITY};

/// Copper resistivity at small dimensions (Ω·m). Bulk copper is
/// 1.7e-8 Ω·m; surface/grain scattering at 7 nm-class wire dimensions
/// roughly triples it.
pub const COPPER_RESISTIVITY: f64 = 5.0e-8;

/// Per-length resistance of a wire on `layer` (Ω/m): `ρ / (w·t)`.
///
/// ```
/// use tsc_pdk::{wire, MetalStack};
/// let s = MetalStack::asap7();
/// let r_m2 = wire::resistance_per_length(s.layer("M2").expect("M2"));
/// let r_m8 = wire::resistance_per_length(s.layer("M8").expect("M8"));
/// assert!(r_m2 > r_m8); // thin wires resist more
/// ```
#[must_use]
pub fn resistance_per_length(layer: &Layer) -> f64 {
    COPPER_RESISTIVITY / (layer.width.meters() * layer.thickness.meters())
}

/// Per-length capacitance of a wire on `layer` (F/m): two sidewall
/// (coupling) plates to neighbours at minimum spacing plus two
/// area plates to the layers above/below (spaced one layer thickness),
/// all in the given dielectric.
#[must_use]
pub fn capacitance_per_length(layer: &Layer, eps: RelativePermittivity) -> f64 {
    let e = eps.get() * VACUUM_PERMITTIVITY;
    let side = 2.0 * e * layer.thickness.meters() / layer.spacing().meters();
    let updown = 2.0 * e * layer.width.meters() / layer.thickness.meters();
    side + updown
}

/// Per-length delay of an optimally repeatered wire (s/m):
/// `d/L = 2·sqrt(R_buf·C_buf·r·c)` up to a constant — we use the
/// canonical `sqrt(r·c·R_buf·C_buf)` form with a 7 nm-class buffer
/// (R_buf = 2 kΩ, C_buf = 0.1 fF).
///
/// Key property: delay per length scales with `sqrt(c)`, so doubling the
/// dielectric constant costs `sqrt(2) ≈ 1.41×` on affected layers — the
/// basis of the paper's "2× ε is acceptable" argument.
#[must_use]
pub fn repeatered_delay_per_length(layer: &Layer, eps: RelativePermittivity) -> f64 {
    const R_BUF: f64 = 2.0e3;
    const C_BUF: f64 = 1.0e-16;
    let r = resistance_per_length(layer);
    let c = capacitance_per_length(layer, eps);
    2.0 * (R_BUF * C_BUF * r * c).sqrt()
}

/// Multiplicative delay factor from *extra* sidewall loading (dummy fill
/// or adjacent grounded pillar metal): extra capacitance fraction `dc`
/// slows a repeatered wire by `sqrt(1 + dc)`.
#[must_use]
pub fn coupling_slowdown(extra_cap_fraction: f64) -> f64 {
    assert!(
        extra_cap_fraction >= 0.0,
        "extra capacitance cannot be negative, got {extra_cap_fraction}"
    );
    (1.0 + extra_cap_fraction).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::MetalStack;

    fn m8() -> Layer {
        MetalStack::asap7().layer("M8").expect("M8").clone()
    }

    #[test]
    fn capacitance_linear_in_epsilon() {
        let layer = m8();
        let c2 = capacitance_per_length(&layer, RelativePermittivity::ULTRA_LOW_K);
        let c4 = capacitance_per_length(&layer, RelativePermittivity::THERMAL_DIELECTRIC);
        assert!((c4 / c2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn repeatered_delay_scales_sqrt_epsilon() {
        let layer = m8();
        let d2 = repeatered_delay_per_length(&layer, RelativePermittivity::ULTRA_LOW_K);
        let d4 = repeatered_delay_per_length(&layer, RelativePermittivity::THERMAL_DIELECTRIC);
        assert!((d4 / d2 - 2.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn wire_cap_is_order_pf_per_cm() {
        // Sanity: ~2 pF/cm is the canonical on-chip wire capacitance.
        let layer = m8();
        let c = capacitance_per_length(&layer, RelativePermittivity::ULTRA_LOW_K);
        let pf_per_cm = c * 1e12 / 100.0;
        assert!((0.2..20.0).contains(&pf_per_cm), "{pf_per_cm} pF/cm");
    }

    #[test]
    fn coupling_slowdown_baseline() {
        assert_eq!(coupling_slowdown(0.0), 1.0);
        assert!((coupling_slowdown(1.0) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_coupling_rejected() {
        let _ = coupling_slowdown(-0.1);
    }
}
