//! The engine dispatch layer: one enum over the three job kinds, with
//! the uniform step-sliced contract the scheduler drives:
//!
//! * [`Engine::next_work`] checks out an independent [`ShardWork`] unit
//!   (or `None` while the engine waits at a barrier / is finished);
//! * [`ShardWork::run`] executes lock-free on any worker thread;
//! * [`Engine::complete_shard`] returns the unit, advancing barriers
//!   and yielding progress events for streaming clients.

use tsc_bench::json::Json;

use crate::floorplan_job::{FloorplanJob, FloorplanShard};
use crate::pillars_job::{PillarJob, PillarShard};
use crate::spec::{JobKind, JobSpec};
use crate::sweep_job::{SweepJob, SweepShard};

/// A typed progress snapshot for status responses.
#[derive(Debug, Clone)]
pub struct Progress {
    /// Engine phase label.
    pub phase: &'static str,
    /// Completed fraction in `[0, 1]`.
    pub fraction: f64,
    /// Best cost so far (`floorplan_sa` only).
    pub best_cost: Option<f64>,
    /// Completed rounds / shards.
    pub round: usize,
    /// Total rounds / shards.
    pub rounds: usize,
    /// Fresh evaluations performed.
    pub evals: u64,
    /// Evaluations served from the dedupe memo.
    pub dedup_hits: u64,
}

impl Progress {
    /// The status-document form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let doc = Json::object()
            .field("phase", self.phase)
            .field("fraction", self.fraction.clamp(0.0, 1.0))
            .field("round", self.round)
            .field("rounds", self.rounds)
            .field("evals", self.evals as f64)
            .field("dedup_hits", self.dedup_hits as f64);
        match self.best_cost {
            Some(c) => doc.field("best_cost", c),
            None => doc,
        }
    }
}

/// One checked-out work unit. Owns everything it needs, so workers run
/// it without touching the job table.
#[derive(Debug)]
pub enum ShardWork {
    /// A tempering replica's move round.
    Floorplan(FloorplanShard),
    /// A sweep baseline or point solve.
    Sweep(SweepShard),
    /// A density bisection or an escalation attempt.
    Pillar(PillarShard),
}

impl ShardWork {
    /// Executes the unit (lock-free; call off the table lock).
    pub fn run(&mut self) {
        match self {
            Self::Floorplan(s) => s.run(),
            Self::Sweep(s) => s.run(),
            Self::Pillar(s) => s.run(),
        }
    }
}

/// A job engine: the step-sliced state machine behind one `/v1/jobs`
/// entry.
#[derive(Debug)]
pub enum Engine {
    /// Parallel-tempered floorplanning.
    Floorplan(FloorplanJob),
    /// The Fig. 12b sweep.
    Sweep(SweepJob),
    /// Sec. IIIA pillar placement.
    Pillar(PillarJob),
}

impl Engine {
    /// Builds the engine a spec asks for (resuming from the spec's
    /// checkpoint when present).
    ///
    /// # Errors
    ///
    /// Returns a message suitable for a 400 response.
    pub fn from_spec(spec: &JobSpec) -> Result<Self, String> {
        Ok(match spec.kind {
            JobKind::FloorplanSa => Self::Floorplan(FloorplanJob::from_spec(spec)?),
            JobKind::DielectricSweep => Self::Sweep(SweepJob::from_spec(spec)?),
            JobKind::PillarPlace => Self::Pillar(PillarJob::from_spec(spec)?),
        })
    }

    /// The engine's kind.
    #[must_use]
    pub fn kind(&self) -> JobKind {
        match self {
            Self::Floorplan(_) => JobKind::FloorplanSa,
            Self::Sweep(_) => JobKind::DielectricSweep,
            Self::Pillar(_) => JobKind::PillarPlace,
        }
    }

    /// Checks out the next work unit, if one is ready.
    pub fn next_work(&mut self) -> Option<ShardWork> {
        match self {
            Self::Floorplan(job) => job.next_work().map(ShardWork::Floorplan),
            Self::Sweep(job) => job.next_work().map(ShardWork::Sweep),
            Self::Pillar(job) => job.next_work().map(ShardWork::Pillar),
        }
    }

    /// Returns a completed unit; yields progress events. A unit of the
    /// wrong kind is dropped (the table pairs units with their entry,
    /// so this only guards against scheduler bugs).
    pub fn complete_shard(&mut self, work: ShardWork) -> Vec<Json> {
        match (self, work) {
            (Self::Floorplan(job), ShardWork::Floorplan(s)) => job.complete_shard(s),
            (Self::Sweep(job), ShardWork::Sweep(s)) => job.complete_shard(s),
            (Self::Pillar(job), ShardWork::Pillar(s)) => job.complete_shard(s),
            _ => Vec::new(),
        }
    }

    /// `true` once the engine has a result.
    #[must_use]
    pub fn is_done(&self) -> bool {
        match self {
            Self::Floorplan(job) => job.is_done(),
            Self::Sweep(job) => job.is_done(),
            Self::Pillar(job) => job.is_done(),
        }
    }

    /// Fatal error, if the engine failed.
    #[must_use]
    pub fn failed(&self) -> Option<&str> {
        match self {
            Self::Floorplan(_) => None,
            Self::Sweep(job) => job.failed(),
            Self::Pillar(job) => job.failed(),
        }
    }

    /// Progress snapshot.
    #[must_use]
    pub fn progress(&self) -> Progress {
        match self {
            Self::Floorplan(job) => job.progress(),
            Self::Sweep(job) => job.progress(),
            Self::Pillar(job) => job.progress(),
        }
    }

    /// The last-barrier checkpoint (resume token).
    #[must_use]
    pub fn checkpoint(&self) -> Json {
        match self {
            Self::Floorplan(job) => job.checkpoint(),
            Self::Sweep(job) => job.checkpoint(),
            Self::Pillar(job) => job.checkpoint(),
        }
    }

    /// The result document, once done.
    #[must_use]
    pub fn result(&self) -> Option<Json> {
        match self {
            Self::Floorplan(job) => job.result(),
            Self::Sweep(job) => job.result(),
            Self::Pillar(job) => job.result(),
        }
    }
}
