//! The three evaluated designs of Sec. IIIC, rebuilt from the paper's
//! published floorplans, memory sizes and power maps (Fig. 8):
//!
//! * [`gemmini`] — a Gemmini-class systolic-array DNN accelerator
//!   (16×16 PEs, 256 kB scratchpad, 4 MB interleaved 3D SRAM LLC);
//! * [`rocket`] — a Rocket-class in-order RISC-V core (pipelined PU,
//!   16 kB 4-way I/D caches, PTW, FPU);
//! * [`fujitsu`] — the preliminary Fujitsu Research accelerator scaled
//!   ~100× (160×160 PEs, 54 MB scratchpad, 351 MB LLC), built by tiling
//!   the MAC pattern exactly as the paper repeats its single-MAC pillar
//!   pattern across the array;
//! * [`sram`] — an analytical SRAM area/energy model (the FinCACTI
//!   substitute) used to size cache macros.
//!
//! The RTL itself is not reproduced: the thermal problem is fully
//! determined by floorplan geometry and the power-density map, both of
//! which Fig. 8 publishes. [`Design`] carries exactly that.

// No crate outside tsc-thermal may contain `unsafe` (enforced
// statically here and by `cargo run -p tsc-analyze`).
#![forbid(unsafe_code)]

mod design;
pub mod fujitsu;
pub mod gemmini;
pub mod rocket;
pub mod sram;

pub use design::{Design, DesignUnit, HeatSource};
