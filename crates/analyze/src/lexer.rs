//! A minimal Rust lexer for the lint pass.
//!
//! This is not a full Rust parser — the rules in [`crate::rules`] only
//! need a *token stream with line numbers* plus the comment text, so the
//! lexer's one job is to never confuse the things that trip naive
//! `grep`-style linting: string literals (including raw and byte
//! strings), char literals vs. lifetimes, nested block comments, and
//! float vs. integer vs. range punctuation (`1.0` vs `1..2`).
//!
//! Comments are captured (with their line numbers) rather than
//! discarded: the `SAFETY:` rule and the `tsc-analyze: allow(...)`
//! directive parser both read them.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `static`, `HashMap`, …).
    Ident,
    /// Floating-point literal (`1.0`, `1e5`, `2.5e-3`, `1f64`).
    Float,
    /// Integer literal (`42`, `0xff`, `1_000`).
    Int,
    /// String literal of any flavour (contents dropped).
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation, possibly multi-character (`==`, `::`, `+=`, `{`).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

/// One comment (line, block or doc) with its starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
}

/// Lexer output: the token stream plus every comment encountered.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Unterminated constructs are
/// tolerated (the lexer consumes to end of input) — the lint must never
/// panic on weird-but-compiling source, and fixture snippets need not be
/// complete files.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.char_indices().collect(),
        src,
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    chars: Vec<(usize, char)>,
    src: &'a str,
    pos: usize,
    line: usize,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.chars.len() {
            let (_, c) = self.chars[self.pos];
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'b' if self.peek(1) == Some('"') => {
                    self.pos += 1;
                    self.string();
                }
                'b' if self.peek(1) == Some('r') && matches!(self.peek(2), Some('"' | '#')) => {
                    self.pos += 1;
                    self.raw_string();
                }
                'r' if matches!(self.peek(1), Some('"')) => self.raw_string(),
                'r' if self.peek(1) == Some('#') && self.raw_string_ahead() => self.raw_string(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    /// Distinguishes a raw string `r#"…"#` from a raw identifier
    /// `r#ident` when sitting on the `r`.
    fn raw_string_ahead(&self) -> bool {
        let mut i = 1;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let begin = self.chars[self.pos].0;
        while self.pos < self.chars.len() && self.chars[self.pos].1 != '\n' {
            self.pos += 1;
        }
        let end = self
            .chars
            .get(self.pos)
            .map_or(self.src.len(), |&(off, _)| off);
        self.out.comments.push(Comment {
            text: self.src[begin..end].to_string(),
            line: start_line,
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let begin = self.chars[self.pos].0;
        self.pos += 2;
        let mut depth = 1_usize;
        while self.pos < self.chars.len() && depth > 0 {
            match (self.chars[self.pos].1, self.peek(1)) {
                ('/', Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                ('*', Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                ('\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let end = self
            .chars
            .get(self.pos)
            .map_or(self.src.len(), |&(off, _)| off);
        self.out.comments.push(Comment {
            text: self.src[begin..end].to_string(),
            line: start_line,
        });
    }

    fn string(&mut self) {
        let line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.chars.len() {
            match self.chars[self.pos].1 {
                '\\' => self.pos += 2,
                '"' => {
                    self.pos += 1;
                    break;
                }
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Str, String::new(), line);
    }

    fn raw_string(&mut self) {
        let line = self.line;
        self.pos += 1; // the `r`
        let mut hashes = 0_usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        'outer: while self.pos < self.chars.len() {
            match self.chars[self.pos].1 {
                '"' => {
                    // Need `hashes` trailing '#' to close.
                    for i in 1..=hashes {
                        if self.peek(i) != Some('#') {
                            self.pos += 1;
                            continue 'outer;
                        }
                    }
                    self.pos += 1 + hashes;
                    break;
                }
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Str, String::new(), line);
    }

    /// `'a'` (char) vs `'a` (lifetime): a lifetime is a quote followed by
    /// an identifier **not** closed by another quote.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let is_lifetime = match self.peek(1) {
            Some(c) if c.is_alphabetic() || c == '_' => {
                let mut i = 2;
                while self
                    .peek(i)
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    i += 1;
                }
                self.peek(i) != Some('\'')
            }
            _ => false,
        };
        if is_lifetime {
            let begin = self.chars[self.pos].0;
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.pos += 1;
            }
            let end = self
                .chars
                .get(self.pos)
                .map_or(self.src.len(), |&(off, _)| off);
            self.push(TokenKind::Lifetime, self.src[begin..end].to_string(), line);
        } else {
            self.pos += 1; // opening quote
            while self.pos < self.chars.len() {
                match self.chars[self.pos].1 {
                    '\\' => self.pos += 2,
                    '\'' => {
                        self.pos += 1;
                        break;
                    }
                    _ => self.pos += 1,
                }
            }
            self.push(TokenKind::Char, String::new(), line);
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let begin = self.chars[self.pos].0;
        let mut is_float = false;
        // Radix prefixes are always integers.
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.pos += 1;
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.pos += 1;
            }
            // Fractional part: a dot NOT starting a range (`1..2`) or a
            // method/field access (`1.max(2)`).
            if self.peek(0) == Some('.')
                && !matches!(self.peek(1), Some(c) if c.is_alphabetic() || c == '_' || c == '.')
            {
                is_float = true;
                self.pos += 1;
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.pos += 1;
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some('e' | 'E')) {
                let mut i = 1;
                if matches!(self.peek(1), Some('+' | '-')) {
                    i = 2;
                }
                if self.peek(i).is_some_and(|c| c.is_ascii_digit()) {
                    is_float = true;
                    self.pos += i;
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        self.pos += 1;
                    }
                }
            }
            // Type suffix.
            if self.suffix_ahead("f64") || self.suffix_ahead("f32") {
                is_float = true;
                self.pos += 3;
            } else {
                while self
                    .peek(0)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                {
                    self.pos += 1;
                }
            }
        }
        let end = self
            .chars
            .get(self.pos)
            .map_or(self.src.len(), |&(off, _)| off);
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, self.src[begin..end].to_string(), line);
    }

    fn suffix_ahead(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c))
            && !self
                .peek(s.len())
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
    }

    fn ident(&mut self) {
        let line = self.line;
        let begin = self.chars[self.pos].0;
        // Raw identifier `r#type`.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.pos += 2;
        }
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.pos += 1;
        }
        let end = self
            .chars
            .get(self.pos)
            .map_or(self.src.len(), |&(off, _)| off);
        self.push(TokenKind::Ident, self.src[begin..end].to_string(), line);
    }

    fn punct(&mut self) {
        let line = self.line;
        let c = self.chars[self.pos].1;
        let two: Option<&str> = match (c, self.peek(1)) {
            ('=', Some('=')) => Some("=="),
            ('!', Some('=')) => Some("!="),
            ('<', Some('=')) => Some("<="),
            ('>', Some('=')) => Some(">="),
            ('+', Some('=')) => Some("+="),
            ('-', Some('=')) => Some("-="),
            ('*', Some('=')) => Some("*="),
            ('/', Some('=')) => Some("/="),
            (':', Some(':')) => Some("::"),
            ('-', Some('>')) => Some("->"),
            ('=', Some('>')) => Some("=>"),
            ('.', Some('.')) => Some(".."),
            ('&', Some('&')) => Some("&&"),
            ('|', Some('|')) => Some("||"),
            _ => None,
        };
        if let Some(t) = two {
            self.pos += 2;
            self.push(TokenKind::Punct, t.to_string(), line);
        } else {
            self.pos += 1;
            self.push(TokenKind::Punct, c.to_string(), line);
        }
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize) {
        self.out.tokens.push(Token { kind, text, line });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn floats_vs_ints_vs_ranges() {
        let t = kinds("1.0 1e5 2.5e-3 1f64 42 0xff 1..2 1_000");
        assert_eq!(t[0].0, TokenKind::Float);
        assert_eq!(t[1].0, TokenKind::Float);
        assert_eq!(t[2].0, TokenKind::Float);
        assert_eq!(t[3].0, TokenKind::Float);
        assert_eq!(t[4].0, TokenKind::Int);
        assert_eq!(t[5].0, TokenKind::Int);
        assert_eq!(t[6], (TokenKind::Int, "1".into()));
        assert_eq!(t[7], (TokenKind::Punct, "..".into()));
        assert_eq!(t[8], (TokenKind::Int, "2".into()));
        assert_eq!(t[9].0, TokenKind::Int);
    }

    #[test]
    fn strings_hide_their_contents() {
        let lexed = lex(r##"let s = "unsafe == 1.0"; let r = r#"static mut"#;"##);
        assert!(lexed
            .tokens
            .iter()
            .all(|t| t.text != "unsafe" && t.text != "static"));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            2
        );
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokenKind::Lifetime && s == "'a"));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let lexed = lex("// first\nlet x = 1; // trailing\n/* block\nspans */\n");
        assert_eq!(lexed.comments.len(), 3);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.comments[2].line, 3);
        assert!(lexed.comments[2].text.contains("spans"));
    }

    #[test]
    fn nested_block_comments_terminate() {
        let lexed = lex("/* outer /* inner */ still outer */ let x = 1;");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.text == "x"));
    }

    #[test]
    fn line_numbers_advance_inside_strings() {
        let lexed = lex("let a = \"two\nlines\";\nlet b = 2;");
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }
}
