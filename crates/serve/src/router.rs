//! The shard router: a thin HTTP tier that fronts N `tsc-serve`
//! backends, routing heavy requests by **operator affinity** over a
//! consistent-hash ring so each design's warm `SolveContext`s
//! concentrate on one shard.
//!
//! * `/v1/solve`, `/v1/flow`, `/v1/pillars` — the body is parsed just
//!   enough to compute [`crate::api::ApiJob::affinity_key`]; the request
//!   is then forwarded verbatim to the owning shard, with a bounded,
//!   jitter-backed retry budget on connect failure and retryable 5xx.
//!   Placement uses consistent hashing **with bounded loads**
//!   ([`crate::ring::BoundedTable`]): a key whose ring-home shard is
//!   already over its fair share of distinct hot keys walks forward to
//!   the next under-loaded shard and sticks there, so a handful of hot
//!   designs cannot pile onto one shard while its neighbours idle.
//! * `/v1/batch` — the envelope is split into per-shard sub-batches by
//!   item affinity and the per-item results are merged back in envelope
//!   order; a dead shard fails only its own items.
//! * `/v1/jobs` — submission routes by a hash of the spec body and the
//!   202 response's job id is recorded in a sticky id → shard map;
//!   status/cancel/checkpoint forward to the owning shard (with a
//!   broadcast probe as fallback after a router restart), and `/events`
//!   streams tunnel byte-for-byte like transient sessions.
//! * `/metrics` — every healthy shard's exposition is fetched, parsed
//!   ([`tsc_bench::prom::parse_exposition`]) and summed by series
//!   (quantile gauges are dropped: bucket counts sum, quantiles do not),
//!   with the router's own `tsc_router_*` series appended.
//! * `/healthz` probes run on a background thread: a failing shard is
//!   ejected from routing and readmitted when it answers again.
//!
//! Degradation is typed, never hung: exhausted retries and an empty
//! ring answer 503 + `Retry-After`; a backend that responds with bytes
//! that do not parse as HTTP answers 502 and is never retried (the
//! request may have executed — replaying it could double work).

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use tsc_bench::httpc::{ClientError, HttpClient, HttpResponse};
use tsc_bench::json::Json;
use tsc_bench::prom::parse_exposition;

use crate::api::{fnv1a, ApiJob, TransientRequest, MAX_BATCH_ITEMS};
use crate::http::{Limits, Request, Response};
use crate::locks::{rank, RankedMutex};
use crate::metrics::{Counter, Gauge};
use crate::ring::{BoundedTable, DEFAULT_EXPANSION, DEFAULT_TABLE_CAPACITY};
use crate::server::{drive_connection, ConnectionHandler};

/// How a request picks its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Affinity {
    /// Consistent hash on the operator-affinity key (the default): a
    /// design's solves keep hitting the shard that holds its warm
    /// contexts.
    Hash,
    /// Uniform random over healthy shards — the A/B baseline that shows
    /// what affinity buys; context hit rates collapse as N grows.
    Random,
}

impl Affinity {
    /// Parse a `--affinity` flag value.
    ///
    /// # Errors
    ///
    /// The unrecognised value.
    pub fn parse(value: &str) -> Result<Affinity, String> {
        match value.to_ascii_lowercase().as_str() {
            "hash" => Ok(Affinity::Hash),
            "random" => Ok(Affinity::Random),
            other => Err(format!("unknown affinity {other:?} (hash | random)")),
        }
    }
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Port to bind on 127.0.0.1; 0 picks an ephemeral port.
    pub port: u16,
    /// Backend `host:port` addresses (spawned or external).
    pub backends: Vec<String>,
    /// Virtual nodes per shard on the hash ring.
    pub replicas: usize,
    /// Total attempts per upstream request (first try + retries).
    pub retry_budget: usize,
    /// Health-probe cadence.
    pub probe_interval: Duration,
    /// Shard selection policy.
    pub affinity: Affinity,
    /// Upstream connect timeout.
    pub connect_timeout: Duration,
    /// Upstream end-to-end response deadline (per attempt).
    pub upstream_deadline: Duration,
    /// Client-side parser caps (same meaning as the server's).
    pub limits: Limits,
    /// Close idle client connections after this long.
    pub idle_timeout: Duration,
    /// Whether `POST /v1/shutdown` is honoured and propagated.
    pub allow_shutdown: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            port: 0,
            backends: Vec::new(),
            replicas: crate::ring::DEFAULT_REPLICAS,
            retry_budget: 3,
            probe_interval: Duration::from_millis(200),
            affinity: Affinity::Hash,
            connect_timeout: Duration::from_millis(500),
            upstream_deadline: Duration::from_secs(120),
            limits: Limits::default(),
            idle_timeout: Duration::from_secs(10),
            allow_shutdown: true,
        }
    }
}

/// The router's own counters, rendered under the `tsc_router_*` prefix
/// and appended to the aggregated shard exposition.
#[derive(Debug, Default)]
pub struct RouterMetrics {
    pub requests_total: Counter,
    pub retries_total: Counter,
    pub upstream_errors_total: Counter,
    pub bad_gateway_total: Counter,
    pub no_backend_total: Counter,
    pub shard_ejections_total: Counter,
    pub shard_readmissions_total: Counter,
    pub batch_subbatches_total: Counter,
    pub rebalanced_keys_total: Counter,
    pub transient_tunnels_total: Counter,
    pub job_stickies_total: Counter,
    pub job_broadcasts_total: Counter,
    pub job_event_tunnels_total: Counter,
    pub healthy_shards: Gauge,
    pub shards: Gauge,
}

impl RouterMetrics {
    fn render(&self) -> String {
        let counters: [(&str, &str, u64); 14] = [
            (
                "tsc_router_requests_total",
                "Client requests handled by the router.",
                self.requests_total.get(),
            ),
            (
                "tsc_router_retries_total",
                "Upstream attempts beyond the first, across all requests.",
                self.retries_total.get(),
            ),
            (
                "tsc_router_upstream_errors_total",
                "Upstream attempts that failed at the transport (connect/read/timeout).",
                self.upstream_errors_total.get(),
            ),
            (
                "tsc_router_bad_gateway_total",
                "Responses answered 502 because a backend returned malformed HTTP.",
                self.bad_gateway_total.get(),
            ),
            (
                "tsc_router_no_backend_total",
                "Responses answered 503 because no healthy backend remained.",
                self.no_backend_total.get(),
            ),
            (
                "tsc_router_shard_ejections_total",
                "Shards ejected from routing after a failed health probe.",
                self.shard_ejections_total.get(),
            ),
            (
                "tsc_router_shard_readmissions_total",
                "Ejected shards readmitted after a passing health probe.",
                self.shard_readmissions_total.get(),
            ),
            (
                "tsc_router_batch_subbatches_total",
                "Per-shard sub-batches fanned out by /v1/batch splitting.",
                self.batch_subbatches_total.get(),
            ),
            (
                "tsc_router_rebalanced_keys_total",
                "Affinity keys placed off their ring-home shard by the bounded-load cap.",
                self.rebalanced_keys_total.get(),
            ),
            (
                "tsc_router_transient_tunnels_total",
                "Transient sessions tunnelled byte-for-byte to their sticky shard.",
                self.transient_tunnels_total.get(),
            ),
            (
                "tsc_router_job_stickies_total",
                "Job ids recorded in the sticky id-to-shard affinity map.",
                self.job_stickies_total.get(),
            ),
            (
                "tsc_router_job_broadcasts_total",
                "Job lookups that probed every shard because the id was not in the sticky map.",
                self.job_broadcasts_total.get(),
            ),
            (
                "tsc_router_job_event_tunnels_total",
                "Job event streams tunnelled byte-for-byte to the owning shard.",
                self.job_event_tunnels_total.get(),
            ),
            (
                "tsc_router_lock_poisoned_total",
                "Router-process mutex guards recovered from a poisoned state.",
                crate::locks::poisoned_total(),
            ),
        ];
        let mut out = String::with_capacity(1024);
        for (name, help, value) in counters {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        for (name, help, value) in [
            (
                "tsc_router_healthy_shards",
                "Backends currently passing health probes.",
                self.healthy_shards.get(),
            ),
            (
                "tsc_router_shards",
                "Backends configured behind the router.",
                self.shards.get(),
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        }
        out
    }
}

struct RouterShared {
    stop: AtomicBool,
    shutdown_flag: RankedMutex<bool>,
    shutdown_cv: Condvar,
    config: RouterConfig,
    ring: crate::ring::HashRing,
    /// Bounded-load placement table: sticky key → shard assignments
    /// capped at ~1.25× each shard's fair share of distinct keys.
    table: RankedMutex<BoundedTable>,
    /// Sticky job-id → shard affinity: status/cancel/checkpoint/events
    /// for a job must reach the shard that admitted it.  Bounded at
    /// [`JOB_AFFINITY_CAP`]; a missing id falls back to a broadcast
    /// probe, so eviction costs latency, never correctness.
    jobs: RankedMutex<HashMap<u64, usize>>,
    healthy: Vec<AtomicBool>,
    metrics: RouterMetrics,
    addr: SocketAddr,
    jitter_state: AtomicU64,
}

/// Most job ids the router remembers shard affinity for.  Shards evict
/// finished jobs on a TTL anyway, so the map only needs to cover the
/// live working set; overflow evicts an arbitrary entry and the next
/// lookup for it re-resolves by broadcast.
const JOB_AFFINITY_CAP: usize = 4096;

/// How a request selects its shard.
#[derive(Debug, Clone, Copy)]
enum RouteKey {
    /// Operator-affinity key: bounded-load consistent hashing.
    Affinity(u64),
    /// Any healthy shard (static content) — never touches the sticky
    /// table, so per-request spreading cannot pollute it.
    AnyHealthy,
}

impl RouterShared {
    fn healthy_count(&self) -> usize {
        self.healthy
            .iter()
            .filter(|flag| flag.load(Ordering::Relaxed))
            .count()
    }

    fn is_healthy(&self, shard: usize) -> bool {
        self.healthy
            .get(shard)
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// Mark a shard unhealthy after a transport failure — the prober
    /// readmits it once it answers `/healthz` again.
    fn eject(&self, shard: usize) {
        if let Some(flag) = self.healthy.get(shard) {
            if flag.swap(false, Ordering::Relaxed) {
                self.metrics.shard_ejections_total.inc();
                self.metrics.healthy_shards.set(self.healthy_count() as i64);
            }
        }
    }

    fn jitter_unit(&self) -> f64 {
        let mut z = self
            .jitter_state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Pick the shard for `key` under the configured affinity policy,
    /// optionally excluding a shard that just failed.
    ///
    /// First placements go through the bounded-load table and stick;
    /// retry picks (`exclude` set) are a *transient* ring walk that
    /// leaves the table alone — a timeout on a healthy shard must not
    /// permanently migrate the key and strand its warm contexts.
    fn pick_shard(&self, key: RouteKey, exclude: Option<usize>) -> Option<usize> {
        let healthy = |shard: usize| self.is_healthy(shard) && Some(shard) != exclude;
        let affinity_key = match (key, self.config.affinity) {
            (RouteKey::Affinity(k), Affinity::Hash) => k,
            _ => return self.pick_uniform(&healthy),
        };
        if exclude.is_some() {
            return self.ring.route(affinity_key, healthy);
        }
        let mut table = self.table.lock();
        let (shard, overflowed) = table.route(&self.ring, affinity_key, |s| self.is_healthy(s))?;
        if overflowed {
            self.metrics.rebalanced_keys_total.inc();
        }
        Some(shard)
    }

    /// Uniform pick over healthy shards — the `Random` A/B policy, and
    /// the path for unkeyed (static) requests under any policy.
    fn pick_uniform(&self, healthy: &impl Fn(usize) -> bool) -> Option<usize> {
        let candidates: Vec<usize> = (0..self.config.backends.len())
            .filter(|s| healthy(*s))
            .collect();
        if candidates.is_empty() {
            None
        } else {
            let i = (self.jitter_unit() * candidates.len() as f64) as usize;
            Some(candidates[i.min(candidates.len() - 1)])
        }
    }

    /// Record that `shard` owns job `id`, evicting an arbitrary entry
    /// when the map is at capacity (the victim re-resolves by broadcast
    /// on its next lookup).
    fn remember_job(&self, id: u64, shard: usize) {
        let mut jobs = self.jobs.lock();
        if jobs.len() >= JOB_AFFINITY_CAP && !jobs.contains_key(&id) {
            if let Some(victim) = jobs.keys().next().copied() {
                jobs.remove(&victim);
            }
        }
        if jobs.insert(id, shard).is_none() {
            self.metrics.job_stickies_total.inc();
        }
    }

    /// Resolve the shard owning job `id`: the sticky map if it still
    /// points at a healthy shard, else a broadcast `GET /v1/jobs/{id}`
    /// probe across healthy shards (a router restart loses the map; the
    /// jobs themselves live on the shards).
    fn job_owner(&self, id: u64) -> Option<usize> {
        let jobs = self.jobs.lock();
        let known = jobs.get(&id).copied();
        drop(jobs);
        if let Some(shard) = known {
            if self.is_healthy(shard) {
                return Some(shard);
            }
        }
        self.metrics.job_broadcasts_total.inc();
        let path = format!("/v1/jobs/{id:016x}");
        for shard in 0..self.config.backends.len() {
            if !self.is_healthy(shard) {
                continue;
            }
            let probe =
                upstream_request(self, shard, "GET", &path, &[], b"", Duration::from_secs(5));
            if probe.map(|r| r.status == 200).unwrap_or(false) {
                self.remember_job(id, shard);
                return Some(shard);
            }
        }
        None
    }

    fn signal_shutdown(&self) {
        let mut flagged = self.shutdown_flag.lock();
        *flagged = true;
        drop(flagged);
        self.shutdown_cv.notify_all();
    }
}

/// Connect to a backend given as a `host:port` string.
fn connect_backend(addr: &str, timeout: Duration) -> Result<HttpClient, ClientError> {
    let addr: SocketAddr = addr.parse().map_err(|_| ClientError::Io)?;
    HttpClient::connect(addr, timeout)
}

/// One upstream round trip to `shard`: connect, send, read.
fn upstream_request(
    shared: &RouterShared,
    shard: usize,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    deadline: Duration,
) -> Result<HttpResponse, ClientError> {
    let addr = &shared.config.backends[shard];
    let mut client = connect_backend(addr, shared.config.connect_timeout)?.with_deadline(deadline);
    client.request(method, path, headers, body)
}

/// The outcome of a routed upstream request.
enum ForwardOutcome {
    /// A backend answered (any status — 4xx/5xx pass through).
    Upstream(HttpResponse),
    /// Retries exhausted or no healthy backend: typed 503.
    Unavailable,
    /// A backend produced bytes that do not parse as HTTP: typed 502.
    BadGateway,
}

/// Forward one request to the shard owning `key`, retrying transport
/// failures and retryable 5xx on other shards within the retry budget,
/// with jittered exponential backoff between attempts.
fn forward(
    shared: &RouterShared,
    key: RouteKey,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> ForwardOutcome {
    let budget = shared.config.retry_budget.max(1);
    let mut exclude: Option<usize> = None;
    for attempt in 0..budget {
        let Some(shard) = shared.pick_shard(key, exclude) else {
            // Nothing healthy (or only the excluded failure remains).
            shared.metrics.no_backend_total.inc();
            return ForwardOutcome::Unavailable;
        };
        if attempt > 0 {
            shared.metrics.retries_total.inc();
            // 25ms, 50ms, 100ms... ±50% jitter, capped well below any
            // sane request deadline.
            let base = 25u64.saturating_mul(1 << (attempt - 1).min(4));
            let jittered = (base as f64 * (0.5 + shared.jitter_unit())).round() as u64;
            thread::sleep(Duration::from_millis(jittered.clamp(5, 400)));
        }
        match upstream_request(
            shared,
            shard,
            method,
            path,
            headers,
            body,
            shared.config.upstream_deadline,
        ) {
            Ok(response) if retryable_status(response.status) => {
                // The backend is alive but refusing (shutting down,
                // internal error): try another shard for this request,
                // but leave health to the prober.
                exclude = Some(shard);
                if attempt + 1 == budget {
                    return ForwardOutcome::Upstream(response);
                }
            }
            Ok(response) => return ForwardOutcome::Upstream(response),
            Err(ClientError::Malformed) => {
                // The backend spoke, but not HTTP.  The request may have
                // executed — never replay it.
                shared.metrics.bad_gateway_total.inc();
                return ForwardOutcome::BadGateway;
            }
            Err(ClientError::Io) => {
                // Connect/read failure: the shard is gone; eject it now
                // rather than waiting a probe interval.
                shared.metrics.upstream_errors_total.inc();
                shared.eject(shard);
                exclude = Some(shard);
            }
            Err(ClientError::Timeout) => {
                // Slow is not dead: retry elsewhere, let probes decide
                // health.
                shared.metrics.upstream_errors_total.inc();
                exclude = Some(shard);
            }
        }
    }
    shared.metrics.no_backend_total.inc();
    ForwardOutcome::Unavailable
}

/// 5xx statuses worth retrying on another shard.  504 passes through:
/// it already consumed the client's deadline waiting, and replaying a
/// full solve elsewhere would double the damage.
fn retryable_status(status: u16) -> bool {
    matches!(status, 500 | 502 | 503)
}

/// Convert an upstream response to a client response, preserving the
/// backpressure headers.
fn passthrough(upstream: &HttpResponse) -> Response {
    let mut response = Response::json(upstream.status, upstream.body_string());
    if let Some(secs) = upstream
        .header("retry-after")
        .and_then(|v| v.parse::<u32>().ok())
    {
        response = response.with_retry_after(secs);
    }
    if let Some(ms) = upstream.header("x-retry-after-ms") {
        response = response.with_header("X-Retry-After-Ms", ms.to_string());
    }
    response
}

fn unavailable_response() -> Response {
    Response::error(503, "no healthy backend (retries exhausted)").with_retry_after(1)
}

fn bad_gateway_response() -> Response {
    Response::error(502, "bad gateway: backend returned malformed HTTP")
}

/// Headers forwarded from the client to the shard.
fn forwarded_headers(request: &Request) -> Vec<(String, String)> {
    let mut headers = Vec::new();
    for name in ["x-priority", "x-deadline-ms"] {
        if let Some(value) = request.header(name) {
            headers.push((name.to_string(), value.to_string()));
        }
    }
    headers
}

fn as_header_refs(headers: &[(String, String)]) -> Vec<(&str, &str)> {
    headers
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_str()))
        .collect()
}

/// A running router.
pub struct Router {
    shared: Arc<RouterShared>,
    acceptor: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl Router {
    /// Bind and start routing.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, or an empty backend list.
    pub fn start(config: RouterConfig) -> std::io::Result<Router> {
        if config.backends.is_empty() {
            return Err(std::io::Error::other("router needs at least one backend"));
        }
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let ring = crate::ring::HashRing::build(&config.backends, config.replicas);
        let healthy = config
            .backends
            .iter()
            .map(|_| AtomicBool::new(true))
            .collect();
        let table = RankedMutex::new(
            BoundedTable::new(
                config.backends.len(),
                DEFAULT_TABLE_CAPACITY,
                DEFAULT_EXPANSION,
            ),
            rank::ROUTER_TABLE,
            "RouterShared.table",
        );
        let shared = Arc::new(RouterShared {
            stop: AtomicBool::new(false),
            shutdown_flag: RankedMutex::new(false, rank::SHUTDOWN, "RouterShared.shutdown_flag"),
            shutdown_cv: Condvar::new(),
            ring,
            table,
            jobs: RankedMutex::new(HashMap::new(), rank::ROUTER_JOBS, "RouterShared.jobs"),
            healthy,
            metrics: RouterMetrics::default(),
            addr,
            jitter_state: AtomicU64::new(
                u64::from(std::process::id()) ^ (u64::from(addr.port()) << 32) ^ 0x0707,
            ),
            config,
        });
        shared
            .metrics
            .shards
            .set(shared.config.backends.len() as i64);
        shared
            .metrics
            .healthy_shards
            .set(shared.config.backends.len() as i64);

        let prober = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || probe_loop(&shared))
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Router {
            shared,
            acceptor: Some(acceptor),
            prober: Some(prober),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The router's own metrics (test introspection).
    pub fn metrics(&self) -> &RouterMetrics {
        &self.shared.metrics
    }

    /// Block until a client POSTs `/v1/shutdown`.
    pub fn wait_for_shutdown_request(&self) {
        let mut flagged = self.shared.shutdown_flag.lock();
        while !*flagged {
            flagged = flagged.wait(&self.shared.shutdown_cv);
        }
    }

    /// Stop accepting and join the router threads.  Backends are not
    /// touched — their owner (the binary, or a test) decides their fate.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        thread::spawn(move || drive_connection(stream, &shared));
    }
}

/// Background health probing: eject on a failed `/healthz`, readmit on
/// the next success.
fn probe_loop(shared: &Arc<RouterShared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        for (shard, addr) in shared.config.backends.iter().enumerate() {
            let alive = connect_backend(addr, shared.config.connect_timeout)
                .map(|c| c.with_deadline(Duration::from_millis(750)))
                .and_then(|mut c| c.request("GET", "/healthz", &[], b""))
                .map(|r| r.status == 200)
                .unwrap_or(false);
            let was = shared.healthy[shard].swap(alive, Ordering::Relaxed);
            if was && !alive {
                shared.metrics.shard_ejections_total.inc();
            } else if !was && alive {
                shared.metrics.shard_readmissions_total.inc();
            }
        }
        shared
            .metrics
            .healthy_shards
            .set(shared.healthy_count() as i64);
        // Sleep in short slices so shutdown is prompt.
        let deadline = Instant::now() + shared.config.probe_interval;
        while Instant::now() < deadline && !shared.stop.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(20));
        }
    }
}

impl ConnectionHandler for Arc<RouterShared> {
    fn handle(&self, request: &Request) -> Response {
        self.metrics.requests_total.inc();
        route_router(request, self)
    }

    fn handle_stream(&self, request: &Request, stream: &mut TcpStream, leftover: &[u8]) -> bool {
        if request.method == "GET"
            && request.path.starts_with("/v1/jobs/")
            && request.path.ends_with("/events")
        {
            self.metrics.requests_total.inc();
            tunnel_job_events(self, request, stream);
            return true;
        }
        if request.method != "POST" || request.path != "/v1/transient" {
            return false;
        }
        self.metrics.requests_total.inc();
        tunnel_transient(self, request, stream, leftover);
        true
    }

    fn record_error(&self, _status: u16) {}

    fn limits(&self) -> &Limits {
        &self.config.limits
    }

    fn idle_timeout(&self) -> Duration {
        self.config.idle_timeout
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

fn route_router(request: &Request, shared: &Arc<RouterShared>) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            if shared.healthy_count() > 0 {
                Response::text(200, "ok\n")
            } else {
                Response::error(503, "no healthy backend").with_retry_after(1)
            }
        }
        ("GET", "/metrics") => aggregate_metrics(shared),
        ("GET", "/v1/designs") => {
            // Any healthy shard serves the static registry.
            match forward(shared, RouteKey::AnyHealthy, "GET", "/v1/designs", &[], b"") {
                ForwardOutcome::Upstream(upstream) => passthrough(&upstream),
                ForwardOutcome::Unavailable => unavailable_response(),
                ForwardOutcome::BadGateway => bad_gateway_response(),
            }
        }
        ("POST", "/v1/shutdown") => {
            if !shared.config.allow_shutdown {
                return Response::error(404, "shutdown disabled");
            }
            // Best-effort propagation to every backend, then drain self.
            for (shard, _) in shared.config.backends.iter().enumerate() {
                let _ = upstream_request(
                    shared,
                    shard,
                    "POST",
                    "/v1/shutdown",
                    &[],
                    b"",
                    Duration::from_secs(2),
                );
            }
            shared.signal_shutdown();
            Response::json(200, "{\n  \"status\": \"shutting down\"\n}\n".to_string()).with_close()
        }
        ("POST", "/v1/solve" | "/v1/flow" | "/v1/pillars") => {
            let key = match ApiJob::parse(&request.path, &request.body) {
                Some(Ok(job)) => job.affinity_key(),
                Some(Err(message)) => return Response::error(400, &message),
                None => return Response::error(404, "no such endpoint"),
            };
            let headers = forwarded_headers(request);
            match forward(
                shared,
                RouteKey::Affinity(key),
                "POST",
                &request.path,
                &as_header_refs(&headers),
                &request.body,
            ) {
                ForwardOutcome::Upstream(upstream) => passthrough(&upstream),
                ForwardOutcome::Unavailable => unavailable_response(),
                ForwardOutcome::BadGateway => bad_gateway_response(),
            }
        }
        ("POST", "/v1/batch") => route_batch(request, shared),
        ("POST", "/v1/jobs") => route_job_submit(request, shared),
        (_, path) if path.starts_with("/v1/jobs/") => route_job_entry(request, shared),
        (
            _,
            "/healthz" | "/metrics" | "/v1/designs" | "/v1/shutdown" | "/v1/solve" | "/v1/flow"
            | "/v1/pillars" | "/v1/batch" | "/v1/transient" | "/v1/jobs",
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    }
}

/// Tunnel a transient session to its sticky shard: sessions ride the
/// same operator-affinity placement as the solves for their geometry, so
/// they land where the warm contexts already live.  After re-sending the
/// opening request, the router degrades to a byte pump — the NDJSON
/// protocol flows through untouched in both directions until either side
/// closes.  Sessions are never retried: a mid-session replay would
/// silently restart the trajectory.
fn tunnel_transient(
    shared: &Arc<RouterShared>,
    request: &Request,
    client: &mut TcpStream,
    leftover: &[u8],
) {
    let write_response = |client: &mut TcpStream, response: Response| {
        let _ = client.write_all(&response.with_close().to_bytes());
    };
    let parsed = std::str::from_utf8(&request.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|text| {
            tsc_bench::json::parse(text).map_err(|e| format!("invalid JSON body: {e}"))
        })
        .and_then(|json| TransientRequest::parse(&json));
    let req = match parsed {
        Ok(req) => req,
        Err(message) => {
            write_response(client, Response::error(400, &message));
            return;
        }
    };

    let Some(shard) = shared.pick_shard(RouteKey::Affinity(req.affinity_key()), None) else {
        shared.metrics.no_backend_total.inc();
        write_response(client, unavailable_response());
        return;
    };
    let backend_addr = &shared.config.backends[shard];
    let connected = backend_addr
        .parse::<SocketAddr>()
        .ok()
        .and_then(|addr| TcpStream::connect_timeout(&addr, shared.config.connect_timeout).ok());
    let Some(mut backend) = connected else {
        shared.metrics.upstream_errors_total.inc();
        shared.eject(shard);
        write_response(client, unavailable_response());
        return;
    };
    let _ = backend.set_nodelay(true);
    // Short read timeout so both pump directions notice the other side
    // finishing (and router shutdown) promptly.
    if backend
        .set_read_timeout(Some(Duration::from_millis(200)))
        .is_err()
    {
        write_response(client, unavailable_response());
        return;
    }

    let mut head = format!(
        "POST /v1/transient HTTP/1.1\r\nHost: {backend_addr}\r\nContent-Length: {}\r\nConnection: close\r\n",
        request.body.len()
    );
    for (name, value) in forwarded_headers(request) {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    if backend
        .write_all(head.as_bytes())
        .and_then(|()| backend.write_all(&request.body))
        .is_err()
    {
        shared.metrics.upstream_errors_total.inc();
        shared.eject(shard);
        write_response(client, unavailable_response());
        return;
    }
    shared.metrics.transient_tunnels_total.inc();

    let (Ok(mut backend_read), Ok(mut client_write)) = (backend.try_clone(), client.try_clone())
    else {
        return;
    };
    // Commands the client pipelined behind the opening request belong to
    // the backend session.
    if !leftover.is_empty() && backend.write_all(leftover).is_err() {
        return;
    }
    let done = AtomicBool::new(false);
    thread::scope(|scope| {
        scope.spawn(|| pump(&mut backend_read, &mut client_write, &done, shared));
        pump(client, &mut backend, &done, shared);
    });
}

/// Copy bytes `from` → `to` until EOF, a write failure, the opposite
/// pump finishing, or router shutdown.  Half-closes the destination on
/// exit so the peer sees a clean end-of-stream.
fn pump(from: &mut TcpStream, to: &mut TcpStream, done: &AtomicBool, shared: &RouterShared) {
    let mut buf = [0u8; 4096];
    loop {
        if done.load(Ordering::Relaxed) || shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    done.store(true, Ordering::Relaxed);
    let _ = to.shutdown(Shutdown::Write);
}

/// Extracts the 16-hex job id segment from `/v1/jobs/{id}[/action]`.
fn job_id_from_path(path: &str) -> Option<u64> {
    let rest = path.strip_prefix("/v1/jobs/")?;
    let id_part = rest.split('/').next().unwrap_or(rest);
    if id_part.len() != 16 {
        return None;
    }
    u64::from_str_radix(id_part, 16).ok()
}

/// `POST /v1/jobs`: route by a hash of the spec body (same-spec
/// resubmits land on the same shard, next to any memoised evaluations),
/// then record the admitted id in the sticky map so every follow-up
/// finds the owning shard without a broadcast.
fn route_job_submit(request: &Request, shared: &Arc<RouterShared>) -> Response {
    let key = fnv1a(&request.body);
    let headers = forwarded_headers(request);
    let budget = shared.config.retry_budget.max(1);
    let mut exclude: Option<usize> = None;
    for attempt in 0..budget {
        let Some(shard) = shared.pick_shard(RouteKey::Affinity(key), exclude) else {
            break;
        };
        if attempt > 0 {
            shared.metrics.retries_total.inc();
            let base = 25u64.saturating_mul(1 << (attempt - 1).min(4));
            let jittered = (base as f64 * (0.5 + shared.jitter_unit())).round() as u64;
            thread::sleep(Duration::from_millis(jittered.clamp(5, 400)));
        }
        match upstream_request(
            shared,
            shard,
            "POST",
            "/v1/jobs",
            &as_header_refs(&headers),
            &request.body,
            shared.config.upstream_deadline,
        ) {
            Ok(response) if retryable_status(response.status) => {
                exclude = Some(shard);
                if attempt + 1 == budget {
                    return passthrough(&response);
                }
            }
            Ok(response) => {
                if response.status == 202 {
                    let id = tsc_bench::json::parse(&response.body_string())
                        .ok()
                        .and_then(|json| {
                            json.get("id")
                                .and_then(Json::as_str)
                                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                        });
                    if let Some(id) = id {
                        shared.remember_job(id, shard);
                    }
                }
                return passthrough(&response);
            }
            Err(ClientError::Malformed) => {
                shared.metrics.bad_gateway_total.inc();
                return bad_gateway_response();
            }
            Err(ClientError::Io) => {
                shared.metrics.upstream_errors_total.inc();
                shared.eject(shard);
                exclude = Some(shard);
            }
            Err(ClientError::Timeout) => {
                shared.metrics.upstream_errors_total.inc();
                exclude = Some(shard);
            }
        }
    }
    shared.metrics.no_backend_total.inc();
    unavailable_response()
}

/// `/v1/jobs/{id}[/action]` (status, cancel, checkpoint, and wrong-verb
/// variants): forward to the owning shard.  Job state lives on exactly
/// one shard, so a refused response retries the *same* shard — trying a
/// neighbour would only manufacture a misleading 404.
fn route_job_entry(request: &Request, shared: &Arc<RouterShared>) -> Response {
    let Some(id) = job_id_from_path(&request.path) else {
        return Response::error(404, "no such job");
    };
    let Some(shard) = shared.job_owner(id) else {
        return Response::error(404, "no such job");
    };
    let headers = forwarded_headers(request);
    let budget = shared.config.retry_budget.max(1);
    for attempt in 0..budget {
        if attempt > 0 {
            shared.metrics.retries_total.inc();
            let base = 25u64.saturating_mul(1 << (attempt - 1).min(4));
            let jittered = (base as f64 * (0.5 + shared.jitter_unit())).round() as u64;
            thread::sleep(Duration::from_millis(jittered.clamp(5, 400)));
        }
        match upstream_request(
            shared,
            shard,
            &request.method,
            &request.path,
            &as_header_refs(&headers),
            &request.body,
            shared.config.upstream_deadline,
        ) {
            Ok(response) if retryable_status(response.status) && attempt + 1 < budget => {}
            Ok(response) => return passthrough(&response),
            Err(ClientError::Malformed) => {
                shared.metrics.bad_gateway_total.inc();
                return bad_gateway_response();
            }
            Err(ClientError::Io) => {
                shared.metrics.upstream_errors_total.inc();
                shared.eject(shard);
                shared.metrics.no_backend_total.inc();
                return unavailable_response();
            }
            Err(ClientError::Timeout) => {
                shared.metrics.upstream_errors_total.inc();
            }
        }
    }
    shared.metrics.no_backend_total.inc();
    unavailable_response()
}

/// Tunnel a `GET /v1/jobs/{id}/events` stream to the owning shard: the
/// router re-sends the request head and degrades to a byte pump, so the
/// NDJSON progress lines (and the shard's in-band error events) flow
/// through untouched until the job ends or either side closes.
fn tunnel_job_events(shared: &Arc<RouterShared>, request: &Request, client: &mut TcpStream) {
    let write_response = |client: &mut TcpStream, response: Response| {
        let _ = client.write_all(&response.with_close().to_bytes());
    };
    let Some(id) = job_id_from_path(&request.path) else {
        write_response(client, Response::error(404, "no such job"));
        return;
    };
    let Some(shard) = shared.job_owner(id) else {
        write_response(client, Response::error(404, "no such job"));
        return;
    };
    let backend_addr = &shared.config.backends[shard];
    let connected = backend_addr
        .parse::<SocketAddr>()
        .ok()
        .and_then(|addr| TcpStream::connect_timeout(&addr, shared.config.connect_timeout).ok());
    let Some(mut backend) = connected else {
        shared.metrics.upstream_errors_total.inc();
        shared.eject(shard);
        write_response(client, unavailable_response());
        return;
    };
    let _ = backend.set_nodelay(true);
    if backend
        .set_read_timeout(Some(Duration::from_millis(200)))
        .is_err()
    {
        write_response(client, unavailable_response());
        return;
    }
    let mut head = format!(
        "GET {} HTTP/1.1\r\nHost: {backend_addr}\r\nConnection: close\r\n",
        request.path
    );
    for (name, value) in forwarded_headers(request) {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    if backend.write_all(head.as_bytes()).is_err() {
        shared.metrics.upstream_errors_total.inc();
        shared.eject(shard);
        write_response(client, unavailable_response());
        return;
    }
    shared.metrics.job_event_tunnels_total.inc();
    let (Ok(mut backend_read), Ok(mut client_write)) = (backend.try_clone(), client.try_clone())
    else {
        return;
    };
    let done = AtomicBool::new(false);
    thread::scope(|scope| {
        scope.spawn(|| pump(&mut backend_read, &mut client_write, &done, shared));
        pump(client, &mut backend, &done, shared);
    });
}

/// Split a batch envelope into per-shard sub-batches by item affinity,
/// forward them concurrently, and merge per-item results back in
/// envelope order.
fn route_batch(request: &Request, shared: &Arc<RouterShared>) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let json = match tsc_bench::json::parse(text) {
        Ok(json) => json,
        Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
    };
    let Some(items) = json.get("items").and_then(Json::as_array) else {
        return Response::error(400, "missing required field \"items\" (array)");
    };
    if items.is_empty() {
        return Response::error(400, "items must not be empty");
    }
    if items.len() > MAX_BATCH_ITEMS {
        return Response::error(400, &format!("too many items (max {MAX_BATCH_ITEMS})"));
    }

    // Assign each item a shard by affinity.  An unparseable item still
    // routes (hash of its raw text) so the owning backend reports the
    // per-item 400 — router and single-server behaviour stay identical.
    let mut assignment: Vec<Option<usize>> = Vec::with_capacity(items.len());
    for item in items {
        let raw = item.pretty();
        let endpoint = item
            .get("endpoint")
            .and_then(Json::as_str)
            .unwrap_or("solve");
        let key = match ApiJob::parse_item(endpoint, item) {
            Ok(job) => job.affinity_key(),
            Err(_) => fnv1a(raw.as_bytes()),
        };
        assignment.push(shared.pick_shard(RouteKey::Affinity(key), None));
    }

    // Group item indices per shard, preserving envelope order.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (index, shard) in assignment.iter().enumerate() {
        let Some(shard) = *shard else { continue };
        match groups.iter_mut().find(|(s, _)| *s == shard) {
            Some((_, indices)) => indices.push(index),
            None => groups.push((shard, vec![index])),
        }
    }

    let headers = forwarded_headers(request);
    let mut merged: Vec<Option<Json>> = vec![None; items.len()];

    // Fan the sub-batches out concurrently — shards solve in parallel.
    let outcomes: Vec<(Vec<usize>, ForwardOutcome)> = thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|(shard, indices)| {
                let sub_items: Vec<Json> = indices.iter().map(|i| items[*i].clone()).collect();
                let body = Json::object()
                    .field("items", sub_items)
                    .pretty()
                    .into_bytes();
                let headers = &headers;
                let shared = Arc::clone(shared);
                scope.spawn(move || {
                    shared.metrics.batch_subbatches_total.inc();
                    // Route by a key pinned to this shard's group: use the
                    // first item's affinity so retries of a dead shard
                    // re-route the whole sub-batch coherently.
                    let outcome = forward_to_shard_with_retry(
                        &shared,
                        shard,
                        "POST",
                        "/v1/batch",
                        &as_header_refs(headers),
                        &body,
                    );
                    (indices, outcome)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .unwrap_or((Vec::new(), ForwardOutcome::Unavailable))
            })
            .collect()
    });

    for (indices, outcome) in outcomes {
        match outcome {
            ForwardOutcome::Upstream(upstream) => {
                let body = upstream.body_string();
                let sub_items: Vec<Json> = tsc_bench::json::parse(&body)
                    .ok()
                    .and_then(|j| {
                        j.get("items")
                            .and_then(Json::as_array)
                            .map(<[Json]>::to_vec)
                    })
                    .unwrap_or_default();
                if upstream.status != 200 || sub_items.len() != indices.len() {
                    // The whole sub-batch was refused (e.g. shard 429) or
                    // came back inconsistent: surface it per item.
                    let status = if upstream.status == 200 {
                        502
                    } else {
                        upstream.status
                    };
                    let error = tsc_bench::json::parse(&body).unwrap_or_else(|_| {
                        Json::object().field("error", "bad sub-batch response")
                    });
                    for index in indices {
                        merged[index] = Some(
                            Json::object()
                                .field("status", status as usize)
                                .field("body", error.clone()),
                        );
                    }
                } else {
                    for (index, item) in indices.into_iter().zip(sub_items) {
                        merged[index] = Some(item);
                    }
                }
            }
            ForwardOutcome::Unavailable => {
                for index in indices {
                    merged[index] = Some(item_error(503, "no healthy backend (retries exhausted)"));
                }
            }
            ForwardOutcome::BadGateway => {
                for index in indices {
                    merged[index] = Some(item_error(
                        502,
                        "bad gateway: backend returned malformed HTTP",
                    ));
                }
            }
        }
    }

    let results: Vec<Json> = merged
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| item_error(503, "no healthy backend")))
        .collect();
    let errors = results
        .iter()
        .filter(|item| {
            item.get("status")
                .and_then(Json::as_usize)
                .is_none_or(|status| status != 200)
        })
        .count();
    let envelope = Json::object()
        .field("count", results.len())
        .field("errors", errors)
        .field("items", results);
    Response::json(200, envelope.pretty())
}

fn item_error(status: u16, message: &str) -> Json {
    Json::object()
        .field("status", status as usize)
        .field("body", Json::object().field("error", message))
}

/// Forward to a preferred shard with the same retry/backoff budget as
/// [`forward`], falling back to other healthy shards if it dies.
fn forward_to_shard_with_retry(
    shared: &RouterShared,
    preferred: usize,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> ForwardOutcome {
    let budget = shared.config.retry_budget.max(1);
    let mut target = Some(preferred);
    for attempt in 0..budget {
        let Some(shard) = target else {
            shared.metrics.no_backend_total.inc();
            return ForwardOutcome::Unavailable;
        };
        if attempt > 0 {
            shared.metrics.retries_total.inc();
            let base = 25u64.saturating_mul(1 << (attempt - 1).min(4));
            let jittered = (base as f64 * (0.5 + shared.jitter_unit())).round() as u64;
            thread::sleep(Duration::from_millis(jittered.clamp(5, 400)));
        }
        match upstream_request(
            shared,
            shard,
            method,
            path,
            headers,
            body,
            shared.config.upstream_deadline,
        ) {
            Ok(response) if retryable_status(response.status) => {
                if attempt + 1 == budget {
                    return ForwardOutcome::Upstream(response);
                }
                target = shared.pick_shard(RouteKey::Affinity(fnv1a(path.as_bytes())), Some(shard));
            }
            Ok(response) => return ForwardOutcome::Upstream(response),
            Err(ClientError::Malformed) => {
                shared.metrics.bad_gateway_total.inc();
                return ForwardOutcome::BadGateway;
            }
            Err(err) => {
                shared.metrics.upstream_errors_total.inc();
                if matches!(err, ClientError::Io) {
                    shared.eject(shard);
                }
                target = shared.pick_shard(RouteKey::Affinity(fnv1a(path.as_bytes())), Some(shard));
            }
        }
    }
    shared.metrics.no_backend_total.inc();
    ForwardOutcome::Unavailable
}

/// Fetch `/metrics` from every healthy shard, sum samples by series
/// (dropping scrape-time quantile gauges — bucket counts sum, quantiles
/// do not), and append the router's own series.
fn aggregate_metrics(shared: &Arc<RouterShared>) -> Response {
    let mut order: Vec<String> = Vec::new();
    let mut sums: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let mut types: Vec<(String, String)> = Vec::new();
    let mut helps: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut scraped = 0usize;

    for (shard, addr) in shared.config.backends.iter().enumerate() {
        if !shared.is_healthy(shard) {
            continue;
        }
        let exposition = connect_backend(addr, shared.config.connect_timeout)
            .map(|c| c.with_deadline(Duration::from_secs(5)))
            .and_then(|mut c| c.request("GET", "/metrics", &[], b""));
        let Ok(response) = exposition else { continue };
        if response.status != 200 {
            continue;
        }
        let Ok(parsed) = parse_exposition(&response.body_string()) else {
            continue;
        };
        scraped += 1;
        for (family, kind) in parsed.types {
            if family.contains("_quantile") {
                continue;
            }
            if !types.iter().any(|(f, _)| *f == family) {
                types.push((family, kind));
            }
        }
        for (family, help) in parsed.helps {
            helps.entry(family).or_insert(help);
        }
        for (series, value) in parsed.samples {
            let base = series.split('{').next().unwrap_or(&series);
            if base.ends_with("_quantile") {
                continue;
            }
            if let Some(sum) = sums.get_mut(&series) {
                *sum += value;
            } else {
                order.push(series.clone());
                sums.insert(series, value);
            }
        }
    }

    // Emit family-grouped: HELP/TYPE then every series of that family,
    // then any leftover (untyped) series, then the router's own block.
    let mut out = String::with_capacity(16 * 1024);
    let mut emitted = vec![false; order.len()];
    for (family, kind) in &types {
        if let Some(help) = helps.get(family) {
            out.push_str(&format!("# HELP {family} {help}\n"));
        }
        out.push_str(&format!("# TYPE {family} {kind}\n"));
        for (i, series) in order.iter().enumerate() {
            if emitted[i] {
                continue;
            }
            let base = series.split('{').next().unwrap_or(series);
            let of_family = base == family
                || base
                    .strip_prefix(family.as_str())
                    .is_some_and(|suffix| ["_bucket", "_sum", "_count"].contains(&suffix));
            if of_family {
                emitted[i] = true;
                let value = sums[series];
                out.push_str(&format!("{series} {value}\n"));
            }
        }
    }
    for (i, series) in order.iter().enumerate() {
        if !emitted[i] {
            let value = sums[series];
            out.push_str(&format!("{series} {value}\n"));
        }
    }
    out.push_str(&format!(
        "# HELP tsc_router_scraped_shards Shards whose exposition merged into this scrape.\n# TYPE tsc_router_scraped_shards gauge\ntsc_router_scraped_shards {scraped}\n"
    ));
    out.push_str(&shared.metrics.render());

    let mut response = Response::text(200, &out);
    response.content_type = "text/plain; version=0.0.4";
    response
}
