//! Rank-respecting fixture: every path acquires `Alpha.a_state` before
//! `Beta.b_state`, and the reversed path releases the first guard before
//! taking the second. The lock-order pass must produce the single edge
//! `Alpha.a_state -> Beta.b_state` and no cycle.

use std::sync::Mutex;

pub struct Alpha {
    pub a_state: Mutex<u32>,
}

pub struct Beta {
    pub b_state: Mutex<u32>,
}

pub fn nested(x: &Alpha, y: &Beta) -> u32 {
    let a = x.a_state.lock().unwrap();
    let b = y.b_state.lock().unwrap();
    *a + *b
}

pub fn sequential(x: &Alpha, y: &Beta) -> u32 {
    let b = {
        let guard = y.b_state.lock().unwrap();
        *guard
    };
    let a = x.a_state.lock().unwrap();
    *a + b
}
