//! Method-of-manufactured-solutions oracle for the thermal solvers.
//!
//! Pick a smooth analytic temperature field `T*(x, y, z)`, push it
//! through the continuum operator `−∇·(k∇T*)` to derive the matching
//! volumetric source, evaluate the exact Robin ambient data the field
//! implies on the cooled faces, and hand the lot to
//! [`tsc_thermal::Problem`]. The FV solution then differs from `T*` at
//! the cell centers only by the discretization error, so halving the
//! mesh pitch must shrink the error ~4× — an *observed* convergence
//! order of ~2 that the `mms_convergence` test suite asserts for every
//! solver in the workspace.
//!
//! Two design choices keep the oracle exact rather than approximate:
//!
//! * Lateral profiles are `cos(πx/Lx)·cos(πy/Ly)` — zero normal
//!   derivative at the side walls, so the mesh's adiabatic boundaries
//!   are satisfied by the manufactured field itself (no boundary-layer
//!   pollution of the measured order).
//! * Boundary data enters through [`Problem::set_bottom_ambient_map`] /
//!   [`Problem::set_top_ambient_map`]: the Robin ambient that makes
//!   `T*` exact is `T*_face ± (kz/h)·∂T*/∂z`, and an `h = ∞` film
//!   degenerates to Dirichlet face data (the `kz/h` correction
//!   vanishes), so one formula covers both boundary kinds.

use tsc_geometry::Grid2;
use tsc_thermal::{Heatsink, Problem, Solution, SolveError, TemperatureField};
use tsc_units::{HeatTransferCoefficient, Length, Power, Temperature, ThermalConductivity};

/// The analytic z-profile of a manufactured solution.
#[derive(Debug, Clone, Copy)]
enum Kind {
    /// `T* = t0 + A·cx·cy·(1 + z/Lz) + B·(z/Lz)²` with uniform
    /// conductivity: trigonometric laterally, polynomial vertically,
    /// non-zero gradients on both cooled faces.
    Trig {
        /// Quadratic vertical amplitude `B` (kelvin).
        quad: f64,
    },
    /// `T* = t0 + A·cx·cy + C·s(z)` where `s` is the continuous
    /// piecewise-linear profile carrying a constant vertical flux `C`
    /// across a face-aligned `kz`/`kxy` contrast interface at `Lz/2`
    /// (the thermal-scaffolding BEOL-on-silicon situation).
    Slab {
        /// Constant vertical heat flux `C` (W/m²).
        flux: f64,
    },
}

/// One manufactured solution over a box `[0,Lx]×[0,Ly]×[0,Lz]`.
#[derive(Debug, Clone, Copy)]
pub struct MmsCase {
    name: &'static str,
    lx: f64,
    ly: f64,
    lz: f64,
    /// `(kz, kxy)` below the interface (everywhere when uniform).
    k_lo: (f64, f64),
    /// `(kz, kxy)` at and above the interface.
    k_hi: (f64, f64),
    /// Film coefficient of the bottom boundary; `f64::INFINITY` makes
    /// it Dirichlet face data.
    h_bottom: f64,
    /// Film coefficient of the top boundary.
    h_top: f64,
    /// Reference temperature `t0` (kelvin).
    t0: f64,
    /// Lateral amplitude `A` (kelvin).
    amp: f64,
    kind: Kind,
}

/// Pointwise errors of one solve against the manufactured field.
#[derive(Debug, Clone, Copy)]
pub struct MmsErrors {
    /// Volume-weighted L2 norm of the cell-center error (kelvin).
    pub l2: f64,
    /// Maximum cell-center error (kelvin).
    pub linf: f64,
}

/// Observed convergence orders between two consecutive refinements.
#[derive(Debug, Clone, Copy)]
pub struct ObservedOrder {
    /// `log2(e_h / e_{h/2})` of the L2 errors.
    pub l2: f64,
    /// Same for the L∞ errors.
    pub linf: f64,
}

impl MmsCase {
    /// Smooth single-material case: Dirichlet bottom (`h = ∞`), Robin
    /// top, trigonometric × polynomial field.
    #[must_use]
    pub fn trig_smooth() -> Self {
        Self {
            name: "trig-smooth",
            lx: 1.0e-3,
            ly: 1.0e-3,
            lz: 1.0e-3,
            k_lo: (100.0, 100.0),
            k_hi: (100.0, 100.0),
            h_bottom: f64::INFINITY,
            h_top: 2.0e5,
            t0: 320.0,
            amp: 8.0,
            kind: Kind::Trig { quad: 5.0 },
        }
    }

    /// Anisotropic two-slab case: a 10× `kz` contrast across a
    /// face-aligned interface at `Lz/2`, Robin bottom, Dirichlet top.
    #[must_use]
    pub fn contrast_slab() -> Self {
        Self {
            name: "contrast-slab",
            lx: 1.0e-3,
            ly: 1.0e-3,
            lz: 1.0e-3,
            k_lo: (120.0, 80.0),
            k_hi: (12.0, 30.0),
            h_bottom: 1.5e5,
            h_top: f64::INFINITY,
            t0: 330.0,
            amp: 6.0,
            kind: Kind::Slab { flux: 2.0e6 },
        }
    }

    /// Case name (used in failure messages and reports).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn interface(&self) -> f64 {
        self.lz / 2.0
    }

    /// `(kz, kxy)` at height `z`.
    #[must_use]
    pub fn conductivity(&self, z: f64) -> (f64, f64) {
        if z < self.interface() {
            self.k_lo
        } else {
            self.k_hi
        }
    }

    fn lateral(&self, x: f64, y: f64) -> f64 {
        (core::f64::consts::PI * x / self.lx).cos() * (core::f64::consts::PI * y / self.ly).cos()
    }

    /// The exact temperature `T*(x, y, z)` in kelvin.
    #[must_use]
    pub fn temperature(&self, x: f64, y: f64, z: f64) -> f64 {
        let cc = self.lateral(x, y);
        match self.kind {
            Kind::Trig { quad } => {
                self.t0 + self.amp * cc * (1.0 + z / self.lz) + quad * (z / self.lz).powi(2)
            }
            Kind::Slab { flux } => {
                let zi = self.interface();
                let s = if z <= zi {
                    z / self.k_lo.0
                } else {
                    zi / self.k_lo.0 + (z - zi) / self.k_hi.0
                };
                self.t0 + self.amp * cc + flux * s
            }
        }
    }

    /// `∂T*/∂z` in K/m.
    #[must_use]
    pub fn dtemperature_dz(&self, x: f64, y: f64, z: f64) -> f64 {
        match self.kind {
            Kind::Trig { quad } => {
                self.amp * self.lateral(x, y) / self.lz + 2.0 * quad * z / self.lz.powi(2)
            }
            Kind::Slab { flux } => flux / self.conductivity(z).0,
        }
    }

    /// The volumetric source `q = −∇·(k∇T*)` in W/m³.
    #[must_use]
    pub fn source_density(&self, x: f64, y: f64, z: f64) -> f64 {
        let pi = core::f64::consts::PI;
        let lam = pi.powi(2) * (self.lx.powi(-2) + self.ly.powi(-2));
        let (kz, kxy) = self.conductivity(z);
        let cc = self.lateral(x, y);
        match self.kind {
            // −kxy·∂²(lateral part) − kz·∂²(vertical part).
            Kind::Trig { quad } => {
                kxy * self.amp * lam * cc * (1.0 + z / self.lz) - kz * 2.0 * quad / self.lz.powi(2)
            }
            // The piecewise-linear z profile carries a constant flux, so
            // only the lateral part sources.
            Kind::Slab { .. } => kxy * self.amp * lam * cc,
        }
    }

    /// Builds the FV problem on an `n × n × n` mesh: per-layer
    /// conductivities, midpoint-rule source powers, and the exact
    /// Robin/Dirichlet ambient maps on both faces.
    ///
    /// # Panics
    ///
    /// Panics when `n` is odd (the contrast interface must stay
    /// face-aligned) or zero.
    #[must_use]
    pub fn problem(&self, n: usize) -> Problem {
        assert!(
            n > 0 && n.is_multiple_of(2),
            "mesh count must be positive and even, got {n}"
        );
        let (dx, dy, dzc) = (self.lx / n as f64, self.ly / n as f64, self.lz / n as f64);
        let dz = vec![Length::from_meters(dzc); n];
        let mut p = Problem::new(
            n,
            n,
            Length::from_meters(dx),
            Length::from_meters(dy),
            dz,
            ThermalConductivity::new(self.k_lo.0.max(self.k_hi.0)),
        );
        for k in 0..n {
            let zc = (k as f64 + 0.5) * dzc;
            let (kz, kxy) = self.conductivity(zc);
            p.set_layer_conductivity(
                k,
                ThermalConductivity::new(kz),
                ThermalConductivity::new(kxy),
            );
        }
        let volume = dx * dy * dzc;
        for k in 0..n {
            let zc = (k as f64 + 0.5) * dzc;
            for j in 0..n {
                let yc = (j as f64 + 0.5) * dy;
                for i in 0..n {
                    let xc = (i as f64 + 0.5) * dx;
                    p.add_power(
                        i,
                        j,
                        k,
                        Power::from_watts(self.source_density(xc, yc, zc) * volume),
                    );
                }
            }
        }
        // Robin ambient that makes T* exact: outward flux through the
        // top is −kz·∂T*/∂z = h·(T_face − T_amb), so
        // T_amb = T_face + (kz/h)·∂T*/∂z; the bottom's outward normal
        // flips the sign. kz/∞ = 0 gives the Dirichlet limit for free.
        p.set_bottom_heatsink(Heatsink {
            h: HeatTransferCoefficient::new(self.h_bottom),
            ambient: Temperature::from_kelvin(self.t0),
        });
        p.set_top_heatsink(Heatsink {
            h: HeatTransferCoefficient::new(self.h_top),
            ambient: Temperature::from_kelvin(self.t0),
        });
        let center = |c: usize, pitch: f64| (c as f64 + 0.5) * pitch;
        let kz0 = self.conductivity(0.0).0;
        let kz1 = self.conductivity(self.lz).0;
        p.set_bottom_ambient_map(Grid2::from_fn(n, n, |i, j| {
            let (x, y) = (center(i, dx), center(j, dy));
            self.temperature(x, y, 0.0) - kz0 / self.h_bottom * self.dtemperature_dz(x, y, 0.0)
        }));
        p.set_top_ambient_map(Grid2::from_fn(n, n, |i, j| {
            let (x, y) = (center(i, dx), center(j, dy));
            self.temperature(x, y, self.lz) + kz1 / self.h_top * self.dtemperature_dz(x, y, self.lz)
        }));
        p
    }

    /// Cell-center error norms of a computed field against `T*`.
    ///
    /// # Panics
    ///
    /// Panics when the field's mesh disagrees with `n × n × n`.
    #[must_use]
    pub fn errors(&self, n: usize, field: &TemperatureField) -> MmsErrors {
        let dim = field.dim();
        assert!(
            dim.nx == n && dim.ny == n && dim.nz == n,
            "field is {}x{}x{}, expected {n}^3",
            dim.nx,
            dim.ny,
            dim.nz
        );
        let (dx, dy, dzc) = (self.lx / n as f64, self.ly / n as f64, self.lz / n as f64);
        let mut sum_sq = 0.0;
        let mut linf: f64 = 0.0;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let exact = self.temperature(
                        (i as f64 + 0.5) * dx,
                        (j as f64 + 0.5) * dy,
                        (k as f64 + 0.5) * dzc,
                    );
                    let err = (field.at(i, j, k).kelvin() - exact).abs();
                    sum_sq += err * err;
                    linf = linf.max(err);
                }
            }
        }
        MmsErrors {
            l2: (sum_sq / (n * n * n) as f64).sqrt(),
            linf,
        }
    }

    /// Runs `solve` on a sequence of meshes and returns the error at
    /// each refinement (coarse to fine).
    ///
    /// # Errors
    ///
    /// Propagates the first solver failure.
    pub fn refine(
        &self,
        meshes: &[usize],
        mut solve: impl FnMut(&Problem) -> Result<Solution, SolveError>,
    ) -> Result<Vec<MmsErrors>, SolveError> {
        meshes
            .iter()
            .map(|&n| {
                let p = self.problem(n);
                let solution = solve(&p)?;
                Ok(self.errors(n, &solution.temperatures))
            })
            .collect()
    }
}

/// Observed order between each consecutive pair of a refinement
/// sequence whose mesh pitch halves each step.
#[must_use]
pub fn observed_orders(errors: &[MmsErrors]) -> Vec<ObservedOrder> {
    errors
        .windows(2)
        .map(|w| ObservedOrder {
            l2: (w[0].l2 / w[1].l2).log2(),
            linf: (w[0].linf / w[1].linf).log2(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lateral_profile_is_wall_adiabatic() {
        // ∂T*/∂x = 0 at x ∈ {0, Lx} (finite-difference check).
        let case = MmsCase::trig_smooth();
        let eps = 1e-9;
        for x in [0.0, case.lx] {
            let g = (case.temperature(x + eps, 3e-4, 5e-4) - case.temperature(x - eps, 3e-4, 5e-4))
                / (2.0 * eps);
            assert!(g.abs() < 1e-4, "wall-normal gradient {g} at x={x}");
        }
    }

    #[test]
    fn slab_flux_is_continuous_at_interface() {
        let case = MmsCase::contrast_slab();
        let zi = case.lz / 2.0;
        let below =
            case.conductivity(zi - 1e-9).0 * case.dtemperature_dz(0.3e-3, 0.2e-3, zi - 1e-9);
        let above =
            case.conductivity(zi + 1e-9).0 * case.dtemperature_dz(0.3e-3, 0.2e-3, zi + 1e-9);
        assert!(
            (below - above).abs() < 1e-6 * below.abs(),
            "k·dT/dz jumps across the interface: {below} vs {above}"
        );
    }

    #[test]
    fn problems_assemble_on_even_meshes() {
        for case in [MmsCase::trig_smooth(), MmsCase::contrast_slab()] {
            let p = case.problem(4);
            assert_eq!(p.dim().nx, 4);
            assert!(p.bottom_ambient_map().is_some() && p.top_ambient_map().is_some());
        }
    }

    #[test]
    fn observed_orders_recover_exact_halving() {
        let errs = [
            MmsErrors { l2: 4.0, linf: 8.0 },
            MmsErrors { l2: 1.0, linf: 2.0 },
        ];
        let orders = observed_orders(&errs);
        assert_eq!(orders.len(), 1);
        assert!((orders[0].l2 - 2.0).abs() < 1e-12);
        assert!((orders[0].linf - 2.0).abs() < 1e-12);
    }
}
