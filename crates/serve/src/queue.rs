//! A bounded multi-producer multi-consumer job queue on `Mutex` +
//! `Condvar`, with strict-priority admission classes.
//!
//! `try_push` never blocks — a full queue (or an exhausted class quota)
//! is reported to the caller so the HTTP layer can answer 429 with
//! `Retry-After` instead of stalling the connection thread.  `pop`
//! blocks until a job arrives or the queue is closed *and* drained,
//! which gives graceful shutdown for free: closing wakes every worker,
//! but queued jobs are still handed out until the queue is empty.
//!
//! Admission control: each [`Priority`] class may occupy the shared
//! capacity only up to its quota — interactive up to the full cap,
//! batch up to ¾, background up to ½.  Under overload the queue
//! therefore sheds background first, then batch, while interactive keeps
//! a reserved headroom no lower class can consume.  `pop` serves classes
//! in strict priority order (interactive > batch > background), FIFO
//! within a class, so queued background work can never delay queued
//! interactive work.

use crate::locks::{rank, RankedMutex};
use std::collections::VecDeque;
use std::sync::Condvar;

/// Request priority classes, highest first.  Parsed from the
/// `X-Priority` header; `/v1/batch` defaults to [`Priority::Batch`],
/// every other heavy endpoint to [`Priority::Interactive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    Interactive,
    Batch,
    Background,
}

impl Priority {
    /// All classes, highest priority first (the pop order).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::Background];

    /// The metrics label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Background => "background",
        }
    }

    /// Array index (also the pop order).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::Background => 2,
        }
    }

    /// Parse an `X-Priority` header value.
    ///
    /// # Errors
    ///
    /// The unrecognised value, for a 400 message.
    pub fn parse(value: &str) -> Result<Priority, String> {
        match value.to_ascii_lowercase().as_str() {
            "interactive" => Ok(Priority::Interactive),
            "batch" => Ok(Priority::Batch),
            "background" => Ok(Priority::Background),
            other => Err(format!(
                "unknown priority {other:?} (interactive | batch | background)"
            )),
        }
    }

    /// How much of the shared capacity this class may occupy.  Lower
    /// classes saturate earlier, so they shed first under overload and
    /// interactive always finds headroom.
    #[must_use]
    pub fn quota(self, capacity: usize) -> usize {
        match self {
            Priority::Interactive => capacity,
            Priority::Batch => (capacity * 3 / 4).max(1),
            Priority::Background => (capacity / 2).max(1),
        }
    }
}

/// Why a `try_push` was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (or the class quota is exhausted) — the
    /// caller should shed load.
    Full,
    /// The queue has been closed — the server is shutting down.
    Closed,
}

struct Inner<T> {
    /// One FIFO per class, indexed by [`Priority::index`].
    classes: [VecDeque<T>; 3],
    closed: bool,
}

impl<T> Inner<T> {
    fn total(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }
}

/// Bounded MPMC priority queue.  All methods take `&self`; share via
/// `Arc`.
pub struct JobQueue<T> {
    inner: RankedMutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: RankedMutex::new(
                Inner {
                    classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                    closed: false,
                },
                rank::QUEUE_INNER,
                "JobQueue.inner",
            ),
            available: Condvar::new(),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued (not yet popped) jobs across all classes.
    pub fn len(&self) -> usize {
        self.inner.lock().total()
    }

    /// Queued jobs of one class.
    pub fn class_len(&self, class: Priority) -> usize {
        self.inner.lock().classes[class.index()].len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue without blocking, subject to the class quota.
    ///
    /// # Errors
    ///
    /// `PushError::Full` when total occupancy has reached the class's
    /// quota (the shared cap, for interactive), `PushError::Closed`
    /// after `close`.
    pub fn try_push(&self, job: T, class: Priority) -> Result<(), PushError> {
        self.try_push_reclaim(job, class).map_err(|(_, e)| e)
    }

    /// [`try_push`](Self::try_push), but a refused job is handed back to
    /// the caller instead of dropped — the jobs pump retries checked-out
    /// work slices on the next tick rather than losing them.
    ///
    /// # Errors
    ///
    /// The refused job together with the reason.
    pub fn try_push_reclaim(&self, job: T, class: Priority) -> Result<(), (T, PushError)> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err((job, PushError::Closed));
        }
        if inner.total() >= class.quota(self.capacity) {
            return Err((job, PushError::Full));
        }
        inner.classes[class.index()].push_back(job);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocking dequeue in strict priority order.  Returns `None` only
    /// once the queue is closed and every queued job has been handed
    /// out — accepted work is never dropped by shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(job) = inner.classes.iter_mut().find_map(|queue| queue.pop_front()) {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = inner.wait(&self.available);
        }
    }

    /// Close the queue: future pushes fail, blocked `pop`s wake, queued
    /// jobs still drain.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        drop(inner);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn push(q: &JobQueue<u32>, job: u32) -> Result<(), PushError> {
        q.try_push(job, Priority::Interactive)
    }

    #[test]
    fn push_pop_round_trips_in_fifo_order() {
        let q = JobQueue::new(4);
        push(&q, 1).unwrap();
        push(&q, 2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = JobQueue::new(1);
        push(&q, 1).unwrap();
        assert_eq!(push(&q, 2), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        push(&q, 3).unwrap();
    }

    #[test]
    fn close_drains_queued_jobs_then_returns_none() {
        let q = JobQueue::new(4);
        push(&q, 1).unwrap();
        push(&q, 2).unwrap();
        q.close();
        assert_eq!(push(&q, 3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn pop_serves_classes_in_strict_priority_order() {
        // Capacity 16 keeps every class quota (bg 8, batch 12) clear of
        // the five pushes, so only ordering is under test here.
        let q = JobQueue::new(16);
        q.try_push(30, Priority::Background).unwrap();
        q.try_push(20, Priority::Batch).unwrap();
        q.try_push(10, Priority::Interactive).unwrap();
        q.try_push(11, Priority::Interactive).unwrap();
        q.try_push(31, Priority::Background).unwrap();
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.pop(), Some(30));
        assert_eq!(q.pop(), Some(31));
        assert_eq!(q.class_len(Priority::Background), 0);
    }

    #[test]
    fn class_quotas_shed_background_first() {
        // cap 8: background quota 4, batch quota 6, interactive 8.
        let q = JobQueue::new(8);
        for i in 0..4 {
            q.try_push(i, Priority::Background).unwrap();
        }
        assert_eq!(
            q.try_push(99, Priority::Background),
            Err(PushError::Full),
            "background saturates at half the cap"
        );
        // Batch still has room up to 6 total...
        q.try_push(50, Priority::Batch).unwrap();
        q.try_push(51, Priority::Batch).unwrap();
        assert_eq!(q.try_push(52, Priority::Batch), Err(PushError::Full));
        // ...and interactive keeps the reserved headroom to the full cap.
        q.try_push(1, Priority::Interactive).unwrap();
        q.try_push(2, Priority::Interactive).unwrap();
        assert_eq!(q.try_push(3, Priority::Interactive), Err(PushError::Full));
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn quota_floors_keep_tiny_queues_usable() {
        let q = JobQueue::new(1);
        q.try_push(7, Priority::Background).unwrap();
        assert_eq!(q.pop(), Some(7));
    }

    #[test]
    fn priority_parsing_and_labels_round_trip() {
        for class in Priority::ALL {
            assert_eq!(Priority::parse(class.label()), Ok(class));
        }
        assert_eq!(Priority::parse("INTERACTIVE"), Ok(Priority::Interactive));
        assert!(Priority::parse("urgent").is_err());
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_jobs() {
        let q = Arc::new(JobQueue::new(8));
        let produced = 200u32;
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(j) = q.pop() {
                        got.push(j);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..produced / 2 {
                        let job = p * 1000 + i;
                        let class = match job % 3 {
                            0 => Priority::Interactive,
                            1 => Priority::Batch,
                            _ => Priority::Background,
                        };
                        loop {
                            match q.try_push(job, class) {
                                Ok(()) => break,
                                Err(PushError::Full) => thread::yield_now(),
                                Err(PushError::Closed) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), produced as usize);
        all.dedup();
        assert_eq!(
            all.len(),
            produced as usize,
            "every job delivered exactly once"
        );
    }
}
