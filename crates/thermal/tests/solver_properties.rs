//! Randomized property tests for the finite-volume solver: physical
//! invariants that must hold for *any* well-posed problem, plus the
//! divergence-safety and parallel-equivalence guarantees.
//!
//! Cases come from a deterministic [`Rng64`] stream per test; the shrunk
//! counterexample from the former proptest suite is kept explicit.

use tsc_rng::Rng64;
use tsc_thermal::{CgSolver, Heatsink, Problem, SorSolver};
use tsc_units::{
    HeatTransferCoefficient, Length, Power, TempDelta, Temperature, ThermalConductivity,
};

/// A small random problem: dimensions, conductivity contrast, heat
/// placement and sink parameters all fuzzed.
#[derive(Debug, Clone)]
struct RandomCase {
    nx: usize,
    ny: usize,
    nz: usize,
    k_base: f64,
    k_layer: f64,
    hot_layer: usize,
    hot_i: usize,
    hot_j: usize,
    hot_k: usize,
    watts: f64,
    h: f64,
    ambient_c: f64,
}

impl RandomCase {
    fn sample(rng: &mut Rng64) -> Self {
        let nx = rng.gen_range(2..7);
        let ny = rng.gen_range(2..7);
        let nz = rng.gen_range(2..6);
        Self {
            nx,
            ny,
            nz,
            k_base: rng.gen_range_f64(0.1..200.0),
            k_layer: rng.gen_range_f64(0.1..200.0),
            hot_layer: rng.gen_range(0..nz),
            hot_i: rng.gen_range(0..nx),
            hot_j: rng.gen_range(0..ny),
            hot_k: rng.gen_range(0..nz),
            watts: rng.gen_range_f64(0.01..5.0),
            h: rng.gen_range_f64(1e4..1e6),
            ambient_c: rng.gen_range_f64(20.0..110.0),
        }
    }

    /// The shrunk counterexample the old proptest suite archived for
    /// `energy_always_balances` — a weak source against a strong sink.
    fn regression() -> Self {
        Self {
            nx: 6,
            ny: 6,
            nz: 4,
            k_base: 72.3720118717053,
            k_layer: 19.654930364550694,
            hot_layer: 3,
            hot_i: 1,
            hot_j: 0,
            hot_k: 0,
            watts: 0.01,
            h: 862736.2905191294,
            ambient_c: 20.0,
        }
    }
}

fn build(case: &RandomCase) -> Problem {
    let mut p = Problem::uniform_block(
        case.nx,
        case.ny,
        case.nz,
        Length::from_millimeters(1.0),
        Length::from_millimeters(1.0),
        Length::from_micrometers(50.0),
        ThermalConductivity::new(case.k_base),
    );
    p.set_layer_conductivity(
        case.hot_layer,
        ThermalConductivity::new(case.k_layer),
        ThermalConductivity::new(case.k_layer),
    );
    p.set_bottom_heatsink(Heatsink::new(
        HeatTransferCoefficient::new(case.h),
        Temperature::from_celsius(case.ambient_c),
    ));
    p.add_power(
        case.hot_i,
        case.hot_j,
        case.hot_k,
        Power::from_watts(case.watts),
    );
    p
}

fn check_energy_balances(case: &RandomCase) {
    // The residual tolerance is 1e-9, but ill-conditioned random
    // cases (high contrast + weak sinks) amplify it into the energy
    // functional; 1e-4 relative is still far beyond any physical
    // modelling error.
    let sol = CgSolver::new().solve(&build(case)).expect("well-posed");
    assert!(
        sol.energy.relative_error() < 1e-4,
        "imbalance {}",
        sol.energy.relative_error()
    );
}

#[test]
fn energy_always_balances() {
    check_energy_balances(&RandomCase::regression());
    let mut rng = Rng64::seed_from_u64(0x6001);
    for _ in 0..24 {
        check_energy_balances(&RandomCase::sample(&mut rng));
    }
}

#[test]
fn maximum_principle() {
    let mut rng = Rng64::seed_from_u64(0x6002);
    for _ in 0..24 {
        let case = RandomCase::sample(&mut rng);
        let sol = CgSolver::new().solve(&build(&case)).expect("well-posed");
        let ambient = Temperature::from_celsius(case.ambient_c);
        // No cell may fall below ambient (single sink, sources only).
        assert!(sol.temperatures.min_temperature() >= ambient - TempDelta::new(1e-9));
        // The hottest cell is the heated one.
        let hottest = sol.temperatures.hottest_cell();
        assert_eq!(
            (hottest.i, hottest.j, hottest.k),
            (case.hot_i, case.hot_j, case.hot_k)
        );
    }
}

#[test]
fn power_scaling_is_linear() {
    let mut rng = Rng64::seed_from_u64(0x6003);
    for _ in 0..24 {
        let case = RandomCase::sample(&mut rng);
        // Steady conduction is linear: doubling power doubles every rise.
        let p1 = build(&case);
        let mut p2 = build(&case);
        p2.add_power(
            case.hot_i,
            case.hot_j,
            case.hot_k,
            Power::from_watts(case.watts),
        );
        let s1 = CgSolver::new().solve(&p1).expect("p1");
        let s2 = CgSolver::new().solve(&p2).expect("p2");
        let ambient = Temperature::from_celsius(case.ambient_c);
        let rise1 = (s1.temperatures.max_temperature() - ambient).kelvin();
        let rise2 = (s2.temperatures.max_temperature() - ambient).kelvin();
        assert!(
            (rise2 - 2.0 * rise1).abs() <= 1e-6 * rise1.max(1e-12),
            "rise1 {rise1}, rise2 {rise2}"
        );
    }
}

#[test]
fn better_conductivity_never_hurts() {
    let mut rng = Rng64::seed_from_u64(0x6004);
    for _ in 0..24 {
        let case = RandomCase::sample(&mut rng);
        let p1 = build(&case);
        let mut better = case.clone();
        better.k_base *= 2.0;
        better.k_layer *= 2.0;
        let p2 = build(&better);
        let t1 = CgSolver::new()
            .solve(&p1)
            .expect("p1")
            .temperatures
            .max_temperature();
        let t2 = CgSolver::new()
            .solve(&p2)
            .expect("p2")
            .temperatures
            .max_temperature();
        assert!(
            t2 <= t1 + TempDelta::new(1e-9),
            "doubling k heated the chip: {t1} -> {t2}"
        );
    }
}

#[test]
fn stronger_heatsink_never_hurts() {
    let mut rng = Rng64::seed_from_u64(0x6005);
    for _ in 0..24 {
        let case = RandomCase::sample(&mut rng);
        let p1 = build(&case);
        let mut better = case.clone();
        better.h *= 3.0;
        let p2 = build(&better);
        let t1 = CgSolver::new()
            .solve(&p1)
            .expect("p1")
            .temperatures
            .max_temperature();
        let t2 = CgSolver::new()
            .solve(&p2)
            .expect("p2")
            .temperatures
            .max_temperature();
        assert!(t2 <= t1 + TempDelta::new(1e-9));
    }
}

#[test]
fn cg_and_sor_agree_on_random_problems() {
    let mut rng = Rng64::seed_from_u64(0x6006);
    for _ in 0..8 {
        let case = RandomCase::sample(&mut rng);
        let p = build(&case);
        let a = CgSolver::new().solve(&p).expect("cg");
        let b = SorSolver::new()
            .with_tolerance(1e-10)
            .solve(&p)
            .expect("sor");
        let ta = a.temperatures.max_temperature().kelvin();
        let tb = b.temperatures.max_temperature().kelvin();
        assert!(
            (ta - tb).abs() < 1e-3 * (ta - 273.15).abs().max(1.0),
            "cg {ta} vs sor {tb}"
        );
    }
}

/// Whenever `solve` returns `Ok`, every temperature (and the reported
/// residual) must be finite — the divergence-safety guarantee.
#[test]
fn ok_solutions_are_always_finite() {
    let mut rng = Rng64::seed_from_u64(0x6007);
    for _ in 0..24 {
        let case = RandomCase::sample(&mut rng);
        let p = build(&case);
        for sol in [
            CgSolver::new().solve(&p),
            SorSolver::new().with_tolerance(1e-8).solve(&p),
        ]
        .into_iter()
        .flatten()
        {
            assert!(
                sol.stats.residual.is_finite(),
                "Ok with non-finite residual"
            );
            assert!(
                sol.temperatures.iter_kelvin().all(|t| t.is_finite()),
                "Ok with non-finite temperature"
            );
        }
    }
}

/// Parallel and serial CG must agree essentially bitwise (≤ 1e-9 K);
/// same for the red-black parallel SOR against its serial sweep at the
/// solution level.
#[test]
fn parallel_and_serial_solves_agree() {
    let mut rng = Rng64::seed_from_u64(0x6008);
    for _ in 0..8 {
        let case = RandomCase::sample(&mut rng);
        let p = build(&case);
        let serial = CgSolver::new().with_threads(1).solve(&p).expect("serial");
        let parallel = CgSolver::new()
            .with_threads(4)
            .with_parallel_crossover(0)
            .solve(&p)
            .expect("parallel");
        let max_diff = serial
            .temperatures
            .iter_kelvin()
            .zip(parallel.temperatures.iter_kelvin())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        assert!(
            max_diff <= 1e-9,
            "parallel CG deviates from serial by {max_diff} K"
        );
    }
}
