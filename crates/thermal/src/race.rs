//! Dynamic write-set race checking for the parallel engine
//! (`--features race-check` only — zero cost otherwise).
//!
//! The hermetic workspace cannot use miri, loom or a thread sanitizer,
//! so the red-black `SharedSlice` discipline in [`crate::engine`] gets a
//! homegrown detector instead: under this feature every parallel region
//! records, per band, the flat indices it read and wrote, and after the
//! region joins, [`check_logs`] asserts
//!
//! 1. **write/write disjointness** — no index is written by two bands in
//!    the same pass (the colour discipline's core claim), and
//! 2. **read/foreign-write separation** — no band reads an index that a
//!    *different* band wrote in the same pass (a band may freely read
//!    its own writes; cross-band reads must target the inactive colour,
//!    which nobody writes).
//!
//! Band-contiguous regions (`map_mut` and friends) are write-disjoint by
//! construction — `split_at_mut` proves it to the compiler — but they
//! run through [`check_intervals`] anyway, so every parallel region of a
//! CG/SOR/multigrid solve shows up in [`regions_checked`] and a
//! refactoring that breaks band alignment is caught at the same gate.
//!
//! The second half of the feature is **schedule perturbation**
//! ([`set_schedule_seed`]): with a seed installed, every `ExecPlan`
//! executes its bands *sequentially in a seed-derived permuted order*
//! instead of spawning. Any cross-band ordering dependence — a reduction
//! summed in completion order, a sweep reading a neighbour band's
//! fresh writes — changes the result, so the harness asserts
//! bitwise-identical temperature fields across seeds against the
//! unperturbed solve.

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Per-band record of the flat indices one parallel region accessed
/// through a `SharedSlice`.
#[derive(Debug, Default, Clone)]
pub struct AccessLog {
    /// Indices written (unsorted, duplicates allowed until checking).
    pub writes: Vec<usize>,
    /// Indices read.
    pub reads: Vec<usize>,
}

/// One detected violation of the access discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conflict {
    /// Two bands wrote the same index in one pass.
    WriteWrite {
        band_a: usize,
        band_b: usize,
        index: usize,
    },
    /// A band read an index another band wrote in the same pass.
    ReadWrite {
        reader: usize,
        writer: usize,
        index: usize,
    },
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::WriteWrite {
                band_a,
                band_b,
                index,
            } => write!(f, "bands {band_a} and {band_b} both wrote index {index}"),
            Self::ReadWrite {
                reader,
                writer,
                index,
            } => write!(
                f,
                "band {reader} read index {index} while band {writer} wrote it"
            ),
        }
    }
}

/// Everything wrong with one parallel region.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Human-readable region label (which engine entry point).
    pub region: String,
    /// First [`MAX_REPORTED`] conflicts found.
    pub conflicts: Vec<Conflict>,
    /// Total conflicts (may exceed `conflicts.len()`).
    pub total: usize,
}

/// Conflicts listed per report before truncation.
pub const MAX_REPORTED: usize = 16;

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "data-race discipline violated in region `{}` ({} conflict(s)):",
            self.region, self.total
        )?;
        for c in &self.conflicts {
            writeln!(f, "  {c}")?;
        }
        if self.total > self.conflicts.len() {
            writeln!(f, "  … and {} more", self.total - self.conflicts.len())?;
        }
        Ok(())
    }
}

impl std::error::Error for RaceReport {}

static REGIONS_CHECKED: AtomicUsize = AtomicUsize::new(0);

/// Number of parallel regions the checker has inspected since the last
/// [`reset_regions`] — harnesses assert this moved to prove the
/// instrumentation actually ran.
#[must_use]
pub fn regions_checked() -> usize {
    REGIONS_CHECKED.load(Ordering::Relaxed)
}

/// Resets the region counter (test/harness bookkeeping).
pub fn reset_regions() {
    REGIONS_CHECKED.store(0, Ordering::Relaxed);
}

/// Checks one `SharedSlice` region's per-band access logs for
/// write/write and read/foreign-write conflicts.
///
/// Logs are sorted and deduplicated in place.
///
/// # Errors
///
/// Returns the [`RaceReport`] describing every conflict class found.
pub fn check_logs(region: &str, logs: &mut [AccessLog]) -> Result<(), RaceReport> {
    REGIONS_CHECKED.fetch_add(1, Ordering::Relaxed);
    for log in logs.iter_mut() {
        log.writes.sort_unstable();
        log.writes.dedup();
    }
    let mut conflicts = Vec::new();
    let mut total = 0_usize;
    let record = |c: Conflict, conflicts: &mut Vec<Conflict>, total: &mut usize| {
        if conflicts.len() < MAX_REPORTED {
            conflicts.push(c);
        }
        *total += 1;
    };
    for a in 0..logs.len() {
        for b in a + 1..logs.len() {
            let (mut i, mut j) = (0, 0);
            while i < logs[a].writes.len() && j < logs[b].writes.len() {
                match logs[a].writes[i].cmp(&logs[b].writes[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        record(
                            Conflict::WriteWrite {
                                band_a: a,
                                band_b: b,
                                index: logs[a].writes[i],
                            },
                            &mut conflicts,
                            &mut total,
                        );
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    for (reader, log) in logs.iter().enumerate() {
        for &idx in &log.reads {
            for (writer, other) in logs.iter().enumerate() {
                if writer != reader && other.writes.binary_search(&idx).is_ok() {
                    record(
                        Conflict::ReadWrite {
                            reader,
                            writer,
                            index: idx,
                        },
                        &mut conflicts,
                        &mut total,
                    );
                }
            }
        }
    }
    if total == 0 {
        Ok(())
    } else {
        Err(RaceReport {
            region: region.to_string(),
            conflicts,
            total,
        })
    }
}

/// Checks a band-contiguous region (the `map_mut` family): the bands
/// must be pairwise-disjoint index ranges.
///
/// # Errors
///
/// Returns a [`RaceReport`] naming the first overlapping index of each
/// offending band pair.
pub fn check_intervals(region: &str, bands: &[Range<usize>]) -> Result<(), RaceReport> {
    REGIONS_CHECKED.fetch_add(1, Ordering::Relaxed);
    let mut conflicts = Vec::new();
    let mut total = 0_usize;
    for a in 0..bands.len() {
        for b in a + 1..bands.len() {
            let lo = bands[a].start.max(bands[b].start);
            let hi = bands[a].end.min(bands[b].end);
            if lo < hi {
                if conflicts.len() < MAX_REPORTED {
                    conflicts.push(Conflict::WriteWrite {
                        band_a: a,
                        band_b: b,
                        index: lo,
                    });
                }
                total += hi - lo;
            }
        }
    }
    if total == 0 {
        Ok(())
    } else {
        Err(RaceReport {
            region: region.to_string(),
            conflicts,
            total,
        })
    }
}

/// Panics with the report when a region check fails — the engine's
/// enforcement point.
///
/// # Panics
///
/// Panics iff `result` is `Err` (that is the feature's entire job).
pub fn enforce(result: Result<(), RaceReport>) {
    if let Err(report) = result {
        panic!("{report}");
    }
}

/// Seed 0 is reserved as "no perturbation", so user seeds are offset.
static SCHEDULE_SEED: AtomicU64 = AtomicU64::new(0);

/// Installs (or clears, with `None`) the schedule-perturbation seed.
/// While a seed is installed, every newly built `ExecPlan` executes its
/// bands sequentially in a seed-derived permuted order instead of
/// spawning workers — deterministically exercising band orderings the
/// thread scheduler may never produce.
pub fn set_schedule_seed(seed: Option<u64>) {
    SCHEDULE_SEED.store(seed.map_or(0, |s| s | 1 << 63), Ordering::SeqCst);
}

/// The active perturbation seed, if any.
#[must_use]
pub(crate) fn schedule_seed() -> Option<u64> {
    let raw = SCHEDULE_SEED.load(Ordering::SeqCst);
    (raw != 0).then_some(raw & !(1 << 63))
}

/// A seed-derived permutation of `0..n` (Fisher–Yates over SplitMix64).
#[must_use]
pub(crate) fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = tsc_rng::Rng64::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_logs_pass() {
        let mut logs = vec![
            AccessLog {
                writes: vec![0, 2, 4],
                reads: vec![6, 8],
            },
            AccessLog {
                writes: vec![1, 3, 5],
                reads: vec![7, 9],
            },
        ];
        assert!(check_logs("test", &mut logs).is_ok());
    }

    #[test]
    fn overlapping_writes_are_reported() {
        let mut logs = vec![
            AccessLog {
                writes: vec![0, 7, 2],
                reads: vec![],
            },
            AccessLog {
                writes: vec![9, 7],
                reads: vec![],
            },
        ];
        let report = check_logs("test", &mut logs).expect_err("must conflict");
        assert_eq!(report.total, 1);
        assert_eq!(
            report.conflicts[0],
            Conflict::WriteWrite {
                band_a: 0,
                band_b: 1,
                index: 7
            }
        );
    }

    #[test]
    fn reading_a_foreign_write_is_reported() {
        let mut logs = vec![
            AccessLog {
                writes: vec![0],
                reads: vec![5],
            },
            AccessLog {
                writes: vec![5],
                reads: vec![],
            },
        ];
        let report = check_logs("test", &mut logs).expect_err("must conflict");
        assert!(matches!(
            report.conflicts[0],
            Conflict::ReadWrite {
                reader: 0,
                writer: 1,
                index: 5
            }
        ));
    }

    #[test]
    fn reading_your_own_write_is_fine() {
        let mut logs = vec![
            AccessLog {
                writes: vec![4],
                reads: vec![4],
            },
            AccessLog {
                writes: vec![5],
                reads: vec![5],
            },
        ];
        assert!(check_logs("test", &mut logs).is_ok());
    }

    #[test]
    fn interval_overlap_is_reported() {
        assert!(check_intervals("test", &[0..4, 4..8]).is_ok());
        let report = check_intervals("test", &[0..5, 4..8]).expect_err("overlap");
        assert_eq!(report.total, 1);
    }

    #[test]
    fn permutations_are_deterministic_and_complete() {
        let p1 = permutation(8, 42);
        let p2 = permutation(8, 42);
        assert_eq!(p1, p2);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        assert_ne!(permutation(8, 1), permutation(8, 2), "seeds differ");
    }

    #[test]
    fn region_counter_moves() {
        reset_regions();
        let _ = check_intervals("test", &[0..1, 1..2]);
        let _ = check_logs("test", &mut []);
        assert_eq!(regions_checked(), 2);
    }
}
