//! `.collect()` inside a parallel-region closure.
pub fn step(plan: &ExecPlan, x: &mut [f64]) {
    plan.map_mut(x, |_range, chunk| {
        let doubled: Vec<f64> = chunk.iter().map(|v| v * 2.0).collect();
        let _ = doubled;
    });
}
