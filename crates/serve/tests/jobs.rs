//! Integration tests for the `/v1/jobs` optimization-job endpoints,
//! over a real socket.
//!
//! Covers the full lifecycle (submit → poll → result), NDJSON event
//! streaming, cooperative cancellation, TTL eviction, table-full
//! backpressure, scheduler/interactive isolation, and the acceptance
//! criterion that a job killed mid-run and resumed from its fetched
//! checkpoint lands on the uninterrupted run's best cost and final RNG
//! words, bitwise.

mod common;

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use common::{event_kind, one_shot, SessionClient};
use tsc_bench::json::{parse, Json};
use tsc_jobs::{Engine, JobSpec, TableConfig};
use tsc_serve::{Server, ServerConfig};

const POLL_WAIT: Duration = Duration::from_secs(240);

/// A small fast parallel-tempered run on the Rocket fixture.
const QUICK_SA: &str = r#"{"kind": "floorplan_sa", "design": "rocket", "replicas": 2, "seed": 11}"#;

/// A long run (standard schedule) that stays running while tests probe
/// around it.
const LONG_SA: &str = r#"{"kind": "floorplan_sa", "design": "rocket", "replicas": 2, "seed": 3,
        "schedule": "standard"}"#;

/// Submits a job and returns its id (asserting the 202 contract).
fn submit(addr: SocketAddr, body: &str) -> String {
    let response = one_shot(addr, "POST", "/v1/jobs", &[], body.as_bytes());
    assert_eq!(response.status, 202, "submit: {}", response.body_str());
    let doc = parse(&response.body_str()).expect("submit response is JSON");
    assert_eq!(doc.get("state").and_then(Json::as_str), Some("queued"));
    let id = doc
        .get("id")
        .and_then(Json::as_str)
        .expect("submit response carries an id")
        .to_string();
    assert_eq!(id.len(), 16, "ids are 16 hex digits: {id:?}");
    id
}

/// Polls `GET /v1/jobs/{id}` until `predicate` accepts the status doc.
fn poll_until(addr: SocketAddr, id: &str, what: &str, predicate: impl Fn(&Json) -> bool) -> Json {
    let start = Instant::now();
    loop {
        let response = one_shot(addr, "GET", &format!("/v1/jobs/{id}"), &[], b"");
        assert_eq!(response.status, 200, "poll: {}", response.body_str());
        let doc = parse(&response.body_str()).expect("status is JSON");
        if predicate(&doc) {
            return doc;
        }
        assert!(
            start.elapsed() < POLL_WAIT,
            "timed out waiting for {what}; last status: {}",
            doc.pretty()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn state_of(doc: &Json) -> &str {
    doc.get("state").and_then(Json::as_str).unwrap_or("?")
}

#[test]
fn job_lifecycle_submit_poll_result_and_metrics() {
    let server = Server::start(ServerConfig::default()).expect("start");
    let id = submit(server.addr(), QUICK_SA);

    let done = poll_until(server.addr(), &id, "job completion", |doc| {
        state_of(doc) == "done"
    });
    assert_eq!(done.get("class").and_then(Json::as_str), Some("background"));
    let progress = done.get("progress").expect("progress");
    assert!(
        progress
            .get("fraction")
            .and_then(Json::as_f64)
            .is_some_and(|f| (f - 1.0).abs() < 1e-12),
        "finished jobs report fraction 1.0"
    );
    let result = done.get("result").expect("done status carries the result");
    assert!(result
        .get("best_cost_bits")
        .and_then(Json::as_str)
        .is_some());
    assert!(
        result
            .get("dedup_hits")
            .and_then(Json::as_f64)
            .is_some_and(|h| h > 0.0),
        "the eval memo must serve repeats: {}",
        result.pretty()
    );

    // The rollup counters made it into the exposition.
    let metrics = one_shot(server.addr(), "GET", "/metrics", &[], b"");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str();
    tsc_serve::validate_exposition(&text).expect("valid exposition");
    assert!(text.contains("tsc_jobs_submitted_total 1"), "{text}");
    assert!(text.contains("tsc_jobs_completed_total 1"), "{text}");
    let dedup = text
        .lines()
        .find_map(|l| l.strip_prefix("tsc_job_dedup_hits_total "))
        .and_then(|v| v.parse::<f64>().ok())
        .expect("dedup counter exposed");
    assert!(dedup > 0.0, "dedupe counter must be positive");
    server.shutdown();
}

#[test]
fn events_stream_replays_progress_and_ends() {
    let server = Server::start(ServerConfig::default()).expect("start");
    let id = submit(server.addr(), QUICK_SA);

    let mut stream = SessionClient::open_raw(
        server.addr(),
        "GET",
        &format!("/v1/jobs/{id}/events"),
        &[],
        b"",
    );
    assert_eq!(stream.read_head(POLL_WAIT), 200);
    let mut states = Vec::new();
    let mut progress_events = 0usize;
    let mut last_best = f64::INFINITY;
    loop {
        let event = stream.next_event(POLL_WAIT);
        match event_kind(&event).as_str() {
            "state" => states.push(common::field_str(&event, "state")),
            "progress" => {
                progress_events += 1;
                let best = common::field_num(&event, "best_cost");
                assert!(
                    best <= last_best + 1e-12,
                    "best cost must be monotone non-increasing"
                );
                last_best = best;
            }
            "end" => {
                assert_eq!(common::field_str(&event, "state"), "done");
                break;
            }
            other => panic!("unexpected event kind {other:?}: {}", event.pretty()),
        }
    }
    assert!(
        states.contains(&"queued".to_string()) && states.contains(&"running".to_string()),
        "the stream replays buffered lifecycle events: {states:?}"
    );
    assert!(progress_events > 0, "at least one barrier event");
    assert!(
        stream.at_eof(Duration::from_secs(10)),
        "close-delimited framing: the server closes after \"end\""
    );

    // A stream for an unknown id refuses with a plain 404 before any
    // NDJSON framing starts.
    let mut bogus = SessionClient::open_raw(
        server.addr(),
        "GET",
        "/v1/jobs/00000000deadbeef/events",
        &[],
        b"",
    );
    assert_eq!(bogus.read_head(Duration::from_secs(30)), 404);
    server.shutdown();
}

#[test]
fn cancel_stops_a_running_job() {
    let server = Server::start(ServerConfig::default()).expect("start");
    let id = submit(server.addr(), LONG_SA);
    poll_until(server.addr(), &id, "job to start", |doc| {
        state_of(doc) == "running"
    });

    let response = one_shot(
        server.addr(),
        "POST",
        &format!("/v1/jobs/{id}/cancel"),
        &[],
        b"",
    );
    assert_eq!(response.status, 200, "{}", response.body_str());
    let doc = parse(&response.body_str()).expect("cancel response is JSON");
    assert!(
        matches!(state_of(&doc), "running" | "cancelled"),
        "in-flight slices may still be draining: {}",
        doc.pretty()
    );

    let final_doc = poll_until(server.addr(), &id, "cancellation to settle", |doc| {
        state_of(doc) == "cancelled"
    });
    assert!(
        final_doc.get("result").is_none(),
        "cancelled jobs expose no result"
    );
    // Cancelling a terminal job is an idempotent 200.
    let again = one_shot(
        server.addr(),
        "POST",
        &format!("/v1/jobs/{id}/cancel"),
        &[],
        b"",
    );
    assert_eq!(again.status, 200);

    let metrics = one_shot(server.addr(), "GET", "/metrics", &[], b"");
    assert!(metrics.body_str().contains("tsc_jobs_cancelled_total 1"));
    server.shutdown();
}

#[test]
fn ttl_evicts_terminal_jobs() {
    let server = Server::start(ServerConfig {
        job_table: TableConfig {
            ttl: Duration::from_millis(300),
            ..TableConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start");
    let id = submit(server.addr(), QUICK_SA);
    poll_until(server.addr(), &id, "job completion", |doc| {
        state_of(doc) == "done"
    });

    // The pump evicts on its next tick after the TTL lapses.
    let start = Instant::now();
    loop {
        let response = one_shot(server.addr(), "GET", &format!("/v1/jobs/{id}"), &[], b"");
        if response.status == 404 {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "job must evict after its TTL"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let metrics = one_shot(server.addr(), "GET", "/metrics", &[], b"");
    assert!(metrics.body_str().contains("tsc_jobs_evicted_total 1"));
    server.shutdown();
}

#[test]
fn full_table_answers_429_with_retry_after() {
    let server = Server::start(ServerConfig {
        job_table: TableConfig {
            capacity: 1,
            ..TableConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start");
    let id = submit(server.addr(), LONG_SA);

    let refused = one_shot(server.addr(), "POST", "/v1/jobs", &[], QUICK_SA.as_bytes());
    assert_eq!(refused.status, 429, "{}", refused.body_str());
    assert!(
        refused.header("retry-after").is_some(),
        "429 must carry Retry-After"
    );

    let _ = one_shot(
        server.addr(),
        "POST",
        &format!("/v1/jobs/{id}/cancel"),
        &[],
        b"",
    );
    poll_until(server.addr(), &id, "cancellation", |doc| {
        state_of(doc) == "cancelled"
    });
    server.shutdown();
}

#[test]
fn submission_and_routing_errors_are_typed() {
    let server = Server::start(ServerConfig::default()).expect("start");
    let addr = server.addr();

    for (body, fragment) in [
        (&b"not json"[..], "invalid JSON"),
        (br#"{"design": "rocket"}"#, "is required"),
        (br#"{"kind": "mine_bitcoin"}"#, "unknown job kind"),
        (
            br#"{"kind": "floorplan_sa", "design": "warp-core"}"#,
            "warp-core",
        ),
        (br#"{"kind": "floorplan_sa", "replicas": 99}"#, "replicas"),
    ] {
        let response = one_shot(addr, "POST", "/v1/jobs", &[], body);
        assert_eq!(response.status, 400, "{}", response.body_str());
        assert!(
            response.body_str().contains(fragment),
            "{} should mention {fragment:?}",
            response.body_str()
        );
    }

    // Collection-level and entry-level misroutes.
    assert_eq!(one_shot(addr, "GET", "/v1/jobs", &[], b"").status, 405);
    assert_eq!(
        one_shot(addr, "GET", "/v1/jobs/not-a-hex-id-xx", &[], b"").status,
        404
    );
    assert_eq!(
        one_shot(addr, "GET", "/v1/jobs/00000000deadbeef", &[], b"").status,
        404
    );
    assert_eq!(
        one_shot(addr, "DELETE", "/v1/jobs/00000000deadbeef", &[], b"").status,
        405
    );
    let id = submit(addr, QUICK_SA);
    assert_eq!(
        one_shot(addr, "POST", &format!("/v1/jobs/{id}"), &[], b"").status,
        405
    );
    assert_eq!(
        one_shot(addr, "GET", &format!("/v1/jobs/{id}/cancel"), &[], b"").status,
        405
    );
    assert_eq!(
        one_shot(addr, "GET", &format!("/v1/jobs/{id}/bogus"), &[], b"").status,
        404
    );
    server.shutdown();
}

/// The acceptance criterion: kill a job mid-run, resume it on a fresh
/// server from the checkpoint fetched over the wire, and land on the
/// uninterrupted run's best cost and final RNG words, bitwise.
#[test]
fn checkpoint_kill_resume_is_bitwise_identical_over_sockets() {
    // Reference: the same spec driven to completion in-process.
    let spec_body = parse(QUICK_SA).expect("json");
    let spec = JobSpec::parse(&spec_body).expect("spec");
    let mut reference = Engine::from_spec(&spec).expect("engine");
    while !reference.is_done() {
        let mut batch = Vec::new();
        while let Some(mut work) = reference.next_work() {
            work.run();
            batch.push(work);
        }
        assert!(!batch.is_empty(), "engine stalled");
        for work in batch {
            let _ = reference.complete_shard(work);
        }
    }
    let reference_result = reference.result().expect("reference result");
    let reference_cp = reference.checkpoint();

    // Server A: run the job partway, fetch its checkpoint, then kill it.
    let server_a = Server::start(ServerConfig::default()).expect("start A");
    let id = submit(server_a.addr(), QUICK_SA);
    poll_until(server_a.addr(), &id, "a few barriers", |doc| {
        doc.get("progress")
            .and_then(|p| p.get("round"))
            .and_then(Json::as_usize)
            .is_some_and(|r| r >= 3)
    });
    let response = one_shot(
        server_a.addr(),
        "GET",
        &format!("/v1/jobs/{id}/checkpoint"),
        &[],
        b"",
    );
    assert_eq!(response.status, 200, "{}", response.body_str());
    let doc = parse(&response.body_str()).expect("checkpoint doc");
    let checkpoint = doc.get("checkpoint").expect("checkpoint field").clone();
    let killed_round = checkpoint
        .get("round")
        .and_then(Json::as_usize)
        .expect("checkpoint carries the barrier round");
    assert!(killed_round >= 3, "checkpoint is from a mid-run barrier");
    server_a.shutdown();

    // Server B: resume from the wire checkpoint and run to completion.
    let server_b = Server::start(ServerConfig::default()).expect("start B");
    let resume_body = Json::object()
        .field("kind", "floorplan_sa")
        .field("resume", checkpoint)
        .pretty();
    let resumed_id = submit(server_b.addr(), &resume_body);
    let done = poll_until(server_b.addr(), &resumed_id, "resumed completion", |doc| {
        state_of(doc) == "done"
    });
    let resumed_result = done.get("result").expect("resumed result");
    assert_eq!(
        resumed_result.get("best_cost_bits").and_then(Json::as_str),
        reference_result
            .get("best_cost_bits")
            .and_then(Json::as_str),
        "resumed best cost must match the uninterrupted run bitwise"
    );

    // Final RNG words, compared through the post-completion checkpoints.
    let response = one_shot(
        server_b.addr(),
        "GET",
        &format!("/v1/jobs/{resumed_id}/checkpoint"),
        &[],
        b"",
    );
    let final_cp = parse(&response.body_str())
        .expect("final checkpoint doc")
        .get("checkpoint")
        .expect("checkpoint field")
        .clone();
    let rng_words = |cp: &Json| -> Vec<String> {
        let mut words: Vec<String> = cp
            .get("replicas")
            .and_then(Json::as_array)
            .expect("replicas")
            .iter()
            .map(|r| {
                r.get("rng")
                    .and_then(Json::as_str)
                    .expect("rng")
                    .to_string()
            })
            .collect();
        words.push(
            cp.get("swap_rng")
                .and_then(Json::as_str)
                .expect("swap_rng")
                .to_string(),
        );
        words
    };
    assert_eq!(
        rng_words(&final_cp),
        rng_words(&reference_cp),
        "resumed RNG streams must land on identical words"
    );
    server_b.shutdown();
}

/// Scheduler/interactive isolation: with the background quota saturated
/// by long jobs, interactive solves keep flowing and stay fast — job
/// slices ride the queue at background priority, behind every request.
#[test]
fn job_flood_leaves_interactive_traffic_responsive() {
    let server = Server::start(ServerConfig::default()).expect("start");
    let addr = server.addr();
    let first = submit(addr, LONG_SA);
    let second = submit(
        addr,
        r#"{"kind": "floorplan_sa", "design": "rocket", "replicas": 2, "seed": 4,
            "schedule": "standard"}"#,
    );
    poll_until(addr, &first, "background work to start", |doc| {
        state_of(doc) == "running"
    });

    let mut worst = Duration::ZERO;
    for _ in 0..10 {
        let start = Instant::now();
        let response = one_shot(
            addr,
            "POST",
            "/v1/solve",
            &[],
            br#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6}"#,
        );
        assert_eq!(response.status, 200, "{}", response.body_str());
        worst = worst.max(start.elapsed());
    }
    assert!(
        worst < Duration::from_secs(30),
        "interactive solves must not starve behind the job flood (worst {worst:?})"
    );

    // The jobs were genuinely live while the flood ran.
    let status = one_shot(addr, "GET", &format!("/v1/jobs/{first}"), &[], b"");
    assert!(
        matches!(
            parse(&status.body_str())
                .ok()
                .as_ref()
                .map(state_of)
                .unwrap_or("?"),
            "running" | "queued"
        ),
        "the long job is still live: {}",
        status.body_str()
    );
    for id in [&first, &second] {
        let _ = one_shot(addr, "POST", &format!("/v1/jobs/{id}/cancel"), &[], b"");
    }
    for id in [&first, &second] {
        poll_until(addr, id, "teardown cancellation", |doc| {
            state_of(doc) == "cancelled"
        });
    }
    server.shutdown();
}
