//! Fig. 3 — temperature vs distance from a thermal structure: a single
//! pillar in a uniformly dissipating field (Gemmini array power,
//! 95 W/cm²), with and without the thermal dielectric in M8-M9.

use tsc_bench::{banner, compare, series};
use tsc_core::beol::{self, BeolProperties};
use tsc_geometry::Grid2;
use tsc_homogenize::pillar::PillarDesign;
use tsc_thermal::{line_profile, CgSolver, Heatsink, Problem};
use tsc_units::{HeatFlux, Length, ThermalConductivity};

/// Builds the Fig. 3 experiment: one tier under uniform array power on
/// top of another tier whose BEOL carries a single pillar block at the
/// domain edge; returns the lateral temperature profile away from it.
fn profile(with_dielectric: bool) -> Result<Vec<(f64, f64)>, tsc_thermal::SolveError> {
    let n = 72;
    let domain = Length::from_micrometers(36.0);
    let beol = if with_dielectric {
        BeolProperties::scaffolded()
    } else {
        BeolProperties::conventional()
    };
    let dz = vec![
        Length::from_micrometers(10.0), // handle
        Length::from_nanometers(100.0), // tier-1 device
        beol::lower_thickness(),
        beol::upper_thickness(),
        beol::ilv_thickness(),
        Length::from_nanometers(100.0), // tier-2 device (powered)
    ];
    let mut p = Problem::new(
        n,
        n,
        domain / n as f64,
        domain / n as f64,
        dz,
        ThermalConductivity::new(1.0),
    );
    p.set_layer_conductivity(
        0,
        tsc_materials::BULK_SILICON.conductivity.vertical,
        tsc_materials::BULK_SILICON.conductivity.lateral,
    );
    for dev in [1usize, 5] {
        p.set_layer_conductivity(
            dev,
            tsc_materials::DEVICE_SILICON_THIN.conductivity.vertical,
            tsc_materials::DEVICE_SILICON_THIN.conductivity.lateral,
        );
    }
    p.set_layer_conductivity(2, beol.lower.vertical, beol.lower.lateral);
    p.set_layer_conductivity(3, beol.upper.vertical, beol.upper.lateral);
    p.set_layer_conductivity(4, beol.ilv.vertical, beol.ilv.lateral);
    // Uniform Gemmini-array power on the top tier.
    // The interface nearest the sink carries the whole stack's heat:
    // at 12 Gemmini tiers that is ~636 W/cm² (Fig. 2 operating point).
    let flux = HeatFlux::from_watts_per_square_cm(636.0);
    let map = Grid2::filled(n, n, flux.watts_per_square_meter());
    p.add_flux_map(5, &map);
    // A pillar block (1 µm constellation) at the left edge, mid-height.
    let k_pillar = PillarDesign::asap7_100nm().effective_vertical_k();
    let block = 2; // 2 cells = 1 µm
    for k in [2usize, 3, 4] {
        for j in (n / 2 - block / 2)..(n / 2 + block) {
            for i in 0..block {
                p.blend_vertical_inclusion(i, j, k, 1.0, k_pillar);
            }
        }
    }
    p.set_bottom_heatsink(Heatsink::two_phase());
    let sol = CgSolver::new().with_tolerance(1e-9).solve(&p)?;
    let prof = line_profile(&sol.temperatures, 0, n / 2, 5);
    let cell_um = domain.micrometers() / n as f64;
    Ok(prof
        .into_iter()
        .map(|(off, dt)| (off as f64 * cell_um, dt.kelvin()))
        .collect())
}

fn main() -> Result<(), tsc_thermal::SolveError> {
    banner("Fig. 3: temperature vs distance from a pillar (12-tier stack flux)");
    let without = profile(false)?;
    let with = profile(true)?;
    series(
        "without thermal dielectric: ΔT K vs distance µm",
        without.iter().copied(),
    );
    series(
        "with thermal dielectric:    ΔT K vs distance µm",
        with.iter().copied(),
    );

    // The Fig. 3 shape: near the pillar both are cool; tens of µm away
    // the dielectric-equipped stack stays several K cooler.
    let rise_at = |prof: &[(f64, f64)], um: f64| {
        prof.iter()
            .min_by(|a, b| {
                (a.0 - um)
                    .abs()
                    .partial_cmp(&(b.0 - um).abs())
                    .expect("finite")
            })
            .expect("non-empty")
            .1
    };
    for dist in [5.0, 15.0, 30.0] {
        compare(
            &format!("excess rise {dist:.0} µm from the pillar (ULK vs TD)"),
            "(Fig. 3 gap grows with distance)",
            format!(
                "{:.2} K vs {:.2} K",
                rise_at(&without, dist),
                rise_at(&with, dist)
            ),
        );
    }
    compare(
        "far-field benefit of the dielectric (ΔT reduction at 30 µm)",
        "~9 K cooler (Fig. 3 annotations 1-9 K)",
        format!("{:.1} K", rise_at(&without, 30.0) - rise_at(&with, 30.0)),
    );
    Ok(())
}
