//! Extension study: heterogeneous logic/memory tier stacks — the Fig. 1
//! picture ("silicon memory, memory access devices … also present on
//! each tier") made quantitative.
//!
//! Interleaving cool 3D-SRAM memory tiers between Gemmini logic tiers
//! trades compute density for thermal headroom; with thermal-aware
//! ordering (memory tiers on top, away from the sink — or logic tiers
//! near it) the same silicon runs cooler.

use tsc_bench::{banner, compare, series};
use tsc_core::beol::BeolProperties;
use tsc_core::pillars::uniform_routable_map;
use tsc_core::stack::{solve_hetero, StackConfig};
use tsc_designs::{gemmini, Design};
use tsc_thermal::Heatsink;
use tsc_units::{Ratio, Temperature};

fn tj(tiers: &[&Design]) -> Result<Temperature, tsc_thermal::SolveError> {
    let d = gemmini::design();
    let cfg = StackConfig::uniform(
        tiers.len(),
        BeolProperties::scaffolded(),
        Heatsink::two_phase(),
    )
    .with_lateral_cells(12)
    .with_pillar_map(uniform_routable_map(&d, Ratio::from_percent(10.0), 12));
    Ok(solve_hetero(tiers, &cfg)?.junction_temperature())
}

fn main() -> Result<(), tsc_thermal::SolveError> {
    banner("extension: heterogeneous logic/memory stacks (12 tiers)");
    let logic = gemmini::design();
    let memory = gemmini::memory_tier();
    println!("logic tier:  {logic}");
    println!("memory tier: {memory}");

    let all_logic: Vec<&Design> = vec![&logic; 12];
    let interleaved: Vec<&Design> = (0..12)
        .map(|t| if t % 2 == 0 { &logic } else { &memory })
        .collect();
    let logic_low: Vec<&Design> = (0..12)
        .map(|t| if t < 6 { &logic } else { &memory })
        .collect();
    let logic_high: Vec<&Design> = (0..12)
        .map(|t| if t < 6 { &memory } else { &logic })
        .collect();

    compare(
        "12 logic tiers",
        "(the Fig. 9 point)",
        format!("{}", tj(&all_logic)?),
    );
    compare(
        "6 logic + 6 memory, interleaved",
        "(cooler: half the power)",
        format!("{}", tj(&interleaved)?),
    );
    compare(
        "6 logic (bottom) + 6 memory (top)",
        "(coolest ordering)",
        format!("{}", tj(&logic_low)?),
    );
    compare(
        "6 memory (bottom) + 6 logic (top)",
        "(worst ordering — logic far from the sink)",
        format!("{}", tj(&logic_high)?),
    );

    banner("how many logic tiers fit beside memory tiers? (Tj < 125 °C)");
    let mut pts = Vec::new();
    for n_logic in (2..=12).step_by(2) {
        // n_logic logic tiers at the bottom, memory above, 12 total.
        let stack: Vec<&Design> = (0..12)
            .map(|t| if t < n_logic { &logic } else { &memory })
            .collect();
        let t = tj(&stack)?;
        pts.push((n_logic as f64, t.celsius()));
    }
    series("Tj °C vs logic tiers (of 12, rest memory)", pts);
    Ok(())
}
