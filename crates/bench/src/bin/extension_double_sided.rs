//! Extension study (beyond the paper): double-sided cooling.
//!
//! The paper's stacks reject all heat through one heatsink under the
//! handle wafer. Monolithic 3D leaves the *top* of the stack available
//! after encapsulation; PACT-class solvers (and ours) handle a second
//! Robin boundary natively. How many tiers does a top-side microfluidic
//! sink buy on top of scaffolding?

use tsc_bench::{banner, compare, series};
use tsc_core::beol::BeolProperties;
use tsc_core::pillars::uniform_routable_map;
use tsc_core::stack::{solve, StackConfig};
use tsc_designs::gemmini;
use tsc_thermal::Heatsink;
use tsc_units::{Ratio, Temperature};

fn max_tiers(top: Option<Heatsink>) -> Result<usize, tsc_thermal::SolveError> {
    let d = gemmini::design();
    let limit = Temperature::from_celsius(125.0);
    let mut best = 0;
    for n in 1..=24 {
        let mut cfg = StackConfig::uniform(n, BeolProperties::scaffolded(), Heatsink::two_phase())
            .with_lateral_cells(12)
            .with_pillar_map(uniform_routable_map(&d, Ratio::from_percent(10.0), 12));
        if let Some(hs) = top {
            cfg = cfg.with_top_heatsink(hs);
        }
        if solve(&d, &cfg)?.junction_temperature() <= limit {
            best = n;
        } else {
            break;
        }
    }
    Ok(best)
}

fn main() -> Result<(), tsc_thermal::SolveError> {
    banner("extension: double-sided cooling of the scaffolded Gemmini stack");
    let single = max_tiers(None)?;
    let dual_mf = max_tiers(Some(Heatsink::microfluidic()))?;
    let dual_tp = max_tiers(Some(Heatsink::two_phase()))?;
    compare(
        "bottom two-phase only",
        "(the paper's 12-14)",
        format!("{single} tiers"),
    );
    compare(
        "+ top microfluidic sink",
        "(extension)",
        format!("{dual_mf} tiers"),
    );
    compare(
        "+ top two-phase sink (symmetric)",
        "(extension)",
        format!("{dual_tp} tiers"),
    );

    banner("tier profile symmetry under symmetric cooling (12 tiers)");
    let d = gemmini::design();
    let cfg = StackConfig::uniform(12, BeolProperties::scaffolded(), Heatsink::two_phase())
        .with_lateral_cells(12)
        .with_pillar_map(uniform_routable_map(&d, Ratio::from_percent(10.0), 12))
        .with_top_heatsink(Heatsink::two_phase());
    let sol = solve(&d, &cfg)?;
    series(
        "tier peak °C (symmetric sinks: hottest in the middle)",
        sol.tier_profile()
            .iter()
            .enumerate()
            .map(|(t, temp)| (t as f64, temp.celsius())),
    );
    Ok(())
}
