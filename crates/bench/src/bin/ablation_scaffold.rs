//! Ablation of the scaffolding design choices (the DESIGN.md §9 axes):
//! which component buys how much of the 12-tier result, plus sensitivity
//! to the pillar-constellation pitch and pillar conductivity.

use tsc_bench::{banner, compare, series};
use tsc_core::beol::{self, BeolProperties};
use tsc_core::pillars::uniform_routable_map;
use tsc_core::stack::{solve, StackConfig};
use tsc_designs::gemmini;
use tsc_thermal::{Heatsink, SolveError};
use tsc_units::{Length, Ratio, ThermalConductivity};

const TIERS: usize = 12;
const CELLS: usize = 14;

fn tj(beol: BeolProperties, pillars: Option<Ratio>) -> Result<f64, SolveError> {
    let d = gemmini::design();
    let mut cfg = StackConfig::uniform(TIERS, beol, Heatsink::two_phase())
        .with_lateral_cells(CELLS)
        .with_area_dilution(pillars.unwrap_or(Ratio::ZERO));
    if let Some(budget) = pillars {
        cfg = cfg.with_pillar_map(uniform_routable_map(&d, budget, CELLS));
    }
    Ok(solve(&d, &cfg)?.junction_temperature().celsius())
}

fn main() -> Result<(), SolveError> {
    banner("component ablation: 12-tier Gemmini, two-phase heatsink");
    let ten = Ratio::from_percent(10.0);

    let nothing = tj(BeolProperties::conventional(), None)?;
    compare(
        "no scaffolding at all",
        "(>>125 °C)",
        format!("{nothing:.1} °C"),
    );

    let td_only = tj(BeolProperties::scaffolded(), None)?;
    compare(
        "thermal dielectric only (no pillars)",
        "(dielectric alone is not enough, Sec. I)",
        format!("{td_only:.1} °C"),
    );

    let pillars_only = tj(BeolProperties::conventional(), Some(ten))?;
    compare(
        "pillars only @10 % (no dielectric)",
        "(fails: Table I needs 34 %)",
        format!("{pillars_only:.1} °C"),
    );

    let upper_only = tj(
        BeolProperties {
            ilv: beol::ilv_interface(),
            ..BeolProperties::scaffolded()
        },
        Some(ten),
    )?;
    compare(
        "pillars + upper dielectric, ULK bond",
        "(most of the benefit)",
        format!("{upper_only:.1} °C"),
    );

    let full = tj(BeolProperties::scaffolded(), Some(ten))?;
    compare(
        "full scaffolding (pillars + dielectric + TD bond)",
        "<125 °C",
        format!("{full:.1} °C"),
    );

    banner("sensitivity: pillar-constellation pitch (10 % pillars)");
    let d = gemmini::design();
    let mut pts = Vec::new();
    for pitch_um in [1.0, 2.0, 3.0, 5.0, 8.0, 12.0] {
        let mut cfg =
            StackConfig::uniform(TIERS, BeolProperties::scaffolded(), Heatsink::two_phase())
                .with_lateral_cells(CELLS)
                .with_area_dilution(ten)
                .with_pillar_map(uniform_routable_map(&d, ten, CELLS));
        cfg.pillar_pitch = Length::from_micrometers(pitch_um);
        let t = solve(&d, &cfg)?.junction_temperature().celsius();
        pts.push((pitch_um, t));
    }
    series("Tj °C vs pillar pitch µm (gathering penalty)", pts);

    banner("sensitivity: pillar column conductivity (10 % pillars)");
    let mut pts = Vec::new();
    for k in [30.0, 60.0, 105.0, 160.0, 242.0] {
        let mut cfg =
            StackConfig::uniform(TIERS, BeolProperties::scaffolded(), Heatsink::two_phase())
                .with_lateral_cells(CELLS)
                .with_area_dilution(ten)
                .with_pillar_map(uniform_routable_map(&d, ten, CELLS));
        cfg.pillar_k = ThermalConductivity::new(k);
        let t = solve(&d, &cfg)?.junction_temperature().celsius();
        pts.push((k, t));
    }
    series("Tj °C vs pillar k W/m/K (the Fig. 7 size-effect axis)", pts);
    Ok(())
}
