//! Property tests for the geometry substrate: index algebra, painting,
//! point location and layer discretization.

use proptest::prelude::*;
use tsc_geometry::{Dim3, Grid2, LayerKind, LayerSlab, LayerStack, Point, Rect};
use tsc_units::Length;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

proptest! {
    #[test]
    fn flat_unflat_round_trips(
        nx in 1usize..12, ny in 1usize..12, nz in 1usize..12,
    ) {
        let dim = Dim3::new(nx, ny, nz);
        for flat in 0..dim.len() {
            let ijk = dim.unflat(flat);
            prop_assert_eq!(dim.flat(ijk.i, ijk.j, ijk.k), flat);
        }
    }

    #[test]
    fn locate_agrees_with_cell_rect(
        nx in 2usize..20, ny in 2usize..20,
        fx in 0.001f64..0.999, fy in 0.001f64..0.999,
    ) {
        let domain = Rect::from_origin_size(Length::ZERO, Length::ZERO, um(100.0), um(80.0));
        let g = Grid2::filled(nx, ny, 0.0_f64);
        let p = Point::new(domain.width() * fx, domain.height() * fy);
        let ij = g.locate(&domain, p).expect("inside the domain");
        let cell = g.cell_rect(&domain, ij.i, ij.j);
        prop_assert!(cell.contains(p), "cell {cell} must contain {p}");
    }

    #[test]
    fn paint_rect_count_matches_sum(
        nx in 2usize..24,
        x0 in 0.0f64..50.0, y0 in 0.0f64..50.0,
        w in 1.0f64..50.0, h in 1.0f64..50.0,
    ) {
        let domain = Rect::from_origin_size(Length::ZERO, Length::ZERO, um(100.0), um(100.0));
        let region = Rect::from_origin_size(um(x0), um(y0), um(w), um(h));
        let mut g = Grid2::filled(nx, nx, 0.0_f64);
        let painted = g.paint_rect(&domain, &region, 1.0);
        prop_assert_eq!(painted as f64, g.sum());
        prop_assert!(painted <= g.len());
    }

    #[test]
    fn rect_intersection_is_commutative_and_contained(
        ax in 0.0f64..50.0, ay in 0.0f64..50.0, aw in 1.0f64..60.0, ah in 1.0f64..60.0,
        bx in 0.0f64..50.0, by in 0.0f64..50.0, bw in 1.0f64..60.0, bh in 1.0f64..60.0,
    ) {
        let a = Rect::from_origin_size(um(ax), um(ay), um(aw), um(ah));
        let b = Rect::from_origin_size(um(bx), um(by), um(bw), um(bh));
        match (a.intersection(&b), b.intersection(&a)) {
            (Some(i1), Some(i2)) => {
                prop_assert!((i1.area().square_meters() - i2.area().square_meters()).abs()
                    < 1e-24);
                // Reconstructing the intersection as origin+size can move
                // its far edge by one ulp; allow that.
                let eps = Length::from_meters(1e-15);
                prop_assert!(a.inflated(eps).contains_rect(&i1));
                prop_assert!(b.inflated(eps).contains_rect(&i1));
                prop_assert!(i1.area().square_meters()
                    <= a.area().square_meters().min(b.area().square_meters()) + 1e-24);
            }
            (None, None) => prop_assert!(!a.intersects(&b)),
            _ => prop_assert!(false, "intersection must be symmetric"),
        }
    }

    #[test]
    fn discretization_preserves_total_thickness(
        t1 in 0.05f64..20.0, t2 in 0.05f64..20.0, t3 in 0.05f64..20.0,
        cell in 0.1f64..5.0,
    ) {
        let stack: LayerStack = [
            LayerSlab::new("a", um(t1), LayerKind::HandleSilicon),
            LayerSlab::new("b", um(t2), LayerKind::DeviceSilicon),
            LayerSlab::new("c", um(t3), LayerKind::BeolLower),
        ].into_iter().collect();
        let cells = stack.discretize(um(cell));
        let total: Length = cells.iter().map(|(_, dz)| *dz).sum();
        prop_assert!(total.approx_eq(stack.total_thickness(), 1e-12));
        // No cell exceeds the cap (within float slop).
        for (_, dz) in &cells {
            prop_assert!(dz.micrometers() <= cell * (1.0 + 1e-9));
        }
    }

    #[test]
    fn bilinear_sampling_is_bounded(
        nx in 2usize..10, ny in 2usize..10,
        u in 0.0f64..20.0, v in 0.0f64..20.0,
    ) {
        let g = Grid2::from_fn(nx, ny, |i, j| ((i * 7 + j * 13) % 11) as f64);
        let s = g.sample(u, v);
        prop_assert!(s >= g.min_value() - 1e-12 && s <= g.max_value() + 1e-12);
    }
}
