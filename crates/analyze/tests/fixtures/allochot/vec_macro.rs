//! `vec![...]` inside a smoother body (hot by fn-name heuristic).
pub fn red_black_smooth(x: &mut [f64]) {
    let scratch = vec![0.0; x.len()];
    let _ = scratch;
}
