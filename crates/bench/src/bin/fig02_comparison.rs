//! Fig. 2b/2c — scaffolding vs thermal dummy vias at 12 tiers:
//! penalties to reach Tj<125 °C, and iso-penalty Tj−T0 comparison.

use tsc_bench::{banner, compare};
use tsc_core::flows::{run_flow, CoolingStrategy, FlowConfig};
use tsc_core::scaling::min_area_for_tiers;
use tsc_designs::gemmini;
use tsc_phydes::timing::DelayModel;
use tsc_units::Ratio;

fn main() -> Result<(), tsc_thermal::SolveError> {
    let d = gemmini::design();
    banner("Fig. 2b: penalties to reach 12 tiers at Tj<125 °C (Gemmini)");

    for (strategy, paper_area, paper_delay) in [
        (CoolingStrategy::ConventionalDummyVias, "78 %", "17 %"),
        (CoolingStrategy::Scaffolding, "10 %", "3 %"),
    ] {
        let area = min_area_for_tiers(
            &d,
            strategy,
            12,
            Ratio::from_percent(100.0),
            Ratio::from_percent(95.0),
            0.5,
            14,
        )?;
        match area {
            Some(a) => {
                let delay = DelayModel::calibrated()
                    .delay_penalty(&tsc_core::flows::timing_impact(strategy, a));
                compare(
                    &format!("{strategy}: minimum footprint penalty"),
                    paper_area,
                    format!("{:.1} %", a.percent()),
                );
                compare(
                    &format!("{strategy}: delay penalty at that footprint"),
                    paper_delay,
                    format!("{:.1} %", delay.percent()),
                );
            }
            None => println!("{strategy}: infeasible within 95 % area"),
        }
    }

    banner("Fig. 2c: iso-penalty (10 % area / 3 % delay) Tj - T0 at 12 tiers");
    let mut rises = Vec::new();
    for strategy in [
        CoolingStrategy::ConventionalDummyVias,
        CoolingStrategy::Scaffolding,
    ] {
        let cfg = FlowConfig {
            strategy,
            tiers: 12,
            area_budget: Ratio::from_percent(10.0),
            delay_budget: Ratio::from_percent(3.0),
            lateral_cells: 14,
            ..FlowConfig::default()
        };
        let r = run_flow(&d, &cfg)?;
        let rise = (r.junction_temperature - cfg.heatsink.ambient).kelvin();
        compare(
            &format!("{strategy}: Tj - T0"),
            "(Fig. 2c bars)",
            format!("{rise:.1} K (Tj = {})", r.junction_temperature),
        );
        rises.push(rise);
    }
    compare(
        "scaffolding reduction in Tj - T0 vs dummy vias",
        "10.2x",
        format!("{:.1}x", rises[0] / rises[1]),
    );
    Ok(())
}
