//! Dense 3-D fields for volumetric meshes.

use crate::grid2::Grid2;

/// Dimensions of a 3-D mesh.
///
/// ```
/// use tsc_geometry::Dim3;
/// let d = Dim3::new(4, 3, 2);
/// assert_eq!(d.len(), 24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// Cells in x.
    pub nx: usize,
    /// Cells in y.
    pub ny: usize,
    /// Cells in z (vertical, stacking direction).
    pub nz: usize,
}

impl Dim3 {
    /// Creates mesh dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "mesh dimensions must be positive"
        );
        Self { nx, ny, nz }
    }

    /// Total number of cells.
    #[must_use]
    pub const fn len(self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Always `false` (constructor rejects empty meshes).
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Flat offset of `(i, j, k)`: x fastest, then y, then z.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when out of bounds.
    #[must_use]
    pub fn flat(self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        (k * self.ny + j) * self.nx + i
    }

    /// Inverse of [`Dim3::flat`].
    #[must_use]
    pub fn unflat(self, flat: usize) -> Index3 {
        let i = flat % self.nx;
        let j = (flat / self.nx) % self.ny;
        let k = flat / (self.nx * self.ny);
        Index3 { i, j, k }
    }

    /// Iterates all `(i, j, k)` indices in flat order.
    pub fn indices(self) -> impl Iterator<Item = Index3> {
        (0..self.len()).map(move |f| self.unflat(f))
    }
}

/// A 3-D cell index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Index3 {
    /// x index.
    pub i: usize,
    /// y index.
    pub j: usize,
    /// z index (vertical).
    pub k: usize,
}

impl Index3 {
    /// Creates an index.
    #[must_use]
    pub const fn new(i: usize, j: usize, k: usize) -> Self {
        Self { i, j, k }
    }
}

impl core::fmt::Display for Index3 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}, {}, {}]", self.i, self.j, self.k)
    }
}

/// A dense 3-D field with x-fastest layout (matches [`Dim3::flat`]).
///
/// ```
/// use tsc_geometry::{Dim3, Grid3};
/// let mut g = Grid3::filled(Dim3::new(2, 2, 2), 0.0_f64);
/// g[(1, 0, 1)] = 4.0;
/// assert_eq!(g[(1, 0, 1)], 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3<T> {
    dim: Dim3,
    data: Vec<T>,
}

impl<T: Clone> Grid3<T> {
    /// Creates a grid filled with `value`.
    #[must_use]
    pub fn filled(dim: Dim3, value: T) -> Self {
        Self {
            dim,
            data: vec![value; dim.len()],
        }
    }

    /// Creates a grid from a generator.
    #[must_use]
    pub fn from_fn(dim: Dim3, mut f: impl FnMut(Index3) -> T) -> Self {
        let mut data = Vec::with_capacity(dim.len());
        for flat in 0..dim.len() {
            data.push(f(dim.unflat(flat)));
        }
        Self { dim, data }
    }
}

impl<T> Grid3<T> {
    /// Mesh dimensions.
    #[must_use]
    pub const fn dim(&self) -> Dim3 {
        self.dim
    }

    /// Raw flat slice.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw flat slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrowing iterator in flat order.
    pub fn iter(&self) -> core::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Checked access.
    #[must_use]
    pub fn get(&self, i: usize, j: usize, k: usize) -> Option<&T> {
        if i < self.dim.nx && j < self.dim.ny && k < self.dim.nz {
            self.data.get(self.dim.flat(i, j, k))
        } else {
            None
        }
    }
}

impl<T: Clone> Grid3<T> {
    /// Extracts horizontal slice `k` as a [`Grid2`].
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn layer(&self, k: usize) -> Grid2<T> {
        assert!(k < self.dim.nz, "layer {k} out of range");
        Grid2::from_fn(self.dim.nx, self.dim.ny, |i, j| {
            self.data[self.dim.flat(i, j, k)].clone()
        })
    }

    /// Overwrites horizontal slice `k` from a [`Grid2`].
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range or the slice dimensions mismatch.
    pub fn set_layer(&mut self, k: usize, layer: &Grid2<T>) {
        assert!(k < self.dim.nz, "layer {k} out of range");
        assert_eq!(
            (layer.nx(), layer.ny()),
            (self.dim.nx, self.dim.ny),
            "layer dimensions must match"
        );
        for j in 0..self.dim.ny {
            for i in 0..self.dim.nx {
                self.data[self.dim.flat(i, j, k)] = layer[(i, j)].clone();
            }
        }
    }
}

impl Grid3<f64> {
    /// Largest value.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest value.
    #[must_use]
    pub fn min_value(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Index of the maximum cell.
    #[must_use]
    pub fn argmax(&self) -> Index3 {
        let (flat, _) =
            self.data
                .iter()
                .enumerate()
                .fold((0, f64::NEG_INFINITY), |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                });
        self.dim.unflat(flat)
    }
}

impl<T> core::ops::Index<(usize, usize, usize)> for Grid3<T> {
    type Output = T;
    fn index(&self, (i, j, k): (usize, usize, usize)) -> &T {
        assert!(
            i < self.dim.nx && j < self.dim.ny && k < self.dim.nz,
            "cell ({i}, {j}, {k}) out of bounds"
        );
        &self.data[self.dim.flat(i, j, k)]
    }
}

impl<T> core::ops::IndexMut<(usize, usize, usize)> for Grid3<T> {
    fn index_mut(&mut self, (i, j, k): (usize, usize, usize)) -> &mut T {
        assert!(
            i < self.dim.nx && j < self.dim.ny && k < self.dim.nz,
            "cell ({i}, {j}, {k}) out of bounds"
        );
        &mut self.data[self.dim.flat(i, j, k)]
    }
}

impl<T> core::ops::Index<Index3> for Grid3<T> {
    type Output = T;
    fn index(&self, ijk: Index3) -> &T {
        &self[(ijk.i, ijk.j, ijk.k)]
    }
}

impl<T> core::ops::IndexMut<Index3> for Grid3<T> {
    fn index_mut(&mut self, ijk: Index3) -> &mut T {
        &mut self[(ijk.i, ijk.j, ijk.k)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_unflat_round_trip() {
        let dim = Dim3::new(5, 4, 3);
        for flat in 0..dim.len() {
            let ijk = dim.unflat(flat);
            assert_eq!(dim.flat(ijk.i, ijk.j, ijk.k), flat);
        }
    }

    #[test]
    fn x_is_fastest_axis() {
        let dim = Dim3::new(3, 2, 2);
        assert_eq!(dim.flat(1, 0, 0), 1);
        assert_eq!(dim.flat(0, 1, 0), 3);
        assert_eq!(dim.flat(0, 0, 1), 6);
    }

    #[test]
    fn layer_round_trip() {
        let dim = Dim3::new(3, 3, 2);
        let mut g = Grid3::filled(dim, 0.0);
        let layer = Grid2::from_fn(3, 3, |i, j| (i + j) as f64);
        g.set_layer(1, &layer);
        assert_eq!(g.layer(1), layer);
        assert!(g.layer(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn argmax_finds_peak() {
        let dim = Dim3::new(4, 4, 4);
        let mut g = Grid3::filled(dim, 1.0);
        g[(2, 3, 1)] = 9.0;
        assert_eq!(g.argmax(), Index3::new(2, 3, 1));
        assert_eq!(g.max_value(), 9.0);
        assert_eq!(g.min_value(), 1.0);
    }

    #[test]
    fn indices_cover_all_cells() {
        let dim = Dim3::new(2, 3, 4);
        assert_eq!(dim.indices().count(), 24);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn grid3_bounds_check() {
        let g = Grid3::filled(Dim3::new(2, 2, 2), 0.0);
        let _ = g[(0, 0, 2)];
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = Dim3::new(0, 2, 2);
    }
}
