//! Post-solve analysis: energy accounting and spatial profiles.

use crate::field::TemperatureField;
use tsc_units::{Power, TempDelta, Temperature};

/// Global energy balance of a steady solve: in steady state, injected
/// power must equal the power extracted through the convective boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBalance {
    /// Total heat injected by sources.
    pub injected: Power,
    /// Total heat extracted through heatsinks.
    pub extracted: Power,
}

impl EnergyBalance {
    /// Relative imbalance `|in − out| / max(in, tiny)`.
    #[must_use]
    pub fn relative_error(&self) -> f64 {
        let inj = self.injected.watts();
        let ext = self.extracted.watts();
        (inj - ext).abs() / inj.abs().max(f64::MIN_POSITIVE)
    }

    /// `true` when the balance closes within `tol` (relative).
    #[must_use]
    pub fn is_closed(&self, tol: f64) -> bool {
        self.relative_error() <= tol
    }
}

impl core::fmt::Display for EnergyBalance {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "in {} / out {} (err {:.2e})",
            self.injected,
            self.extracted,
            self.relative_error()
        )
    }
}

/// Extracts a horizontal temperature profile along +x in layer `k`,
/// starting at cell `(i0, j0)`, as `(cell offset, ΔT above the row
/// minimum)` pairs — the shape plotted in Fig. 3 (temperature vs distance
/// from a thermal structure).
///
/// # Panics
///
/// Panics when the starting cell or the layer is out of bounds.
#[must_use]
pub fn line_profile(
    field: &TemperatureField,
    i0: usize,
    j0: usize,
    k: usize,
) -> Vec<(usize, TempDelta)> {
    let dim = field.dim();
    assert!(
        i0 < dim.nx && j0 < dim.ny && k < dim.nz,
        "start out of bounds"
    );
    let temps: Vec<Temperature> = (i0..dim.nx).map(|i| field.at(i, j0, k)).collect();
    let floor = temps
        .iter()
        .copied()
        .fold(Temperature::from_kelvin(f64::INFINITY), Temperature::min);
    temps
        .into_iter()
        .enumerate()
        .map(|(off, t)| (off, t - floor))
        .collect()
}

/// Renders one z layer of a temperature field as ASCII art, shading from
/// the layer minimum (` `) to the layer maximum (`@`). Each cell is one
/// character; rows print north-up (largest `j` first).
///
/// # Panics
///
/// Panics when `k` is out of range.
#[must_use]
pub fn render_layer_ascii(field: &TemperatureField, k: usize) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let layer = field.layer_kelvin(k);
    let (lo, hi) = (layer.min_value(), layer.max_value());
    let span = (hi - lo).max(1e-12);
    let mut out = String::with_capacity((layer.nx() + 1) * layer.ny());
    for j in (0..layer.ny()).rev() {
        for i in 0..layer.nx() {
            let t = (layer[(i, j)] - lo) / span;
            let idx = ((t * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_geometry::{Dim3, Grid3};

    #[test]
    fn balance_error() {
        let e = EnergyBalance {
            injected: Power::from_watts(10.0),
            extracted: Power::from_watts(9.999),
        };
        assert!(e.relative_error() < 2e-4);
        assert!(e.is_closed(1e-3));
        assert!(!e.is_closed(1e-6));
    }

    #[test]
    fn zero_power_balance_is_closed() {
        let e = EnergyBalance {
            injected: Power::ZERO,
            extracted: Power::ZERO,
        };
        assert!(e.is_closed(1e-12));
    }

    #[test]
    fn ascii_rendering_shades_extremes() {
        let mut g = Grid3::filled(Dim3::new(3, 2, 1), 300.0);
        g[(2, 1, 0)] = 350.0;
        let f = TemperatureField::from_kelvin(g);
        let art = render_layer_ascii(&f, 0);
        let rows: Vec<&str> = art.lines().collect();
        assert_eq!(rows.len(), 2);
        // Hottest cell is '@' at the top-right (north-up), coldest ' '.
        assert!(rows[0].ends_with('@'), "{art}");
        assert!(rows[1].starts_with(' '), "{art}");
    }

    #[test]
    fn profile_descends_from_hotspot() {
        let mut g = Grid3::filled(Dim3::new(8, 1, 1), 300.0);
        for i in 0..8 {
            g[(i, 0, 0)] = 310.0 - i as f64;
        }
        let f = TemperatureField::from_kelvin(g);
        let prof = line_profile(&f, 0, 0, 0);
        assert_eq!(prof.len(), 8);
        assert!((prof[0].1.kelvin() - 7.0).abs() < 1e-12);
        assert!((prof[7].1.kelvin() - 0.0).abs() < 1e-12);
        for w in prof.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }
}
