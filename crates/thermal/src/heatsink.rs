//! Heatsink abstractions: the paper reduces every cooling technology to a
//! heat-transfer coefficient plus an ambient (coolant inlet) temperature.

use tsc_units::{HeatTransferCoefficient, Temperature};

/// A convective boundary condition modelling an attached heatsink.
///
/// ```
/// use tsc_thermal::Heatsink;
/// let hs = Heatsink::two_phase();
/// assert_eq!(hs.h.get(), 1.0e6);
/// assert!((hs.ambient.celsius() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Heatsink {
    /// Heat-transfer coefficient of the sink.
    pub h: HeatTransferCoefficient,
    /// Coolant/ambient temperature the sink rejects to.
    pub ambient: Temperature,
}

impl Heatsink {
    /// Creates a heatsink from its two parameters.
    #[must_use]
    pub const fn new(h: HeatTransferCoefficient, ambient: Temperature) -> Self {
        Self { h, ambient }
    }

    /// Two-phase porous-copper cooling (Palko et al. \[7\]):
    /// `h = 10⁶ W/m²/K`, but the water must boil — 100 °C ambient.
    #[must_use]
    pub fn two_phase() -> Self {
        Self {
            h: HeatTransferCoefficient::TWO_PHASE,
            ambient: Temperature::from_celsius(100.0),
        }
    }

    /// Si-integrated microfluidic cooling (Tuckerman & Pease \[36\]):
    /// `h = 10⁵ W/m²/K` with room-temperature (25 °C) water.
    #[must_use]
    pub fn microfluidic() -> Self {
        Self {
            h: HeatTransferCoefficient::MICROFLUIDIC,
            ambient: Temperature::from_celsius(25.0),
        }
    }

    /// A conventional forced-air sink for comparison studies:
    /// `h = 10⁴ W/m²/K` at 25 °C.
    #[must_use]
    pub fn forced_air() -> Self {
        Self {
            h: HeatTransferCoefficient::new(1.0e4),
            ambient: Temperature::from_celsius(25.0),
        }
    }
}

impl core::fmt::Display for Heatsink {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "heatsink(h={}, ambient={})", self.h, self.ambient)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_sinks_match_paper() {
        assert_eq!(Heatsink::two_phase().h.get(), 1e6);
        assert!((Heatsink::two_phase().ambient.celsius() - 100.0).abs() < 1e-12);
        assert_eq!(Heatsink::microfluidic().h.get(), 1e5);
        assert!((Heatsink::microfluidic().ambient.celsius() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn microfluidic_cooler_ambient_but_weaker_h() {
        let tp = Heatsink::two_phase();
        let mf = Heatsink::microfluidic();
        assert!(mf.ambient < tp.ambient);
        assert!(mf.h < tp.h);
    }
}
