//! Geometric multigrid for the finite-volume thermal system.
//!
//! The hot loops of the flow (pillar-density bisection, placement
//! verification, dielectric sweeps) re-solve `A·T = b` on the same mesh
//! dozens of times, and Jacobi-CG iteration counts grow with mesh size
//! and with the extreme vertical/lateral anisotropy of a thinned 3D tier
//! stack. This module builds a grid hierarchy once and then solves in a
//! handful of V-cycles:
//!
//! * **Semicoarsening-aware aggregation.** Each level halves only the
//!   directions whose mean face conductance is within a factor of the
//!   strongest — on a tier stack where `g_z / g_x ~ 10³…10⁵`, that means
//!   z-only coarsening until the vertical coupling is resolved, then
//!   lateral coarsening of the remaining quasi-2D problem. This is the
//!   classic rule for point smoothers: relaxation only smooths error
//!   along strongly coupled directions, so only those directions may be
//!   coarsened.
//! * **Galerkin coarse operators in stencil form.** Restriction is
//!   aggregate summation and prolongation is piecewise-constant
//!   injection (`R = Pᵀ`), so `Pᵀ·A·P` of a face-conductance Laplacian
//!   is again a face-conductance Laplacian: a coarse face conductance is
//!   the sum of the fine interface conductances between the two
//!   aggregates (intra-aggregate faces cancel), and boundary
//!   conductances sum laterally. Every level is therefore a plain
//!   [`Assembled`] operator and reuses the gather-form matvec, the
//!   red-black sweep and the [`ExecPlan`] engine unchanged.
//! * **Symmetric red-black Gauss-Seidel smoothing.** Pre-smoothing runs
//!   the colours `[0, 1]`, post-smoothing `[1, 0]`, with equal sweep
//!   counts — the V-cycle is then a symmetric positive-definite
//!   operator, i.e. a valid CG preconditioner.
//! * **Dense Cholesky at the coarsest level** (≤ a few hundred cells):
//!   exact, dependency-free, factored once per hierarchy.
//!
//! Determinism: smoothing passes have colour-disjoint writes, matvecs
//! are gather-form over slab bands, transfers and the direct solve are
//! serial, and all inner products are serial or per-slab ordered sums —
//! so MG and MG-preconditioned CG results are **bitwise identical for
//! every thread count**, like the PR-1 solvers.

use crate::engine::ExecPlan;
use crate::problem::Problem;
use crate::solver::{
    default_threads, dot, norm, ordered_sum, slab_dot_parts, Assembled, CgParams, Precision,
    Preconditioner, Solution, SolveError, SolverStats, DEFAULT_PARALLEL_CROSSOVER,
};
use std::time::Instant;
use tsc_geometry::Dim3;

/// A direction is coarsened when its mean face conductance is at least
/// this fraction of the strongest coarsenable direction's mean.
const SEMI_THRESHOLD: f64 = 0.25;

/// Polynomial degree of one Chebyshev smoothing application — three
/// matvecs per application, comparable work to the two colour passes of
/// a red-black sweep but expressed as branch-free streaming loops.
pub(crate) const CHEB_DEGREE: usize = 3;

/// Which relaxation the multigrid levels smooth with (selected by
/// [`crate::CgSolver::with_smoother`] / [`MgSolver::with_smoother`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Smoother {
    /// Symmetric red-black Gauss-Seidel: colours `[0, 1]` before the
    /// coarse correction, `[1, 0]` after — the PR-2 default.
    #[default]
    RedBlack,
    /// Fixed-degree Chebyshev polynomial in `D⁻¹A` on the upper quarter
    /// of its spectrum: matvec + AXPY only, no inner reductions and no
    /// coloured scatter, so it autovectorizes and has no cross-band
    /// coupling. `D⁻¹A` is self-adjoint in the `A`-inner product, so
    /// identical pre/post applications keep the V-cycle a symmetric
    /// operator — still a valid CG preconditioner.
    Chebyshev,
}

impl core::fmt::Display for Smoother {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::RedBlack => "redblack",
            Self::Chebyshev => "chebyshev",
        })
    }
}

/// Hierarchy construction and cycling knobs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MgParams {
    /// Pre-smoothing sweeps per level (colour order `[0, 1]`).
    pub(crate) nu_pre: usize,
    /// Post-smoothing sweeps per level (colour order `[1, 0]`).
    pub(crate) nu_post: usize,
    /// Relaxation factor for the smoothing sweeps (1.0 = Gauss-Seidel;
    /// over-relaxation would break the symmetric-preconditioner
    /// property unless mirrored exactly, so keep it at 1).
    pub(crate) omega: f64,
    /// Coarsening stops at or below this many cells; the coarsest level
    /// is solved directly (dense Cholesky).
    pub(crate) coarse_max: usize,
    pub(crate) threads: usize,
    pub(crate) crossover: usize,
    /// Relaxation family for every level's smoothing passes.
    pub(crate) smoother: Smoother,
}

impl MgParams {
    /// Default cycling parameters bound to an execution configuration.
    pub(crate) fn with_exec(threads: usize, crossover: usize) -> Self {
        Self {
            nu_pre: 1,
            nu_post: 1,
            omega: 1.0,
            coarse_max: 512,
            threads,
            crossover,
            smoother: Smoother::RedBlack,
        }
    }

    /// Returns the parameters with a different smoother.
    pub(crate) fn with_smoother(mut self, smoother: Smoother) -> Self {
        self.smoother = smoother;
        self
    }
}

/// Per-direction coarsening factors for one level transition (1 = keep,
/// 2 = aggregate pairs; ceil sizing, so odd extents leave a lone
/// trailing aggregate).
pub(crate) type Factors = [usize; 3];

/// Chooses which directions to coarsen based on the mean face
/// conductance per direction: only directions within
/// [`SEMI_THRESHOLD`] of the strongest coarsenable direction coarsen
/// (semicoarsening), and `None` means no direction can coarsen (all
/// extents are already 1).
fn coarsen_factors(op: &Assembled) -> Option<Factors> {
    coarsen_factors_with(op, SEMI_THRESHOLD)
}

/// [`coarsen_factors`] with an explicit lateral-join threshold — the
/// f32 shadow hierarchy coarsens more aggressively than the f64 one
/// (see [`crate::kernels::HierarchyF32::build`]).
pub(crate) fn coarsen_factors_with(op: &Assembled, threshold: f64) -> Option<Factors> {
    let d = op.dim;
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let means = [mean(&op.gx), mean(&op.gy), mean(&op.gz)];
    let ns = [d.nx, d.ny, d.nz];
    if ns.iter().all(|&n| n < 2) {
        return None;
    }
    let max_mean = (0..3)
        .filter(|&a| ns[a] >= 2)
        .map(|a| means[a])
        .fold(0.0_f64, f64::max);
    let mut f = [1_usize; 3];
    for a in 0..3 {
        if ns[a] >= 2 && means[a] >= threshold * max_mean {
            f[a] = 2;
        }
    }
    if f == [1, 1, 1] {
        // Degenerate conductances (zero/NaN means) — coarsen everything
        // coarsenable so hierarchy construction always terminates.
        for a in 0..3 {
            if ns[a] >= 2 {
                f[a] = 2;
            }
        }
    }
    Some(f)
}

/// Coarse extent under ceil aggregation: pairs, plus a lone trailing
/// cell when the extent is odd.
fn coarse_extent(n: usize, f: usize) -> usize {
    if f == 2 {
        n.div_ceil(2)
    } else {
        n
    }
}

/// Galerkin coarsening of a face-conductance operator under pairwise
/// aggregation: inter-aggregate fine face conductances sum into the
/// coarse face between the owning aggregates, intra-aggregate faces
/// vanish, and boundary conductances sum over each aggregate's footprint
/// on the boundary slab. With piecewise-constant transfer operators this
/// reproduces `Pᵀ·A·P` exactly (verified by the unit tests below).
pub(crate) fn coarsen(op: &Assembled, f: Factors) -> Assembled {
    let (nx, ny, nz) = (op.dim.nx, op.dim.ny, op.dim.nz);
    let (ncx, ncy, ncz) = (
        coarse_extent(nx, f[0]),
        coarse_extent(ny, f[1]),
        coarse_extent(nz, f[2]),
    );
    let cdim = Dim3::new(ncx, ncy, ncz);
    let mut gx = vec![0.0; ncx.saturating_sub(1) * ncy * ncz];
    let mut gy = vec![0.0; ncx * ncy.saturating_sub(1) * ncz];
    let mut gz = vec![0.0; ncx * ncy * ncz.saturating_sub(1)];
    for k in 0..nz {
        let ck = k / f[2];
        for j in 0..ny {
            let cj = j / f[1];
            for i in 0..nx {
                let ci = i / f[0];
                if i + 1 < nx && (i + 1) / f[0] != ci {
                    gx[(ck * ncy + cj) * (ncx - 1) + ci] += op.gx[(k * ny + j) * (nx - 1) + i];
                }
                if j + 1 < ny && (j + 1) / f[1] != cj {
                    gy[(ck * (ncy - 1) + cj) * ncx + ci] += op.gy[(k * (ny - 1) + j) * nx + i];
                }
                if k + 1 < nz && (k + 1) / f[2] != ck {
                    gz[(ck * ncy + cj) * ncx + ci] += op.gz[(k * ny + j) * nx + i];
                }
            }
        }
    }
    let mut g_bottom = vec![0.0; ncx * ncy];
    let mut g_top = vec![0.0; ncx * ncy];
    for j in 0..ny {
        let cj = j / f[1];
        for i in 0..nx {
            let ci = i / f[0];
            // The fine bottom (k = 0) and top (k = nz-1) slabs always land
            // in the coarse bottom and top aggregates respectively, so the
            // boundary conductance aggregates laterally.
            g_bottom[cj * ncx + ci] += op.g_bottom[j * nx + i];
            g_top[cj * ncx + ci] += op.g_top[j * nx + i];
        }
    }
    Assembled::from_parts(cdim, gx, gy, gz, g_bottom, g_top)
}

/// Restriction `b_c = Pᵀ·r`: sums each aggregate's fine values (serial —
/// transfer cost is negligible next to smoothing and must stay
/// deterministic). Generic over the scalar so the f32 hierarchy in
/// `crate::kernels` reuses the same transfer.
pub(crate) fn restrict<T>(fd: Dim3, cd: Dim3, f: Factors, fine: &[T], coarse: &mut [T])
where
    T: Copy + Default + core::ops::AddAssign,
{
    coarse.fill(T::default());
    for k in 0..fd.nz {
        let ck = k / f[2];
        for j in 0..fd.ny {
            let cj = j / f[1];
            for i in 0..fd.nx {
                let ci = i / f[0];
                coarse[(ck * cd.ny + cj) * cd.nx + ci] += fine[(k * fd.ny + j) * fd.nx + i];
            }
        }
    }
}

/// Prolongation `x += P·x_c`: piecewise-constant injection of each
/// aggregate's correction into its fine cells.
pub(crate) fn prolong_add<T>(fd: Dim3, cd: Dim3, f: Factors, coarse: &[T], fine: &mut [T])
where
    T: Copy + core::ops::AddAssign,
{
    for k in 0..fd.nz {
        let ck = k / f[2];
        for j in 0..fd.ny {
            let cj = j / f[1];
            for i in 0..fd.nx {
                let ci = i / f[0];
                fine[(k * fd.ny + j) * fd.nx + i] += coarse[(ck * cd.ny + cj) * cd.nx + ci];
            }
        }
    }
}

/// Chebyshev interval of `D⁻¹A` for one level: a deterministic power
/// iteration (serial, f64, all-ones start) estimates the largest
/// eigenvalue, padded by 10 % and clamped to the Gershgorin bound of 2
/// (the diagonal is the sum of the incident off-diagonals plus a
/// non-negative boundary conductance, so every row sum of `D⁻¹A` is at
/// most 2). The smoother targets the upper three quarters of the
/// spectrum, `[λ_hi/4, λ_hi]`; the coarse grids handle the rest.
pub(crate) fn cheb_bounds(op: &Assembled) -> (f64, f64) {
    let n = op.dim.len();
    let mut v = vec![1.0; n];
    let mut av = vec![0.0; n];
    let mut est = 2.0;
    for _ in 0..12 {
        let nv = norm(&v);
        if !nv.is_finite() || nv <= 0.0 {
            est = 2.0;
            break;
        }
        for val in v.iter_mut() {
            *val /= nv;
        }
        op.matvec_range(&v, &mut av, 0..n, None);
        for (a, dv) in av.iter_mut().zip(&op.diag) {
            *a /= dv;
        }
        est = norm(&av);
        std::mem::swap(&mut v, &mut av);
    }
    if !est.is_finite() || est <= 0.0 {
        est = 2.0;
    }
    let hi = (est * 1.1).min(2.0);
    (hi * 0.25, hi)
}

/// One Chebyshev smoothing application of degree [`CHEB_DEGREE`] on
/// `A·x = b` over the interval `[lo, hi]` of `D⁻¹A` — the standard
/// three-term recurrence in difference form (`d` is the running
/// direction, `r` the freshly recomputed residual). Every pass is a
/// banded matvec or element-wise update with **no reductions**, so the
/// result is bitwise independent of the band schedule and thread count.
#[allow(clippy::too_many_arguments)] // level-local scratch, not an API
pub(crate) fn cheb_smooth(
    op: &Assembled,
    plan: &ExecPlan,
    lo: f64,
    hi: f64,
    b: &[f64],
    x: &mut [f64],
    r: &mut [f64],
    d: &mut [f64],
) {
    let theta = 0.5 * (hi + lo);
    let delta = 0.5 * (hi - lo);
    let sigma = theta / delta;
    let mut rho = 1.0 / sigma;
    plan.map_mut(r, |range, chunk| {
        op.matvec_range(x, chunk, range.clone(), None);
        for (o, bv) in chunk.iter_mut().zip(&b[range]) {
            *o = bv - *o;
        }
    });
    plan.map2_mut(x, d, |range, xs, ds| {
        let rr = &r[range.clone()];
        let dg = &op.diag[range];
        for (((xv, dv), rv), dgv) in xs.iter_mut().zip(ds.iter_mut()).zip(rr).zip(dg) {
            let v = rv / (theta * dgv);
            *dv = v;
            *xv += v;
        }
    });
    for _ in 1..CHEB_DEGREE {
        let rho_next = 1.0 / (2.0 * sigma - rho);
        plan.map_mut(r, |range, chunk| {
            op.matvec_range(x, chunk, range.clone(), None);
            for (o, bv) in chunk.iter_mut().zip(&b[range]) {
                *o = bv - *o;
            }
        });
        let gain = 2.0 * rho_next / delta;
        plan.map2_mut(x, d, |range, xs, ds| {
            let rr = &r[range.clone()];
            let dg = &op.diag[range];
            for (((xv, dv), rv), dgv) in xs.iter_mut().zip(ds.iter_mut()).zip(rr).zip(dg) {
                let v = rho_next * rho * *dv + gain * rv / dgv;
                *dv = v;
                *xv += v;
            }
        });
        rho = rho_next;
    }
}

/// Dense Cholesky factorization of the coarsest-level operator — exact,
/// dependency-free, and tiny (≤ [`MgParams::coarse_max`] unknowns).
#[derive(Debug, Clone)]
pub(crate) struct DenseCholesky {
    n: usize,
    /// Row-major lower-triangular factor (upper triangle unused).
    l: Vec<f64>,
}

impl DenseCholesky {
    /// Expands the stencil operator into a dense matrix and factors it.
    ///
    /// # Errors
    ///
    /// [`SolveError::Diverged`] when a pivot is non-positive or
    /// non-finite — the operator is not SPD (poisoned conductances).
    pub(crate) fn factor(op: &Assembled) -> Result<Self, SolveError> {
        let n = op.dim.len();
        let (nx, ny, nz) = (op.dim.nx, op.dim.ny, op.dim.nz);
        let slab = nx * ny;
        let mut a = vec![0.0; n * n];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = (k * ny + j) * nx + i;
                    a[c * n + c] = op.diag[c];
                    if i + 1 < nx {
                        a[(c + 1) * n + c] = -op.gx[(k * ny + j) * (nx - 1) + i];
                    }
                    if j + 1 < ny {
                        a[(c + nx) * n + c] = -op.gy[(k * (ny - 1) + j) * nx + i];
                    }
                    if k + 1 < nz {
                        a[(c + slab) * n + c] = -op.gz[(k * ny + j) * nx + i];
                    }
                }
            }
        }
        // In-place Cholesky on the lower triangle: A = L·Lᵀ.
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[i * n + j];
                for k in 0..j {
                    s -= a[i * n + k] * a[j * n + k];
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return Err(SolveError::Diverged {
                            iterations: 0,
                            residual: f64::NAN,
                        });
                    }
                    a[i * n + i] = s.sqrt();
                } else {
                    a[i * n + j] = s / a[j * n + j];
                }
            }
        }
        Ok(Self { n, l: a })
    }

    /// Solves `A·x = b` by forward/backward substitution.
    pub(crate) fn solve(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(b.len(), n);
        debug_assert_eq!(x.len(), n);
        for i in 0..n {
            let mut s = b[i];
            for (k, xv) in x.iter().enumerate().take(i) {
                s -= self.l[i * n + k] * xv;
            }
            x[i] = s / self.l[i * n + i];
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for (k, xv) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[k * n + i] * xv;
            }
            x[i] = s / self.l[i * n + i];
        }
    }
}

/// Per-level scratch vectors of one V-cycle (`d` is the Chebyshev
/// direction buffer, idle under red-black smoothing).
#[derive(Debug, Clone)]
struct LevelBufs {
    x: Vec<f64>,
    b: Vec<f64>,
    r: Vec<f64>,
    d: Vec<f64>,
}

/// Reusable scratch space for V-cycles over one [`MgHierarchy`] — kept
/// separate from the (immutable, cacheable) hierarchy so a cached
/// hierarchy can serve many solves.
#[derive(Debug, Clone)]
pub(crate) struct MgWorkspace {
    /// Finest-level residual buffer.
    r0: Vec<f64>,
    /// Finest-level Chebyshev direction buffer.
    d0: Vec<f64>,
    /// Buffers for levels `1..L` (the finest level's `x`/`b` are the
    /// caller's slices).
    tail: Vec<LevelBufs>,
}

/// The immutable grid hierarchy: coarse operators, transfer factors,
/// per-level execution plans and the factored coarsest level. Built once
/// per operator (geometry + conductivity) and reused across every solve
/// on it — see [`crate::SolveContext`].
#[derive(Debug)]
pub(crate) struct MgHierarchy {
    /// Mesh dimensions per level, finest first.
    dims: Vec<Dim3>,
    /// `factors[l]` maps level `l` to level `l + 1`.
    factors: Vec<Factors>,
    /// Operators for levels `1..L` (level 0 is the caller's fine
    /// operator, passed by reference to every cycle).
    coarse_ops: Vec<Assembled>,
    plans: Vec<ExecPlan>,
    chol: DenseCholesky,
    nu_pre: usize,
    nu_post: usize,
    omega: f64,
    smoother: Smoother,
    /// Per-level Chebyshev interval `(λ_lo, λ_hi)` of `D⁻¹A` (empty when
    /// the smoother is red-black — the bounds are only computed when
    /// they are needed).
    cheb: Vec<(f64, f64)>,
}

impl MgHierarchy {
    /// Builds the hierarchy for `fine`: repeatedly choose semicoarsening
    /// factors, Galerkin-coarsen, and stop once the level fits the
    /// direct solver.
    ///
    /// # Errors
    ///
    /// [`SolveError::Diverged`] when the coarsest operator fails the
    /// Cholesky SPD check (non-finite or non-positive pivots).
    pub(crate) fn build(fine: &Assembled, params: &MgParams) -> Result<Self, SolveError> {
        let mut dims = vec![fine.dim];
        let mut factors = Vec::new();
        let mut coarse_ops: Vec<Assembled> = Vec::new();
        loop {
            let cur = coarse_ops.last().unwrap_or(fine);
            if cur.dim.len() <= params.coarse_max {
                break;
            }
            let Some(f) = coarsen_factors(cur) else {
                break;
            };
            let coarse = coarsen(cur, f);
            dims.push(coarse.dim);
            factors.push(f);
            coarse_ops.push(coarse);
        }
        let chol = DenseCholesky::factor(coarse_ops.last().unwrap_or(fine))?;
        let plans = dims
            .iter()
            .map(|&d| ExecPlan::new(d, params.threads, params.crossover))
            .collect();
        let cheb = if params.smoother == Smoother::Chebyshev {
            (0..dims.len())
                .map(|l| cheb_bounds(if l == 0 { fine } else { &coarse_ops[l - 1] }))
                .collect()
        } else {
            Vec::new()
        };
        Ok(Self {
            dims,
            factors,
            coarse_ops,
            plans,
            chol,
            nu_pre: params.nu_pre,
            nu_post: params.nu_post,
            omega: params.omega,
            smoother: params.smoother,
            cheb,
        })
    }

    /// Number of levels including the finest.
    pub(crate) fn levels(&self) -> usize {
        self.dims.len()
    }

    /// Mesh dimensions per level, finest first.
    pub(crate) fn dims(&self) -> &[Dim3] {
        &self.dims
    }

    /// Level-to-level coarsening factors (`factors[l]`: level `l` →
    /// level `l + 1`).
    pub(crate) fn factors(&self) -> &[Factors] {
        &self.factors
    }

    /// Per-level execution plans, finest first.
    pub(crate) fn plans(&self) -> &[ExecPlan] {
        &self.plans
    }

    /// The factored coarsest-level direct solver.
    pub(crate) fn chol(&self) -> &DenseCholesky {
        &self.chol
    }

    /// The smoother family this hierarchy was built for.
    pub(crate) fn smoother(&self) -> Smoother {
        self.smoother
    }

    /// `(nu_pre, nu_post)` smoothing sweeps per level.
    pub(crate) fn sweeps(&self) -> (usize, usize) {
        (self.nu_pre, self.nu_post)
    }

    /// Relaxation factor of the red-black smoother.
    pub(crate) fn relax_omega(&self) -> f64 {
        self.omega
    }

    /// Fresh scratch space sized for this hierarchy.
    pub(crate) fn workspace(&self) -> MgWorkspace {
        let n0 = self.dims[0].len();
        MgWorkspace {
            r0: vec![0.0; n0],
            d0: vec![0.0; n0],
            tail: self.dims[1..]
                .iter()
                .map(|d| LevelBufs {
                    x: vec![0.0; d.len()],
                    b: vec![0.0; d.len()],
                    r: vec![0.0; d.len()],
                    d: vec![0.0; d.len()],
                })
                .collect(),
        }
    }

    pub(crate) fn op<'a>(&'a self, fine: &'a Assembled, level: usize) -> &'a Assembled {
        if level == 0 {
            fine
        } else {
            &self.coarse_ops[level - 1]
        }
    }

    /// Per-level Chebyshev intervals (empty unless built with
    /// [`Smoother::Chebyshev`]).
    pub(crate) fn cheb_intervals(&self) -> &[(f64, f64)] {
        &self.cheb
    }

    /// One V-cycle on `A·x = b` at the finest level: `x` is improved in
    /// place (pass zeros to apply the cycle as a preconditioner). The
    /// cycle is a fixed symmetric linear operator — safe inside CG.
    pub(crate) fn v_cycle(&self, fine: &Assembled, ws: &mut MgWorkspace, b: &[f64], x: &mut [f64]) {
        let MgWorkspace { r0, d0, tail } = ws;
        self.cycle(fine, 0, b, x, r0, d0, tail, false);
    }

    /// [`Self::v_cycle`] with a line search on every coarse-grid
    /// correction: each prolongated correction is scaled by the
    /// energy-norm-optimal step before it is added. Piecewise-constant
    /// aggregation underestimates smooth error by a level-dependent
    /// spectral factor, and the nested misscaling makes the unscaled
    /// cycle stall as a stationary iteration on deep high-contrast
    /// stacks; the per-level steps remove it. The scaling makes the
    /// cycle nonlinear, so this variant is for standalone iteration
    /// only — never use it as a CG preconditioner.
    pub(crate) fn v_cycle_scaled(
        &self,
        fine: &Assembled,
        ws: &mut MgWorkspace,
        b: &[f64],
        x: &mut [f64],
    ) {
        let MgWorkspace { r0, d0, tail } = ws;
        self.cycle(fine, 0, b, x, r0, d0, tail, true);
    }

    /// Smoothing passes at one level: `nu` red-black sweeps in the given
    /// colour order, or `nu` Chebyshev applications (self-adjoint, so
    /// the colour order is irrelevant and pre/post are identical).
    #[allow(clippy::too_many_arguments)] // recursion state, not an API
    fn smooth(
        &self,
        op: &Assembled,
        plan: &ExecPlan,
        level: usize,
        b: &[f64],
        x: &mut [f64],
        r: &mut [f64],
        d: &mut [f64],
        nu: usize,
        colours: [usize; 2],
    ) {
        match self.smoother {
            Smoother::RedBlack => {
                for _ in 0..nu {
                    op.rb_sweep(plan, x, b, self.omega, colours);
                }
            }
            Smoother::Chebyshev => {
                let (lo, hi) = self.cheb[level];
                for _ in 0..nu {
                    cheb_smooth(op, plan, lo, hi, b, x, r, d);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // recursion state, not an API
    fn cycle(
        &self,
        fine: &Assembled,
        level: usize,
        b: &[f64],
        x: &mut [f64],
        r: &mut [f64],
        d: &mut [f64],
        tail: &mut [LevelBufs],
        scaled: bool,
    ) {
        let op = self.op(fine, level);
        if level + 1 == self.levels() {
            self.chol.solve(b, x);
            return;
        }
        let plan = &self.plans[level];
        self.smooth(op, plan, level, b, x, r, d, self.nu_pre, [0, 1]);
        plan.map_mut(r, |range, chunk| {
            op.matvec_range(x, chunk, range.clone(), None);
            for (o, bv) in chunk.iter_mut().zip(&b[range]) {
                *o = bv - *o;
            }
        });
        // The workspace is built with one buffer per hierarchy level, so
        // the tail cannot run out while recursing within the depth.
        let (next, rest) = tail
            .split_first_mut()
            .expect("workspace depth matches hierarchy"); // tsc-analyze: allow(no-unwrap): one buffer per level
        restrict(
            self.dims[level],
            self.dims[level + 1],
            self.factors[level],
            r,
            &mut next.b,
        );
        next.x.fill(0.0);
        let LevelBufs {
            x: cx,
            b: cb,
            r: cr,
            d: cd,
        } = next;
        self.cycle(fine, level + 1, cb, cx, cr, cd, rest, scaled);
        if scaled && level + 2 < self.levels() {
            // Energy-optimal step for the prolongated correction
            // `e = P·cx`, computed entirely on the coarse level through
            // the Galerkin identities `⟨e, r⟩ = ⟨cx, R·r⟩ = ⟨cx, cb⟩`
            // and `⟨e, A·e⟩ = ⟨cx, (Pᵀ·A·P)·cx⟩ = ⟨cx, A_c·cx⟩`. The
            // matvec and dots are serial, preserving thread-count
            // independence; when the child level is the direct solve
            // the step is exactly 1, so it is skipped.
            let cop = self.op(fine, level + 1);
            cop.matvec_range(cx, cr, 0..cx.len(), None);
            let den = dot(cx, cr);
            if den > 0.0 {
                let alpha = dot(cx, cb) / den;
                for v in cx.iter_mut() {
                    *v *= alpha;
                }
            }
        }
        prolong_add(
            self.dims[level],
            self.dims[level + 1],
            self.factors[level],
            cx,
            x,
        );
        self.smooth(op, plan, level, b, x, r, d, self.nu_post, [1, 0]);
    }

    /// 2-norm of the residual restricted to each level, finest first —
    /// the [`SolverStats::level_residuals`] diagnostic.
    pub(crate) fn level_norms(&self, r: &[f64], ws: &mut MgWorkspace) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.levels());
        out.push(norm(r));
        for l in 0..self.levels() - 1 {
            let (done, rest) = ws.tail.split_at_mut(l);
            let src: &[f64] = if l == 0 { r } else { &done[l - 1].r };
            restrict(
                self.dims[l],
                self.dims[l + 1],
                self.factors[l],
                src,
                &mut rest[0].r,
            );
            out.push(norm(&rest[0].r));
        }
        out
    }
}

impl Assembled {
    /// Multigrid-preconditioned CG on `A·x = rhs`, warm-started from
    /// `x`: the twin of [`Assembled::cg_core`] with one V-cycle in place
    /// of the diagonal scaling. `⟨r, z⟩` products are serial (the cost
    /// is negligible next to a V-cycle) and everything else reuses the
    /// per-slab ordered reductions, so results stay bitwise identical
    /// across thread counts.
    pub(crate) fn cg_core_mg(
        &self,
        rhs: &[f64],
        x: &mut [f64],
        params: &CgParams,
        mg: &MgHierarchy,
        ws: &mut MgWorkspace,
    ) -> Result<SolverStats, SolveError> {
        // tsc-analyze: allow(no-wallclock-numeric): feeds SolverStats wall-time only, never the numerics
        let t0 = Instant::now();
        let n = self.dim.len();
        let slab = self.dim.nx * self.dim.ny;
        debug_assert_eq!(rhs.len(), n);
        debug_assert_eq!(x.len(), n);
        #[cfg(feature = "fault-inject")]
        let max_iter = {
            crate::fault::begin_solve();
            crate::fault::poison_field(x);
            crate::fault::truncated_budget(params.max_iter)
        };
        #[cfg(not(feature = "fault-inject"))]
        let max_iter = params.max_iter;
        let plan = ExecPlan::new(self.dim, params.threads, params.crossover);
        let b_norm = norm(rhs).max(f64::MIN_POSITIVE);

        let mut r = vec![0.0; n];
        let mut z = vec![0.0; n];
        let mut pv = vec![0.0; n];
        let mut ap = vec![0.0; n];
        let mut matvecs = 0_usize;
        let mut cycles = 0_usize;

        plan.map_mut(&mut ap, |range, chunk| {
            self.matvec_range(x, chunk, range, None);
        });
        matvecs += 1;
        for ((rv, bv), av) in r.iter_mut().zip(rhs).zip(&ap) {
            *rv = bv - av;
        }
        let mut residual = norm(&r) / b_norm;
        let mut iterations = 0_usize;
        let mut trajectory = vec![(0, residual)];
        let mut rz = 0.0;
        if residual > params.tol && residual.is_finite() {
            mg.v_cycle(self, ws, &r, &mut z);
            cycles += 1;
            pv.copy_from_slice(&z);
            rz = dot(&r, &z);
        }

        while residual > params.tol && residual.is_finite() && iterations < max_iter {
            // Region 1: ap = A·pv, then ⟨pv, ap⟩ as a streaming slab dot
            // (same per-slab accumulation order as the historical fused
            // closure — bitwise identical).
            let parts = plan.map_mut(&mut ap, |range, chunk| {
                self.matvec_range(&pv, chunk, range.clone(), None);
                slab_dot_parts(&pv[range], chunk, slab)
            });
            matvecs += 1;
            let p_ap = ordered_sum(parts.into_iter().flatten());
            let alpha = rz / p_ap;

            // Region 2: x += α·pv, r -= α·ap as zips, then ⟨r, r⟩.
            let parts = plan.map2_mut(x, &mut r, |range, xs, rs| {
                for (xv, p) in xs.iter_mut().zip(&pv[range.clone()]) {
                    *xv += alpha * p;
                }
                for (rv, av) in rs.iter_mut().zip(&ap[range]) {
                    *rv -= alpha * av;
                }
                slab_dot_parts(rs, rs, slab)
            });
            let rr = ordered_sum(parts.into_iter().flatten());
            residual = rr.sqrt() / b_norm;
            iterations += 1;
            #[cfg(feature = "fault-inject")]
            {
                residual = crate::fault::corrupt_residual(iterations, residual);
            }
            if iterations.is_multiple_of(params.traj_stride) {
                trajectory.push((iterations, residual));
            }
            if residual <= params.tol || !residual.is_finite() || iterations >= max_iter {
                break;
            }

            // z = M⁻¹·r (one V-cycle from zero), then the direction update.
            z.fill(0.0);
            mg.v_cycle(self, ws, &r, &mut z);
            cycles += 1;
            let rz_next = dot(&r, &z);
            let beta = rz_next / rz;
            rz = rz_next;
            plan.map_mut(&mut pv, |range, chunk| {
                for (o, zv) in chunk.iter_mut().zip(&z[range]) {
                    *o = zv + beta * *o;
                }
            });
        }

        if trajectory.last().map(|&(it, _)| it) != Some(iterations) {
            trajectory.push((iterations, residual));
        }
        if !residual.is_finite() || !x.iter().all(|v| v.is_finite()) {
            return Err(SolveError::Diverged {
                iterations,
                residual,
            });
        }
        if residual > params.tol {
            return Err(SolveError::NotConverged {
                iterations,
                residual,
            });
        }
        let level_residuals = mg.level_norms(&r, ws);
        Ok(SolverStats {
            iterations,
            residual,
            matvecs,
            cycles,
            level_residuals,
            preconditioner: Preconditioner::Multigrid,
            precision: Precision::F64,
            refinements: 0,
            assembly_seconds: self.assembly_seconds,
            solve_seconds: t0.elapsed().as_secs_f64(),
            threads: plan.threads(),
            trajectory,
        })
    }
}

/// Standalone geometric-multigrid solver: iterate `x += α·V(b − A·x)`
/// until the relative residual meets the tolerance, where `α` is the
/// energy-norm-optimal step `⟨e,r⟩/⟨e,A·e⟩` for the cycle output `e`
/// (preconditioned steepest descent — plain `x += e` stalls under the
/// constant spectral misscaling of aggregation transfers).
///
/// For production solves prefer MG-preconditioned CG
/// ([`crate::CgSolver::with_preconditioner`]) — CG absorbs the modest
/// spectral misscaling of piecewise-constant aggregation and converges
/// in fewer fine-grid passes; the standalone cycle is the algorithmically
/// independent cross-check and the building block the preconditioner
/// reuses.
///
/// ```
/// use tsc_thermal::MgSolver;
/// let solver = MgSolver::new().with_tolerance(1e-8).with_max_cycles(500);
/// assert!(solver.tolerance() > 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MgSolver {
    tol: f64,
    max_cycles: usize,
    coarse_max: usize,
    threads: usize,
    crossover: usize,
    smoother: Smoother,
}

impl MgSolver {
    /// Default: relative tolerance `1e-9`, 1000-cycle budget, direct
    /// solve at ≤ 512 cells, one worker per core above the crossover.
    #[must_use]
    pub fn new() -> Self {
        Self {
            tol: 1e-9,
            max_cycles: 1000,
            coarse_max: 512,
            threads: default_threads(),
            crossover: DEFAULT_PARALLEL_CROSSOVER,
            smoother: Smoother::RedBlack,
        }
    }

    /// Builder: relaxation family for every level of the hierarchy.
    #[must_use]
    pub fn with_smoother(mut self, smoother: Smoother) -> Self {
        self.smoother = smoother;
        self
    }

    /// Configured smoother.
    #[must_use]
    pub fn smoother(&self) -> Smoother {
        self.smoother
    }

    /// Builder: relative residual tolerance.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tol < 1`.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        assert!(tol > 0.0 && tol < 1.0, "tolerance must be in (0, 1)");
        self.tol = tol;
        self
    }

    /// Builder: V-cycle budget.
    ///
    /// # Panics
    ///
    /// Panics if `max_cycles` is zero.
    #[must_use]
    pub fn with_max_cycles(mut self, max_cycles: usize) -> Self {
        assert!(max_cycles > 0, "cycle budget must be positive");
        self.max_cycles = max_cycles;
        self
    }

    /// Builder: cell count at which coarsening stops and the level is
    /// solved directly. Small values force deeper hierarchies (useful
    /// for testing the multilevel path on small meshes).
    ///
    /// # Panics
    ///
    /// Panics if `cells` is zero.
    #[must_use]
    pub fn with_coarse_limit(mut self, cells: usize) -> Self {
        assert!(cells > 0, "coarse limit must be positive");
        self.coarse_max = cells;
        self
    }

    /// Builder: caps the worker threads. See
    /// [`crate::CgSolver::with_threads`].
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// Builder: serial/parallel crossover in cells. See
    /// [`crate::CgSolver::with_parallel_crossover`].
    #[must_use]
    pub fn with_parallel_crossover(mut self, cells: usize) -> Self {
        self.crossover = cells;
        self
    }

    /// Configured tolerance.
    #[must_use]
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    pub(crate) fn mg_params(&self) -> MgParams {
        MgParams {
            coarse_max: self.coarse_max,
            smoother: self.smoother,
            ..MgParams::with_exec(self.threads, self.crossover)
        }
    }

    /// Solves the problem.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`crate::CgSolver::solve`]; additionally,
    /// a non-SPD coarsest level surfaces as [`SolveError::Diverged`]
    /// during hierarchy construction.
    pub fn solve(&self, p: &Problem) -> Result<Solution, SolveError> {
        // tsc-analyze: allow(no-wallclock-numeric): feeds SolverStats wall-time only, never the numerics
        let t0 = Instant::now();
        let asm = Assembled::build(p)?;
        let mg = MgHierarchy::build(&asm, &self.mg_params())?;
        let mut ws = mg.workspace();
        let n = asm.dim.len();
        let plan = ExecPlan::new(asm.dim, self.threads, self.crossover);
        let b_norm = norm(&asm.rhs).max(f64::MIN_POSITIVE);
        let mut x = vec![asm.initial_guess; n];
        #[cfg(feature = "fault-inject")]
        let max_cycles = {
            crate::fault::begin_solve();
            crate::fault::poison_field(&mut x);
            crate::fault::truncated_budget(self.max_cycles)
        };
        #[cfg(not(feature = "fault-inject"))]
        let max_cycles = self.max_cycles;
        let mut r = vec![0.0; n];
        let mut e = vec![0.0; n];
        let mut ax = vec![0.0; n];
        let mut ae = vec![0.0; n];
        let mut cycles = 0_usize;
        let mut matvecs = 0_usize;

        let mut residual = asm.residual_norm(&plan, &x, &asm.rhs, b_norm, &mut ax);
        matvecs += 1;
        let mut trajectory = vec![(0, residual)];
        while residual > self.tol && residual.is_finite() && cycles < max_cycles {
            for ((rv, bv), av) in r.iter_mut().zip(&asm.rhs).zip(&ax) {
                *rv = bv - av;
            }
            e.fill(0.0);
            mg.v_cycle_scaled(&asm, &mut ws, &r, &mut e);
            // Line-searched correction `x += α·e` with
            // `α = ⟨e,r⟩ / ⟨e,A·e⟩`: piecewise-constant aggregation
            // misscales the coarse correction by a roughly constant
            // spectral factor, which stalls the plain `x += e` iteration
            // on large meshes; the optimal step makes the cycle a
            // preconditioned steepest-descent step, which converges for
            // every SPD operator. The dots are serial, so thread-count
            // independence is preserved.
            plan.map_mut(&mut ae, |range, chunk| {
                asm.matvec_range(&e, chunk, range, None);
            });
            matvecs += 1;
            let den = dot(&e, &ae);
            let alpha = if den > 0.0 { dot(&e, &r) / den } else { 1.0 };
            for (xv, ev) in x.iter_mut().zip(&e) {
                *xv += alpha * ev;
            }
            cycles += 1;
            residual = asm.residual_norm(&plan, &x, &asm.rhs, b_norm, &mut ax);
            matvecs += 1;
            #[cfg(feature = "fault-inject")]
            {
                residual = crate::fault::corrupt_residual(cycles, residual);
            }
            trajectory.push((cycles, residual));
        }

        if !residual.is_finite() || !x.iter().all(|v| v.is_finite()) {
            return Err(SolveError::Diverged {
                iterations: cycles,
                residual,
            });
        }
        if residual > self.tol {
            return Err(SolveError::NotConverged {
                iterations: cycles,
                residual,
            });
        }
        for ((rv, bv), av) in r.iter_mut().zip(&asm.rhs).zip(&ax) {
            *rv = bv - av;
        }
        let level_residuals = mg.level_norms(&r, &mut ws);
        let stats = SolverStats {
            iterations: cycles,
            residual,
            matvecs,
            cycles,
            level_residuals,
            preconditioner: Preconditioner::Multigrid,
            precision: Precision::F64,
            refinements: 0,
            assembly_seconds: asm.assembly_seconds,
            solve_seconds: t0.elapsed().as_secs_f64() - asm.assembly_seconds,
            threads: plan.threads(),
            trajectory,
        };
        Ok(asm.solution(&x, stats, p.total_power().watts()))
    }
}

impl Default for MgSolver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatsink::Heatsink;
    use crate::CgSolver;
    use tsc_rng::Rng64;
    use tsc_units::{HeatTransferCoefficient, Length, Power, Temperature, ThermalConductivity};

    /// A heterogeneous problem with a bottom sink and scattered sources.
    fn hetero(nx: usize, ny: usize, nz: usize, seed: u64) -> Problem {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut p = Problem::uniform_block(
            nx,
            ny,
            nz,
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.0),
            Length::from_micrometers(50.0),
            ThermalConductivity::new(30.0),
        );
        for k in 0..nz {
            p.set_layer_conductivity(
                k,
                ThermalConductivity::new(rng.gen_range_f64(0.5..150.0)),
                ThermalConductivity::new(rng.gen_range_f64(0.5..150.0)),
            );
        }
        p.set_bottom_heatsink(Heatsink::new(
            HeatTransferCoefficient::new(rng.gen_range_f64(1e4..1e6)),
            Temperature::from_celsius(25.0),
        ));
        for _ in 0..4 {
            p.add_power(
                rng.gen_range(0..nx),
                rng.gen_range(0..ny),
                rng.gen_range(0..nz),
                Power::from_watts(rng.gen_range_f64(0.05..2.0)),
            );
        }
        p
    }

    /// `Pᵀ·A·P` exactness: applying the coarsened stencil to a coarse
    /// vector must equal restrict(A(prolong(v))) on the fine grid.
    #[test]
    fn coarse_operator_is_exactly_galerkin() {
        let p = hetero(7, 5, 6, 0x11);
        let asm = Assembled::build(&p).expect("well-posed");
        let mut rng = Rng64::seed_from_u64(0x12);
        for f in [[2, 1, 1], [1, 2, 1], [1, 1, 2], [2, 2, 2], [2, 1, 2]] {
            let coarse = coarsen(&asm, f);
            let nc = coarse.dim.len();
            let v: Vec<f64> = (0..nc).map(|_| rng.gen_range_f64(-1.0..1.0)).collect();
            // Direct application of the coarse stencil.
            let mut direct = vec![0.0; nc];
            coarse.matvec_range(&v, &mut direct, 0..nc, None);
            // R·A·P applied on the fine grid.
            let nf = asm.dim.len();
            let mut pv = vec![0.0; nf];
            prolong_add(asm.dim, coarse.dim, f, &v, &mut pv);
            let mut apv = vec![0.0; nf];
            asm.matvec_range(&pv, &mut apv, 0..nf, None);
            let mut rap = vec![0.0; nc];
            restrict(asm.dim, coarse.dim, f, &apv, &mut rap);
            for (a, b) in direct.iter().zip(&rap) {
                assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-12),
                    "Galerkin mismatch for factors {f:?}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn semicoarsening_picks_the_strong_direction() {
        // 50 µm layers vs 1 mm lateral pitch: g_z/g_x ≈ 400, so only z
        // may coarsen.
        let p = hetero(6, 6, 6, 0x21);
        let asm = Assembled::build(&p).expect("well-posed");
        assert_eq!(coarsen_factors(&asm), Some([1, 1, 2]));
        // An isotropic cube coarsens every direction.
        let mut iso = Problem::uniform_block(
            4,
            4,
            4,
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.0),
            ThermalConductivity::new(10.0),
        );
        iso.set_bottom_heatsink(Heatsink::two_phase());
        let asm = Assembled::build(&iso).expect("well-posed");
        assert_eq!(coarsen_factors(&asm), Some([2, 2, 2]));
    }

    #[test]
    fn hierarchy_terminates_at_the_coarse_limit() {
        let p = hetero(8, 8, 12, 0x31);
        let asm = Assembled::build(&p).expect("well-posed");
        let params = MgParams {
            coarse_max: 32,
            ..MgParams::with_exec(1, usize::MAX)
        };
        let mg = MgHierarchy::build(&asm, &params).expect("SPD");
        assert!(mg.levels() > 2, "expected a real multilevel hierarchy");
        let dims = mg.dims();
        for w in dims.windows(2) {
            assert!(w[1].len() < w[0].len(), "levels must strictly shrink");
        }
        assert!(dims.last().expect("nonempty").len() <= 32);
    }

    #[test]
    fn dense_cholesky_matches_cg() {
        let p = hetero(4, 3, 5, 0x41);
        let asm = Assembled::build(&p).expect("well-posed");
        let chol = DenseCholesky::factor(&asm).expect("SPD");
        let n = asm.dim.len();
        let mut direct = vec![0.0; n];
        chol.solve(&asm.rhs, &mut direct);
        let cg = CgSolver::new().with_tolerance(1e-12).solve(&p).expect("cg");
        for (a, b) in direct.iter().zip(cg.temperatures.iter_kelvin()) {
            assert!((a - b).abs() < 1e-6, "direct {a} vs cg {b}");
        }
    }

    #[test]
    fn v_cycles_contract_the_residual() {
        let p = hetero(9, 9, 10, 0x51);
        let sol = MgSolver::new()
            .with_tolerance(1e-10)
            .with_coarse_limit(24)
            .solve(&p)
            .expect("mg converges");
        let traj = &sol.stats.trajectory;
        assert!(traj.len() >= 3, "expected several cycles, got {traj:?}");
        for w in traj.windows(2) {
            assert!(
                w[1].1 < w[0].1 * 0.95,
                "cycle failed to contract: {:?}",
                traj
            );
        }
        assert_eq!(sol.stats.cycles, sol.stats.iterations);
        assert_eq!(sol.stats.preconditioner, Preconditioner::Multigrid);
        assert!(
            sol.stats.level_residuals.len() >= 3,
            "expected a multilevel diagnostic, got {:?}",
            sol.stats.level_residuals
        );
    }

    #[test]
    fn mg_pcg_matches_jacobi_cg_closely() {
        let p = hetero(10, 8, 9, 0x61);
        let jacobi = CgSolver::new().with_tolerance(1e-10).solve(&p).expect("cg");
        let mg = CgSolver::new()
            .with_tolerance(1e-10)
            .with_preconditioner(Preconditioner::Multigrid)
            .solve(&p)
            .expect("mg-pcg");
        let max_diff = jacobi
            .temperatures
            .iter_kelvin()
            .zip(mg.temperatures.iter_kelvin())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        assert!(max_diff <= 1e-6, "solutions deviate by {max_diff} K");
        assert_eq!(mg.stats.preconditioner, Preconditioner::Multigrid);
        assert!(mg.stats.cycles > 0);
    }

    #[test]
    fn poisoned_operator_fails_cholesky_not_nan() {
        let mut p = hetero(4, 4, 4, 0x71);
        p.add_power(1, 1, 1, Power::from_watts(f64::NAN));
        // NaN power only poisons the RHS; the operator stays SPD, so the
        // failure must surface as Diverged from the iteration, not Ok.
        match MgSolver::new().solve(&p).unwrap_err() {
            SolveError::Diverged { residual, .. } => assert!(!residual.is_finite()),
            other => panic!("expected Diverged, got {other:?}"),
        }
    }
}
