//! Scoped-thread parallel execution engine shared by the solvers.
//!
//! The finite-volume operators are matrix-free stencils over a flat
//! `nx·ny·nz` array, so the natural unit of work distribution is the
//! **z-slab** (one `nx·ny` plane): bands of whole slabs are contiguous in
//! the flat (x-fastest) ordering, give each worker cache-friendly
//! streaming access, and make the gather-form seven-point stencil
//! race-free — every worker writes only its own band and reads its
//! neighbours' boundary slabs immutably.
//!
//! Workers are `std::thread::scope` threads spawned per parallel region.
//! That costs a few tens of microseconds per region, which is why the
//! solvers only engage the engine above a crossover problem size (see
//! [`crate::CgSolver::with_parallel_crossover`]); below it, a
//! single-band plan runs the identical code serially on the caller's
//! thread, so small problems pay nothing and results stay bitwise
//! reproducible per thread count.
//!
//! # Race checking (`--features race-check`)
//!
//! Under the `race-check` feature every parallel region is audited by
//! [`crate::race`]: the `map_mut` family re-verifies that its bands are
//! disjoint intervals, and [`ExecPlan::for_each_shared`] — the one region
//! whose write-disjointness the compiler *cannot* see — records per-band
//! read/write index sets through [`SharedSlice`] and asserts pairwise
//! write-disjointness and read/foreign-write separation after the join.
//! With a schedule-perturbation seed installed
//! ([`crate::race::set_schedule_seed`]), plans execute their bands
//! sequentially in a seed-derived permuted order instead of spawning, so
//! harnesses can prove results are independent of band ordering.

use std::ops::Range;
use tsc_geometry::Dim3;

#[cfg(feature = "race-check")]
use crate::race;

/// How a solve distributes its element-wise and stencil work.
///
/// A plan is a partition of the flat cell range into contiguous,
/// slab-aligned bands: `bands.len() == 1` means serial execution on the
/// calling thread (no spawns at all).
#[derive(Debug, Clone)]
pub(crate) struct ExecPlan {
    bands: Vec<Range<usize>>,
    /// Permuted sequential band execution order (schedule-perturbation
    /// harness only; `None` = normal spawning execution).
    #[cfg(feature = "race-check")]
    order: Option<Vec<usize>>,
}

impl ExecPlan {
    /// Builds a plan for `dim` using up to `threads` workers, falling
    /// back to serial when the problem is below `crossover` cells or
    /// fewer slabs than workers exist.
    pub(crate) fn new(dim: Dim3, threads: usize, crossover: usize) -> Self {
        let n = dim.len();
        let slab = dim.nx * dim.ny;
        let t = if threads > 1 && n >= crossover {
            threads.min(dim.nz.max(1))
        } else {
            1
        };
        let mut bands = Vec::with_capacity(t);
        let (base, rem) = (dim.nz / t, dim.nz % t);
        let mut k0 = 0;
        for b in 0..t {
            let nk = base + usize::from(b < rem);
            bands.push(k0 * slab..(k0 + nk) * slab);
            k0 += nk;
        }
        #[cfg(feature = "race-check")]
        let order = if bands.len() > 1 {
            race::schedule_seed().map(|s| race::permutation(bands.len(), s))
        } else {
            None
        };
        Self {
            bands,
            #[cfg(feature = "race-check")]
            order,
        }
    }

    /// The slab-aligned flat ranges, one per worker.
    #[cfg(test)]
    pub(crate) fn bands(&self) -> &[Range<usize>] {
        &self.bands
    }

    /// Number of workers this plan engages (1 = serial).
    pub(crate) fn threads(&self) -> usize {
        self.bands.len()
    }

    /// Runs `f` once per band with a mutable view of `out` restricted to
    /// that band, returning each band's result in band order.
    ///
    /// Serial plans call `f` inline; parallel plans fan the bands out
    /// across scoped threads. `f` receives the band's absolute flat
    /// range plus the matching sub-slice of `out` (indexed from 0).
    /// Generic over the element type so the f64 solvers and the f32
    /// mixed-precision kernels share one engine.
    pub(crate) fn map_mut<T, R, F>(&self, out: &mut [T], f: F) -> Vec<R>
    where
        T: Copy + Send + Sync,
        R: Send,
        F: Fn(Range<usize>, &mut [T]) -> R + Sync,
    {
        if self.bands.len() == 1 {
            let r = self.bands[0].clone();
            return vec![f(r.clone(), &mut out[r])];
        }
        let chunks = split_mut(out, &self.bands);
        #[cfg(feature = "race-check")]
        if let Some(order) = &self.order {
            let mut chunks = chunks;
            let results = run_permuted(order, &self.bands, |bi, range| f(range, &mut *chunks[bi]));
            race::enforce(race::check_intervals("map_mut (permuted)", &self.bands));
            return results;
        }
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .bands
                .iter()
                .cloned()
                .zip(chunks)
                .map(|(range, chunk)| {
                    let f = &f;
                    s.spawn(move || f(range, chunk))
                })
                .collect();
            handles
                .into_iter()
                // tsc-analyze: allow(no-unwrap): a worker panic must
                // propagate to the caller, not be swallowed into a
                // half-written field.
                .map(|h| h.join().expect("solver worker panicked"))
                .collect()
        });
        #[cfg(feature = "race-check")]
        race::enforce(race::check_intervals("map_mut", &self.bands));
        results
    }

    /// Like [`ExecPlan::map_mut`] but with two banded mutable arrays —
    /// the fused MG-preconditioned CG update (`x`, `r`) region, which
    /// has no Jacobi `z` array to scale in place.
    pub(crate) fn map2_mut<T, R, F>(&self, a: &mut [T], b: &mut [T], f: F) -> Vec<R>
    where
        T: Copy + Send + Sync,
        R: Send,
        F: Fn(Range<usize>, &mut [T], &mut [T]) -> R + Sync,
    {
        if self.bands.len() == 1 {
            let r = self.bands[0].clone();
            return vec![f(r.clone(), &mut a[r.clone()], &mut b[r])];
        }
        let (ca, cb) = (split_mut(a, &self.bands), split_mut(b, &self.bands));
        #[cfg(feature = "race-check")]
        if let Some(order) = &self.order {
            let (mut ca, mut cb) = (ca, cb);
            let results = run_permuted(order, &self.bands, |bi, range| {
                f(range, &mut *ca[bi], &mut *cb[bi])
            });
            race::enforce(race::check_intervals("map2_mut (permuted)", &self.bands));
            return results;
        }
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .bands
                .iter()
                .cloned()
                .zip(ca.into_iter().zip(cb))
                .map(|(range, (sa, sb))| {
                    let f = &f;
                    s.spawn(move || f(range, sa, sb))
                })
                .collect();
            handles
                .into_iter()
                // tsc-analyze: allow(no-unwrap): a worker panic must
                // propagate to the caller, not be swallowed.
                .map(|h| h.join().expect("solver worker panicked"))
                .collect()
        });
        #[cfg(feature = "race-check")]
        race::enforce(race::check_intervals("map2_mut", &self.bands));
        results
    }

    /// Like [`ExecPlan::map_mut`] but with three banded mutable arrays —
    /// the fused CG update (`x`, `r`, `z`) region.
    pub(crate) fn map3_mut<T, R, F>(&self, a: &mut [T], b: &mut [T], c: &mut [T], f: F) -> Vec<R>
    where
        T: Copy + Send + Sync,
        R: Send,
        F: Fn(Range<usize>, &mut [T], &mut [T], &mut [T]) -> R + Sync,
    {
        if self.bands.len() == 1 {
            let r = self.bands[0].clone();
            return vec![f(
                r.clone(),
                &mut a[r.clone()],
                &mut b[r.clone()],
                &mut c[r],
            )];
        }
        let (ca, cb, cc) = (
            split_mut(a, &self.bands),
            split_mut(b, &self.bands),
            split_mut(c, &self.bands),
        );
        #[cfg(feature = "race-check")]
        if let Some(order) = &self.order {
            let (mut ca, mut cb, mut cc) = (ca, cb, cc);
            let results = run_permuted(order, &self.bands, |bi, range| {
                f(range, &mut *ca[bi], &mut *cb[bi], &mut *cc[bi])
            });
            race::enforce(race::check_intervals("map3_mut (permuted)", &self.bands));
            return results;
        }
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .bands
                .iter()
                .cloned()
                .zip(ca)
                .zip(cb.into_iter().zip(cc))
                .map(|((range, sa), (sb, sc))| {
                    let f = &f;
                    s.spawn(move || f(range, sa, sb, sc))
                })
                .collect();
            handles
                .into_iter()
                // tsc-analyze: allow(no-unwrap): a worker panic must
                // propagate to the caller, not be swallowed.
                .map(|h| h.join().expect("solver worker panicked"))
                .collect()
        });
        #[cfg(feature = "race-check")]
        race::enforce(race::check_intervals("map3_mut", &self.bands));
        results
    }

    /// Runs `f` once per band against a [`SharedSlice`] — the red-black
    /// SOR region, where disjointness of writes is by cell colour rather
    /// than by band and so cannot be expressed as sub-slice ownership.
    ///
    /// Under `race-check`, each band records its accessed indices and
    /// the region is audited after the join (see the module docs).
    #[cfg(not(feature = "race-check"))]
    pub(crate) fn for_each_shared<T, F>(&self, x: &mut [T], f: F)
    where
        T: Copy + Send + Sync,
        F: Fn(Range<usize>, &SharedSlice<'_, T>) + Sync,
    {
        let shared = SharedSlice::new(x);
        if self.bands.len() == 1 {
            f(self.bands[0].clone(), &shared);
            return;
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .bands
                .iter()
                .cloned()
                .map(|range| {
                    let f = &f;
                    let shared = &shared;
                    s.spawn(move || f(range, shared))
                })
                .collect();
            for h in handles {
                // tsc-analyze: allow(no-unwrap): a worker panic must
                // propagate to the caller, not be swallowed.
                h.join().expect("solver worker panicked");
            }
        })
    }

    /// Race-checked variant: per-band `SharedSlice` views carry their
    /// own access logs, merged and audited after the region completes.
    #[cfg(feature = "race-check")]
    pub(crate) fn for_each_shared<T, F>(&self, x: &mut [T], f: F)
    where
        T: Copy + Send + Sync,
        F: Fn(Range<usize>, &SharedSlice<'_, T>) + Sync,
    {
        let shared = SharedSlice::new(x);
        if self.bands.len() == 1 {
            f(self.bands[0].clone(), &shared);
            let mut logs = vec![shared.take_log()];
            race::enforce(race::check_logs("shared region (serial)", &mut logs));
            return;
        }
        if let Some(order) = &self.order {
            let mut logs = vec![race::AccessLog::default(); self.bands.len()];
            for &bi in order {
                let view = shared.fork();
                f(self.bands[bi].clone(), &view);
                logs[bi] = view.take_log();
            }
            race::enforce(race::check_logs(
                "shared red-black region (permuted)",
                &mut logs,
            ));
            return;
        }
        let views: Vec<SharedSlice<'_, T>> = self.bands.iter().map(|_| shared.fork()).collect();
        let mut logs: Vec<race::AccessLog> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .bands
                .iter()
                .cloned()
                .zip(views)
                .map(|(range, view)| {
                    let f = &f;
                    s.spawn(move || {
                        f(range, &view);
                        view.take_log()
                    })
                })
                .collect();
            handles
                .into_iter()
                // tsc-analyze: allow(no-unwrap): a worker panic must
                // propagate to the caller, not be swallowed.
                .map(|h| h.join().expect("solver worker panicked"))
                .collect()
        });
        race::enforce(race::check_logs("shared red-black region", &mut logs));
    }
}

/// Executes every band exactly once, sequentially, in `order`, storing
/// results back into band-order slots — the schedule-perturbation
/// execution mode.
#[cfg(feature = "race-check")]
fn run_permuted<R>(
    order: &[usize],
    bands: &[Range<usize>],
    mut f: impl FnMut(usize, Range<usize>) -> R,
) -> Vec<R> {
    let mut slots: Vec<Option<R>> = bands.iter().map(|_| None).collect();
    for &bi in order {
        slots[bi] = Some(f(bi, bands[bi].clone()));
    }
    slots
        .into_iter()
        // tsc-analyze: allow(no-unwrap): `race::permutation` returns a
        // permutation of 0..bands.len(), so every slot is filled.
        .map(|r| r.expect("permutation covers every band"))
        .collect()
}

/// Splits one mutable slice into per-band sub-slices (bands must be a
/// contiguous partition starting at 0).
fn split_mut<'a, T>(mut s: &'a mut [T], bands: &[Range<usize>]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(bands.len());
    for r in bands {
        let (head, tail) = s.split_at_mut(r.len());
        out.push(head);
        s = tail;
    }
    debug_assert!(s.is_empty(), "bands must partition the slice");
    out
}

/// A shared view of a mutable scalar slice for stencil passes whose
/// write pattern is provably disjoint but not band-contiguous. Generic
/// over the scalar (`f64` for the PR-1 solvers, `f32` for the
/// mixed-precision kernels).
///
/// Red-black SOR writes only cells of the active colour
/// (`(i + j + k) % 2 == colour`) inside the worker's own k-band, and
/// reads only cells of the *other* colour (every stencil neighbour flips
/// parity) — no cell is ever written by two workers in the same pass,
/// and no cell is read while any worker may write it. The unsafe
/// surface is confined to this type; callers uphold the invariant above,
/// and the `race-check` feature verifies it dynamically
/// (see [`crate::race`]).
pub(crate) struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    /// Indices this view accessed (one view per band under race-check).
    #[cfg(feature = "race-check")]
    log: core::cell::RefCell<race::AccessLog>,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: the pointer refers to a live `&mut [T]` (held exclusively by
// the engine for the duration of the region) and the access discipline
// is delegated to the caller per the type-level contract (disjoint
// writes, no read of a concurrently written cell), so cross-thread
// shared access through `&SharedSlice` cannot produce a data race when
// the contract holds. `T: Send + Sync` keeps non-thread-safe scalars out.
#[cfg(not(feature = "race-check"))]
unsafe impl<T: Send + Sync> Sync for SharedSlice<'_, T> {}

// SAFETY: sending the view to another thread moves only a pointer (plus
// the race-check log, which is owned data); the underlying slice outlives
// the scoped threads the engine hands the view to.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T: Copy> SharedSlice<'a, T> {
    pub(crate) fn new(s: &'a mut [T]) -> Self {
        Self {
            ptr: s.as_mut_ptr(),
            len: s.len(),
            #[cfg(feature = "race-check")]
            log: core::cell::RefCell::new(race::AccessLog::default()),
            _marker: std::marker::PhantomData,
        }
    }

    /// Another view of the same slice with a fresh access log — one per
    /// band, so each band's accesses are attributed to it. The aliasing
    /// contract is unchanged: all views share the region-level access
    /// discipline documented on the type.
    #[cfg(feature = "race-check")]
    fn fork(&self) -> SharedSlice<'a, T> {
        SharedSlice {
            ptr: self.ptr,
            len: self.len,
            log: core::cell::RefCell::new(race::AccessLog::default()),
            _marker: std::marker::PhantomData,
        }
    }

    /// Extracts the access log accumulated by this view.
    #[cfg(feature = "race-check")]
    fn take_log(&self) -> race::AccessLog {
        self.log.take()
    }

    /// Reads element `i`.
    ///
    /// # Safety
    ///
    /// `i < len`, and no concurrent writer may target `i` during this
    /// pass (guaranteed by the colour discipline).
    #[inline]
    pub(crate) unsafe fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        #[cfg(feature = "race-check")]
        self.log.borrow_mut().reads.push(i);
        // SAFETY: `i < len` per this function's contract, so the add
        // stays inside the allocation; the caller guarantees no
        // concurrent writer targets `i`.
        unsafe { *self.ptr.add(i) }
    }

    /// Writes element `i`.
    ///
    /// # Safety
    ///
    /// `i < len`, and `i` must belong exclusively to the calling worker
    /// for this pass (own band, active colour).
    #[inline]
    pub(crate) unsafe fn set(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        #[cfg(feature = "race-check")]
        self.log.borrow_mut().writes.push(i);
        // SAFETY: `i < len` per this function's contract, so the add
        // stays inside the allocation; the caller guarantees exclusive
        // ownership of `i` for this pass.
        unsafe { *self.ptr.add(i) = v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_partition_and_align_to_slabs() {
        let dim = Dim3::new(3, 4, 10); // slab = 12
        let plan = ExecPlan::new(dim, 4, 0);
        assert_eq!(plan.threads(), 4);
        let mut expect_start = 0;
        for band in plan.bands() {
            assert_eq!(band.start, expect_start);
            assert_eq!(band.len() % 12, 0, "band must hold whole slabs");
            expect_start = band.end;
        }
        assert_eq!(expect_start, dim.len());
    }

    #[test]
    fn below_crossover_is_serial() {
        let dim = Dim3::new(4, 4, 4);
        let plan = ExecPlan::new(dim, 8, 1_000_000);
        assert_eq!(plan.threads(), 1);
        assert_eq!(plan.bands(), std::slice::from_ref(&(0..dim.len())));
    }

    #[test]
    fn never_more_bands_than_slabs() {
        let dim = Dim3::new(8, 8, 3);
        let plan = ExecPlan::new(dim, 16, 0);
        assert_eq!(plan.threads(), 3);
    }

    #[test]
    fn map_mut_covers_every_cell() {
        let dim = Dim3::new(2, 2, 9);
        let plan = ExecPlan::new(dim, 4, 0);
        let mut out = vec![0.0; dim.len()];
        let partials = plan.map_mut(&mut out, |range, chunk| {
            for (local, c) in range.clone().enumerate() {
                chunk[local] = c as f64;
            }
            range.len()
        });
        assert_eq!(partials.iter().sum::<usize>(), dim.len());
        for (c, v) in out.iter().enumerate() {
            assert_eq!(*v, c as f64);
        }
    }

    /// Seeded regressions for the race checker itself: deliberately
    /// break the access discipline and assert the region audit panics.
    /// A schedule seed is installed first so the bands run sequentially
    /// (permuted) — the broken pattern is then observed by the logs
    /// without ever performing a genuinely concurrent conflicting write.
    #[cfg(feature = "race-check")]
    mod seeded_regressions {
        use super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::{Mutex, MutexGuard};

        /// Serializes tests that touch the process-global schedule seed.
        static SEED_LOCK: Mutex<()> = Mutex::new(());

        /// Installs a seed for the test's duration; clears it on drop
        /// (including panics, so one test cannot poison the next).
        struct SeedGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

        fn install(seed: u64) -> SeedGuard {
            let guard = SEED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            race::set_schedule_seed(Some(seed));
            SeedGuard(guard)
        }

        impl Drop for SeedGuard {
            fn drop(&mut self) {
                race::set_schedule_seed(None);
            }
        }

        #[test]
        fn overlapping_writes_are_caught() {
            let _seed = install(11);
            let dim = Dim3::new(2, 2, 4);
            let plan = ExecPlan::new(dim, 4, 0);
            assert!(plan.threads() > 1, "need a multi-band plan");
            let mut x = vec![0.0; dim.len()];
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                plan.for_each_shared(&mut x, |range, shared| {
                    // SAFETY: in-bounds; the discipline violation below
                    // is intentional and safe here because the installed
                    // seed forces sequential (permuted) execution — no
                    // two bands ever run concurrently in this test.
                    unsafe {
                        shared.set(0, 1.0); // every band writes index 0
                        for c in range {
                            shared.set(c, 2.0);
                        }
                    }
                });
            }));
            assert!(
                outcome.is_err(),
                "write/write overlap must fail the region audit"
            );
        }

        #[test]
        fn foreign_reads_are_caught() {
            let _seed = install(23);
            let dim = Dim3::new(2, 2, 4);
            let plan = ExecPlan::new(dim, 4, 0);
            assert!(plan.threads() > 1, "need a multi-band plan");
            let mut x = vec![0.0; dim.len()];
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                plan.for_each_shared(&mut x, |range, shared| {
                    // SAFETY: in-bounds; sequential permuted execution
                    // (seed installed) makes the deliberate cross-band
                    // read below data-race-free in this test.
                    unsafe {
                        if range.start != 0 {
                            // Band 0 writes index 0; everyone else
                            // reading it is a read/foreign-write.
                            let _ = shared.get(0);
                        }
                        for c in range {
                            shared.set(c, 1.0);
                        }
                    }
                });
            }));
            assert!(
                outcome.is_err(),
                "read of a foreign write must fail the region audit"
            );
        }

        #[test]
        fn disciplined_region_passes_under_seed() {
            let _seed = install(37);
            let dim = Dim3::new(2, 2, 6);
            let plan = ExecPlan::new(dim, 3, 0);
            let mut x = vec![1.0; dim.len()];
            plan.for_each_shared(&mut x, |range, shared| {
                for c in range {
                    // SAFETY: bands are disjoint; each band touches only
                    // its own cells.
                    unsafe { shared.set(c, shared.get(c) + c as f64) };
                }
            });
            for (c, v) in x.iter().enumerate() {
                assert_eq!(*v, 1.0 + c as f64);
            }
        }
    }

    #[test]
    fn shared_slice_roundtrips() {
        let dim = Dim3::new(2, 2, 4);
        let plan = ExecPlan::new(dim, 2, 0);
        let mut x = vec![1.0; dim.len()];
        plan.for_each_shared(&mut x, |range, shared| {
            for c in range {
                // SAFETY: bands are disjoint; each worker touches only
                // its own band here.
                unsafe { shared.set(c, shared.get(c) + c as f64) };
            }
        });
        for (c, v) in x.iter().enumerate() {
            assert_eq!(*v, 1.0 + c as f64);
        }
    }
}
