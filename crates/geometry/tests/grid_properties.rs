//! Randomized property tests for the geometry substrate: index algebra,
//! painting, point location and layer discretization.
//!
//! Cases are drawn from a deterministic [`Rng64`] stream per test (the
//! hermetic replacement for proptest); shrunk counterexamples that the
//! old proptest runs discovered are kept as explicit cases.

use tsc_geometry::{Dim3, Grid2, LayerKind, LayerSlab, LayerStack, Point, Rect};
use tsc_rng::Rng64;
use tsc_units::Length;

const CASES: usize = 256;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

#[test]
fn flat_unflat_round_trips() {
    let mut rng = Rng64::seed_from_u64(0x2001);
    for _ in 0..64 {
        let dim = Dim3::new(
            rng.gen_range(1..12),
            rng.gen_range(1..12),
            rng.gen_range(1..12),
        );
        for flat in 0..dim.len() {
            let ijk = dim.unflat(flat);
            assert_eq!(dim.flat(ijk.i, ijk.j, ijk.k), flat);
        }
    }
}

#[test]
fn locate_agrees_with_cell_rect() {
    let mut rng = Rng64::seed_from_u64(0x2002);
    for _ in 0..CASES {
        let nx = rng.gen_range(2..20);
        let ny = rng.gen_range(2..20);
        let fx = rng.gen_range_f64(0.001..0.999);
        let fy = rng.gen_range_f64(0.001..0.999);
        let domain = Rect::from_origin_size(Length::ZERO, Length::ZERO, um(100.0), um(80.0));
        let g = Grid2::filled(nx, ny, 0.0_f64);
        let p = Point::new(domain.width() * fx, domain.height() * fy);
        let ij = g.locate(&domain, p).expect("inside the domain");
        let cell = g.cell_rect(&domain, ij.i, ij.j);
        assert!(cell.contains(p), "cell {cell} must contain {p}");
    }
}

#[test]
fn paint_rect_count_matches_sum() {
    let mut rng = Rng64::seed_from_u64(0x2003);
    for _ in 0..CASES {
        let nx = rng.gen_range(2..24);
        let x0 = rng.gen_range_f64(0.0..50.0);
        let y0 = rng.gen_range_f64(0.0..50.0);
        let w = rng.gen_range_f64(1.0..50.0);
        let h = rng.gen_range_f64(1.0..50.0);
        let domain = Rect::from_origin_size(Length::ZERO, Length::ZERO, um(100.0), um(100.0));
        let region = Rect::from_origin_size(um(x0), um(y0), um(w), um(h));
        let mut g = Grid2::filled(nx, nx, 0.0_f64);
        let painted = g.paint_rect(&domain, &region, 1.0);
        assert_eq!(painted as f64, g.sum());
        assert!(painted <= g.len());
    }
}

#[allow(clippy::too_many_arguments)]
fn check_rect_intersection(ax: f64, ay: f64, aw: f64, ah: f64, bx: f64, by: f64, bw: f64, bh: f64) {
    let a = Rect::from_origin_size(um(ax), um(ay), um(aw), um(ah));
    let b = Rect::from_origin_size(um(bx), um(by), um(bw), um(bh));
    match (a.intersection(&b), b.intersection(&a)) {
        (Some(i1), Some(i2)) => {
            assert!((i1.area().square_meters() - i2.area().square_meters()).abs() < 1e-24);
            // Reconstructing the intersection as origin+size can move
            // its far edge by one ulp; allow that.
            let eps = Length::from_meters(1e-15);
            assert!(a.inflated(eps).contains_rect(&i1));
            assert!(b.inflated(eps).contains_rect(&i1));
            assert!(
                i1.area().square_meters()
                    <= a.area().square_meters().min(b.area().square_meters()) + 1e-24
            );
        }
        (None, None) => assert!(!a.intersects(&b)),
        _ => panic!("intersection must be symmetric"),
    }
}

#[test]
fn rect_intersection_is_commutative_and_contained() {
    // Shrunk counterexample found by the former proptest suite.
    check_rect_intersection(
        0.0,
        8.124730964566123,
        29.475265245695795,
        40.409809773590986,
        0.0,
        10.353305944873979,
        1.0,
        58.65809322325121,
    );
    let mut rng = Rng64::seed_from_u64(0x2004);
    for _ in 0..CASES {
        check_rect_intersection(
            rng.gen_range_f64(0.0..50.0),
            rng.gen_range_f64(0.0..50.0),
            rng.gen_range_f64(1.0..60.0),
            rng.gen_range_f64(1.0..60.0),
            rng.gen_range_f64(0.0..50.0),
            rng.gen_range_f64(0.0..50.0),
            rng.gen_range_f64(1.0..60.0),
            rng.gen_range_f64(1.0..60.0),
        );
    }
}

#[test]
fn discretization_preserves_total_thickness() {
    let mut rng = Rng64::seed_from_u64(0x2005);
    for _ in 0..CASES {
        let t1 = rng.gen_range_f64(0.05..20.0);
        let t2 = rng.gen_range_f64(0.05..20.0);
        let t3 = rng.gen_range_f64(0.05..20.0);
        let cell = rng.gen_range_f64(0.1..5.0);
        let stack: LayerStack = [
            LayerSlab::new("a", um(t1), LayerKind::HandleSilicon),
            LayerSlab::new("b", um(t2), LayerKind::DeviceSilicon),
            LayerSlab::new("c", um(t3), LayerKind::BeolLower),
        ]
        .into_iter()
        .collect();
        let cells = stack.discretize(um(cell));
        let total: Length = cells.iter().map(|(_, dz)| *dz).sum();
        assert!(total.approx_eq(stack.total_thickness(), 1e-12));
        // No cell exceeds the cap (within float slop).
        for (_, dz) in &cells {
            assert!(dz.micrometers() <= cell * (1.0 + 1e-9));
        }
    }
}

#[test]
fn bilinear_sampling_is_bounded() {
    let mut rng = Rng64::seed_from_u64(0x2006);
    for _ in 0..CASES {
        let nx = rng.gen_range(2..10);
        let ny = rng.gen_range(2..10);
        let u = rng.gen_range_f64(0.0..20.0);
        let v = rng.gen_range_f64(0.0..20.0);
        let g = Grid2::from_fn(nx, ny, |i, j| ((i * 7 + j * 13) % 11) as f64);
        let s = g.sample(u, v);
        assert!(s >= g.min_value() - 1e-12 && s <= g.max_value() + 1e-12);
    }
}
