//! Transient power gating: rotate a one-hot workload over the four MAC
//! units of the Fig. 12 toy and watch the temperature ripple — the
//! temporal side of the co-design opportunity (Observation 5 / ref [4]).
//!
//! ```sh
//! cargo run --release --example transient_gating
//! ```

use thermal_scaffolding::core::beol::{self, BeolProperties};
use thermal_scaffolding::geometry::{Grid2, Grid3, Rect};
use thermal_scaffolding::phydes::trace::gated_round_robin;
use thermal_scaffolding::thermal::transient::{capacity, TransientRun};
use thermal_scaffolding::thermal::{Heatsink, Problem};
use thermal_scaffolding::units::{HeatFlux, Length, ThermalConductivity};

/// Builds the 2-tier toy problem with the given per-source fluxes.
fn toy_problem(fluxes: &[f64; 4], scaffolded: bool) -> Problem {
    let n = 24;
    let domain = Length::from_micrometers(20.0);
    let beol = if scaffolded {
        BeolProperties::scaffolded()
    } else {
        BeolProperties::conventional()
    };
    let dz = vec![
        Length::from_micrometers(10.0),
        Length::from_nanometers(100.0),
        beol::lower_thickness(),
        beol::upper_thickness(),
        beol::ilv_thickness(),
        Length::from_nanometers(100.0),
    ];
    let mut p = Problem::new(
        n,
        n,
        domain / n as f64,
        domain / n as f64,
        dz,
        ThermalConductivity::new(1.0),
    );
    p.set_layer_conductivity(
        0,
        thermal_scaffolding::materials::BULK_SILICON
            .conductivity
            .vertical,
        thermal_scaffolding::materials::BULK_SILICON
            .conductivity
            .lateral,
    );
    for dev in [1usize, 5] {
        p.set_layer_conductivity(
            dev,
            thermal_scaffolding::materials::DEVICE_SILICON_THIN
                .conductivity
                .vertical,
            thermal_scaffolding::materials::DEVICE_SILICON_THIN
                .conductivity
                .lateral,
        );
    }
    p.set_layer_conductivity(2, beol.lower.vertical, beol.lower.lateral);
    p.set_layer_conductivity(3, beol.upper.vertical, beol.upper.lateral);
    p.set_layer_conductivity(4, beol.ilv.vertical, beol.ilv.lateral);
    let dom = Rect::from_origin_size(Length::ZERO, Length::ZERO, domain, domain);
    let q = domain / 4.0;
    let s = Length::from_micrometers(2.0);
    let centers = [
        (q, q),
        (domain - q, q),
        (q, domain - q),
        (domain - q, domain - q),
    ];
    let mut map = Grid2::filled(n, n, 0.0);
    for ((cx, cy), &f) in centers.into_iter().zip(fluxes) {
        let r = Rect::from_origin_size(cx - s / 2.0, cy - s / 2.0, s, s);
        map.paint_rect(
            &dom,
            &r,
            HeatFlux::from_watts_per_square_cm(f).watts_per_square_meter(),
        );
    }
    p.add_flux_map(5, &map);
    // Single shared pillar at the center.
    let k_pillar =
        thermal_scaffolding::homogenize::pillar::PillarDesign::asap7_100nm().effective_vertical_k();
    let c = n / 2;
    for k in [2usize, 3, 4] {
        for j in (c - 1)..=c {
            for i in (c - 1)..=c {
                p.blend_vertical_inclusion(i, j, k, 1.0, k_pillar);
            }
        }
    }
    p.set_bottom_heatsink(Heatsink::two_phase());
    p
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = gated_round_robin(4, 3, 10_000);
    let clock_hz = 1.0e9;
    let dt = 2.0e-6; // 2 µs steps, 5 steps per 10k-cycle phase

    println!("one-hot rotation over 4 MACs, 95 W/cm² active flux");
    println!(
        "{:>10} {:>12} {:>14} {:>14}",
        "time µs", "active MAC", "Tj (TD) °C", "Tj (ULK) °C"
    );

    let mut runs = [true, false].map(|scaffolded| {
        let p = toy_problem(&[0.0; 4], scaffolded);
        let caps = Grid3::filled(p.dim(), capacity::SILICON);
        TransientRun::new(&p, &caps, dt, Heatsink::two_phase().ambient).expect("well-posed")
    });

    let mut peak = [f64::NEG_INFINITY; 2];
    for (pi, phase) in trace.phases.iter().enumerate() {
        let active = phase
            .utilization
            .iter()
            .position(|u| u.fraction() > 0.0)
            .expect("one-hot");
        let mut fluxes = [0.0; 4];
        fluxes[active] = 95.0;
        for (ri, run) in runs.iter_mut().enumerate() {
            run.restage_power(&toy_problem(&fluxes, ri == 0))?;
            let steps = (phase.cycles as f64 / clock_hz / dt).round().max(1.0) as usize;
            run.run(steps)?;
            peak[ri] = peak[ri].max(run.temperatures().max_temperature().celsius());
        }
        if pi % 2 == 0 || pi == trace.phases.len() - 1 {
            println!(
                "{:>10.1} {:>12} {:>14.3} {:>14.3}",
                runs[0].time_seconds() * 1e6,
                active,
                runs[0].temperatures().max_temperature().celsius(),
                runs[1].temperatures().max_temperature().celsius(),
            );
        }
    }
    println!();
    println!(
        "peak over the rotation: thermal dielectric {:.3} °C vs ultra-low-k {:.3} °C",
        peak[0], peak[1]
    );
    let ambient = 100.0;
    let reduction = 100.0 * (1.0 - (peak[0] - ambient) / (peak[1] - ambient));
    println!(
        "the shared pillar + dielectric cuts the rotation's peak rise by {reduction:.0} % —\n\
         the transient view of Fig. 12's steady-state reduction."
    );
    Ok(())
}
