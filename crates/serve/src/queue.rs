//! A bounded multi-producer multi-consumer job queue on `Mutex` +
//! `Condvar`.
//!
//! `try_push` never blocks — a full queue is reported to the caller so the
//! HTTP layer can answer 429 with `Retry-After` instead of stalling the
//! connection thread.  `pop` blocks until a job arrives or the queue is
//! closed *and* drained, which gives graceful shutdown for free: closing
//! wakes every worker, but queued jobs are still handed out until the
//! queue is empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a `try_push` was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — the caller should shed load.
    Full,
    /// The queue has been closed — the server is shutting down.
    Closed,
}

struct Inner<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// Bounded MPMC queue.  All methods take `&self`; share via `Arc`.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued (not yet popped) jobs.
    pub fn len(&self) -> usize {
        match self.inner.lock() {
            Ok(inner) => inner.jobs.len(),
            Err(poisoned) => poisoned.into_inner().jobs.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue without blocking.
    ///
    /// # Errors
    ///
    /// `PushError::Full` at capacity, `PushError::Closed` after `close`.
    pub fn try_push(&self, job: T) -> Result<(), PushError> {
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocking dequeue.  Returns `None` only once the queue is closed and
    /// every queued job has been handed out — accepted work is never
    /// dropped by shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = match self.available.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Close the queue: future pushes fail, blocked `pop`s wake, queued
    /// jobs still drain.
    pub fn close(&self) {
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.closed = true;
        drop(inner);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_round_trips_in_fifo_order() {
        let q = JobQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = JobQueue::new(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_queued_jobs_then_returns_none() {
        let q = JobQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_jobs() {
        let q = Arc::new(JobQueue::new(8));
        let produced = 200u32;
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(j) = q.pop() {
                        got.push(j);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..produced / 2 {
                        let job = p * 1000 + i;
                        loop {
                            match q.try_push(job) {
                                Ok(()) => break,
                                Err(PushError::Full) => thread::yield_now(),
                                Err(PushError::Closed) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), produced as usize);
        all.dedup();
        assert_eq!(
            all.len(),
            produced as usize,
            "every job delivered exactly once"
        );
    }
}
