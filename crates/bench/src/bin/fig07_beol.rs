//! Fig. 7 — BEOL thermal-conductivity homogenization: the extracted
//! lumped table (7c), the fill-vs-area trend (7b), and the pillar
//! characterization behind Fig. 7a's methodology.

use tsc_bench::{banner, compare, deviation_percent, series};
use tsc_homogenize::pillar::PillarDesign;
use tsc_homogenize::{extract_k, slice, Axis};
use tsc_materials::{THERMAL_DIELECTRIC_DESIGN, ULTRA_LOW_K_ILD};
use tsc_phydes::fill::FillModel;
use tsc_units::{Length, Ratio};

fn main() -> Result<(), tsc_thermal::SolveError> {
    banner("Fig. 7c: homogenized BEOL conductivities (W/m/K)");
    let lower_geo = slice::SliceGeometry::default_lower();
    let upper_geo = slice::SliceGeometry::default_upper();

    let m = slice::lower_beol(ULTRA_LOW_K_ILD.conductivity, &lower_geo);
    let (v, l) = (extract_k(&m, Axis::Z)?, extract_k(&m, Axis::X)?);
    compare(
        "V0-V7 ultra-low-k  vertical",
        "0.31",
        format!("{:.2} ({:+.0}%)", v.get(), deviation_percent(0.31, v.get())),
    );
    compare(
        "V0-V7 ultra-low-k  lateral",
        "5.47",
        format!("{:.2} ({:+.0}%)", l.get(), deviation_percent(5.47, l.get())),
    );

    let m = slice::upper_beol(ULTRA_LOW_K_ILD.conductivity, &upper_geo);
    let (v, l) = (extract_k(&m, Axis::Z)?, extract_k(&m, Axis::X)?);
    compare(
        "M8-M9 ultra-low-k  vertical",
        "6.9",
        format!("{:.2} ({:+.0}%)", v.get(), deviation_percent(6.9, v.get())),
    );
    compare(
        "M8-M9 ultra-low-k  lateral",
        "13.6",
        format!("{:.2} ({:+.0}%)", l.get(), deviation_percent(13.6, l.get())),
    );

    let m = slice::upper_beol(THERMAL_DIELECTRIC_DESIGN.conductivity, &upper_geo);
    let (v, l) = (extract_k(&m, Axis::Z)?, extract_k(&m, Axis::X)?);
    compare(
        "M8-M9 thermal diel. vertical",
        "93.59",
        format!(
            "{:.2} ({:+.0}%)",
            v.get(),
            deviation_percent(93.59, v.get())
        ),
    );
    compare(
        "M8-M9 thermal diel. lateral",
        "101.73",
        format!(
            "{:.2} ({:+.0}%)",
            l.get(),
            deviation_percent(101.73, l.get())
        ),
    );

    banner("Fig. 7b: achievable metal fill vs area slack");
    let fill = FillModel::calibrated();
    let trend: Vec<(f64, f64)> = (0..=10)
        .map(|i| {
            let slack = f64::from(i) * 3.0;
            (
                slack,
                fill.achievable_fill(Ratio::from_percent(slack)).percent(),
            )
        })
        .collect();
    series("fill density % (area slack %)", trend);
    compare(
        "fill at zero slack (tight floorplan)",
        "~44 %",
        format!("{:.1} %", fill.achievable_fill(Ratio::ZERO).percent()),
    );
    compare(
        "fill at ~23 % slack (Fig. 7b right edge)",
        "~54 %",
        format!(
            "{:.1} %",
            fill.achievable_fill(Ratio::from_percent(23.0)).percent()
        ),
    );

    banner("Fig. 7a methodology: pillar characterization");
    let pillar = PillarDesign::asap7_100nm();
    compare(
        "100 nm x 100 nm pillar effective vertical k",
        "105 W/m/K",
        format!("{:.1} W/m/K", pillar.effective_vertical_k().get()),
    );
    let sweep: Vec<(f64, f64)> = [50.0, 75.0, 100.0, 150.0, 200.0, 400.0]
        .iter()
        .map(|&nm| {
            let k = pillar
                .clone()
                .with_footprint(Length::from_nanometers(nm))
                .effective_vertical_k()
                .get();
            (nm, k)
        })
        .collect();
    series("pillar k (footprint nm) — the size effect of [29]", sweep);
    Ok(())
}
