//! Dielectric constant of nanocrystalline and porous diamond (Eq. 2, Fig. 5).
//!
//! Two effects suppress the permittivity of diamond films relative to the
//! single-crystal value of ~5.7:
//!
//! 1. **Grain-size suppression** — surface bond contraction and bandgap
//!    expansion at grain boundaries (Ye, Sun & Hing): smaller grains,
//!    lower ε. Modeled by interpolating the literature measurements
//!    collected in Fig. 5.
//! 2. **Porosity** — deliberately introduced air gaps, modeled with the
//!    Maxwell-Garnett mixing rule (Eq. 2).
//!
//! The paper adopts a *pessimistic* design value of ε = 4 for the
//! scaffolding dielectric, i.e. 2× today's ultra-low-k (ε ≈ 2).

use tsc_units::RelativePermittivity;

/// Relative permittivity of single-crystal diamond.
pub const SINGLE_CRYSTAL_DIAMOND: RelativePermittivity = RelativePermittivity::new(5.7);

/// Relative permittivity of free space (air inclusions).
pub const FREE_SPACE: RelativePermittivity = RelativePermittivity::new(1.0);

/// Maxwell-Garnett effective permittivity of a host of permittivity
/// `host` containing spherical inclusions of permittivity `inclusion`
/// at volume fraction `f ∈ [0, 1]` (Eq. 2 with ε₂ = host = diamond,
/// ε₁ = inclusion = air):
///
/// ```text
/// ε_eff = ε₂ · (ε₁ + 2ε₂ + 2f(ε₁ − ε₂)) / (ε₁ + 2ε₂ − f(ε₁ − ε₂))
/// ```
///
/// # Panics
///
/// Panics if `f` is outside `[0, 1]`.
///
/// ```
/// use tsc_materials::dielectric::{maxwell_garnett, FREE_SPACE, SINGLE_CRYSTAL_DIAMOND};
/// let e = maxwell_garnett(SINGLE_CRYSTAL_DIAMOND, FREE_SPACE, 0.3);
/// assert!(e.get() < SINGLE_CRYSTAL_DIAMOND.get() && e.get() > 1.0);
/// ```
#[must_use]
pub fn maxwell_garnett(
    host: RelativePermittivity,
    inclusion: RelativePermittivity,
    f: f64,
) -> RelativePermittivity {
    assert!(
        (0.0..=1.0).contains(&f),
        "volume fraction must be within [0, 1], got {f}"
    );
    let e2 = host.get();
    let e1 = inclusion.get();
    let num = e1 + 2.0 * e2 + 2.0 * f * (e1 - e2);
    let den = e1 + 2.0 * e2 - f * (e1 - e2);
    RelativePermittivity::new(e2 * num / den)
}

/// Air fraction needed to reach a target permittivity from a given host,
/// inverting [`maxwell_garnett`]. Returns `None` when the target is not
/// reachable (outside `(ε_air, ε_host]`).
#[must_use]
pub fn porosity_for_target(
    host: RelativePermittivity,
    target: RelativePermittivity,
) -> Option<f64> {
    let e2 = host.get();
    let e1 = FREE_SPACE.get();
    let et = target.get();
    if et > e2 || et <= e1 {
        return None;
    }
    // Solve ε₂(e1 + 2e2 + 2f·Δ) = ε_t (e1 + 2e2 − f·Δ), Δ = e1 − e2 < 0.
    let delta = e1 - e2;
    let base = e1 + 2.0 * e2;
    let f = base * (et - e2) / (delta * (2.0 * e2 + et));
    ((0.0..=1.0).contains(&f)).then_some(f)
}

/// Measured dielectric constants of polycrystalline diamond films from the
/// literature survey of Fig. 5 as `(grain size nm, ε)` pairs, ascending in
/// grain size.
pub const LITERATURE_FILMS: [(f64, f64); 5] = [
    (50.0, 2.0),   // heavily nanostructured, strong suppression [28]
    (250.0, 2.6),  // porous nanoparticle film [27]
    (500.0, 3.1),  // [28]
    (1000.0, 3.8), // intermediate films [26]
    (1500.0, 4.3), // large-grain film approaching bulk [25-26]
];

/// Grain-size-dependent permittivity interpolated from the literature
/// survey (piecewise linear, clamped to the survey range at both ends,
/// approaching [`SINGLE_CRYSTAL_DIAMOND`] far beyond it).
///
/// ```
/// use tsc_materials::dielectric::grain_size_permittivity;
/// let small = grain_size_permittivity(100.0);
/// let large = grain_size_permittivity(1400.0);
/// assert!(small.get() < large.get());
/// ```
#[must_use]
pub fn grain_size_permittivity(grain_size_nm: f64) -> RelativePermittivity {
    let pts = &LITERATURE_FILMS;
    if grain_size_nm <= pts[0].0 {
        return RelativePermittivity::new(pts[0].1);
    }
    for w in pts.windows(2) {
        let (d0, e0) = w[0];
        let (d1, e1) = w[1];
        if grain_size_nm <= d1 {
            let t = (grain_size_nm - d0) / (d1 - d0);
            return RelativePermittivity::new(e0 + t * (e1 - e0));
        }
    }
    // Beyond the survey: relax linearly toward bulk within one decade.
    let (d_last, e_last) = pts[pts.len() - 1];
    let t = ((grain_size_nm - d_last) / (9.0 * d_last)).clamp(0.0, 1.0);
    RelativePermittivity::new(e_last + t * (SINGLE_CRYSTAL_DIAMOND.get() - e_last))
}

/// The paper's pessimistic design value for the scaffolding dielectric.
#[must_use]
pub fn design_permittivity() -> RelativePermittivity {
    RelativePermittivity::THERMAL_DIELECTRIC
}

/// Porosity also degrades thermal conductivity; the standard porous-medium
/// correction `k_eff = k·(1 − f)^{3/2}` keeps the ε/k trade-off honest
/// when exploring the Fig. 5 inset design space.
#[must_use]
pub fn porosity_conductivity_factor(f: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&f),
        "volume fraction must be within [0, 1], got {f}"
    );
    (1.0 - f).powf(1.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxwell_garnett_limits() {
        // f = 0 recovers the host, f = 1 recovers the inclusion.
        let host = SINGLE_CRYSTAL_DIAMOND;
        let e0 = maxwell_garnett(host, FREE_SPACE, 0.0);
        let e1 = maxwell_garnett(host, FREE_SPACE, 1.0);
        assert!((e0.get() - host.get()).abs() < 1e-12);
        assert!((e1.get() - FREE_SPACE.get()).abs() < 1e-12);
    }

    #[test]
    fn maxwell_garnett_is_monotone_in_porosity() {
        let mut last = f64::INFINITY;
        for i in 0..=10 {
            let f = f64::from(i) / 10.0;
            let e = maxwell_garnett(SINGLE_CRYSTAL_DIAMOND, FREE_SPACE, f).get();
            assert!(e < last + 1e-12, "ε must fall as porosity rises");
            last = e;
        }
    }

    #[test]
    fn porosity_inversion_round_trips() {
        for target in [1.5, 2.0, 3.0, 4.0, 5.0] {
            let f = porosity_for_target(SINGLE_CRYSTAL_DIAMOND, RelativePermittivity::new(target))
                .expect("reachable");
            let e = maxwell_garnett(SINGLE_CRYSTAL_DIAMOND, FREE_SPACE, f);
            assert!(
                (e.get() - target).abs() < 1e-9,
                "target {target}: f={f} gives {e}"
            );
        }
    }

    #[test]
    fn unreachable_targets_rejected() {
        assert!(
            porosity_for_target(SINGLE_CRYSTAL_DIAMOND, RelativePermittivity::new(6.0)).is_none()
        );
        assert!(
            porosity_for_target(SINGLE_CRYSTAL_DIAMOND, RelativePermittivity::new(0.9)).is_none()
        );
    }

    #[test]
    fn design_value_is_reachable_with_modest_porosity() {
        // Fig. 5 inset: ε = 4 needs well under 50% air in a bulk-like film.
        let f = porosity_for_target(SINGLE_CRYSTAL_DIAMOND, design_permittivity())
            .expect("ε=4 reachable");
        assert!(f > 0.0 && f < 0.5, "porosity for ε=4: {f}");
    }

    #[test]
    fn grain_size_curve_is_monotone_over_survey() {
        let mut last = 0.0;
        for d in [50.0, 100.0, 250.0, 500.0, 750.0, 1000.0, 1500.0] {
            let e = grain_size_permittivity(d).get();
            assert!(e >= last, "ε must not fall with grain size");
            last = e;
        }
    }

    #[test]
    fn grain_size_curve_clamps_below_survey() {
        assert_eq!(grain_size_permittivity(1.0).get(), LITERATURE_FILMS[0].1);
    }

    #[test]
    fn large_grains_approach_bulk() {
        let e = grain_size_permittivity(20_000.0).get();
        assert!((e - SINGLE_CRYSTAL_DIAMOND.get()).abs() < 1e-9);
    }

    #[test]
    fn scaffolding_films_stay_at_or_below_design_epsilon() {
        // The scaffolding layer uses grains about one layer thickness
        // (160-240 nm): the literature curve keeps those under ε = 4.
        for d in [160.0, 200.0, 240.0] {
            assert!(grain_size_permittivity(d).get() <= design_permittivity().get());
        }
    }

    #[test]
    fn porosity_conductivity_tradeoff() {
        assert_eq!(porosity_conductivity_factor(0.0), 1.0);
        assert!(porosity_conductivity_factor(0.3) < 1.0);
        assert_eq!(porosity_conductivity_factor(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "volume fraction")]
    fn invalid_fraction_rejected() {
        let _ = maxwell_garnett(SINGLE_CRYSTAL_DIAMOND, FREE_SPACE, 1.5);
    }
}
