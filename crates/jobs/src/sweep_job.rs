//! The `dielectric_sweep` engine: the Fig. 12b conductivity sweep as
//! independent work units.
//!
//! Shard 0 solves the dielectric-independent baseline; once it lands,
//! every *unique* sweep point becomes its own shard (requested
//! duplicates are deduped up front and counted as memo hits). Each
//! shard solves against a **fresh** `SolveContext`, so a point's result
//! never depends on which points ran before it — that is what makes a
//! resumed sweep bitwise-identical to an uninterrupted one.

use tsc_bench::json::Json;
use tsc_core::codesign::{sweep_baseline_with, sweep_point_with, ToyConfig, ToyResult};
use tsc_thermal::SolveContext;
use tsc_units::{Length, Ratio, TempDelta};

use crate::checkpoint::{bits_f64, parse_bits_f64, require};
use crate::spec::JobSpec;
use crate::Progress;

/// What a sweep shard solves.
#[derive(Debug, Clone)]
pub enum SweepShardKind {
    /// The no-pillar ultra-low-k baseline.
    Baseline,
    /// One conductivity point (W/m/K).
    Point {
        /// Lateral conductivity of the point.
        k: f64,
    },
}

/// The outcome a sweep shard carries back.
#[derive(Debug, Clone)]
pub enum SweepOutcome {
    /// Baseline result.
    Baseline(ToyResult),
    /// `(k, reduction fraction)`.
    Point {
        /// Lateral conductivity of the point.
        k: f64,
        /// Peak-rise reduction vs the baseline.
        reduction: f64,
    },
}

/// One sweep work unit, checked out of the engine.
#[derive(Debug)]
pub struct SweepShard {
    /// What to solve.
    pub kind: SweepShardKind,
    /// Toy geometry.
    pub cfg: ToyConfig,
    /// Pillar-block side for the point shards.
    pub pillar_side: Length,
    /// The baseline (present on point shards).
    pub baseline: Option<ToyResult>,
    /// Filled in by [`SweepShard::run`].
    pub outcome: Option<Result<SweepOutcome, String>>,
}

impl SweepShard {
    /// Solves the shard against a fresh context.
    pub fn run(&mut self) {
        let mut ctx = SolveContext::new();
        self.outcome = Some(match &self.kind {
            SweepShardKind::Baseline => sweep_baseline_with(&self.cfg, &mut ctx)
                .map(SweepOutcome::Baseline)
                .map_err(|e| e.to_string()),
            SweepShardKind::Point { k } => {
                let Some(base) = &self.baseline else {
                    self.outcome = Some(Err("point shard issued without baseline".to_string()));
                    return;
                };
                sweep_point_with(&self.cfg, self.pillar_side, *k, base, &mut ctx)
                    .map(|(k, reduction)| SweepOutcome::Point {
                        k,
                        reduction: reduction.fraction(),
                    })
                    .map_err(|e| e.to_string())
            }
        });
    }
}

/// The `dielectric_sweep` engine state machine.
#[derive(Debug)]
pub struct SweepJob {
    cfg: ToyConfig,
    pillar_side: Length,
    /// Requested points, duplicates included (result order).
    ks: Vec<f64>,
    /// First-occurrence unique points (the actual work).
    unique: Vec<f64>,
    issued: Vec<bool>,
    baseline_issued: bool,
    baseline: Option<ToyResult>,
    /// `k.to_bits() → reduction` for completed points.
    done_points: Vec<(u64, f64)>,
    error: Option<String>,
    evals: u64,
    dedup_hits: u64,
}

impl SweepJob {
    /// Builds the engine from a parsed spec, resuming from the spec's
    /// checkpoint when present.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed checkpoints.
    pub fn from_spec(spec: &JobSpec) -> Result<Self, String> {
        let cfg = ToyConfig {
            cells: spec.cells,
            ..ToyConfig::default()
        };
        let pillar_side = Length::from_micrometers(spec.pillar_side_um);
        let ks = spec.ks.clone();
        let mut unique: Vec<f64> = Vec::new();
        for &k in &ks {
            if !unique.iter().any(|u| u.to_bits() == k.to_bits()) {
                unique.push(k);
            }
        }
        // Requested duplicates never solve: they are memo hits by
        // construction.
        let dedup_hits = (ks.len() - unique.len()) as u64;
        let issued = vec![false; unique.len()];
        let mut job = Self {
            cfg,
            pillar_side,
            ks,
            unique,
            issued,
            baseline_issued: false,
            baseline: None,
            done_points: Vec::new(),
            error: None,
            evals: 0,
            dedup_hits,
        };
        if let Some(cp) = &spec.resume {
            job.restore(cp)?;
        }
        Ok(job)
    }

    fn restore(&mut self, cp: &Json) -> Result<(), String> {
        if let Some(base) = cp.get("baseline").filter(|b| !matches!(b, Json::Null)) {
            self.baseline = Some(ToyResult {
                peak_rise: TempDelta::new(parse_bits_f64(require(base, "peak_rise_k")?)?),
                pillar_area: Ratio::from_fraction(parse_bits_f64(require(base, "pillar_area")?)?),
            });
            self.evals += 1;
        }
        let points = require(cp, "points")?
            .as_array()
            .ok_or_else(|| "checkpoint field \"points\" must be an array".to_string())?;
        for doc in points {
            let k = parse_bits_f64(require(doc, "k")?)?;
            let reduction = parse_bits_f64(require(doc, "reduction")?)?;
            let Some(idx) = self.unique.iter().position(|u| u.to_bits() == k.to_bits()) else {
                return Err(format!("checkpoint point k={k} is not in the sweep"));
            };
            if !self.issued[idx] {
                self.issued[idx] = true;
                self.done_points.push((k.to_bits(), reduction));
                self.evals += 1;
            }
        }
        Ok(())
    }

    /// Checks out the next shard: the baseline first (alone — points
    /// need its result), then any unsolved unique point.
    pub fn next_work(&mut self) -> Option<SweepShard> {
        if self.error.is_some() {
            return None;
        }
        let Some(baseline) = &self.baseline else {
            if self.baseline_issued {
                return None;
            }
            self.baseline_issued = true;
            return Some(SweepShard {
                kind: SweepShardKind::Baseline,
                cfg: self.cfg.clone(),
                pillar_side: self.pillar_side,
                baseline: None,
                outcome: None,
            });
        };
        let idx = self.issued.iter().position(|&c| !c)?;
        self.issued[idx] = true;
        Some(SweepShard {
            kind: SweepShardKind::Point {
                k: self.unique[idx],
            },
            cfg: self.cfg.clone(),
            pillar_side: self.pillar_side,
            baseline: Some(baseline.clone()),
            outcome: None,
        })
    }

    /// Returns a completed shard, emitting progress events.
    pub fn complete_shard(&mut self, shard: SweepShard) -> Vec<Json> {
        match shard.outcome {
            None => {
                self.error = Some("sweep shard returned without running".to_string());
                Vec::new()
            }
            Some(Err(msg)) => {
                self.error = Some(msg);
                Vec::new()
            }
            Some(Ok(SweepOutcome::Baseline(result))) => {
                self.baseline = Some(result);
                self.evals += 1;
                vec![self.progress_event()]
            }
            Some(Ok(SweepOutcome::Point { k, reduction })) => {
                self.done_points.push((k.to_bits(), reduction));
                self.evals += 1;
                vec![self.progress_event()]
            }
        }
    }

    fn progress_event(&self) -> Json {
        Json::object()
            .field("event", "progress")
            .field("phase", "sweep")
            .field("round", self.evals as f64)
            .field("rounds", self.unique.len() + 1)
            .field("dedup_hits", self.dedup_hits as f64)
    }

    /// `true` once the baseline and every unique point are solved.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.baseline.is_some() && self.done_points.len() == self.unique.len()
    }

    /// Fatal solver error, if any.
    #[must_use]
    pub fn failed(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Progress snapshot.
    #[must_use]
    pub fn progress(&self) -> Progress {
        let total = (self.unique.len() + 1) as f64;
        Progress {
            phase: "sweep",
            fraction: self.evals as f64 / total,
            best_cost: None,
            round: self.evals as usize,
            rounds: self.unique.len() + 1,
            evals: self.evals,
            dedup_hits: self.dedup_hits,
        }
    }

    /// Serializes progress so far. Sweep shards are independent, so
    /// every completion is a barrier and the checkpoint is always
    /// current.
    #[must_use]
    pub fn checkpoint(&self) -> Json {
        let baseline = self.baseline.as_ref().map_or(Json::Null, |b| {
            Json::object()
                .field("peak_rise_k", bits_f64(b.peak_rise.kelvin()))
                .field("pillar_area", bits_f64(b.pillar_area.fraction()))
        });
        let points: Vec<Json> = self
            .done_points
            .iter()
            .map(|&(k_bits, reduction)| {
                Json::object()
                    .field("k", bits_f64(f64::from_bits(k_bits)))
                    .field("reduction", bits_f64(reduction))
            })
            .collect();
        Json::object()
            .field("kind", "dielectric_sweep")
            .field("cells", self.cfg.cells)
            .field("pillar_side_um", bits_f64(self.pillar_side.meters() * 1e6))
            .field("baseline", baseline)
            .field("points", Json::Array(points))
    }

    /// The result document (points in request order, duplicates served
    /// from the memo), once done.
    #[must_use]
    pub fn result(&self) -> Option<Json> {
        if !self.is_done() {
            return None;
        }
        let points: Vec<Json> = self
            .ks
            .iter()
            .map(|k| {
                let reduction = self
                    .done_points
                    .iter()
                    .find(|(bits, _)| *bits == k.to_bits())
                    .map_or(f64::NAN, |&(_, r)| r);
                Json::object()
                    .field("k_w_mk", *k)
                    .field("reduction", reduction)
                    .field("reduction_bits", bits_f64(reduction))
            })
            .collect();
        Some(
            Json::object()
                .field("kind", "dielectric_sweep")
                .field("points", Json::Array(points))
                .field("evals", self.evals as f64)
                .field("dedup_hits", self.dedup_hits as f64),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_bench::json::parse;

    fn spec(body: &str) -> JobSpec {
        JobSpec::parse(&parse(body).expect("json")).expect("spec")
    }

    fn drive(job: &mut SweepJob) {
        while !job.is_done() {
            let mut batch = Vec::new();
            while let Some(mut shard) = job.next_work() {
                shard.run();
                batch.push(shard);
            }
            assert!(!batch.is_empty(), "sweep stalled");
            for shard in batch {
                let _ = job.complete_shard(shard);
            }
            assert!(job.failed().is_none(), "sweep failed: {:?}", job.failed());
        }
    }

    #[test]
    fn duplicate_points_dedupe_and_resume_is_bitwise() {
        let body = r#"{"kind": "dielectric_sweep", "ks": [5.0, 200.0, 5.0], "cells": 12}"#;
        let mut full = SweepJob::from_spec(&spec(body)).expect("job");
        drive(&mut full);
        let full_result = full.result().expect("result");
        assert_eq!(full.dedup_hits, 1, "the repeated 5.0 point must dedupe");

        // Kill after the baseline + first point, resume from checkpoint.
        let mut killed = SweepJob::from_spec(&spec(body)).expect("job");
        let mut base = killed.next_work().expect("baseline shard");
        base.run();
        let _ = killed.complete_shard(base);
        let mut first = killed.next_work().expect("first point");
        first.run();
        let _ = killed.complete_shard(first);
        let cp = parse(&killed.checkpoint().pretty()).expect("checkpoint parses");
        let resume_body = Json::object()
            .field("kind", "dielectric_sweep")
            .field(
                "ks",
                Json::Array(vec![5.0.into(), 200.0.into(), 5.0.into()]),
            )
            .field("cells", 12)
            .field("resume", cp);
        let mut resumed =
            SweepJob::from_spec(&JobSpec::parse(&resume_body).expect("spec")).expect("job");
        drive(&mut resumed);
        let resumed_result = resumed.result().expect("result");

        let bits = |doc: &Json| -> Vec<String> {
            doc.get("points")
                .and_then(Json::as_array)
                .expect("points")
                .iter()
                .map(|p| {
                    p.get("reduction_bits")
                        .and_then(Json::as_str)
                        .expect("bits")
                        .to_string()
                })
                .collect()
        };
        assert_eq!(
            bits(&full_result),
            bits(&resumed_result),
            "resumed sweep must reproduce every point bitwise"
        );
    }
}
