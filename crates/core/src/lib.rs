//! Thermal scaffolding — the paper's contribution.
//!
//! This crate implements the co-design flows of Sec. III on top of the
//! workspace substrates (materials, homogenization, thermal solver,
//! physical design, designs):
//!
//! * [`beol`] — homogenized BEOL property sets per cooling strategy
//!   (conventional ultra-low-k, dummy-via fill, thermal dielectric), with
//!   the canonical values extracted by `tsc-homogenize` and a slow
//!   recomputation path for validation;
//! * [`stack`] — assembles the full `N`-tier 3D-IC finite-volume problem
//!   for a design: handle silicon, per-tier device/BEOL/ILV slabs,
//!   per-tier power maps, pillar columns, heatsink;
//! * [`pillars`] — the Sec. IIIA pillar placement algorithm: per-heat-
//!   source minimum pillar count by uniform-cover simulation, pitch
//!   computation, macro-aware grid placement, escalation;
//! * [`flows`] — the two VLSI flows (scaffolding vs conventional 3D
//!   thermal) with footprint/delay penalty accounting;
//! * [`scaling`] — tier-count searches and penalty sweeps behind
//!   Figs. 9–11 and Table I;
//! * [`codesign`] — the power-gating toy study of Fig. 12;
//! * [`studies`] — the Observation-4 analyses: macro hotspots and
//!   inter-tier pillar misalignment.
//!
//! # Quickstart
//!
//! ```no_run
//! use tsc_core::flows::{run_flow, CoolingStrategy, FlowConfig};
//! use tsc_designs::gemmini;
//! use tsc_thermal::Heatsink;
//! use tsc_units::{Ratio, Temperature};
//!
//! let config = FlowConfig {
//!     strategy: CoolingStrategy::Scaffolding,
//!     tiers: 12,
//!     heatsink: Heatsink::two_phase(),
//!     t_limit: Temperature::from_celsius(125.0),
//!     area_budget: Ratio::from_percent(10.0),
//!     delay_budget: Ratio::from_percent(3.0),
//!     ..FlowConfig::default()
//! };
//! let result = run_flow(&gemmini::design(), &config)?;
//! assert!(result.junction_temperature <= config.t_limit);
//! # Ok::<(), tsc_thermal::SolveError>(())
//! ```

// No crate outside tsc-thermal may contain `unsafe` (enforced
// statically here and by `cargo run -p tsc-analyze`).
#![forbid(unsafe_code)]

pub mod beol;
pub mod codesign;
pub mod flows;
pub mod pillars;
pub mod scaling;
pub mod stack;
pub mod studies;
