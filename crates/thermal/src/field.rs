//! Solved temperature fields.

use tsc_geometry::{Dim3, Grid2, Grid3, Index3};
use tsc_units::Temperature;

/// A steady-state temperature field over the solution mesh (kelvin).
///
/// ```
/// use tsc_geometry::{Dim3, Grid3};
/// use tsc_thermal::TemperatureField;
/// use tsc_units::Temperature;
///
/// let mut raw = Grid3::filled(Dim3::new(2, 2, 1), 373.15);
/// raw[(1, 1, 0)] = 398.15;
/// let field = TemperatureField::from_kelvin(raw);
/// assert!((field.max_temperature().celsius() - 125.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TemperatureField {
    kelvin: Grid3<f64>,
}

impl TemperatureField {
    /// Wraps a raw field of kelvin values.
    #[must_use]
    pub fn from_kelvin(kelvin: Grid3<f64>) -> Self {
        Self { kelvin }
    }

    /// Mesh dimensions.
    #[must_use]
    pub fn dim(&self) -> Dim3 {
        self.kelvin.dim()
    }

    /// Iterates over every cell temperature in kelvin, in flat
    /// (x-fastest) order.
    pub fn iter_kelvin(&self) -> impl Iterator<Item = f64> + '_ {
        self.kelvin.iter().copied()
    }

    /// Temperature of a cell.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn at(&self, i: usize, j: usize, k: usize) -> Temperature {
        Temperature::from_kelvin(self.kelvin[(i, j, k)])
    }

    /// The hottest cell temperature — the junction temperature `Tj`.
    #[must_use]
    pub fn max_temperature(&self) -> Temperature {
        Temperature::from_kelvin(self.kelvin.max_value())
    }

    /// The coolest cell temperature.
    #[must_use]
    pub fn min_temperature(&self) -> Temperature {
        Temperature::from_kelvin(self.kelvin.min_value())
    }

    /// Location of the hottest cell.
    #[must_use]
    pub fn hottest_cell(&self) -> Index3 {
        self.kelvin.argmax()
    }

    /// The hottest temperature within one z layer.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    #[must_use]
    pub fn layer_max(&self, k: usize) -> Temperature {
        Temperature::from_kelvin(self.layer_kelvin(k).max_value())
    }

    /// A horizontal temperature map (kelvin) of z layer `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    #[must_use]
    pub fn layer_kelvin(&self, k: usize) -> Grid2<f64> {
        self.kelvin.layer(k)
    }

    /// Raw kelvin field.
    #[must_use]
    pub fn as_kelvin(&self) -> &Grid3<f64> {
        &self.kelvin
    }

    /// Volume-unweighted mean temperature.
    #[must_use]
    pub fn mean_temperature(&self) -> Temperature {
        let n = self.kelvin.dim().len() as f64;
        Temperature::from_kelvin(self.kelvin.iter().sum::<f64>() / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> TemperatureField {
        let mut g = Grid3::filled(Dim3::new(3, 3, 2), 300.0);
        g[(2, 1, 1)] = 350.0;
        g[(0, 0, 0)] = 290.0;
        TemperatureField::from_kelvin(g)
    }

    #[test]
    fn extrema() {
        let f = field();
        assert!((f.max_temperature().kelvin() - 350.0).abs() < 1e-12);
        assert!((f.min_temperature().kelvin() - 290.0).abs() < 1e-12);
        assert_eq!(f.hottest_cell(), Index3::new(2, 1, 1));
    }

    #[test]
    fn layer_views() {
        let f = field();
        assert!((f.layer_max(1).kelvin() - 350.0).abs() < 1e-12);
        assert!((f.layer_max(0).kelvin() - 300.0).abs() < 1e-12);
        let m = f.layer_kelvin(1);
        assert_eq!(m.nx(), 3);
        assert!((m.max_value() - 350.0).abs() < 1e-12);
    }

    #[test]
    fn mean_between_extremes() {
        let f = field();
        let mean = f.mean_temperature();
        assert!(mean > f.min_temperature() && mean < f.max_temperature());
    }
}
