//! Free functions encoding multi-step physical laws that do not fit a
//! single operator impl.

use crate::{
    Area, AreaThermalResistance, HeatFlux, HeatTransferCoefficient, Length, Power, Ratio,
    TempDelta, Temperature, ThermalConductivity, ThermalResistance,
};

/// Junction temperature of a uniform `n`-tier stack in closed form.
///
/// Models the 1-D "thermal ladder" of Fig. 1: each of the `n` tiers
/// dissipates `per_tier_flux`, heat flows down through an inter-tier
/// area-resistance `tier_resistance` and exits through a heatsink with
/// coefficient `h` into `ambient`. Tier `i`'s boundary carries the heat of
/// all tiers above it, giving the quadratic tier-count law
/// `ΔT_stack = q₁·R·n(n+1)/2` that makes many-tier stacks so hard to cool.
///
/// This closed form is the fast path used inside floorplanning cost
/// functions and the sanity check for the full finite-volume solver.
///
/// ```
/// use tsc_units::{ops, HeatFlux, HeatTransferCoefficient, Temperature, AreaThermalResistance};
/// let tj = ops::stack_junction_temperature(
///     3,
///     HeatFlux::from_watts_per_square_cm(53.0),
///     AreaThermalResistance::new(3.3e-6),
///     HeatTransferCoefficient::TWO_PHASE,
///     Temperature::from_celsius(100.0),
/// );
/// assert!(tj.celsius() > 100.0 && tj.celsius() < 125.0);
/// ```
#[must_use]
pub fn stack_junction_temperature(
    n: usize,
    per_tier_flux: HeatFlux,
    tier_resistance: AreaThermalResistance,
    h: HeatTransferCoefficient,
    ambient: Temperature,
) -> Temperature {
    let n_f = n as f64;
    let heatsink_rise = (per_tier_flux * n_f) / h;
    let ladder_rise = per_tier_flux * tier_resistance * (n_f * (n_f + 1.0) / 2.0);
    ambient + heatsink_rise + ladder_rise
}

/// Fraction of the total junction rise contributed by inter-tier conduction
/// (as opposed to the heatsink) in the uniform-stack model.
///
/// Sec. I reports this to be ~85 % for a 3-tier stack on an advanced
/// two-phase heatsink — the motivation for attacking tier resistance.
#[must_use]
pub fn ladder_fraction_of_rise(
    n: usize,
    per_tier_flux: HeatFlux,
    tier_resistance: AreaThermalResistance,
    h: HeatTransferCoefficient,
) -> Ratio {
    let n_f = n as f64;
    let heatsink = ((per_tier_flux * n_f) / h).kelvin();
    let ladder = (per_tier_flux * tier_resistance * (n_f * (n_f + 1.0) / 2.0)).kelvin();
    Ratio::from_fraction(ladder / (ladder + heatsink))
}

/// Effective conductivity of a parallel composite: volume-weighted
/// arithmetic mean (Voigt bound). Exact for heat flowing *along* layers.
///
/// ```
/// use tsc_units::{ops, Ratio, ThermalConductivity};
/// let k = ops::parallel_rule(
///     ThermalConductivity::new(105.0),
///     ThermalConductivity::new(0.2),
///     Ratio::from_percent(10.0),
/// );
/// assert!((k.get() - (0.1 * 105.0 + 0.9 * 0.2)).abs() < 1e-9);
/// ```
#[must_use]
pub fn parallel_rule(
    k_a: ThermalConductivity,
    k_b: ThermalConductivity,
    fraction_a: Ratio,
) -> ThermalConductivity {
    let f = fraction_a.fraction();
    ThermalConductivity::new(f * k_a.get() + (1.0 - f) * k_b.get())
}

/// Effective conductivity of a series composite: volume-weighted harmonic
/// mean (Reuss bound). Exact for heat flowing *across* layers.
///
/// ```
/// use tsc_units::{ops, Ratio, ThermalConductivity};
/// let k = ops::series_rule(
///     ThermalConductivity::new(100.0),
///     ThermalConductivity::new(1.0),
///     Ratio::from_percent(50.0),
/// );
/// // Dominated by the poor layer: 1/(0.5/100 + 0.5/1) ≈ 1.98 W/m/K.
/// assert!((k.get() - 1.9802).abs() < 1e-3);
/// ```
#[must_use]
pub fn series_rule(
    k_a: ThermalConductivity,
    k_b: ThermalConductivity,
    fraction_a: Ratio,
) -> ThermalConductivity {
    let f = fraction_a.fraction();
    ThermalConductivity::new(1.0 / (f / k_a.get() + (1.0 - f) / k_b.get()))
}

/// Spreading resistance of a small square heat source of side `source_side`
/// on a half-space-like spreading layer of conductivity `k` and thickness
/// `t`, flowing into a plane held by a much better conductor.
///
/// Uses the classic series truncation for a square source: the
/// constriction term `1/(2k·a)` (with `a = side/√π` the equivalent radius)
/// capped by the slab term `t/(k·A)` — an engineering closed form adequate
/// for floorplanning cost functions; the FVM solver is authoritative.
#[must_use]
pub fn spreading_resistance(
    k: ThermalConductivity,
    source_side: Length,
    layer_thickness: Length,
) -> ThermalResistance {
    let a = source_side.meters() / core::f64::consts::PI.sqrt();
    let constriction = 1.0 / (2.0 * k.get() * 2.0 * a);
    let slab = layer_thickness.meters() / (k.get() * source_side.squared().square_meters());
    ThermalResistance::new(constriction.min(slab))
}

/// Total power of a uniformly dissipating region.
#[must_use]
pub fn region_power(flux: HeatFlux, width: Length, height: Length) -> Power {
    flux * (width * height)
}

/// Area penalty of inserting `count` structures of footprint
/// `unit_area` into a region of `base_area`.
#[must_use]
pub fn insertion_penalty(count: usize, unit_area: Area, base_area: Area) -> Ratio {
    Ratio::from_fraction(count as f64 * unit_area.get() / base_area.get())
}

/// Temperature margin remaining below a limit; negative when violated.
#[must_use]
pub fn margin(tj: Temperature, limit: Temperature) -> TempDelta {
    limit - tj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_grows_quadratically() {
        let q = HeatFlux::from_watts_per_square_cm(53.0);
        let r = AreaThermalResistance::new(3.3e-6);
        let h = HeatTransferCoefficient::TWO_PHASE;
        let amb = Temperature::from_celsius(100.0);
        let t3 = stack_junction_temperature(3, q, r, h, amb);
        let t6 = stack_junction_temperature(6, q, r, h, amb);
        let t12 = stack_junction_temperature(12, q, r, h, amb);
        // Rise above ambient ~ n(n+1)/2 -> 6 : 21 : 78 plus a linear heatsink term.
        let r3 = (t3 - amb).kelvin();
        let r6 = (t6 - amb).kelvin();
        let r12 = (t12 - amb).kelvin();
        assert!(r6 / r3 > 2.5 && r6 / r3 < 4.0);
        assert!(r12 / r6 > 3.0 && r12 / r6 < 4.5);
    }

    #[test]
    fn three_tier_conventional_stack_is_ladder_dominated() {
        // Sec. I: ~85% of Tj rise from tier resistance with an advanced heatsink.
        let frac = ladder_fraction_of_rise(
            3,
            HeatFlux::from_watts_per_square_cm(53.0),
            AreaThermalResistance::new(3.3e-6),
            HeatTransferCoefficient::TWO_PHASE,
        );
        assert!(frac.percent() > 75.0 && frac.percent() < 95.0, "got {frac}");
    }

    #[test]
    fn parallel_rule_bounds_series_rule() {
        let hi = ThermalConductivity::new(105.0);
        let lo = ThermalConductivity::new(0.2);
        for pct in [1.0, 10.0, 50.0, 90.0] {
            let f = Ratio::from_percent(pct);
            let par = parallel_rule(hi, lo, f);
            let ser = series_rule(hi, lo, f);
            assert!(par.get() >= ser.get(), "Voigt must bound Reuss at {pct}%");
            assert!(par.get() <= hi.get() && ser.get() >= lo.get());
        }
    }

    #[test]
    fn pillar_fraction_transforms_beol() {
        // 10% pillars at 105 W/m/K in 0.31 W/m/K BEOL: ~30x improvement.
        let k = parallel_rule(
            ThermalConductivity::new(105.0),
            ThermalConductivity::new(0.31),
            Ratio::from_percent(10.0),
        );
        assert!(k.get() / 0.31 > 25.0);
    }

    #[test]
    fn insertion_penalty_scales_with_count() {
        let pillar = Length::from_nanometers(100.0).squared();
        let region = Length::from_micrometers(10.0).squared();
        let p1 = insertion_penalty(100, pillar, region);
        let p2 = insertion_penalty(200, pillar, region);
        assert!((p2.fraction() / p1.fraction() - 2.0).abs() < 1e-9);
        assert!((p1.percent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn margin_sign() {
        let limit = Temperature::from_celsius(125.0);
        assert!(margin(Temperature::from_celsius(120.0), limit).kelvin() > 0.0);
        assert!(margin(Temperature::from_celsius(130.0), limit).kelvin() < 0.0);
    }

    #[test]
    fn spreading_resistance_improves_with_k() {
        let side = Length::from_micrometers(5.0);
        let t = Length::from_nanometers(240.0);
        let r_low = spreading_resistance(ThermalConductivity::new(0.2), side, t);
        let r_high = spreading_resistance(ThermalConductivity::new(105.0), side, t);
        assert!(r_low.get() > r_high.get() * 100.0);
    }
}
