//! Benches of the finite-volume thermal solver — the kernel behind
//! every figure — including the serial-vs-parallel comparison on the
//! paper's Gemmini 12-tier stack.
//!
//! Run with `cargo bench --bench solver`; set `BENCH_FAST=1` for a
//! 3-sample smoke pass. Results are recorded in `EXPERIMENTS.md`.

use tsc_bench::timing::Bench;
use tsc_core::beol::BeolProperties;
use tsc_core::stack::{build, StackConfig};
use tsc_designs::gemmini;
use tsc_thermal::{CgSolver, Heatsink, Problem, SorSolver};
use tsc_units::{Length, Power, ThermalConductivity};

fn slab(n: usize, nz: usize) -> Problem {
    let mut p = Problem::uniform_block(
        n,
        n,
        nz,
        Length::from_millimeters(1.0),
        Length::from_millimeters(1.0),
        Length::from_micrometers(100.0),
        ThermalConductivity::new(10.0),
    );
    p.set_bottom_heatsink(Heatsink::two_phase());
    p.add_power(n / 2, n / 2, nz - 1, Power::from_watts(1.0));
    p
}

/// The paper's end-to-end fixture: the Gemmini accelerator stacked 12
/// tiers high on a two-phase heatsink, scaffolded BEOL. `lateral` cells
/// per die edge; the mesh has `1 + 12·4 = 49` z-slabs.
fn gemmini_12_tier(lateral: usize) -> Problem {
    let cfg = StackConfig::uniform(12, BeolProperties::scaffolded(), Heatsink::two_phase())
        .with_lateral_cells(lateral);
    build(&gemmini::design(), &cfg).problem
}

fn bench_cg_scaling(b: &Bench) {
    for n in [8usize, 16, 24] {
        let p = slab(n, 16);
        b.run(&format!("lateral_cells/{n}"), 10, || {
            CgSolver::new().solve(&p).expect("converges")
        });
    }
}

fn bench_cg_vs_sor(b: &Bench) {
    let p = slab(12, 12);
    b.run("cg", 10, || CgSolver::new().solve(&p).expect("converges"));
    b.run("sor", 10, || {
        SorSolver::new()
            .with_tolerance(1e-8)
            .solve(&p)
            .expect("converges")
    });
}

fn bench_high_contrast(b: &Bench) {
    // The hard case: ultra-low-k layers against silicon (3 orders of
    // magnitude contrast) — what the 3D-IC stacks actually look like.
    let mut p = slab(16, 24);
    for k in (0..24).step_by(4) {
        p.set_layer_conductivity(
            k,
            ThermalConductivity::new(0.31),
            ThermalConductivity::new(5.47),
        );
    }
    b.run("cg_high_contrast_stack", 10, || {
        CgSolver::new().solve(&p).expect("converges")
    });
}

/// Serial vs parallel on the Gemmini 12-tier mesh: the tentpole
/// comparison. Also cross-checks that the parallel CG and the red-black
/// SOR land on the same temperature field (≤ 1e-3 K) and that parallel
/// CG reproduces serial CG exactly.
fn bench_parallel_gemmini(b: &Bench) {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let fast = std::env::var_os("BENCH_FAST").is_some();
    let lateral = if fast { 32 } else { 64 };
    let p = gemmini_12_tier(lateral);
    let cells = lateral * lateral * 49;
    println!(
        "  gemmini 12-tier mesh: {lateral}x{lateral}x49 = {cells} cells, host threads: {threads}"
    );

    let serial_solver = CgSolver::new().with_tolerance(1e-8).with_threads(1);
    let parallel_solver = CgSolver::new()
        .with_tolerance(1e-8)
        .with_threads(threads)
        .with_parallel_crossover(0);

    let serial = b.run("cg_serial", 5, || serial_solver.solve(&p).expect("serial"));
    let parallel = b.run("cg_parallel", 5, || {
        parallel_solver.solve(&p).expect("parallel")
    });
    println!(
        "  cg speedup: {:.2}x on {} threads",
        serial.seconds() / parallel.seconds(),
        threads
    );

    // Correctness cross-checks ride along with the timing run.
    let s = serial_solver.solve(&p).expect("serial");
    let q = parallel_solver.solve(&p).expect("parallel");
    let max_diff = s
        .temperatures
        .iter_kelvin()
        .zip(q.temperatures.iter_kelvin())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    assert!(
        max_diff <= 1e-9,
        "parallel CG deviates from serial by {max_diff} K"
    );
    println!(
        "  parallel vs serial CG: max |dT| = {max_diff:.3e} K, \
         {} iterations, {} matvecs, solve {:.3}s (assembly {:.3}s)",
        q.stats.iterations, q.stats.matvecs, q.stats.solve_seconds, q.stats.assembly_seconds
    );

    // SOR cross-check on a smaller mesh (SOR converges far slower on the
    // full fixture; the cross-check is about agreement, not speed).
    let p_small = gemmini_12_tier(16);
    let cg = CgSolver::new()
        .with_tolerance(1e-10)
        .solve(&p_small)
        .expect("cg");
    let sor = SorSolver::new()
        .with_tolerance(1e-9)
        .with_threads(threads)
        .with_parallel_crossover(0)
        .solve(&p_small)
        .expect("sor");
    let tj_cg = cg.temperatures.max_temperature().kelvin();
    let tj_sor = sor.temperatures.max_temperature().kelvin();
    assert!(
        (tj_cg - tj_sor).abs() <= 1e-3,
        "CG/SOR cross-check failed: {tj_cg} vs {tj_sor}"
    );
    println!(
        "  cg/sor cross-check (16x16x49): |dTj| = {:.3e} K",
        (tj_cg - tj_sor).abs()
    );
}

fn main() {
    let b = Bench::group("cg_solver");
    bench_cg_scaling(&b);
    let b = Bench::group("cg_vs_sor");
    bench_cg_vs_sor(&b);
    let b = Bench::group("high_contrast");
    bench_high_contrast(&b);
    let b = Bench::group("parallel_gemmini");
    bench_parallel_gemmini(&b);
}
