//! The Rocket-class RISC-V core (Fig. 8c-d).
//!
//! Published parameters: pipelined processing unit, 16 kB 4-way
//! instruction and data caches, page-table walker, floating-point unit.
//! Power comes from the memory-bound `spmv` workload of riscv-tests;
//! the processing unit is the hotspot (the 120 W/cm² end of the Fig. 8
//! color scale). With scaffolding the paper reaches 13 tiers at 10.6 %
//! footprint / 2.6 % delay penalty.

use crate::design::{Design, DesignUnit};
use crate::sram::SramMacro;
use tsc_geometry::Rect;
use tsc_phydes::power::UnitClass;
use tsc_units::{Frequency, Length};

/// L1 cache capacity per side (bytes): 16 kB, 4-way.
pub const L1_BYTES: usize = 16 << 10;

fn mm(v: f64) -> Length {
    Length::from_millimeters(v)
}

/// Builds the single-tier Rocket core design.
///
/// ```
/// use tsc_designs::rocket;
/// use tsc_units::Ratio;
///
/// let d = rocket::design();
/// let avg = d.average_flux(Ratio::ONE).watts_per_square_cm();
/// // Rocket runs cooler than Gemmini per tier (hence 13 vs 12 tiers).
/// assert!((30.0..50.0).contains(&avg), "{avg}");
/// ```
#[must_use]
pub fn design() -> Design {
    let die = Rect::from_origin_size(Length::ZERO, Length::ZERO, mm(0.30), mm(0.25));
    let cache_side = SramMacro::with_capacity(L1_BYTES).square_side();
    let units = vec![
        DesignUnit::new(
            "PU",
            Rect::from_origin_size(mm(0.0), mm(0.0), mm(0.12), mm(0.10)),
            UnitClass::ScalarCore,
            false,
        ),
        DesignUnit::new(
            "FPU",
            Rect::from_origin_size(mm(0.13), mm(0.0), mm(0.08), mm(0.10)),
            UnitClass::Fpu,
            false,
        ),
        DesignUnit::new(
            "PTW",
            Rect::from_origin_size(mm(0.22), mm(0.0), mm(0.06), mm(0.08)),
            UnitClass::Mmu,
            false,
        ),
        DesignUnit::new(
            "ICache",
            Rect::from_origin_size(mm(0.0), mm(0.11), cache_side, cache_side),
            UnitClass::Sram,
            true,
        ),
        DesignUnit::new(
            "DCache",
            Rect::from_origin_size(mm(0.10), mm(0.11), cache_side, cache_side),
            UnitClass::Sram,
            true,
        ),
        DesignUnit::new(
            "ctrl",
            Rect::from_origin_size(mm(0.20), mm(0.11), mm(0.08), mm(0.08)),
            UnitClass::Control,
            false,
        ),
    ];
    Design::new(
        "Rocket RISC-V core",
        die,
        units,
        Frequency::from_gigahertz(1.25),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_units::Ratio;

    #[test]
    fn runs_cooler_than_gemmini() {
        let rocket = design().average_flux(Ratio::ONE).watts_per_square_cm();
        let gemmini = crate::gemmini::design()
            .average_flux(Ratio::ONE)
            .watts_per_square_cm();
        assert!(
            rocket < gemmini,
            "rocket {rocket} must run cooler than gemmini {gemmini}"
        );
    }

    #[test]
    fn pu_is_the_hotspot() {
        let d = design();
        let hs = d.heat_sources(Ratio::ONE);
        let hottest = hs
            .iter()
            .max_by(|a, b| {
                a.flux
                    .watts_per_square_meter()
                    .partial_cmp(&b.flux.watts_per_square_meter())
                    .expect("finite")
            })
            .expect("non-empty");
        assert_eq!(hottest.name, "PU");
        // ScalarCore at 1.25 GHz: 96 · (0.1 + 0.9·1.25) ≈ 118 W/cm² —
        // the top of the Fig. 8c color scale.
        assert!((hottest.flux.watts_per_square_cm() - 117.6).abs() < 1.0);
    }

    #[test]
    fn caches_are_macros() {
        let d = design();
        for name in ["ICache", "DCache"] {
            let u = d.units.iter().find(|u| u.name == name).expect("cache");
            assert!(u.is_macro);
        }
        assert_eq!(d.units.len(), 6);
    }

    #[test]
    fn die_is_sub_square_millimeter() {
        let a = design().die_area().square_millimeters();
        assert!((0.05..0.2).contains(&a), "Rocket die {a} mm²");
    }

    #[test]
    fn caches_fit_16kb_footprint() {
        let side = SramMacro::with_capacity(L1_BYTES).square_side();
        assert!((side.micrometers() - 84.0).abs() < 10.0, "{side}");
    }
}
