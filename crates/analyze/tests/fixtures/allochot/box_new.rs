//! `Box::new` inside a parallel-region closure.
pub fn step(plan: &ExecPlan, x: &mut [f64]) {
    plan.map_mut(x, |_range, chunk| {
        let boxed = Box::new(chunk[0]);
        let _ = boxed;
    });
}
