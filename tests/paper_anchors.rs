//! Regression tests pinning the paper's headline numbers (the rows of
//! EXPERIMENTS.md). Tolerances are bands around the paper's reported
//! values wide enough to absorb mesh/resolution choices but tight
//! enough that a physics regression trips them — each one stated as a
//! named `assert_close!` tolerance rather than a bare subtraction.

use thermal_scaffolding::core::beol::BeolProperties;
use thermal_scaffolding::core::flows::{timing_impact, CoolingStrategy};
use thermal_scaffolding::homogenize::pillar::PillarDesign;
use thermal_scaffolding::materials::diamond::EtcModel;
use thermal_scaffolding::materials::dielectric::{
    maxwell_garnett, FREE_SPACE, SINGLE_CRYSTAL_DIAMOND,
};
use thermal_scaffolding::phydes::fill::FillModel;
use thermal_scaffolding::phydes::timing::DelayModel;
use thermal_scaffolding::thermal::network::{Ladder, TierRung};
use thermal_scaffolding::thermal::Heatsink;
use thermal_scaffolding::units::{HeatFlux, Length, Ratio};
use tsc_verify::assert_close;

#[test]
fn fig4_anchor_160nm_film() {
    let k = EtcModel::calibrated()
        .in_plane_conductivity(Length::from_nanometers(160.0))
        .get();
    assert_close!(k, 105.7, abs = 2.0, "Fig. 4: 160 nm ETC film (W/m/K)");
}

#[test]
fn fig5_anchor_design_epsilon() {
    // ε = 4 sits inside the Maxwell-Garnett porosity window of bulk
    // diamond.
    let e0 = maxwell_garnett(SINGLE_CRYSTAL_DIAMOND, FREE_SPACE, 0.0).get();
    let e50 = maxwell_garnett(SINGLE_CRYSTAL_DIAMOND, FREE_SPACE, 0.5).get();
    assert!(e50 < 4.0 && 4.0 < e0, "Fig. 5 inset window: {e50}..{e0}");
}

#[test]
fn fig7_anchor_pillar_conductivity() {
    let k = PillarDesign::asap7_100nm().effective_vertical_k().get();
    assert_close!(k, 105.0, abs = 10.0, "Fig. 7: pillar stack k (W/m/K)");
}

#[test]
fn table1_anchor_delay_model() {
    let model = DelayModel::calibrated();
    let scaf = model
        .delay_penalty(&timing_impact(
            CoolingStrategy::Scaffolding,
            Ratio::from_percent(10.0),
        ))
        .percent();
    assert_close!(scaf, 3.0, abs = 0.3, "Table I: scaffolding delay (%)");
    let fill = model
        .delay_penalty(&timing_impact(
            CoolingStrategy::ConventionalDummyVias,
            Ratio::from_percent(78.0),
        ))
        .percent();
    assert_close!(fill, 17.0, abs = 1.0, "Table I: dummy-fill delay (%)");
}

#[test]
fn sec1_anchor_ladder_dominance() {
    let ladder = Ladder::uniform(
        Heatsink::two_phase(),
        TierRung::new(
            HeatFlux::from_watts_per_square_cm(53.0),
            BeolProperties::conventional().tier_resistance(),
        ),
        3,
    );
    let share = ladder.conduction_fraction().percent();
    assert!((80.0..95.0).contains(&share), "Sec. I 85% share: {share}");
}

#[test]
fn fig7b_anchor_fill_trend() {
    let fill = FillModel::calibrated();
    let f0 = fill.achievable_fill(Ratio::ZERO).percent();
    let f23 = fill.achievable_fill(Ratio::from_percent(23.0)).percent();
    assert_close!(f0, 44.0, abs = 1.0, "Fig. 7b: fill at zero slack (%)");
    assert_close!(f23, 54.0, abs = 1.0, "Fig. 7b: fill at 23% slack (%)");
}

#[test]
fn headline_500x_dielectric_gain() {
    let k = EtcModel::calibrated()
        .in_plane_conductivity(Length::from_nanometers(160.0))
        .get();
    assert!(k / 0.2 > 500.0, "the 500x headline: {}x", k / 0.2);
}
