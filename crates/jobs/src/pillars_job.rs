//! The `pillar_place` engine: Sec. IIIA pillar placement as work units.
//!
//! Phase 1 fans one density-bisection shard per heat source (they are
//! independent); phase 2 runs the escalation attempts sequentially —
//! attempt `n+1` only exists because attempt `n` missed the junction
//! target. Every shard solves against a **fresh** `SolveContext`, so
//! the realized densities and verdicts cannot depend on which shards
//! ran before a checkpoint: a resumed placement is bitwise-identical
//! to an uninterrupted one. (Within a shard the bisection still
//! warm-starts probe-to-probe, where it actually pays.)

use tsc_bench::json::Json;
use tsc_core::pillars::{
    minimum_source_density_with, place_attempt_with, placement_sources, PlacementConfig,
    ESCALATION_FACTOR, MAX_ESCALATIONS,
};
use tsc_designs::Design;
use tsc_geometry::Rect;
use tsc_thermal::SolveContext;
use tsc_units::{Ratio, Temperature};

use crate::checkpoint::{bits_f64, parse_bits_f64, require};
use crate::memo::fnv1a_bytes;
use crate::spec::JobSpec;
use crate::Progress;

/// What a pillar shard computes.
#[derive(Debug, Clone)]
pub enum PillarShardKind {
    /// Phase 1: the minimum uniform-cover density for one source.
    Density {
        /// Index into the engine's source list.
        source_idx: usize,
        /// The source rect.
        source: Rect,
    },
    /// Phase 2: one escalation attempt over the realized densities.
    Attempt {
        /// Zero-based attempt number.
        attempt: usize,
        /// Fill escalation past `P_min` (`1.3^attempt`, iterated).
        escalation: f64,
        /// The positive per-source densities from phase 1.
        source_densities: Vec<(Rect, Ratio)>,
    },
}

/// The outcome a pillar shard carries back.
#[derive(Debug, Clone)]
pub enum PillarOutcome {
    /// Phase-1 density (`None`: even the cap cannot cool this source).
    Density(Option<f64>),
    /// Phase-2 verdict: a plan summary, or `None` to escalate.
    Attempt(Option<PlanSummary>),
}

/// The serializable summary of a found [`tsc_core::pillars::PillarPlan`].
#[derive(Debug, Clone)]
pub struct PlanSummary {
    /// Placed pillar blocks.
    pub count: usize,
    /// Die-area fraction spent on pillars.
    pub area_penalty: f64,
    /// The attempt that met the target.
    pub attempt: usize,
}

/// One placement work unit, checked out of the engine.
#[derive(Debug)]
pub struct PillarShard {
    /// What to compute.
    pub kind: PillarShardKind,
    /// The design under placement.
    pub design: Design,
    /// Placement configuration.
    pub config: PlacementConfig,
    /// Filled in by [`PillarShard::run`].
    pub outcome: Option<Result<PillarOutcome, String>>,
}

impl PillarShard {
    /// Runs the shard against a fresh context.
    pub fn run(&mut self) {
        let mut ctx = SolveContext::new();
        self.outcome = Some(match &self.kind {
            PillarShardKind::Density { source, .. } => {
                minimum_source_density_with(&self.design, source, &self.config, &mut ctx)
                    .map(|d| PillarOutcome::Density(d.map(Ratio::fraction)))
                    .map_err(|e| e.to_string())
            }
            PillarShardKind::Attempt {
                attempt,
                escalation,
                source_densities,
            } => place_attempt_with(
                &self.design,
                &self.config,
                source_densities,
                *escalation,
                &mut ctx,
            )
            .map(|plan| {
                PillarOutcome::Attempt(plan.map(|p| PlanSummary {
                    count: p.positions.len(),
                    area_penalty: p.area_penalty.fraction(),
                    attempt: *attempt,
                }))
            })
            .map_err(|e| e.to_string()),
        });
    }
}

/// Replays `place_with`'s iterated escalation for attempt `n`.
fn escalation_for(attempt: usize) -> f64 {
    let mut e = 1.0_f64;
    for _ in 0..attempt {
        e *= ESCALATION_FACTOR;
    }
    e
}

fn rect_fingerprint(rect: &Rect) -> u64 {
    let mut bytes = Vec::with_capacity(32);
    for v in [
        rect.min_x().meters(),
        rect.min_y().meters(),
        rect.width().meters(),
        rect.height().meters(),
    ] {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fnv1a_bytes(&bytes)
}

/// The `pillar_place` engine state machine.
#[derive(Debug)]
pub struct PillarJob {
    design_name: String,
    design: Design,
    config: PlacementConfig,
    sources: Vec<Rect>,
    issued: Vec<bool>,
    /// `None` = pending; `Some(None)` = infeasible source;
    /// `Some(Some(d))` = minimum density fraction.
    densities: Vec<Option<Option<f64>>>,
    attempts_failed: usize,
    attempt_in_flight: bool,
    found: Option<PlanSummary>,
    infeasible: bool,
    error: Option<String>,
    evals: u64,
    dedup_hits: u64,
}

impl PillarJob {
    /// Builds the engine from a parsed spec, resuming from the spec's
    /// checkpoint when present.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown designs or malformed checkpoints.
    pub fn from_spec(spec: &JobSpec) -> Result<Self, String> {
        let design: Design = match spec.design.as_str() {
            "gemmini" => tsc_designs::gemmini::design(),
            "rocket" => tsc_designs::rocket::design(),
            other => return Err(format!("unknown design {other:?}")),
        };
        let config = PlacementConfig {
            tiers: spec.tiers,
            lateral_cells: spec.cells.min(16),
            t_target: Temperature::from_celsius(125.0),
            ..PlacementConfig::paper_default()
        };
        let sources = placement_sources(&design);
        let n = sources.len();
        let mut job = Self {
            design_name: spec.design.clone(),
            design,
            config,
            sources,
            issued: vec![false; n],
            densities: vec![None; n],
            attempts_failed: 0,
            attempt_in_flight: false,
            found: None,
            infeasible: false,
            error: None,
            evals: 0,
            dedup_hits: 0,
        };
        if let Some(cp) = &spec.resume {
            job.restore(cp)?;
        }
        Ok(job)
    }

    fn restore(&mut self, cp: &Json) -> Result<(), String> {
        let docs = require(cp, "densities")?
            .as_array()
            .ok_or_else(|| "checkpoint field \"densities\" must be an array".to_string())?;
        if docs.len() != self.sources.len() {
            return Err("checkpoint does not match the design's source count".to_string());
        }
        for (idx, doc) in docs.iter().enumerate() {
            match doc {
                Json::Null => {}
                doc => {
                    let feasible = require(doc, "feasible")?
                        .as_bool()
                        .ok_or_else(|| "density \"feasible\" must be a bool".to_string())?;
                    let density = if feasible {
                        Some(parse_bits_f64(require(doc, "density")?)?)
                    } else {
                        self.infeasible = true;
                        None
                    };
                    self.issued[idx] = true;
                    self.densities[idx] = Some(density);
                    self.evals += 1;
                }
            }
        }
        self.attempts_failed = require(cp, "attempts_failed")?
            .as_usize()
            .ok_or_else(|| "checkpoint \"attempts_failed\" must be an integer".to_string())?;
        if self.attempts_failed > MAX_ESCALATIONS {
            return Err("checkpoint attempts exceed the escalation cap".to_string());
        }
        self.evals += self.attempts_failed as u64;
        Ok(())
    }

    fn positive_densities(&self) -> Vec<(Rect, Ratio)> {
        self.sources
            .iter()
            .zip(&self.densities)
            .filter_map(|(rect, d)| match d {
                Some(Some(f)) if *f > 0.0 => Some((*rect, Ratio::from_fraction(*f))),
                _ => None,
            })
            .collect()
    }

    fn phase1_done(&self) -> bool {
        self.densities.iter().all(Option::is_some)
    }

    /// Checks out the next shard: phase-1 densities fan out, phase-2
    /// attempts run one at a time.
    pub fn next_work(&mut self) -> Option<PillarShard> {
        if self.error.is_some() || self.infeasible || self.found.is_some() {
            return None;
        }
        if let Some(idx) = self.issued.iter().position(|&c| !c) {
            self.issued[idx] = true;
            // Identical source rects have identical minimum densities:
            // serve them from the already-completed twin instead of
            // re-running the bisection.
            let fp = rect_fingerprint(&self.sources[idx]);
            let twin = self
                .sources
                .iter()
                .zip(&self.densities)
                .find_map(|(rect, d)| {
                    (rect_fingerprint(rect) == fp)
                        .then_some(d.as_ref().copied())
                        .flatten()
                });
            if let Some(d) = twin {
                self.densities[idx] = Some(d);
                self.dedup_hits += 1;
                self.infeasible |= d.is_none();
                return self.next_work();
            }
            return Some(PillarShard {
                kind: PillarShardKind::Density {
                    source_idx: idx,
                    source: self.sources[idx],
                },
                design: self.design.clone(),
                config: self.config.clone(),
                outcome: None,
            });
        }
        if !self.phase1_done() || self.attempt_in_flight {
            return None;
        }
        if self.attempts_failed >= MAX_ESCALATIONS {
            return None;
        }
        self.attempt_in_flight = true;
        Some(PillarShard {
            kind: PillarShardKind::Attempt {
                attempt: self.attempts_failed,
                escalation: escalation_for(self.attempts_failed),
                source_densities: self.positive_densities(),
            },
            design: self.design.clone(),
            config: self.config.clone(),
            outcome: None,
        })
    }

    /// Returns a completed shard, emitting progress events.
    pub fn complete_shard(&mut self, shard: PillarShard) -> Vec<Json> {
        let outcome = match shard.outcome {
            None => {
                self.error = Some("pillar shard returned without running".to_string());
                return Vec::new();
            }
            Some(Err(msg)) => {
                self.error = Some(msg);
                return Vec::new();
            }
            Some(Ok(outcome)) => outcome,
        };
        self.evals += 1;
        match (shard.kind, outcome) {
            (PillarShardKind::Density { source_idx, .. }, PillarOutcome::Density(d)) => {
                self.infeasible |= d.is_none();
                self.densities[source_idx] = Some(d);
            }
            (PillarShardKind::Attempt { .. }, PillarOutcome::Attempt(verdict)) => {
                self.attempt_in_flight = false;
                match verdict {
                    Some(summary) => self.found = Some(summary),
                    None => self.attempts_failed += 1,
                }
            }
            _ => {
                self.error = Some("pillar shard kind/outcome mismatch".to_string());
                return Vec::new();
            }
        }
        vec![self.progress_event()]
    }

    fn progress_event(&self) -> Json {
        let p = self.progress();
        Json::object()
            .field("event", "progress")
            .field("phase", p.phase)
            .field("round", p.round)
            .field("rounds", p.rounds)
            .field("dedup_hits", self.dedup_hits as f64)
    }

    /// `true` once a plan is found or the design is proven infeasible.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.infeasible
            || self.found.is_some()
            || (self.phase1_done() && self.attempts_failed >= MAX_ESCALATIONS)
    }

    /// Fatal solver error, if any.
    #[must_use]
    pub fn failed(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Progress snapshot.
    #[must_use]
    pub fn progress(&self) -> Progress {
        let total = self.sources.len() + MAX_ESCALATIONS;
        let done = self.densities.iter().filter(|d| d.is_some()).count() + self.attempts_failed;
        Progress {
            phase: if self.phase1_done() {
                "escalate"
            } else {
                "densities"
            },
            fraction: done as f64 / total.max(1) as f64,
            best_cost: None,
            round: done,
            rounds: total,
            evals: self.evals,
            dedup_hits: self.dedup_hits,
        }
    }

    /// Serializes progress so far. Phase-1 shards are independent and
    /// phase-2 is sequential, so every completion is a barrier.
    #[must_use]
    pub fn checkpoint(&self) -> Json {
        let densities: Vec<Json> = self
            .densities
            .iter()
            .map(|d| match d {
                None => Json::Null,
                Some(None) => Json::object().field("feasible", false),
                Some(Some(f)) => Json::object()
                    .field("feasible", true)
                    .field("density", bits_f64(*f)),
            })
            .collect();
        Json::object()
            .field("kind", "pillar_place")
            .field("design", self.design_name.as_str())
            .field("tiers", self.config.tiers)
            .field("cells", self.config.lateral_cells)
            .field("densities", Json::Array(densities))
            .field("attempts_failed", self.attempts_failed)
    }

    /// The result document, once done.
    #[must_use]
    pub fn result(&self) -> Option<Json> {
        if !self.is_done() {
            return None;
        }
        let doc = Json::object()
            .field("kind", "pillar_place")
            .field("design", self.design_name.as_str())
            .field("feasible", self.found.is_some())
            .field("evals", self.evals as f64)
            .field("dedup_hits", self.dedup_hits as f64);
        Some(match &self.found {
            Some(plan) => doc
                .field("pillars", plan.count)
                .field("area_penalty", plan.area_penalty)
                .field("area_penalty_bits", bits_f64(plan.area_penalty))
                .field("attempt", plan.attempt),
            None => doc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_bench::json::parse;

    fn spec(body: &str) -> JobSpec {
        JobSpec::parse(&parse(body).expect("json")).expect("spec")
    }

    fn drive(job: &mut PillarJob) {
        while !job.is_done() {
            let mut batch = Vec::new();
            while let Some(mut shard) = job.next_work() {
                shard.run();
                batch.push(shard);
            }
            assert!(!batch.is_empty(), "placement stalled");
            for shard in batch {
                let _ = job.complete_shard(shard);
            }
            assert!(job.failed().is_none(), "failed: {:?}", job.failed());
        }
    }

    #[test]
    fn resume_mid_phase1_is_bitwise() {
        let body = r#"{"kind": "pillar_place", "design": "rocket", "tiers": 4, "cells": 8}"#;
        let mut full = PillarJob::from_spec(&spec(body)).expect("job");
        drive(&mut full);
        let full_result = full.result().expect("result");

        let mut killed = PillarJob::from_spec(&spec(body)).expect("job");
        let mut first = killed.next_work().expect("a density shard");
        first.run();
        let _ = killed.complete_shard(first);
        let cp = parse(&killed.checkpoint().pretty()).expect("checkpoint parses");
        let resume_body = parse(body).expect("json").field("resume", cp);
        let mut resumed =
            PillarJob::from_spec(&JobSpec::parse(&resume_body).expect("spec")).expect("job");
        drive(&mut resumed);
        let resumed_result = resumed.result().expect("result");
        assert_eq!(
            full_result.get("feasible").and_then(Json::as_bool),
            resumed_result.get("feasible").and_then(Json::as_bool)
        );
        assert_eq!(
            full_result.get("area_penalty_bits").and_then(Json::as_str),
            resumed_result
                .get("area_penalty_bits")
                .and_then(Json::as_str),
            "resumed plan must match bitwise"
        );
    }

    #[test]
    fn escalation_replays_place_with_exactly() {
        // Iterated, not powf — the last bits matter for bitwise resume.
        let mut e = 1.0_f64;
        for n in 0..MAX_ESCALATIONS {
            assert_eq!(escalation_for(n).to_bits(), e.to_bits());
            e *= ESCALATION_FACTOR;
        }
    }
}
