//! Fixture: a `static mut` global.

static mut COUNTER: u64 = 0;

// SAFETY: single-threaded caller (this claim is exactly what the rule
// refuses to accept — use an atomic instead).
pub unsafe fn bump() -> u64 {
    // SAFETY: see above.
    unsafe {
        COUNTER += 1;
        COUNTER
    }
}
