//! End-to-end endpoint tests against an in-process server on an
//! ephemeral port: routing, JSON round trips, keep-alive, pipelining,
//! and the Prometheus exposition.

mod common;

use std::time::Duration;

use common::{one_shot, TestClient};
use tsc_bench::json::{self, Json};
use tsc_serve::{validate_exposition, Server, ServerConfig};

fn start_server() -> Server {
    Server::start(ServerConfig::default()).expect("bind ephemeral port")
}

const SMALL_SOLVE: &[u8] = br#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6}"#;

#[test]
fn healthz_designs_and_unknown_routes() {
    let server = start_server();
    let addr = server.addr();

    let health = one_shot(addr, "GET", "/healthz", &[], b"");
    assert_eq!(health.status, 200);
    assert_eq!(health.body_str(), "ok\n");

    let designs = one_shot(addr, "GET", "/v1/designs", &[], b"");
    assert_eq!(designs.status, 200);
    let parsed = json::parse(&designs.body_str()).expect("designs body parses");
    let names: Vec<&str> = parsed
        .get("designs")
        .and_then(Json::as_array)
        .expect("designs array")
        .iter()
        .filter_map(|d| d.get("name").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"gemmini"));
    assert!(names.contains(&"rocket"));

    assert_eq!(one_shot(addr, "GET", "/v1/nope", &[], b"").status, 404);
    assert_eq!(one_shot(addr, "POST", "/healthz", &[], b"{}").status, 405);
    assert_eq!(one_shot(addr, "GET", "/v1/solve", &[], b"").status, 405);

    server.shutdown();
}

#[test]
fn solve_round_trip_and_bad_bodies() {
    let server = start_server();
    let addr = server.addr();

    let ok = one_shot(addr, "POST", "/v1/solve", &[], SMALL_SOLVE);
    assert_eq!(ok.status, 200, "body: {}", ok.body_str());
    let parsed = json::parse(&ok.body_str()).expect("solve body parses");
    let junction = parsed
        .get("junction_celsius")
        .and_then(Json::as_f64)
        .expect("junction field");
    assert!(junction > 20.0 && junction < 400.0, "junction {junction}");
    assert_eq!(
        parsed
            .get("tier_profile_celsius")
            .and_then(Json::as_array)
            .expect("profile")
            .len(),
        2
    );

    for bad in [
        &b"not json"[..],
        b"{}",
        br#"{"design": "nope"}"#,
        br#"{"design": "gemmini", "tiers": 9999}"#,
        br#"{"design": "gemmini", "strategy": 7}"#,
    ] {
        let resp = one_shot(addr, "POST", "/v1/solve", &[], bad);
        assert_eq!(resp.status, 400, "body {:?}", String::from_utf8_lossy(bad));
        assert!(json::parse(&resp.body_str()).is_ok(), "errors are JSON");
    }

    server.shutdown();
}

#[test]
fn metrics_exposition_is_valid_and_tracks_requests() {
    let server = start_server();
    let addr = server.addr();

    let solve = one_shot(addr, "POST", "/v1/solve", &[], SMALL_SOLVE);
    assert_eq!(solve.status, 200);
    let _ = one_shot(addr, "GET", "/healthz", &[], b"");

    let metrics = one_shot(addr, "GET", "/metrics", &[], b"");
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("text/plain")));
    let text = metrics.body_str();
    validate_exposition(&text).expect("exposition validates");

    // The series the issue requires: requests, latency histogram, queue
    // depth, context pool.
    assert!(text.contains("tsc_requests_total{endpoint=\"solve\",status=\"200\"} 1"));
    assert!(text.contains("tsc_requests_total{endpoint=\"healthz\",status=\"200\"}"));
    assert!(text.contains("tsc_request_seconds_bucket{endpoint=\"solve\",le=\"+Inf\"} 1"));
    assert!(text.contains("tsc_request_seconds_quantile{endpoint=\"solve\",quantile=\"0.99\"}"));
    assert!(text.contains("tsc_queue_depth "));
    assert!(text.contains("tsc_queue_capacity "));
    assert!(text.contains("tsc_context_pool_misses_total 1"));
    assert!(text.contains("tsc_backend_solves_total 1"));
    assert!(text.contains("tsc_context_assemblies_total"));

    server.shutdown();
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let server = start_server();
    let mut client = TestClient::connect(server.addr());

    for _ in 0..3 {
        let resp = client.request("GET", "/healthz", &[], b"");
        assert_eq!(resp.status, 200);
    }
    // The same connection can then do a solve.
    let resp = client.request("POST", "/v1/solve", &[], SMALL_SOLVE);
    assert_eq!(resp.status, 200);

    server.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = start_server();
    let mut client = TestClient::connect(server.addr());

    let mut burst = Vec::new();
    burst.extend_from_slice(&common::format_request("GET", "/healthz", &[], b""));
    burst.extend_from_slice(&common::format_request("GET", "/v1/designs", &[], b""));
    burst.extend_from_slice(&common::format_request("GET", "/healthz", &[], b""));
    client.send_raw(&burst);

    let first = client.read_response(Duration::from_secs(10)).expect("r1");
    let second = client.read_response(Duration::from_secs(10)).expect("r2");
    let third = client.read_response(Duration::from_secs(10)).expect("r3");
    assert_eq!(first.status, 200);
    assert_eq!(first.body_str(), "ok\n");
    assert_eq!(second.status, 200);
    assert!(second.body_str().contains("gemmini"));
    assert_eq!(third.status, 200);
    assert_eq!(third.body_str(), "ok\n");

    server.shutdown();
}

#[test]
fn connection_close_header_is_honoured() {
    let server = start_server();
    let mut client = TestClient::connect(server.addr());
    let resp = client.request("GET", "/healthz", &[("Connection", "close")], b"");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("connection"), Some("close"));
    // The server closed: the next read sees EOF, not a response.
    client.send_raw(&common::format_request("GET", "/healthz", &[], b""));
    assert!(client.read_response(Duration::from_secs(2)).is_none());

    server.shutdown();
}

#[test]
fn shutdown_endpoint_triggers_graceful_drain() {
    let server = start_server();
    let addr = server.addr();

    let resp = one_shot(addr, "POST", "/v1/shutdown", &[], b"");
    assert_eq!(resp.status, 200);
    // Returns promptly because the endpoint signalled.
    server.wait_for_shutdown_request();
    server.shutdown();

    // The port no longer accepts (give the OS a moment to settle).
    std::thread::sleep(Duration::from_millis(50));
    assert!(std::net::TcpStream::connect(addr).is_err());
}
