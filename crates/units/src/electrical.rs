//! Electrical quantities used by the BEOL delay model: capacitance, wire
//! resistance, delay, frequency, and relative permittivity.

quantity! {
    /// Capacitance, stored in farads.
    ///
    /// ```
    /// use tsc_units::{Capacitance, ElectricalResistance};
    /// let c = Capacitance::from_femtofarads(200.0);
    /// let r = ElectricalResistance::new(1000.0);
    /// assert!(((r * c).picoseconds() - 200.0).abs() < 1e-9);
    /// ```
    Capacitance, "F", "Creates a capacitance from farads."
}

quantity! {
    /// Electrical resistance, stored in ohms.
    ///
    /// ```
    /// use tsc_units::ElectricalResistance;
    /// let r = ElectricalResistance::new(25.0);
    /// assert_eq!((r * 2.0).get(), 50.0);
    /// ```
    ElectricalResistance, "Ω", "Creates an electrical resistance from ohms."
}

quantity! {
    /// A signal delay, stored in seconds.
    ///
    /// ```
    /// use tsc_units::Delay;
    /// let period = Delay::from_nanoseconds(1.0);
    /// let slack = Delay::from_picoseconds(-30.0);
    /// assert!(((period - slack).picoseconds() - 1030.0).abs() < 1e-9);
    /// ```
    Delay, "s", "Creates a delay from seconds."
}

quantity! {
    /// A clock frequency, stored in hertz.
    ///
    /// ```
    /// use tsc_units::Frequency;
    /// let f = Frequency::from_gigahertz(1.0);
    /// assert!((f.period().nanoseconds() - 1.0).abs() < 1e-12);
    /// ```
    Frequency, "Hz", "Creates a frequency from hertz."
}

quantity! {
    /// Relative permittivity (dielectric constant), dimensionless.
    ///
    /// The paper's two dielectrics: porous ultra-low-k at ε ≈ 2 and the
    /// nanocrystalline-diamond thermal dielectric at a pessimistic ε ≈ 4.
    ///
    /// ```
    /// use tsc_units::RelativePermittivity;
    /// let ultra_low_k = RelativePermittivity::ULTRA_LOW_K;
    /// let diamond = RelativePermittivity::THERMAL_DIELECTRIC;
    /// assert!((diamond / ultra_low_k - 2.0).abs() < 1e-9);
    /// ```
    RelativePermittivity, "(dimensionless)", "Creates a relative permittivity."
}

/// Vacuum permittivity ε₀ in F/m.
pub const VACUUM_PERMITTIVITY: f64 = 8.854_187_812_8e-12;

impl Capacitance {
    /// Creates a capacitance from femtofarads.
    #[must_use]
    pub fn from_femtofarads(ff: f64) -> Self {
        Self::new(ff * 1e-15)
    }

    /// Value in femtofarads.
    #[must_use]
    pub fn femtofarads(self) -> f64 {
        self.get() * 1e15
    }
}

impl Delay {
    /// Creates a delay from nanoseconds.
    #[must_use]
    pub fn from_nanoseconds(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }

    /// Creates a delay from picoseconds.
    #[must_use]
    pub fn from_picoseconds(ps: f64) -> Self {
        Self::new(ps * 1e-12)
    }

    /// Value in nanoseconds.
    #[must_use]
    pub fn nanoseconds(self) -> f64 {
        self.get() * 1e9
    }

    /// Value in picoseconds.
    #[must_use]
    pub fn picoseconds(self) -> f64 {
        self.get() * 1e12
    }

    /// The frequency whose period equals this delay.
    ///
    /// # Panics
    ///
    /// Panics if the delay is zero or negative.
    #[must_use]
    pub fn to_frequency(self) -> Frequency {
        assert!(self.get() > 0.0, "period must be positive, got {self}");
        Frequency::new(1.0 / self.get())
    }
}

impl Frequency {
    /// Creates a frequency from gigahertz.
    #[must_use]
    pub fn from_gigahertz(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }

    /// Creates a frequency from megahertz.
    #[must_use]
    pub fn from_megahertz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }

    /// Value in gigahertz.
    #[must_use]
    pub fn gigahertz(self) -> f64 {
        self.get() * 1e-9
    }

    /// The clock period for this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative.
    #[must_use]
    pub fn period(self) -> Delay {
        assert!(self.get() > 0.0, "frequency must be positive, got {self}");
        Delay::new(1.0 / self.get())
    }
}

impl RelativePermittivity {
    /// Porous ultra-low-k inter-layer dielectric: ε ≈ 2 (Lee & Shue,
    /// IEDM 2020 trend).
    pub const ULTRA_LOW_K: Self = Self::new(2.0);

    /// Nanocrystalline diamond thermal dielectric: pessimistic ε ≈ 4
    /// (Sec. II, Maxwell-Garnett over literature spread).
    pub const THERMAL_DIELECTRIC: Self = Self::new(4.0);
}

impl core::ops::Mul<Capacitance> for ElectricalResistance {
    type Output = Delay;
    /// The RC time constant `τ = R·C` (Elmore delay building block).
    fn mul(self, rhs: Capacitance) -> Delay {
        Delay::new(self.get() * rhs.get())
    }
}

impl core::ops::Mul<ElectricalResistance> for Capacitance {
    type Output = Delay;
    fn mul(self, rhs: ElectricalResistance) -> Delay {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_is_delay() {
        let tau = ElectricalResistance::new(100.0) * Capacitance::from_femtofarads(10.0);
        assert!((tau.picoseconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_period_round_trip() {
        let f = Frequency::from_gigahertz(1.25);
        assert!((f.period().to_frequency().gigahertz() - 1.25).abs() < 1e-9);
        assert!((Frequency::from_megahertz(800.0).period().nanoseconds() - 1.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_delay_has_no_frequency() {
        let _ = Delay::ZERO.to_frequency();
    }

    #[test]
    fn named_permittivities() {
        assert_eq!(RelativePermittivity::ULTRA_LOW_K.get(), 2.0);
        assert_eq!(RelativePermittivity::THERMAL_DIELECTRIC.get(), 4.0);
    }

    #[test]
    fn delay_unit_conversions() {
        let d = Delay::from_nanoseconds(0.9);
        assert!((d.picoseconds() - 900.0).abs() < 1e-9);
        assert!((Delay::from_picoseconds(900.0).nanoseconds() - 0.9).abs() < 1e-12);
    }
}
