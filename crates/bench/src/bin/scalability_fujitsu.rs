//! Scalability study: the 100×-scaled Fujitsu Research accelerator,
//! cooled with the single-MAC tiled pillar pattern of Sec. IIIA
//! ("this placement algorithm is run on a single multiply-accumulate,
//! generating a pattern of pillars which is repeated across the MAC
//! array").

use tsc_bench::{banner, compare};
use tsc_core::beol::BeolProperties;
use tsc_core::pillars::{tile_pattern, PlacementConfig};
use tsc_core::stack::{solve, StackConfig};
use tsc_designs::fujitsu;
use tsc_geometry::Rect;
use tsc_thermal::Heatsink;
use tsc_units::Temperature;

fn main() -> Result<(), tsc_thermal::SolveError> {
    banner("Fujitsu-scale accelerator: tiled single-MAC pillar pattern");
    let d = fujitsu::design();
    println!("design: {d}");

    let array = d.units[0].rect; // the 160x160-PE systolic array
                                 // One MAC tile: the array at PE-cluster granularity (16x16 PEs per
                                 // tile, i.e. one Gemmini-sized block).
    let unit = Rect::from_origin_size(
        array.min_x(),
        array.min_y(),
        array.width() / 10.0,
        array.height() / 10.0,
    );
    let config = PlacementConfig {
        tiers: 12,
        t_target: Temperature::from_celsius(125.0),
        lateral_cells: 12,
        ..PlacementConfig::paper_default()
    };
    let plan = tile_pattern(&d, &array, &unit, &config)?
        .expect("the scaled design must be coolable at 12 tiers");

    compare(
        "pillars placed (tiled pattern)",
        "(pattern repeated across the MAC array)",
        format!("{}", plan.count()),
    );
    compare(
        "footprint penalty of the tiled pattern",
        "9.4 % (Table I, whole-design)",
        format!("{:.1} % (array-only pattern)", plan.area_penalty.percent()),
    );

    // Verify the full 12-tier stack with the tiled pattern (plus the
    // routable-map fill outside the array at the array's realized
    // density — the LLC field gets the same constellation pitch).
    let array_density = plan.density_map.max_value();
    let mut map = tsc_core::pillars::uniform_routable_map(
        &d,
        tsc_units::Ratio::from_fraction(array_density),
        24,
    );
    // Overlay the explicit tiled pattern inside the array.
    let tiled = &plan.density_map;
    for j in 0..24 {
        for i in 0..24 {
            if tiled[(i, j)] > 0.0 {
                map[(i, j)] = tiled[(i, j)];
            }
        }
    }
    let cfg = StackConfig::uniform(12, BeolProperties::scaffolded(), Heatsink::two_phase())
        .with_lateral_cells(24)
        .with_pillar_map(map);
    let sol = solve(&d, &cfg)?;
    compare(
        "verification: 12-tier junction temperature",
        "<125 °C",
        format!("{}", sol.junction_temperature()),
    );
    compare(
        "energy balance of the 100x-scale solve",
        "(closed)",
        format!("{:.2e}", sol.solution.energy.relative_error()),
    );
    Ok(())
}
