//! Cross-crate integration tests: materials → homogenization → stack →
//! flows, exercising the public API exactly as a downstream user would.

use thermal_scaffolding::core::beol::BeolProperties;
use thermal_scaffolding::core::flows::{run_flow, CoolingStrategy, FlowConfig};
use thermal_scaffolding::core::stack::{compact_ladder, solve, StackConfig};
use thermal_scaffolding::designs::{gemmini, rocket};
use thermal_scaffolding::thermal::Heatsink;
use thermal_scaffolding::units::{Ratio, Temperature};
use tsc_verify::assert_close;

fn quick_flow(strategy: CoolingStrategy, tiers: usize) -> FlowConfig {
    FlowConfig {
        strategy,
        tiers,
        lateral_cells: 10,
        ..FlowConfig::default()
    }
}

#[test]
fn headline_result_end_to_end() {
    // The abstract in one test: 12-tier 7nm-class stack under 125 °C
    // with scaffolding; iso-budget conventional cooling fails.
    let d = gemmini::design();
    let scaf = run_flow(&d, &quick_flow(CoolingStrategy::Scaffolding, 12)).expect("solves");
    assert!(
        scaf.meets_limit,
        "scaffolding @12 tiers: {}",
        scaf.junction_temperature
    );
    let conv =
        run_flow(&d, &quick_flow(CoolingStrategy::ConventionalDummyVias, 12)).expect("solves");
    assert!(
        !conv.meets_limit,
        "conventional @12 tiers: {}",
        conv.junction_temperature
    );
    // Energy is conserved through the whole pipeline.
    assert!(scaf.solution.solution.energy.is_closed(1e-6));
    assert!(conv.solution.solution.energy.is_closed(1e-6));
}

#[test]
fn designs_share_the_flow_api() {
    for design in [gemmini::design(), rocket::design()] {
        let r = run_flow(&design, &quick_flow(CoolingStrategy::Scaffolding, 6)).expect("solves");
        assert!(
            r.junction_temperature > Temperature::from_celsius(100.0),
            "{}: above ambient",
            design.name
        );
        assert!(
            r.meets_limit,
            "{}: 6 scaffolded tiers fit easily",
            design.name
        );
    }
}

#[test]
fn compact_ladder_brackets_fvm() {
    // The ladder (no hotspots) must under-predict; within a small factor.
    let d = gemmini::design();
    let cfg = StackConfig::uniform(6, BeolProperties::conventional(), Heatsink::two_phase())
        .with_lateral_cells(10);
    let fvm = solve(&d, &cfg).expect("solves").junction_temperature();
    let ladder = compact_ladder(&d, &cfg).junction_temperature();
    let amb = Heatsink::two_phase().ambient;
    let ratio = (fvm - amb).kelvin() / (ladder - amb).kelvin();
    assert!(
        (1.0..3.0).contains(&ratio),
        "hotspot factor out of band: {ratio:.2} (fvm {fvm}, ladder {ladder})"
    );
}

#[test]
fn budgets_are_respected_not_just_reported() {
    let d = gemmini::design();
    for strategy in [
        CoolingStrategy::Scaffolding,
        CoolingStrategy::VerticalOnly,
        CoolingStrategy::ConventionalDummyVias,
    ] {
        let cfg = FlowConfig {
            area_budget: Ratio::from_percent(15.0),
            delay_budget: Ratio::from_percent(2.0),
            ..quick_flow(strategy, 4)
        };
        let r = run_flow(&d, &cfg).expect("solves");
        assert!(
            r.footprint_penalty.percent() <= 15.0 + 1e-9,
            "{strategy}: area {}",
            r.footprint_penalty
        );
        assert!(
            r.delay_penalty.percent() <= 2.0 + 1e-6,
            "{strategy}: delay {}",
            r.delay_penalty
        );
    }
}

#[test]
fn utilization_lowers_junction_temperature() {
    let d = gemmini::design();
    let hot = run_flow(&d, &quick_flow(CoolingStrategy::Scaffolding, 8)).expect("solves");
    let cfg = FlowConfig {
        utilization: Ratio::from_percent(72.0),
        ..quick_flow(CoolingStrategy::Scaffolding, 8)
    };
    let sim = run_flow(&d, &cfg).expect("solves");
    assert!(sim.junction_temperature < hot.junction_temperature);
}

#[test]
fn flows_are_deterministic_end_to_end() {
    // The whole pipeline (budget bisection → placement → FVM solve) is
    // bitwise deterministic: two identical runs must agree exactly
    // (`rel = 0.0` — the workspace's strictest named tolerance).
    let d = gemmini::design();
    let a = run_flow(&d, &quick_flow(CoolingStrategy::Scaffolding, 4)).expect("solves");
    let b = run_flow(&d, &quick_flow(CoolingStrategy::Scaffolding, 4)).expect("solves");
    assert_close!(
        a.junction_temperature.kelvin(),
        b.junction_temperature.kelvin(),
        rel = 0.0,
        "junction temperature must be run-to-run identical"
    );
    assert_close!(
        a.footprint_penalty.percent(),
        b.footprint_penalty.percent(),
        rel = 0.0,
        "footprint spend must be run-to-run identical"
    );
    assert_close!(
        a.delay_penalty.percent(),
        b.delay_penalty.percent(),
        rel = 0.0,
        "delay spend must be run-to-run identical"
    );
}

#[test]
fn beol_recipes_order_correctly() {
    // Scaffolded < dummy-filled (at high slack) < conventional in
    // per-tier vertical resistance.
    let conv = BeolProperties::conventional().tier_resistance().get();
    let scaf = BeolProperties::scaffolded().tier_resistance().get();
    let filled = BeolProperties::with_dummy_fill(Ratio::from_percent(78.0))
        .tier_resistance()
        .get();
    assert!(scaf < conv);
    assert!(filled < conv);
}
