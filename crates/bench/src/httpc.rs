//! Minimal std-only keep-alive HTTP/1.1 client.
//!
//! The consumer side of the serving tier, shared by the shard router
//! (`tsc-serve` proxies requests to its backends through this), the
//! load generator, and the integration tests.  Living in `tsc-bench`
//! keeps the dependency direction acyclic, the same reason [`crate::prom`]
//! lives here.
//!
//! Error taxonomy matters to the router: [`ClientError::Io`] and
//! [`ClientError::Timeout`] are *retryable* (the backend may be dead or
//! overloaded — try another shard), while [`ClientError::Malformed`]
//! means the peer spoke, but not HTTP — a bad gateway, not a candidate
//! for blind retry.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Hard cap on a buffered response (head + body).  A peer that streams
/// more than this without completing a response is treated as malformed
/// rather than buffered without bound.
pub const MAX_RESPONSE_BYTES: usize = 8 * 1024 * 1024;

/// Why a request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientError {
    /// Socket-level failure: connect refused, write failed, or the peer
    /// closed before a complete response.  Retryable.
    Io,
    /// The response deadline elapsed.  Retryable (elsewhere).
    Timeout,
    /// The peer sent bytes that cannot parse as an HTTP/1.1 response
    /// (or overflowed [`MAX_RESPONSE_BYTES`]).  Not retryable.
    Malformed,
}

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    pub status: u16,
    /// The raw head (status line + headers, without the blank line).
    pub head: String,
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Case-insensitive header lookup, trimmed value.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.head.lines().skip(1).find_map(|line| {
            let (k, v) = line.split_once(':')?;
            k.trim().eq_ignore_ascii_case(name).then_some(v.trim())
        })
    }

    /// The body decoded as UTF-8 (lossily — the serving tier only emits
    /// UTF-8, so replacement characters mark a misbehaving peer, which
    /// the JSON layer then rejects).
    #[must_use]
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Whether the server asked for the connection to be closed.
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A keep-alive connection.  Not thread-safe; one per caller.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
    deadline: Duration,
}

impl HttpClient {
    /// Connect with a bounded connect timeout.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the connect fails or times out.
    pub fn connect(addr: SocketAddr, connect_timeout: Duration) -> Result<Self, ClientError> {
        let stream =
            TcpStream::connect_timeout(&addr, connect_timeout).map_err(|_| ClientError::Io)?;
        // Short poll interval so the response deadline is enforced even
        // against a silent peer.
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .map_err(|_| ClientError::Io)?;
        // The head and body go out as two small writes; without
        // TCP_NODELAY, Nagle + delayed ACK stalls each request ~40ms.
        stream.set_nodelay(true).map_err(|_| ClientError::Io)?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
            deadline: Duration::from_secs(300),
        })
    }

    /// Builder: response deadline (default 300 s — a cold solve).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Issue one request and read the complete response.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<HttpResponse, ClientError> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: tsc\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        self.stream
            .write_all(head.as_bytes())
            .map_err(|_| ClientError::Io)?;
        self.stream.write_all(body).map_err(|_| ClientError::Io)?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<HttpResponse, ClientError> {
        let started = Instant::now();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match parse_response(&self.buf) {
                ParseOutcome::Complete(resp, consumed) => {
                    self.buf.drain(..consumed);
                    return Ok(resp);
                }
                ParseOutcome::Malformed => return Err(ClientError::Malformed),
                ParseOutcome::Incomplete => {}
            }
            if self.buf.len() > MAX_RESPONSE_BYTES {
                return Err(ClientError::Malformed);
            }
            if started.elapsed() > self.deadline {
                return Err(ClientError::Timeout);
            }
            match self.stream.read(&mut chunk) {
                // Clean close: bytes that never completed a response are
                // a malformed peer; an empty buffer is an I/O-level close.
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        ClientError::Io
                    } else {
                        ClientError::Malformed
                    })
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => return Err(ClientError::Io),
            }
        }
    }
}

enum ParseOutcome {
    Complete(HttpResponse, usize),
    Incomplete,
    Malformed,
}

/// Incremental HTTP/1.1 response parser over a byte buffer.
fn parse_response(buf: &[u8]) -> ParseOutcome {
    const HEAD_CAP: usize = 64 * 1024;
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4) else {
        return if buf.len() > HEAD_CAP {
            ParseOutcome::Malformed
        } else {
            ParseOutcome::Incomplete
        };
    };
    let Ok(head) = std::str::from_utf8(&buf[..head_end - 4]) else {
        return ParseOutcome::Malformed;
    };
    if !head.starts_with("HTTP/1.") {
        return ParseOutcome::Malformed;
    }
    let Some(status) = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .filter(|s| (100..=599).contains(s))
    else {
        return ParseOutcome::Malformed;
    };
    let mut content_length = 0usize;
    for line in head.lines().skip(1) {
        let Some((k, v)) = line.split_once(':') else {
            return ParseOutcome::Malformed;
        };
        if k.trim().eq_ignore_ascii_case("content-length") {
            match v.trim().parse::<usize>() {
                Ok(n) if n <= MAX_RESPONSE_BYTES => content_length = n,
                _ => return ParseOutcome::Malformed,
            }
        }
    }
    let total = head_end + content_length;
    if buf.len() < total {
        return ParseOutcome::Incomplete;
    }
    ParseOutcome::Complete(
        HttpResponse {
            status,
            head: head.to_string(),
            body: buf[head_end..total].to_vec(),
        },
        total,
    )
}

/// One request on a fresh connection.
///
/// # Errors
///
/// See [`ClientError`].
pub fn one_shot(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<HttpResponse, ClientError> {
    HttpClient::connect(addr, Duration::from_secs(5))?.request(method, path, headers, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn serve_bytes(bytes: &'static [u8]) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        thread::spawn(move || {
            if let Ok((mut sock, _)) = listener.accept() {
                // Drain the request head so the client write never blocks.
                let mut sink = [0u8; 4096];
                let _ = std::io::Read::read(&mut sock, &mut sink);
                let _ = sock.write_all(bytes);
            }
        });
        addr
    }

    #[test]
    fn round_trips_a_complete_response() {
        let addr = serve_bytes(
            b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 5\r\n\r\nhello",
        );
        let resp = one_shot(addr, "GET", "/x", &[], b"").expect("response");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hello");
        assert_eq!(resp.header("content-type"), Some("text/plain"));
        assert_eq!(resp.header("Content-Type"), Some("text/plain"));
        assert!(!resp.wants_close());
    }

    #[test]
    fn garbage_response_is_malformed_not_a_hang() {
        let addr = serve_bytes(b"not http at all\r\n\r\n");
        assert_eq!(
            one_shot(addr, "GET", "/x", &[], b"").unwrap_err(),
            ClientError::Malformed
        );
    }

    #[test]
    fn truncated_body_then_close_is_malformed() {
        let addr = serve_bytes(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort");
        assert_eq!(
            one_shot(addr, "GET", "/x", &[], b"").unwrap_err(),
            ClientError::Malformed
        );
    }

    #[test]
    fn immediate_close_is_an_io_error() {
        let addr = serve_bytes(b"");
        assert_eq!(
            one_shot(addr, "GET", "/x", &[], b"").unwrap_err(),
            ClientError::Io
        );
    }

    #[test]
    fn refused_connection_is_an_io_error() {
        // Bind then drop to find a (very likely) unused port.
        let addr = TcpListener::bind("127.0.0.1:0")
            .expect("bind")
            .local_addr()
            .expect("addr");
        assert_eq!(
            one_shot(addr, "GET", "/x", &[], b"").unwrap_err(),
            ClientError::Io
        );
    }

    #[test]
    fn silent_peer_times_out() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _keep = thread::spawn(move || {
            let _sock = listener.accept();
            thread::sleep(Duration::from_secs(2));
        });
        let mut client = HttpClient::connect(addr, Duration::from_secs(1))
            .expect("connect")
            .with_deadline(Duration::from_millis(200));
        assert_eq!(
            client.request("GET", "/x", &[], b"").unwrap_err(),
            ClientError::Timeout
        );
    }

    #[test]
    fn oversized_content_length_is_malformed() {
        let addr = serve_bytes(b"HTTP/1.1 200 OK\r\nContent-Length: 999999999999\r\n\r\n");
        assert_eq!(
            one_shot(addr, "GET", "/x", &[], b"").unwrap_err(),
            ClientError::Malformed
        );
    }

    #[test]
    fn connection_close_header_is_reported() {
        let addr =
            serve_bytes(b"HTTP/1.1 503 Service Unavailable\r\nConnection: close\r\nRetry-After: 2\r\nContent-Length: 0\r\n\r\n");
        let resp = one_shot(addr, "GET", "/x", &[], b"").expect("response");
        assert_eq!(resp.status, 503);
        assert!(resp.wants_close());
        assert_eq!(resp.header("retry-after"), Some("2"));
    }
}
