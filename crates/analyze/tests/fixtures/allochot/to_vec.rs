//! `.to_vec()` inside a parallel-region closure.
pub fn step(plan: &ExecPlan, x: &mut [f64]) {
    plan.map_mut(x, |_range, chunk| {
        let copy = chunk.to_vec();
        let _ = copy;
    });
}
