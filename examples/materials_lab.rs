//! A tour of the Sec. II materials models: grow a diamond film, trade
//! porosity against permittivity, and size copper wires.
//!
//! ```sh
//! cargo run --release --example materials_lab
//! ```

use thermal_scaffolding::materials::diamond::EtcModel;
use thermal_scaffolding::materials::dielectric::{
    maxwell_garnett, porosity_for_target, FREE_SPACE, SINGLE_CRYSTAL_DIAMOND,
};
use thermal_scaffolding::materials::{copper, silicon};
use thermal_scaffolding::units::{Length, RelativePermittivity};

fn main() {
    println!("-- nanocrystalline diamond (Eq. 1) --");
    let etc = EtcModel::calibrated();
    for grain_nm in [20.0, 80.0, 160.0, 350.0, 650.0, 1900.0] {
        let k = etc.in_plane_conductivity(Length::from_nanometers(grain_nm));
        println!(
            "  {grain_nm:>6.0} nm grains -> {:>7.1} W/m/K in-plane",
            k.get()
        );
    }
    println!(
        "  the 160 nm film beats porous ultra-low-k ILD (0.2 W/m/K) by {:.0}x",
        etc.in_plane_conductivity(Length::from_nanometers(160.0))
            .get()
            / 0.2
    );

    println!();
    println!("-- porous diamond permittivity (Eq. 2) --");
    for pct in [0, 10, 20, 30, 50] {
        let e = maxwell_garnett(SINGLE_CRYSTAL_DIAMOND, FREE_SPACE, f64::from(pct) / 100.0);
        println!("  {pct:>3} % air -> ε = {:.2}", e.get());
    }
    let f = porosity_for_target(
        SINGLE_CRYSTAL_DIAMOND,
        RelativePermittivity::THERMAL_DIELECTRIC,
    )
    .expect("ε = 4 is reachable");
    println!("  the design point ε = 4 needs {:.0} % porosity", f * 100.0);

    println!();
    println!("-- size-dependent copper --");
    for nm in [20.0, 50.0, 100.0, 215.0, 1000.0] {
        println!(
            "  {nm:>6.0} nm wires -> {:>5.0} W/m/K",
            copper::conductivity(Length::from_nanometers(nm)).get()
        );
    }

    println!();
    println!("-- thin-film silicon --");
    for nm in [50.0, 100.0, 500.0, 10_000.0] {
        println!(
            "  {nm:>7.0} nm film -> vertical {:>5.1}, lateral {:>5.1} W/m/K",
            silicon::vertical_conductivity(Length::from_nanometers(nm)).get(),
            silicon::lateral_conductivity(Length::from_nanometers(nm)).get()
        );
    }
}
