//! `POST /v1/jobs` body parsing.

use tsc_bench::json::Json;
use tsc_phydes::anneal::Schedule;

/// The optimization a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Parallel-tempered thermal-aware floorplanning (Sec. IIIB).
    FloorplanSa,
    /// The Fig. 12b dielectric-conductivity sweep.
    DielectricSweep,
    /// Sec. IIIA pillar placement.
    PillarPlace,
}

impl JobKind {
    /// Wire label, also used in metrics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::FloorplanSa => "floorplan_sa",
            Self::DielectricSweep => "dielectric_sweep",
            Self::PillarPlace => "pillar_place",
        }
    }

    /// Parses a wire label.
    #[must_use]
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "floorplan_sa" => Some(Self::FloorplanSa),
            "dielectric_sweep" => Some(Self::DielectricSweep),
            "pillar_place" => Some(Self::PillarPlace),
            _ => None,
        }
    }
}

/// A parsed, validated job submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// What to run.
    pub kind: JobKind,
    /// Design fixture name (`floorplan_sa`, `pillar_place`).
    pub design: String,
    /// Annealing schedule (`"quick"` or `"standard"`).
    pub schedule: Schedule,
    /// Tempering rungs (`floorplan_sa`).
    pub replicas: usize,
    /// RNG seed.
    pub seed: u64,
    /// Temperature weight in `[0, 1]` (`floorplan_sa`).
    pub temperature_weight: f64,
    /// HPWL budget relative to the identity placement (`floorplan_sa`).
    pub wirelength_budget: f64,
    /// Sweep points, W/m/K (`dielectric_sweep`).
    pub ks: Vec<f64>,
    /// Lateral mesh cells (`dielectric_sweep`, `pillar_place`).
    pub cells: usize,
    /// Pillar-block side in µm (`dielectric_sweep`).
    pub pillar_side_um: f64,
    /// Stack tier count (`pillar_place`).
    pub tiers: usize,
    /// Checkpoint to resume from, if any.
    pub resume: Option<Json>,
}

fn schedule_from(label: &str) -> Result<Schedule, String> {
    match label {
        "quick" => Ok(Schedule::quick()),
        "standard" => Ok(Schedule::standard()),
        other => Err(format!(
            "unknown schedule {other:?} (expected \"quick\" or \"standard\")"
        )),
    }
}

fn opt_usize(body: &Json, key: &str, default: usize) -> Result<usize, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

fn opt_f64(body: &Json, key: &str, default: f64) -> Result<f64, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("field {key:?} must be a number")),
    }
}

impl JobSpec {
    /// Parses a submission body. Unknown kinds, malformed fields and
    /// out-of-range parameters are rejected with a message suitable for
    /// a 400 response.
    ///
    /// # Errors
    ///
    /// Returns the validation message.
    pub fn parse(body: &Json) -> Result<Self, String> {
        let kind_label = body
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| "field \"kind\" is required".to_string())?;
        let kind =
            JobKind::parse(kind_label).ok_or_else(|| format!("unknown job kind {kind_label:?}"))?;
        let design = body
            .get("design")
            .and_then(Json::as_str)
            .unwrap_or("gemmini")
            .to_string();
        let schedule = schedule_from(
            body.get("schedule")
                .and_then(Json::as_str)
                .unwrap_or("quick"),
        )?;
        let replicas = opt_usize(body, "replicas", 4)?;
        if !(1..=16).contains(&replicas) {
            return Err("field \"replicas\" must be within 1..=16".to_string());
        }
        let seed = match body.get("seed") {
            None => 7,
            Some(v) => v
                .as_f64()
                .filter(|s| s.fract().abs() < f64::EPSILON && *s >= 0.0 && *s < 9e15)
                .map(|s| s as u64)
                .ok_or_else(|| "field \"seed\" must be a non-negative integer".to_string())?,
        };
        let temperature_weight = opt_f64(body, "temperature_weight", 0.3)?;
        if !(0.0..=1.0).contains(&temperature_weight) {
            return Err("field \"temperature_weight\" must be within [0, 1]".to_string());
        }
        let wirelength_budget = opt_f64(body, "wirelength_budget", 1.2)?;
        if !(1.0..=10.0).contains(&wirelength_budget) {
            return Err("field \"wirelength_budget\" must be within [1, 10]".to_string());
        }
        let ks = match body.get("ks") {
            None => vec![5.0, 50.0, 200.0, 500.0],
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| "field \"ks\" must be an array of numbers".to_string())?;
                if items.is_empty() || items.len() > 64 {
                    return Err("field \"ks\" must hold 1..=64 points".to_string());
                }
                items
                    .iter()
                    .map(|k| {
                        k.as_f64()
                            .filter(|k| k.is_finite() && *k > 0.0)
                            .ok_or_else(|| "sweep points must be positive numbers".to_string())
                    })
                    .collect::<Result<Vec<f64>, String>>()?
            }
        };
        let cells = opt_usize(body, "cells", 16)?;
        if !(8..=64).contains(&cells) {
            return Err("field \"cells\" must be within 8..=64".to_string());
        }
        let pillar_side_um = opt_f64(body, "pillar_side_um", 1.0)?;
        if !pillar_side_um.is_finite() || pillar_side_um <= 0.0 || pillar_side_um > 10.0 {
            return Err("field \"pillar_side_um\" must be within (0, 10]".to_string());
        }
        let tiers = opt_usize(body, "tiers", 8)?;
        if !(2..=16).contains(&tiers) {
            return Err("field \"tiers\" must be within 2..=16".to_string());
        }
        let resume = body.get("resume").cloned();
        if let Some(cp) = &resume {
            let cp_kind = cp.get("kind").and_then(Json::as_str);
            if cp_kind != Some(kind.label()) {
                return Err(format!(
                    "resume checkpoint kind {cp_kind:?} does not match job kind {:?}",
                    kind.label()
                ));
            }
        }
        Ok(Self {
            kind,
            design,
            schedule,
            replicas,
            seed,
            temperature_weight,
            wirelength_budget,
            ks,
            cells,
            pillar_side_um,
            tiers,
            resume,
        })
    }

    /// Summary fields echoed in status responses.
    #[must_use]
    pub fn summary(&self) -> Json {
        Json::object()
            .field("kind", self.kind.label())
            .field("design", self.design.as_str())
            .field("seed", self.seed as f64)
            .field("replicas", self.replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_bench::json::parse;

    #[test]
    fn parses_minimal_floorplan_spec_with_defaults() {
        let body = parse(r#"{"kind": "floorplan_sa"}"#).expect("json");
        let spec = JobSpec::parse(&body).expect("spec");
        assert_eq!(spec.kind, JobKind::FloorplanSa);
        assert_eq!(spec.design, "gemmini");
        assert_eq!(spec.replicas, 4);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.schedule, Schedule::quick());
    }

    #[test]
    fn rejects_bad_kinds_and_ranges() {
        for bad in [
            r#"{"kind": "mine_bitcoin"}"#,
            r#"{"kind": "floorplan_sa", "replicas": 0}"#,
            r#"{"kind": "floorplan_sa", "schedule": "glacial"}"#,
            r#"{"kind": "dielectric_sweep", "ks": []}"#,
            r#"{"kind": "dielectric_sweep", "ks": [-5.0]}"#,
            r#"{"kind": "pillar_place", "tiers": 99}"#,
            r#"{"kind": "floorplan_sa", "temperature_weight": 1.5}"#,
        ] {
            let body = parse(bad).expect("json");
            assert!(JobSpec::parse(&body).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn resume_kind_must_match() {
        let body = parse(r#"{"kind": "floorplan_sa", "resume": {"kind": "dielectric_sweep"}}"#)
            .expect("json");
        assert!(JobSpec::parse(&body).is_err());
    }
}
