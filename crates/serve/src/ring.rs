//! Consistent-hash ring for shard routing.
//!
//! Each backend contributes `replicas` virtual nodes — FNV-1a points of
//! `"{addr}#{replica}"` — sorted on a ring of `u64` hash space.  A key
//! routes to the owner of the first point at or after it (wrapping), so
//! adding one shard to an `N`-shard ring remaps only the key ranges the
//! new shard's points capture, about `1/(N+1)` of the space, and every
//! other key keeps its shard and therefore its warm `SolveContext`s.
//! Unhealthy shards are skipped by walking forward to the next point
//! owned by a healthy one, which spreads a dead shard's keys across the
//! survivors instead of dumping them onto a single neighbour.

use std::collections::{HashMap, VecDeque};

use crate::api::fnv1a;

/// Default virtual nodes per shard: enough that the largest shard's
/// share stays within a few ten percent of fair for small `N`.
pub const DEFAULT_REPLICAS: usize = 64;

/// SplitMix64 finalizer over the FNV point.  FNV-1a on the short,
/// near-identical `"{addr}#{replica}"` strings concentrates its entropy
/// in the low bits, which clusters raw points on the ring (one shard
/// was measured owning ~60 % of a 4-shard keyspace); the finalizer's
/// avalanche spreads them uniformly.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An immutable consistent-hash ring over shard indices `0..n`.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard index)`, sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Build a ring with `replicas` virtual nodes per shard.  Shard
    /// identity is its address string, so rebuilding with the same
    /// backends yields the same ring.
    #[must_use]
    pub fn build(backends: &[String], replicas: usize) -> HashRing {
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(backends.len() * replicas);
        for (shard, addr) in backends.iter().enumerate() {
            for replica in 0..replicas {
                let point = mix(fnv1a(format!("{addr}#{replica}").as_bytes()));
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            shards: backends.len(),
        }
    }

    /// Number of shards the ring was built over.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`, skipping shards for which `healthy`
    /// returns false.  `None` when the ring is empty or no shard is
    /// healthy.
    #[must_use]
    pub fn route(&self, key: u64, healthy: impl Fn(usize) -> bool) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|(p, _)| *p < key);
        // Walk at most one full revolution, wrapping at the end.
        for offset in 0..self.points.len() {
            let (_, shard) = self.points[(start + offset) % self.points.len()];
            if healthy(shard) {
                return Some(shard);
            }
        }
        None
    }

    /// Like [`HashRing::route`], but skipping `exclude` as well — used to
    /// pick a *different* shard for a retry after `exclude` failed.
    #[must_use]
    pub fn route_excluding(
        &self,
        key: u64,
        exclude: usize,
        healthy: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        self.route(key, |shard| shard != exclude && healthy(shard))
    }
}

/// Consistent hashing **with bounded loads** (after Mirrokni, Thorup &
/// Zadimoghaddam): a sticky key → shard table layered over a
/// [`HashRing`] that caps every shard's share of *distinct keys* at
/// `ceil(c · keys / healthy_shards)` with `c = 1.25`.
///
/// Plain consistent hashing balances the *keyspace*, not a given key
/// set: a dozen hot operator fingerprints routinely land 6/4/1/1 on a
/// four-shard ring, and the heavy shard's context pool thrashes while
/// its neighbours idle.  The bounded table keeps a key on its ring-home
/// shard when that shard is under the cap and walks the ring forward
/// otherwise, then pins the choice so the key's warm contexts stay
/// put.  Topology changes stay cheap: an ejected shard's keys are
/// reassigned (among the survivors, still bounded) on their next
/// arrival, and keys never migrate merely because another key was
/// added.
///
/// The table is capacity-bounded and evicted CLOCK-wise (a touched
/// entry gets a second chance), so an adversarial stream of one-shot
/// keys cannot grow it without bound — and at `capacity` well above the
/// hot working set, recurring keys are effectively never evicted.
#[derive(Debug)]
pub struct BoundedTable {
    /// key → (shard, touched-since-last-sweep).
    assigned: HashMap<u64, (usize, bool)>,
    /// Insertion order for CLOCK eviction.
    order: VecDeque<u64>,
    /// Distinct assigned keys per shard.
    per_shard: Vec<usize>,
    capacity: usize,
    /// The `c` in `ceil(c · keys / shards)`.
    expansion: f64,
}

/// Default expansion factor: each shard may hold at most 25 % more than
/// its fair share of distinct keys.
pub const DEFAULT_EXPANSION: f64 = 1.25;

/// Default table capacity — far above any realistic hot working set.
pub const DEFAULT_TABLE_CAPACITY: usize = 4096;

impl BoundedTable {
    /// An empty table over `shards` backends.
    #[must_use]
    pub fn new(shards: usize, capacity: usize, expansion: f64) -> BoundedTable {
        BoundedTable {
            assigned: HashMap::new(),
            order: VecDeque::new(),
            per_shard: vec![0; shards],
            capacity: capacity.max(1),
            expansion: expansion.max(1.0),
        }
    }

    /// Distinct keys currently assigned to `shard`.
    #[must_use]
    pub fn keys_on(&self, shard: usize) -> usize {
        self.per_shard.get(shard).copied().unwrap_or(0)
    }

    /// Route `key`, keeping it on its pinned shard while that shard is
    /// healthy, and otherwise (re)assigning it to the first healthy
    /// shard at or after its ring point that is under the load bound —
    /// falling back to the plain ring choice when every healthy shard
    /// is at the bound.  Returns `(shard, overflowed)` where
    /// `overflowed` is true when the bound pushed the key off its
    /// ring-home shard; `None` when no shard is healthy.
    pub fn route(
        &mut self,
        ring: &HashRing,
        key: u64,
        healthy: impl Fn(usize) -> bool,
    ) -> Option<(usize, bool)> {
        if let Some(&(shard, _)) = self.assigned.get(&key) {
            if healthy(shard) {
                if let Some(entry) = self.assigned.get_mut(&key) {
                    entry.1 = true;
                }
                return Some((shard, false));
            }
            self.unassign(key);
        }

        let healthy_count = (0..self.per_shard.len()).filter(|&s| healthy(s)).count();
        if healthy_count == 0 {
            return None;
        }
        let bound = ((self.expansion * (self.assigned.len() + 1) as f64 / healthy_count as f64)
            .ceil() as usize)
            .max(1);
        let home = ring.route(key, &healthy)?;
        let shard = ring
            .route(key, |s| healthy(s) && self.per_shard[s] < bound)
            .unwrap_or(home);
        self.assign(key, shard);
        Some((shard, shard != home))
    }

    fn assign(&mut self, key: u64, shard: usize) {
        // CLOCK eviction: pop untouched entries from the front, give
        // touched ones a second chance.  Bounded by the queue length so
        // an all-touched table still evicts.
        let mut sweeps = self.order.len();
        while self.assigned.len() >= self.capacity && sweeps > 0 {
            sweeps -= 1;
            let Some(old) = self.order.pop_front() else {
                break;
            };
            match self.assigned.get_mut(&old) {
                Some((_, touched)) if *touched => {
                    *touched = false;
                    self.order.push_back(old);
                }
                Some(_) => self.unassign(old),
                None => {} // stale entry for an already-removed key
            }
        }
        if self.assigned.insert(key, (shard, false)).is_none() {
            self.order.push_back(key);
            self.per_shard[shard] += 1;
        }
    }

    fn unassign(&mut self, key: u64) {
        if let Some((shard, _)) = self.assigned.remove(&key) {
            self.per_shard[shard] = self.per_shard[shard].saturating_sub(1);
        }
        // The stale `order` entry (if any) is skipped lazily by
        // `assign`'s sweep when its key no longer resolves.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_rng::Rng64;

    fn backends(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::build(&backends(4), DEFAULT_REPLICAS);
        let mut rng = Rng64::seed_from_u64(0x41B5);
        for _ in 0..1000 {
            let key = rng.next_u64();
            let a = ring.route(key, |_| true).expect("non-empty ring");
            let b = ring.route(key, |_| true).expect("non-empty ring");
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn empty_and_all_unhealthy_rings_route_nowhere() {
        let empty = HashRing::build(&[], DEFAULT_REPLICAS);
        assert_eq!(empty.route(7, |_| true), None);
        let ring = HashRing::build(&backends(3), DEFAULT_REPLICAS);
        assert_eq!(ring.route(7, |_| false), None);
    }

    #[test]
    fn unhealthy_shards_spread_keys_across_survivors() {
        let ring = HashRing::build(&backends(4), DEFAULT_REPLICAS);
        let mut rng = Rng64::seed_from_u64(0xD0A1);
        let mut moved: [u64; 4] = [0; 4];
        let mut total = 0u64;
        for _ in 0..4000 {
            let key = rng.next_u64();
            let owner = ring.route(key, |_| true).expect("healthy ring");
            if owner != 0 {
                continue;
            }
            total += 1;
            let fallback = ring.route(key, |s| s != 0).expect("survivors");
            assert_ne!(fallback, 0);
            moved[fallback] += 1;
        }
        // Shard 0's keys should land on all three survivors, not one.
        assert!(total > 100, "sample captured {total} shard-0 keys");
        for (shard, count) in moved.iter().enumerate().skip(1) {
            assert!(
                *count > 0,
                "shard {shard} inherited none of shard 0's keys: {moved:?}"
            );
        }
    }

    #[test]
    fn adding_a_shard_remaps_about_one_over_n_plus_one() {
        // Property-test over seeded keys: growing the ring from N to N+1
        // shards must remap only the share the new shard captures —
        // about 1/(N+1) — and never move a key between two old shards.
        for n in [2usize, 4, 8] {
            let before = HashRing::build(&backends(n), DEFAULT_REPLICAS);
            let after = HashRing::build(&backends(n + 1), DEFAULT_REPLICAS);
            let mut rng = Rng64::seed_from_u64(0x5EED ^ n as u64);
            let samples = 8000u64;
            let mut remapped = 0u64;
            for _ in 0..samples {
                let key = rng.next_u64();
                let old = before.route(key, |_| true).expect("old ring");
                let new = after.route(key, |_| true).expect("new ring");
                if old != new {
                    assert_eq!(
                        new, n,
                        "a remapped key must land on the new shard, not shuffle \
                         between old shards (key moved {old} -> {new})"
                    );
                    remapped += 1;
                }
            }
            let fraction = remapped as f64 / samples as f64;
            let fair = 1.0 / (n as f64 + 1.0);
            assert!(
                fraction < 2.5 * fair,
                "N={n}: remapped {fraction:.3}, fair share {fair:.3}"
            );
            assert!(
                fraction > 0.2 * fair,
                "N={n}: remapped {fraction:.3} — suspiciously little; \
                 the new shard is not taking its share"
            );
        }
    }

    #[test]
    fn bounded_table_caps_distinct_keys_per_shard() {
        // Property-test: for any seeded key set, no shard ever holds
        // more than ceil(1.25 · keys / shards) distinct keys — even
        // when plain ring routing would pile most keys onto one shard.
        let ring = HashRing::build(&backends(4), DEFAULT_REPLICAS);
        let mut rng = Rng64::seed_from_u64(0xB07D);
        for trial in 0..50 {
            let n_keys = 4 + (trial % 29);
            let mut table = BoundedTable::new(4, DEFAULT_TABLE_CAPACITY, DEFAULT_EXPANSION);
            let keys: Vec<u64> = (0..n_keys).map(|_| rng.next_u64()).collect();
            for &key in &keys {
                table.route(&ring, key, |_| true).expect("healthy ring");
            }
            let bound = (DEFAULT_EXPANSION * n_keys as f64 / 4.0).ceil() as usize;
            for shard in 0..4 {
                assert!(
                    table.keys_on(shard) <= bound,
                    "trial {trial}: shard {shard} holds {} of {n_keys} keys, bound {bound}",
                    table.keys_on(shard)
                );
            }
        }
    }

    #[test]
    fn bounded_table_is_sticky_across_replays() {
        let ring = HashRing::build(&backends(4), DEFAULT_REPLICAS);
        let mut table = BoundedTable::new(4, DEFAULT_TABLE_CAPACITY, DEFAULT_EXPANSION);
        let mut rng = Rng64::seed_from_u64(0x57CC);
        let keys: Vec<u64> = (0..24).map(|_| rng.next_u64()).collect();
        let first: Vec<usize> = keys
            .iter()
            .map(|&k| table.route(&ring, k, |_| true).expect("ring").0)
            .collect();
        // Replaying the keys (in any interleaving) never moves one.
        for round in 0..3 {
            for (i, &key) in keys.iter().enumerate().skip(round % 2) {
                let (shard, overflowed) = table.route(&ring, key, |_| true).expect("ring");
                assert_eq!(shard, first[i], "key {i} migrated on replay");
                assert!(!overflowed, "a pinned key must not count as overflow");
            }
        }
    }

    #[test]
    fn bounded_table_reassigns_ejected_shards_keys_within_bound() {
        let ring = HashRing::build(&backends(4), DEFAULT_REPLICAS);
        let mut table = BoundedTable::new(4, DEFAULT_TABLE_CAPACITY, DEFAULT_EXPANSION);
        let mut rng = Rng64::seed_from_u64(0xE1EC);
        let keys: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        let before: Vec<usize> = keys
            .iter()
            .map(|&k| table.route(&ring, k, |_| true).expect("ring").0)
            .collect();
        assert!(before.contains(&0), "seed must place some keys on shard 0");

        // Eject shard 0: its keys reassign among survivors; keys on
        // healthy shards stay put.
        let after: Vec<usize> = keys
            .iter()
            .map(|&k| table.route(&ring, k, |s| s != 0).expect("survivors").0)
            .collect();
        for (i, (&old, &new)) in before.iter().zip(&after).enumerate() {
            assert_ne!(new, 0, "key {i} still routed to the ejected shard");
            if old != 0 {
                assert_eq!(old, new, "key {i} moved despite its shard being healthy");
            }
        }
        let bound = (DEFAULT_EXPANSION * keys.len() as f64 / 3.0).ceil() as usize;
        for shard in 1..4 {
            assert!(table.keys_on(shard) <= bound, "survivor {shard} over bound");
        }

        // Readmission: already-reassigned keys keep their new homes
        // (stability beats strict ring affinity).
        for (i, &key) in keys.iter().enumerate() {
            let (shard, _) = table.route(&ring, key, |_| true).expect("ring");
            assert_eq!(shard, after[i], "key {i} flapped back after readmission");
        }
    }

    #[test]
    fn bounded_table_capacity_evicts_one_shot_keys_first() {
        let ring = HashRing::build(&backends(2), DEFAULT_REPLICAS);
        let mut table = BoundedTable::new(2, 8, DEFAULT_EXPANSION);
        let mut rng = Rng64::seed_from_u64(0xCAFE);
        // Pin four hot keys and touch them (second route marks them).
        let hot: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let homes: Vec<usize> = hot
            .iter()
            .map(|&k| table.route(&ring, k, |_| true).expect("ring").0)
            .collect();
        for &k in &hot {
            table.route(&ring, k, |_| true);
        }
        // Flood with one-shot keys well past capacity, re-touching the
        // hot set as a real workload would.
        for _ in 0..100 {
            table.route(&ring, rng.next_u64(), |_| true);
            for &k in &hot {
                table.route(&ring, k, |_| true);
            }
        }
        assert!(table.assigned.len() <= 8, "table grew past capacity");
        for (i, &k) in hot.iter().enumerate() {
            assert_eq!(
                table.assigned.get(&k).map(|&(s, _)| s),
                Some(homes[i]),
                "hot key {i} was evicted or migrated under one-shot flood"
            );
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = HashRing::build(&backends(4), DEFAULT_REPLICAS);
        let mut rng = Rng64::seed_from_u64(0xBA1A);
        let mut counts = [0u64; 4];
        let samples = 8000;
        for _ in 0..samples {
            counts[ring.route(rng.next_u64(), |_| true).expect("ring")] += 1;
        }
        for (shard, count) in counts.iter().enumerate() {
            let share = *count as f64 / f64::from(samples);
            assert!(
                (0.10..0.45).contains(&share),
                "shard {shard} owns {share:.3} of the keyspace: {counts:?}"
            );
        }
    }
}
