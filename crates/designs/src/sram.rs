//! Analytical SRAM area/energy model — the FinCACTI \[33\] substitute.
//!
//! The flows need three things from a cache model: macro footprints for
//! floorplanning, power density for the thermal map, and bandwidth-ish
//! energy numbers for sanity checks. A 7 nm-class bitcell with array
//! overheads reproduces those within the fidelity the thermal study
//! needs.

use tsc_units::{Area, Frequency, HeatFlux, Length, Power, Ratio};

/// 7 nm-class 6T SRAM bitcell area (high-density cell ≈ 0.027 µm²).
pub const BITCELL_AREA_UM2: f64 = 0.027;

/// Array efficiency: periphery (decoders, sense amps, ECC) roughly
/// doubles the bitcell footprint at the macro level.
pub const ARRAY_EFFICIENCY: f64 = 0.5;

/// Read energy per bit at 7 nm (≈ 5 fJ/bit including periphery).
pub const READ_ENERGY_PER_BIT_J: f64 = 5.0e-15;

/// Leakage per bit at 7 nm, 125 °C corner (≈ 15 pW/bit).
pub const LEAKAGE_PER_BIT_W: f64 = 15.0e-12;

/// An SRAM macro sized from a capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramMacro {
    /// Capacity in bytes.
    pub bytes: usize,
}

impl SramMacro {
    /// Creates a macro of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    #[must_use]
    pub fn with_capacity(bytes: usize) -> Self {
        assert!(bytes > 0, "capacity must be positive");
        Self { bytes }
    }

    /// Macro area from bitcell area and array efficiency.
    #[must_use]
    pub fn area(&self) -> Area {
        let bits = self.bytes as f64 * 8.0;
        Area::from_square_micrometers(bits * BITCELL_AREA_UM2 / ARRAY_EFFICIENCY)
    }

    /// Side of a square macro of this capacity.
    #[must_use]
    pub fn square_side(&self) -> Length {
        self.area().side_of_square()
    }

    /// Leakage power of the macro.
    #[must_use]
    pub fn leakage(&self) -> Power {
        Power::from_watts(self.bytes as f64 * 8.0 * LEAKAGE_PER_BIT_W)
    }

    /// Dynamic power at an access rate of `accesses_per_cycle` words of
    /// `word_bits` at `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `word_bits` is zero.
    #[must_use]
    pub fn dynamic_power(
        &self,
        accesses_per_cycle: f64,
        word_bits: usize,
        clock: Frequency,
    ) -> Power {
        assert!(word_bits > 0, "word width must be positive");
        let joules_per_cycle = accesses_per_cycle * word_bits as f64 * READ_ENERGY_PER_BIT_J;
        Power::from_watts(joules_per_cycle * clock.get())
    }

    /// Average power density of the macro under the given activity.
    #[must_use]
    pub fn power_density(
        &self,
        accesses_per_cycle: f64,
        word_bits: usize,
        clock: Frequency,
    ) -> HeatFlux {
        let total = self.leakage() + self.dynamic_power(accesses_per_cycle, word_bits, clock);
        total / self.area()
    }

    /// How many macros of `self`'s size tile a total capacity (rounded
    /// up).
    #[must_use]
    pub fn count_for_total(&self, total_bytes: usize) -> usize {
        total_bytes.div_ceil(self.bytes)
    }
}

/// Sanity ratio used by tests and the LLC builders: density in
/// MB per mm².
#[must_use]
pub fn megabytes_per_mm2() -> f64 {
    let one_mb = SramMacro::with_capacity(1 << 20);
    1.0 / one_mb.area().square_millimeters()
}

/// Utilization-to-activity helper: a cache at `utilization` of its peak
/// bandwidth (one access/cycle) — used when painting LLC power.
#[must_use]
pub fn llc_activity(utilization: Ratio) -> f64 {
    utilization.fraction()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_megabyte_llc_fits_in_a_millimeter_die() {
        // The Gemmini LLC (4 MB) must fit a ~1 mm² tier — the premise of
        // the interleaved-LLC design.
        let llc = SramMacro::with_capacity(4 << 20);
        let a = llc.area().square_millimeters();
        assert!((1.0..2.5).contains(&a), "4 MB LLC = {a} mm²");
    }

    #[test]
    fn density_is_seven_nanometer_class() {
        let d = megabytes_per_mm2();
        assert!(
            (1.5..5.0).contains(&d),
            "7nm-class SRAM ≈ 2-3 MB/mm², got {d}"
        );
    }

    #[test]
    fn area_scales_linearly_with_capacity() {
        let a1 = SramMacro::with_capacity(1 << 20).area().square_meters();
        let a4 = SramMacro::with_capacity(4 << 20).area().square_meters();
        assert!((a4 / a1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn power_density_in_sram_class_range() {
        // A 3D LLC slice serving the ultra-dense bandwidth the paper
        // motivates (several concurrent bank accesses per cycle) lands
        // in the Fig. 8 SRAM band, far below logic.
        let m = SramMacro::with_capacity(256 << 10);
        let d = m.power_density(4.0, 512, Frequency::from_gigahertz(1.0));
        let w = d.watts_per_square_cm();
        assert!((5.0..50.0).contains(&w), "{w} W/cm²");
    }

    #[test]
    fn leakage_grows_with_capacity() {
        let small = SramMacro::with_capacity(16 << 10).leakage();
        let big = SramMacro::with_capacity(4 << 20).leakage();
        assert!(big.watts() > 100.0 * small.watts());
    }

    #[test]
    fn tiling_rounds_up() {
        let m = SramMacro::with_capacity(256 << 10);
        assert_eq!(m.count_for_total(1 << 20), 4);
        assert_eq!(m.count_for_total((1 << 20) + 1), 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SramMacro::with_capacity(0);
    }
}
