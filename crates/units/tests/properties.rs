//! Randomized property tests for the unit algebra.
//!
//! Each test fuzzes its invariant over a deterministic [`Rng64`] stream
//! (seeded per test), so failures reproduce exactly; this replaces the
//! former proptest dependency, which cannot be fetched in the hermetic
//! build environment.

use tsc_rng::Rng64;
use tsc_units::{
    ops, Area, AreaThermalResistance, HeatFlux, HeatTransferCoefficient, Length, Power, Ratio,
    TempDelta, Temperature, ThermalConductivity,
};

const CASES: usize = 256;

/// Log-uniform positive magnitude in [1e-12, 1e12] — the range where
/// f64 round-off cannot dominate the assertions below.
fn finite_positive(rng: &mut Rng64) -> f64 {
    10f64.powf(rng.gen_range_f64(-12.0..12.0))
}

#[test]
fn length_conversions_round_trip() {
    let mut rng = Rng64::seed_from_u64(0x1001);
    for _ in 0..CASES {
        let nm = finite_positive(&mut rng);
        let l = Length::from_nanometers(nm);
        assert!((l.nanometers() - nm).abs() <= nm * 1e-12);
        assert!(
            (Length::from_micrometers(l.micrometers()).meters() - l.meters()).abs()
                <= l.meters() * 1e-12
        );
    }
}

#[test]
fn area_of_square_inverts_side() {
    let mut rng = Rng64::seed_from_u64(0x1002);
    for _ in 0..CASES {
        let um = rng.gen_range_f64(1e-3..1e4);
        let side = Length::from_micrometers(um);
        let recovered = side.squared().side_of_square();
        assert!((recovered.micrometers() - um).abs() <= um * 1e-9);
    }
}

#[test]
fn temperature_offset_cancels() {
    let mut rng = Rng64::seed_from_u64(0x1003);
    for _ in 0..CASES {
        let c = rng.gen_range_f64(-200.0..1000.0);
        let dk = rng.gen_range_f64(-500.0..500.0);
        let t = Temperature::from_celsius(c);
        let d = TempDelta::new(dk);
        let back = (t + d) - d;
        assert!(back.approx_eq(t, 1e-9));
    }
}

#[test]
fn power_sum_is_commutative() {
    let mut rng = Rng64::seed_from_u64(0x1004);
    for _ in 0..CASES {
        let w1 = finite_positive(&mut rng);
        let w2 = finite_positive(&mut rng);
        let a = Power::from_watts(w1);
        let b = Power::from_watts(w2);
        assert!((a + b).approx_eq(b + a, 1e-9 * (w1 + w2)));
    }
}

#[test]
fn flux_area_power_triangle() {
    let mut rng = Rng64::seed_from_u64(0x1005);
    for _ in 0..CASES {
        let q = rng.gen_range_f64(1e-3..1e4);
        let cm2 = rng.gen_range_f64(1e-4..1e2);
        let flux = HeatFlux::from_watts_per_square_cm(q);
        let area = Area::from_square_cm(cm2);
        let p = flux * area;
        let q_back = p / area;
        assert!((q_back.watts_per_square_cm() - q).abs() <= q * 1e-12);
    }
}

#[test]
fn mixture_rules_are_bounded() {
    let mut rng = Rng64::seed_from_u64(0x1006);
    for _ in 0..CASES {
        let k_hi = rng.gen_range_f64(1.0..1000.0);
        let k_lo = rng.gen_range_f64(0.01..1.0);
        let pct = rng.gen_range_f64(0.0..100.0);
        let hi = ThermalConductivity::new(k_hi);
        let lo = ThermalConductivity::new(k_lo);
        let f = Ratio::from_percent(pct);
        let par = ops::parallel_rule(hi, lo, f);
        let ser = ops::series_rule(hi, lo, f);
        // Both bounded by constituents; Voigt >= Reuss always.
        assert!(par.get() <= k_hi.max(k_lo) + 1e-9);
        assert!(ser.get() >= k_hi.min(k_lo) - 1e-9);
        assert!(par.get() + 1e-12 >= ser.get());
    }
}

#[test]
fn stack_temperature_monotone_in_tiers() {
    let mut rng = Rng64::seed_from_u64(0x1007);
    for _ in 0..CASES {
        let n = rng.gen_range(1..20);
        let q = rng.gen_range_f64(1.0..200.0);
        let r = rng.gen_range_f64(1e-8..1e-5);
        let flux = HeatFlux::from_watts_per_square_cm(q);
        let res = AreaThermalResistance::new(r);
        let h = HeatTransferCoefficient::TWO_PHASE;
        let amb = Temperature::from_celsius(100.0);
        let t_n = ops::stack_junction_temperature(n, flux, res, h, amb);
        let t_n1 = ops::stack_junction_temperature(n + 1, flux, res, h, amb);
        assert!(t_n1 > t_n, "adding a tier must heat the stack");
        assert!(t_n > amb, "junction must sit above ambient");
    }
}

#[test]
fn stack_temperature_monotone_in_resistance() {
    let mut rng = Rng64::seed_from_u64(0x1008);
    for _ in 0..CASES {
        let q = rng.gen_range_f64(1.0..200.0);
        let r1 = rng.gen_range_f64(1e-8..1e-5);
        let factor = rng.gen_range_f64(1.01..100.0);
        let flux = HeatFlux::from_watts_per_square_cm(q);
        let h = HeatTransferCoefficient::TWO_PHASE;
        let amb = Temperature::from_celsius(100.0);
        let t_lo = ops::stack_junction_temperature(6, flux, AreaThermalResistance::new(r1), h, amb);
        let t_hi = ops::stack_junction_temperature(
            6,
            flux,
            AreaThermalResistance::new(r1 * factor),
            h,
            amb,
        );
        assert!(t_hi > t_lo, "higher tier resistance must run hotter");
    }
}

#[test]
fn ladder_fraction_is_proper() {
    let mut rng = Rng64::seed_from_u64(0x1009);
    for _ in 0..CASES {
        let n = rng.gen_range(1..16);
        let q = rng.gen_range_f64(1.0..500.0);
        let r = rng.gen_range_f64(1e-9..1e-4);
        let f = ops::ladder_fraction_of_rise(
            n,
            HeatFlux::from_watts_per_square_cm(q),
            AreaThermalResistance::new(r),
            HeatTransferCoefficient::MICROFLUIDIC,
        );
        assert!(f.is_proper());
    }
}

#[test]
fn ratio_complement_involutes() {
    let mut rng = Rng64::seed_from_u64(0x100a);
    for _ in 0..CASES {
        let pct = rng.gen_range_f64(0.0..100.0);
        let r = Ratio::from_percent(pct);
        assert!(r.complement().complement().approx_eq(r, 1e-12));
    }
}
