//! Material property models for thermal scaffolding (Sec. II of the paper).
//!
//! Four physical models plus a small material database:
//!
//! * [`diamond`] — the effective-thermal-conductivity (ETC) model of Eq. 1:
//!   in-plane conductivity of low-temperature-grown nanocrystalline diamond
//!   as a function of grain size, calibrated to the experimental films of
//!   Malakoutian et al. (350 nm, 650 nm and 1.9 µm growths), and the
//!   through-plane thin-film correction;
//! * [`dielectric`] — the Maxwell-Garnett mixing rule of Eq. 2 for the
//!   permittivity of porous diamond, and the grain-size dielectric
//!   suppression observed in the literature (Fig. 5);
//! * [`copper`] — size-dependent thermal conductivity of damascene copper
//!   wires (105 W/m/K for narrow lower-level wires up to 242 W/m/K for wide
//!   upper-level wires, Fig. 1/Fig. 7);
//! * [`silicon`] — thickness-dependent thermal conductivity of silicon
//!   films (30/65 W/m/K vertical/lateral at 100 nm, 180 W/m/K at 10 µm,
//!   Fig. 1).
//!
//! [`Material`] bundles anisotropic conductivity with permittivity, and
//! [`MaterialDb`] holds the standard palette used by the mesh builders.
//!
//! # Example: the "500×" headline of Fig. 4
//!
//! ```
//! use tsc_materials::{diamond::EtcModel, ULTRA_LOW_K_ILD};
//! use tsc_units::Length;
//!
//! let etc = EtcModel::calibrated();
//! let k_film = etc.in_plane_conductivity(Length::from_nanometers(160.0));
//! let gain = k_film / ULTRA_LOW_K_ILD.conductivity.lateral;
//! assert!(gain > 500.0, "thermal dielectric must beat ultra-low-k by >500x");
//! ```

// No crate outside tsc-thermal may contain `unsafe` (enforced
// statically here and by `cargo run -p tsc-analyze`).
#![forbid(unsafe_code)]

pub mod copper;
pub mod diamond;
pub mod dielectric;
pub mod silicon;

mod database;

pub use database::{
    Anisotropic, Material, MaterialDb, AIR, BULK_SILICON, COPPER_LOWER, COPPER_UPPER,
    DEVICE_SILICON_THIN, THERMAL_DIELECTRIC_CONSERVATIVE, THERMAL_DIELECTRIC_DESIGN,
    THERMAL_DIELECTRIC_OPTIMISTIC, ULTRA_LOW_K_ILD,
};
