//! Chip-scale steady-state thermal simulation — the PACT/Celsius substitute.
//!
//! Solves the anisotropic steady-state heat equation `∇·(k∇T) + q = 0` on a
//! structured finite-volume mesh:
//!
//! * uniform lateral resolution (`nx × ny` cells of pitch `dx × dy`),
//!   non-uniform vertical resolution so slab interfaces of a
//!   [`tsc_geometry::LayerStack`] always coincide with cell faces;
//! * per-cell anisotropic conductivity (vertical `kz`, lateral `kxy`) —
//!   this is where thermal-dielectric layers and pillar columns enter;
//! * Robin (convective) boundaries on the bottom and/or top face modelling
//!   the attached heatsink (`G = h·A` to ambient); all side walls
//!   adiabatic, matching the PACT default used in the paper;
//! * two independent solvers: Jacobi-preconditioned conjugate gradients
//!   ([`CgSolver`], the workhorse) and red-black successive
//!   over-relaxation ([`SorSolver`], the cross-check).
//!
//! Both solvers share a scoped-thread parallel engine: matrix-free
//! stencil products and reductions chunk across z-slab bands, with
//! per-slab ordered reductions so any thread count reproduces the
//! serial arithmetic bitwise (`CgSolver::with_threads`,
//! `CgSolver::with_parallel_crossover`). Solves are divergence-safe —
//! a non-finite residual surfaces as [`SolveError::Diverged`], never as
//! an `Ok` carrying NaN temperatures — and every [`Solution`] carries a
//! full observability record ([`SolverStats`]: iteration count, matvec
//! count, assembly/solve wall time, sampled residual trajectory).
//!
//! The engine's safety and determinism claims are *checked*, not just
//! asserted: the `race-check` feature (see [`race`] when enabled, and
//! `cargo run -p tsc-analyze`) records per-band write sets in every
//! parallel region, asserts the red-black discipline dynamically, and
//! re-runs solves under permuted band schedules to prove bitwise
//! order-independence.
//!
//! # Example: a one-layer slab with a uniform source
//!
//! ```
//! use tsc_thermal::{Heatsink, Problem, CgSolver};
//! use tsc_units::{HeatFlux, Length, Temperature, ThermalConductivity};
//!
//! // 1 mm x 1 mm x 10 µm silicon slab on a two-phase heatsink,
//! // dissipating 100 W/cm² at its top surface.
//! let mut p = Problem::uniform_block(
//!     16, 16, 4,
//!     Length::from_millimeters(1.0), Length::from_millimeters(1.0),
//!     Length::from_micrometers(10.0),
//!     ThermalConductivity::new(148.0),
//! );
//! p.set_bottom_heatsink(Heatsink::two_phase());
//! p.add_uniform_top_flux(HeatFlux::from_watts_per_square_cm(100.0));
//! let solution = CgSolver::new().solve(&p)?;
//! let tj = solution.temperatures.max_temperature();
//! assert!(tj > Temperature::from_celsius(100.0)); // above ambient
//! assert!(tj < Temperature::from_celsius(102.0)); // tiny rise for thin Si
//! # Ok::<(), tsc_thermal::SolveError>(())
//! ```

// The only workspace crate allowed to contain `unsafe` (the engine's
// `SharedSlice`); every unsafe operation must sit in an explicit block
// with its own SAFETY argument, enforced by `tsc-analyze`.
#![deny(unsafe_op_in_unsafe_fn)]

mod analysis;
mod builder;
mod context;
pub mod electrothermal;
mod engine;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod field;
mod heatsink;
mod kernels;
mod multigrid;
pub mod network;
mod problem;
#[cfg(feature = "race-check")]
pub mod race;
mod solver;
mod superpose;
pub mod transient;

pub use analysis::{line_profile, render_layer_ascii, EnergyBalance};
pub use builder::{SlabSpec, StackMeshBuilder};
pub use context::{operator_fingerprint, ContextStats, OperatorSignature, SolveContext};
pub use field::TemperatureField;
pub use heatsink::Heatsink;
pub use multigrid::{MgSolver, Smoother};
pub use problem::Problem;
pub use solver::{
    CgSolver, Precision, Preconditioner, Solution, SolveError, SolverStats, SorSolver,
    DEFAULT_PARALLEL_CROSSOVER,
};
pub use superpose::{affine_family, blend_solutions, AffineFamily};
