//! Minimal JSON value tree: emission *and* parsing, no serde.
//!
//! The hermetic build has no serde, so every JSON artifact and wire
//! body in the workspace (`BENCH_SOLVER.json`, `BENCH_SERVE.json`, the
//! `tsc-verify` golden snapshots, the `tsc-serve` request/response
//! dialect) goes through this value tree instead. Object keys always
//! serialize sorted so re-blessing a golden snapshot yields a
//! deterministic diff regardless of how the record was assembled, and
//! [`parse`] is the single recursive-descent counterpart shared by the
//! golden harness, the solve service and the load generator
//! (`tsc-verify` re-exports it for backward compatibility).

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`, which is
    /// what serde_json does by default).
    Num(f64),
    /// A string (escaped on write).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An object builder starting empty.
    #[must_use]
    pub fn object() -> Self {
        Self::Object(Vec::new())
    }

    /// Adds (or appends — keys are not deduplicated) a field to an
    /// object; chainable.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Self::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Looks a field up in an object (first match; the emitter never
    /// produces duplicate keys). `None` for missing keys and for
    /// non-object values.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if this is a number with an
    /// exact integral representation.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Self::Num(x) if x.fract().abs() < f64::EPSILON && *x >= 0.0 && *x < 1e15 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes onto a single line with no trailing newline — the
    /// NDJSON framing used by the streaming endpoints, where a record
    /// must never contain an embedded line break.  Same key ordering
    /// and number formatting as [`Json::pretty`].
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Self::Null | Self::Bool(_) | Self::Num(_) | Self::Str(_) => {
                self.write_into(out, 0);
            }
            Self::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Self::Object(fields) => {
                let mut fields: Vec<&(String, Json)> = fields.iter().collect();
                fields.sort_by(|a, b| a.0.cmp(&b.0));
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Num(x) if x.is_finite() => {
                // Integers print without the trailing ".0" f64 Display
                // would add via {:?}; everything else keeps full
                // round-trip precision.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x:?}");
                }
            }
            Self::Num(_) => out.push_str("null"),
            Self::Str(s) => write_escaped(out, s),
            Self::Array(items) if items.is_empty() => out.push_str("[]"),
            Self::Array(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write_into(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Self::Object(fields) if fields.is_empty() => out.push_str("{}"),
            Self::Object(fields) => {
                // Keys emit in sorted order (stable for duplicates) so
                // re-blessed golden files diff cleanly regardless of
                // builder insertion order.
                let mut fields: Vec<&(String, Json)> = fields.iter().collect();
                fields.sort_by(|a, b| a.0.cmp(&b.0));
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_into(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document into a [`Json`] tree (all of JSON except
/// `\u` surrogate pairs, which the emitter never produces).
///
/// This is the single parser behind the golden-snapshot harness
/// (`tsc-verify`), the solve service (`tsc-serve`) and the load
/// generator — strictly bounded by its input slice, allocation-sane,
/// and panic-free on arbitrary bytes.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let mut depth = 0usize;
    let value = parse_value(bytes, &mut pos, &mut depth)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

/// Nesting cap for [`parse`]: deeper documents are rejected rather than
/// risking recursion-driven stack exhaustion on adversarial input (the
/// service feeds network bytes straight into this parser).
const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    if *depth >= MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match b.get(*pos) {
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            *depth += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                *depth -= 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos, depth)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        *depth -= 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            *depth += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                *depth -= 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos, depth)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        *depth -= 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    core::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|x| x.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| core::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(hex);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 passes through unchanged; find the
                // char boundary via the str view.
                let rest = core::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let c = rest.chars().next().ok_or("empty string tail")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Self::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Self::Num(x)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Self::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Self::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Self::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Self::Array(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_is_single_line_and_round_trips() {
        let doc = Json::object()
            .field("event", "step")
            .field("peak_celsius", 97.25)
            .field(
                "hotspot",
                Json::Array(vec![2usize.into(), 3usize.into(), 1usize.into()]),
            )
            .field("note", "line one\nline two");
        let line = doc.compact();
        assert!(
            !line.contains('\n'),
            "compact output must hold no raw newline: {line:?}"
        );
        let back = parse(&line).expect("compact output parses");
        assert_eq!(back.get("event").and_then(Json::as_str), Some("step"));
        assert_eq!(
            back.get("note").and_then(Json::as_str),
            Some("line one\nline two")
        );
        assert_eq!(
            back.get("hotspot")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn renders_nested_structure() {
        let doc = Json::object()
            .field("name", "solver")
            .field("fast", true)
            .field("cells", 200_704usize)
            .field("seconds", 0.125)
            .field("entries", vec![Json::object().field("iterations", 42usize)]);
        let text = doc.pretty();
        assert!(text.starts_with("{\n"));
        assert!(text.ends_with("}\n"));
        assert!(text.contains("\"cells\": 200704"));
        assert!(text.contains("\"seconds\": 0.125"));
        assert!(text.contains("\"iterations\": 42"));
        assert!(!text.contains("200704.0"), "integers stay integral");
    }

    #[test]
    fn object_keys_serialize_sorted() {
        let doc = Json::object()
            .field("zeta", 1.0)
            .field("alpha", 2.0)
            .field("mid", Json::object().field("b", 1.0).field("a", 2.0));
        let text = doc.pretty();
        let alpha = text.find("\"alpha\"").unwrap();
        let mid = text.find("\"mid\"").unwrap();
        let zeta = text.find("\"zeta\"").unwrap();
        assert!(alpha < mid && mid < zeta, "top-level keys sorted:\n{text}");
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::object().field("k\"e\\y", "line\nbreak\tand \u{1} ctrl");
        let text = doc.pretty();
        assert!(text.contains(r#""k\"e\\y""#));
        assert!(text.contains("line\\nbreak\\tand \\u0001 ctrl"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let doc = Json::object()
            .field("nan", f64::NAN)
            .field("inf", f64::INFINITY);
        let text = doc.pretty();
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("\"inf\": null"));
    }

    #[test]
    fn empty_containers_are_compact() {
        let doc = Json::object()
            .field("a", Json::Array(Vec::new()))
            .field("o", Json::object());
        let text = doc.pretty();
        assert!(text.contains("\"a\": []"));
        assert!(text.contains("\"o\": {}"));
    }

    #[test]
    fn parse_round_trips_emitter_output() {
        let doc = Json::object()
            .field("temp_c", 117.25)
            .field("count", 42usize)
            .field("name", "scaffolding \"q\"\n")
            .field("ok", true)
            .field(
                "nested",
                Json::object().field("xs", vec![Json::Num(1.0), Json::Null]),
            );
        let parsed = parse(&doc.pretty()).expect("parses");
        // The emitter sorts keys, so compare via a second emission.
        assert_eq!(parsed.pretty(), doc.pretty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1e999").is_err(), "non-finite numbers rejected");
    }

    #[test]
    fn parse_caps_nesting_depth() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "100 levels exceed the cap");
        let fine = "[".repeat(40) + &"]".repeat(40);
        assert!(parse(&fine).is_ok(), "40 levels are fine");
    }

    #[test]
    fn accessors_navigate_parsed_trees() {
        let doc = parse(r#"{"a": 3, "b": "x", "c": true, "d": [1, 2], "e": 2.5}"#).expect("parses");
        assert_eq!(doc.get("a").and_then(Json::as_usize), Some(3));
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("c").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("d").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(
            doc.get("e").and_then(Json::as_usize),
            None,
            "2.5 is not integral"
        );
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
    }
}
