//! BEOL thermal homogenization — the COMSOL-substitute of the workspace.
//!
//! The paper lumps BEOL sections into homogeneous anisotropic slabs whose
//! conductivities come from finite-element analysis of a representative
//! slice (Fig. 7, following Wei et al. \[5\]). This crate reproduces that
//! methodology with the workspace's own finite-volume kernel run at
//! nanometer resolution:
//!
//! * [`VoxelModel`] — a fine voxel model of a BEOL slice (wires, vias,
//!   dielectric), with axis rotation so any direction can be extracted;
//! * [`extract_k`] — imposes a 1 K temperature difference across two
//!   opposite faces (emulated by near-ideal convective films), measures
//!   the through-flux, and returns `k_eff = Q·L/(A·ΔT)`;
//! * [`slice`](mod@slice) — synthetic-slice generators standing in for the paper's
//!   "pick a slice of the real design within 1 % of average density":
//!   segmented routing wires, power-delivery vias, and either ultra-low-k
//!   or thermal dielectric fill;
//! * [`pillar`] — thermal-pillar characterization: effective vertical
//!   conductivity of a stacked-stripe + max-density-via column
//!   (the paper reports ≈105 W/m/K at a 100 nm × 100 nm footprint).
//!
//! # Example: Voigt/Reuss sanity
//!
//! ```
//! use tsc_homogenize::{extract_k, Axis, VoxelModel};
//! use tsc_units::{Length, ThermalConductivity};
//!
//! // A 50/50 laminate: 2 layers of k=100 and k=1.
//! let nm = Length::from_nanometers;
//! let mut m = VoxelModel::new(4, 4, 4, nm(400.0), nm(400.0), nm(400.0),
//!     ThermalConductivity::new(1.0));
//! m.paint_z_range(2, 4, ThermalConductivity::new(100.0));
//! let kz = extract_k(&m, Axis::Z)?;        // series: ~1.98
//! let kx = extract_k(&m, Axis::X)?;        // parallel: ~50.5
//! assert!((kz.get() - 1.98).abs() < 0.05);
//! assert!((kx.get() - 50.5).abs() < 0.5);
//! # Ok::<(), tsc_thermal::SolveError>(())
//! ```

// No crate outside tsc-thermal may contain `unsafe` (enforced
// statically here and by `cargo run -p tsc-analyze`).
#![forbid(unsafe_code)]

mod extract;
pub mod pillar;
pub mod slice;
mod voxel;

pub use extract::{extract_k, Axis};
pub use voxel::VoxelModel;
