//! Minimal JSON emission for machine-readable bench records.
//!
//! The hermetic build has no serde, so the few JSON artifacts the bench
//! targets produce (`BENCH_SOLVER.json`) are written through this
//! ~100-line value tree instead. Object keys always serialize sorted so
//! re-blessing a golden snapshot (`tsc-verify`) yields a deterministic
//! diff regardless of how the record was assembled; `tsc-verify::golden`
//! carries the matching minimal parser.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`, which is
    /// what serde_json does by default).
    Num(f64),
    /// A string (escaped on write).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An object builder starting empty.
    #[must_use]
    pub fn object() -> Self {
        Self::Object(Vec::new())
    }

    /// Adds (or appends — keys are not deduplicated) a field to an
    /// object; chainable.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Self::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Serializes with two-space indentation and a trailing newline.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Num(x) if x.is_finite() => {
                // Integers print without the trailing ".0" f64 Display
                // would add via {:?}; everything else keeps full
                // round-trip precision.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x:?}");
                }
            }
            Self::Num(_) => out.push_str("null"),
            Self::Str(s) => write_escaped(out, s),
            Self::Array(items) if items.is_empty() => out.push_str("[]"),
            Self::Array(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write_into(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Self::Object(fields) if fields.is_empty() => out.push_str("{}"),
            Self::Object(fields) => {
                // Keys emit in sorted order (stable for duplicates) so
                // re-blessed golden files diff cleanly regardless of
                // builder insertion order.
                let mut fields: Vec<&(String, Json)> = fields.iter().collect();
                fields.sort_by(|a, b| a.0.cmp(&b.0));
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_into(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Self::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Self::Num(x)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Self::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Self::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Self::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Self::Array(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let doc = Json::object()
            .field("name", "solver")
            .field("fast", true)
            .field("cells", 200_704usize)
            .field("seconds", 0.125)
            .field("entries", vec![Json::object().field("iterations", 42usize)]);
        let text = doc.pretty();
        assert!(text.starts_with("{\n"));
        assert!(text.ends_with("}\n"));
        assert!(text.contains("\"cells\": 200704"));
        assert!(text.contains("\"seconds\": 0.125"));
        assert!(text.contains("\"iterations\": 42"));
        assert!(!text.contains("200704.0"), "integers stay integral");
    }

    #[test]
    fn object_keys_serialize_sorted() {
        let doc = Json::object()
            .field("zeta", 1.0)
            .field("alpha", 2.0)
            .field("mid", Json::object().field("b", 1.0).field("a", 2.0));
        let text = doc.pretty();
        let alpha = text.find("\"alpha\"").unwrap();
        let mid = text.find("\"mid\"").unwrap();
        let zeta = text.find("\"zeta\"").unwrap();
        assert!(alpha < mid && mid < zeta, "top-level keys sorted:\n{text}");
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::object().field("k\"e\\y", "line\nbreak\tand \u{1} ctrl");
        let text = doc.pretty();
        assert!(text.contains(r#""k\"e\\y""#));
        assert!(text.contains("line\\nbreak\\tand \\u0001 ctrl"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let doc = Json::object()
            .field("nan", f64::NAN)
            .field("inf", f64::INFINITY);
        let text = doc.pretty();
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("\"inf\": null"));
    }

    #[test]
    fn empty_containers_are_compact() {
        let doc = Json::object()
            .field("a", Json::Array(Vec::new()))
            .field("o", Json::object());
        let text = doc.pretty();
        assert!(text.contains("\"a\": []"));
        assert!(text.contains("\"o\": {}"));
    }
}
