//! Experiment harness shared by the per-figure reproduction binaries.
//!
//! Every table and figure of the paper's evaluation has a binary under
//! `src/bin/` that regenerates it and prints a paper-vs-measured
//! comparison (recorded in `EXPERIMENTS.md`); the harness-free benches
//! under `benches/` time the computational kernels behind them using the
//! in-repo [`timing`] module (the workspace builds without network
//! access, so Criterion is replaced by a ~100-line measured-median
//! harness).

// No crate outside tsc-thermal may contain `unsafe` (enforced
// statically here and by `cargo run -p tsc-analyze`).
#![forbid(unsafe_code)]

use std::fmt::Display;

pub mod httpc;
pub mod json;
pub mod prom;
pub mod timing;

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Prints one paper-vs-measured comparison row.
pub fn compare(metric: &str, paper: impl Display, measured: impl Display) {
    println!("{metric:<58} paper: {paper:<18} measured: {measured}");
}

/// Prints a labelled series as `x<TAB>y` lines (easy to plot).
pub fn series(name: &str, points: impl IntoIterator<Item = (f64, f64)>) {
    println!("-- series: {name}");
    for (x, y) in points {
        println!("{x:10.4}\t{y:10.4}");
    }
}

/// Prints a small ASCII heat-map of integer values (the Fig. 10 panels).
///
/// `rows` is indexed `[y][x]`; `y` grows upward in the printout.
pub fn heatmap(name: &str, x_labels: &[f64], y_labels: &[f64], rows: &[Vec<usize>]) {
    println!("-- heatmap: {name} (rows: area %, cols: delay %)");
    print!("{:>8}", "area\\dly");
    for x in x_labels {
        print!("{x:>5.1}");
    }
    println!();
    for (y, row) in y_labels.iter().zip(rows).rev() {
        print!("{y:>8.1}");
        for v in row {
            print!("{v:>5}");
        }
        println!();
    }
}

/// Relative deviation (percent) of measured from paper — printed in the
/// experiment summaries.
#[must_use]
pub fn deviation_percent(paper: f64, measured: f64) -> f64 {
    if paper == 0.0 {
        return 0.0;
    }
    (measured - paper) / paper * 100.0
}

/// Fans `jobs` out across `threads` workers and returns the results in
/// input order — the executor behind the large parameter sweeps
/// (Fig. 10 runs ~2000 independent flow solves).
///
/// # Panics
///
/// Panics if a job panics or `threads` is zero.
pub fn parallel_sweep<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    assert!(threads > 0, "need at least one worker");
    let n = jobs.len();
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let results = std::sync::Mutex::new(slots);
    let queue = std::sync::Mutex::new(jobs.into_iter().enumerate().collect::<Vec<_>>());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop();
                match job {
                    Some((idx, f)) => {
                        let out = f();
                        results.lock().expect("results lock")[idx] = Some(out);
                    }
                    None => break,
                }
            });
        }
    });
    results
        .into_inner()
        .expect("no worker panicked")
        .into_iter()
        .map(|slot| slot.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_math() {
        assert!((deviation_percent(100.0, 110.0) - 10.0).abs() < 1e-12);
        assert!((deviation_percent(100.0, 90.0) + 10.0).abs() < 1e-12);
        assert_eq!(deviation_percent(0.0, 5.0), 0.0);
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0usize..40)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = parallel_sweep(jobs, 4);
        assert_eq!(out, (0..40).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_sweep_handles_fewer_jobs_than_threads() {
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> =
            vec![Box::new(|| 7) as Box<dyn FnOnce() -> i32 + Send>];
        assert_eq!(parallel_sweep(jobs, 8), vec![7]);
    }
}
