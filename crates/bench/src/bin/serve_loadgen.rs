//! Seeded closed-loop load generator for the `tsc-serve` solve service.
//!
//! Spawns a *real* server process (the `tsc-serve` binary, discovered
//! next to this one or via `--server-bin` / `TSC_SERVE_BIN`), drives it
//! with N client threads over keep-alive connections, and runs the same
//! workload twice — context pool enabled and disabled — to measure what
//! pooling buys.  The workload mixes a small set of **hot** geometries
//! (repeated, pool-hittable) with a stream of **cold** geometries (every
//! request a distinct operator fingerprint), controlled by `--hot-pct`.
//!
//! Emits `BENCH_SERVE.json`: throughput, p50/p99 latency, context-pool
//! hit rate, coalesce counts, and the pooled-vs-no-pool speedup.
//! Usage: `serve_loadgen [--smoke] [--clients N] [--requests N]
//! [--hot-pct P] [--seed S] [--out PATH] [--server-bin PATH]`.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tsc_bench::json::Json;
use tsc_bench::prom::{sample_value, validate_exposition};
use tsc_rng::Rng64;

#[derive(Clone)]
struct Options {
    clients: usize,
    requests_per_client: usize,
    hot_pct: u64,
    seed: u64,
    out: PathBuf,
    server_bin: Option<PathBuf>,
    smoke: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            clients: 4,
            requests_per_client: 40,
            hot_pct: 95,
            seed: 0x0D1E5E1,
            out: PathBuf::from("BENCH_SERVE.json"),
            server_bin: None,
            smoke: false,
        }
    }
}

/// The reduced Gemmini fixture (the accelerator's memory tier) at two hot
/// geometries — both fit the context pool, so steady state is all hits.
const HOT_BODIES: [&str; 2] = [
    r#"{"design": "gemmini-memory", "tiers": 4, "lateral_cells": 16, "area_budget_percent": 10}"#,
    r#"{"design": "gemmini-memory", "tiers": 4, "lateral_cells": 16, "area_budget_percent": 12}"#,
];

/// A cold body: same mesh cost as the hot ones, but a unique pillar
/// budget — a unique operator fingerprint, hence always a pool miss.
fn cold_body(unique: u64) -> String {
    // Budgets 5.00..9.99% — disjoint from the hot budgets.
    let budget = 5.0 + (unique % 500) as f64 * 0.01;
    format!(
        r#"{{"design": "gemmini-memory", "tiers": 4, "lateral_cells": 16, "area_budget_percent": {budget}}}"#
    )
}

fn main() {
    let options = match parse_args(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    tsc_bench::banner("tsc-serve load generator");
    let pooled = run_phase(&options, 8);
    let record = if options.smoke {
        println!(
            "smoke: {} requests, {:.1} req/s, hit rate {:.1}%",
            pooled.completed,
            pooled.throughput_rps,
            pooled.hot_hit_rate * 100.0
        );
        Json::object()
            .field("mode", "smoke")
            .field("pooled", pooled.to_json())
    } else {
        let no_pool = run_phase(&options, 0);
        let speedup = if no_pool.throughput_rps > 0.0 {
            pooled.throughput_rps / no_pool.throughput_rps
        } else {
            0.0
        };
        println!(
            "pooled: {:.1} req/s (p50 {:.1} ms, p99 {:.1} ms), hot-key hit rate {:.1}%",
            pooled.throughput_rps,
            pooled.p50_us / 1e3,
            pooled.p99_us / 1e3,
            pooled.hot_hit_rate * 100.0
        );
        println!(
            "no-pool: {:.1} req/s (p50 {:.1} ms, p99 {:.1} ms)",
            no_pool.throughput_rps,
            no_pool.p50_us / 1e3,
            no_pool.p99_us / 1e3
        );
        println!("speedup from context pooling: {speedup:.2}x");
        Json::object()
            .field("mode", "full")
            .field("pooled", pooled.to_json())
            .field("no_pool", no_pool.to_json())
            .field("pooling_speedup", speedup)
            .field("hot_hit_rate_target", 0.9)
            .field("speedup_target", 5.0)
            .field("meets_targets", pooled.hot_hit_rate > 0.9 && speedup >= 5.0)
    }
    .field(
        "workload",
        Json::object()
            .field("clients", options.clients)
            .field("requests_per_client", options.requests_per_client)
            .field("hot_pct", options.hot_pct as usize)
            .field("hot_keys", HOT_BODIES.len())
            .field("seed", options.seed as f64)
            .field("fixture", "gemmini-memory tiers=4 cells=16"),
    );

    std::fs::write(&options.out, record.pretty()).expect("write BENCH_SERVE.json");
    println!("wrote {}", options.out.display());
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    const USAGE: &str = "usage: serve_loadgen [--smoke] [--clients N] [--requests N] \
                         [--hot-pct P] [--seed S] [--out PATH] [--server-bin PATH]";
    let mut options = Options::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--smoke" => {
                options.smoke = true;
                options.clients = 2;
                options.requests_per_client = 3;
            }
            "--clients" => {
                options.clients = value()?
                    .parse::<usize>()
                    .map_err(|_| "--clients: integer expected".to_string())?
                    .clamp(1, 64)
            }
            "--requests" => {
                options.requests_per_client = value()?
                    .parse::<usize>()
                    .map_err(|_| "--requests: integer expected".to_string())?
                    .clamp(1, 10_000)
            }
            "--hot-pct" => {
                options.hot_pct = value()?
                    .parse::<u64>()
                    .map_err(|_| "--hot-pct: integer expected".to_string())?
                    .min(100)
            }
            "--seed" => {
                options.seed = value()?
                    .parse::<u64>()
                    .map_err(|_| "--seed: integer expected".to_string())?
            }
            "--out" => options.out = PathBuf::from(value()?),
            "--server-bin" => options.server_bin = Some(PathBuf::from(value()?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(options)
}

/// Locate the `tsc-serve` binary: explicit flag, env var, or a sibling of
/// this executable in the same cargo profile directory.
fn server_binary(options: &Options) -> PathBuf {
    if let Some(path) = &options.server_bin {
        return path.clone();
    }
    if let Ok(path) = std::env::var("TSC_SERVE_BIN") {
        return PathBuf::from(path);
    }
    let mut dir = std::env::current_exe().expect("current_exe");
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir.join(format!("tsc-serve{}", std::env::consts::EXE_SUFFIX))
}

struct Phase {
    pool_cap: usize,
    completed: u64,
    failed: u64,
    wall_seconds: f64,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    hot_sent: u64,
    cold_sent: u64,
    pool_hits: f64,
    pool_misses: f64,
    coalesced: f64,
    backend_solves: f64,
    hot_hit_rate: f64,
    warm_starts: f64,
}

impl Phase {
    fn to_json(&self) -> Json {
        Json::object()
            .field("pool_cap", self.pool_cap)
            .field("completed", self.completed as f64)
            .field("failed", self.failed as f64)
            .field("wall_seconds", self.wall_seconds)
            .field("throughput_rps", self.throughput_rps)
            .field("p50_ms", self.p50_us / 1e3)
            .field("p99_ms", self.p99_us / 1e3)
            .field("hot_requests", self.hot_sent as f64)
            .field("cold_requests", self.cold_sent as f64)
            .field("context_pool_hits", self.pool_hits)
            .field("context_pool_misses", self.pool_misses)
            .field("hot_hit_rate", self.hot_hit_rate)
            .field("coalesced_requests", self.coalesced)
            .field("backend_solves", self.backend_solves)
            .field("warm_starts", self.warm_starts)
    }
}

/// Spawn a server with the given pool capacity, run the workload, scrape
/// `/metrics`, shut the server down, and summarize.
fn run_phase(options: &Options, pool_cap: usize) -> Phase {
    let bin = server_binary(options);
    let mut child = Command::new(&bin)
        .args([
            "--port",
            "0",
            "--workers",
            "2",
            "--queue-cap",
            "64",
            "--pool-cap",
            &pool_cap.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
    let addr = read_listen_line(&mut child);

    // Warm-up liveness check.
    let (status, _, _) = http_request(addr, "GET", "/healthz", b"").expect("healthz");
    assert_eq!(status, 200, "server failed its liveness probe");

    let hot_counter = Arc::new(AtomicU64::new(0));
    let cold_counter = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let workers: Vec<_> = (0..options.clients)
        .map(|client_id| {
            let options = options.clone();
            let hot_counter = Arc::clone(&hot_counter);
            let cold_counter = Arc::clone(&cold_counter);
            thread::spawn(move || {
                client_loop(addr, client_id, &options, &hot_counter, &cold_counter)
            })
        })
        .collect();

    let mut latencies: Vec<u64> = Vec::new();
    let mut completed = 0u64;
    let mut failed = 0u64;
    for worker in workers {
        let (ok, bad, mut lat) = worker.join().expect("client thread");
        completed += ok;
        failed += bad;
        latencies.append(&mut lat);
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    latencies.sort_unstable();

    let (status, _, metrics_text) =
        http_request(addr, "GET", "/metrics", b"").expect("metrics scrape");
    assert_eq!(status, 200);
    let metrics_text = String::from_utf8_lossy(&metrics_text).into_owned();
    validate_exposition(&metrics_text).expect("metrics must be valid Prometheus text");

    let (status, _, _) = http_request(addr, "POST", "/v1/shutdown", b"").expect("shutdown");
    assert_eq!(status, 200);
    let _ = child.wait();

    let scrape = |series: &str| sample_value(&metrics_text, series).unwrap_or(0.0);
    let pool_hits = scrape("tsc_context_pool_hits_total");
    let pool_misses = scrape("tsc_context_pool_misses_total");
    let hot_sent = hot_counter.load(Ordering::Relaxed);
    let cold_sent = cold_counter.load(Ordering::Relaxed);
    // Cold keys are unique, so every cold backend solve is a miss; the
    // remaining misses are hot-key cold starts (and evictions).
    let hot_misses = (pool_misses - cold_sent as f64).max(0.0);
    let hot_hit_rate = if pool_hits + hot_misses > 0.0 {
        pool_hits / (pool_hits + hot_misses)
    } else {
        0.0
    };

    Phase {
        pool_cap,
        completed,
        failed,
        wall_seconds,
        throughput_rps: completed as f64 / wall_seconds.max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        hot_sent,
        cold_sent,
        pool_hits,
        pool_misses,
        coalesced: scrape("tsc_coalesced_requests_total"),
        backend_solves: scrape("tsc_backend_solves_total"),
        hot_hit_rate,
        warm_starts: scrape("tsc_context_warm_starts_total"),
    }
}

/// One closed-loop client: a keep-alive connection issuing the seeded
/// hot/cold mix, reconnecting if the server closes on it.
fn client_loop(
    addr: SocketAddr,
    client_id: usize,
    options: &Options,
    hot_counter: &AtomicU64,
    cold_counter: &AtomicU64,
) -> (u64, u64, Vec<u64>) {
    let mut rng = Rng64::seed_from_u64(options.seed ^ (client_id as u64).wrapping_mul(0x9E37));
    let mut connection = HttpConnection::connect(addr);
    let mut ok = 0u64;
    let mut bad = 0u64;
    let mut latencies = Vec::with_capacity(options.requests_per_client);

    for iteration in 0..options.requests_per_client {
        let body = if rng.next_u64() % 100 < options.hot_pct {
            hot_counter.fetch_add(1, Ordering::Relaxed);
            HOT_BODIES[(rng.next_u64() % HOT_BODIES.len() as u64) as usize].to_string()
        } else {
            cold_counter.fetch_add(1, Ordering::Relaxed);
            cold_body((client_id * 10_000 + iteration) as u64)
        };
        let started = Instant::now();
        let result = connection
            .request("POST", "/v1/solve", body.as_bytes())
            .or_else(|| {
                // The server may close keep-alive connections during its
                // drain; one reconnect attempt per request.
                connection = HttpConnection::connect(addr);
                connection.request("POST", "/v1/solve", body.as_bytes())
            });
        match result {
            Some((200, _, _)) => {
                ok += 1;
                latencies.push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            Some((status, _, body)) => {
                bad += 1;
                eprintln!(
                    "client {client_id}: status {status}: {}",
                    String::from_utf8_lossy(&body)
                );
            }
            None => bad += 1,
        }
    }
    (ok, bad, latencies)
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

fn read_listen_line(child: &mut Child) -> SocketAddr {
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listen line");
    // Keep draining the child's stdout in the background so it can never
    // block on a full pipe.
    thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    line.trim()
        .strip_prefix("tsc-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected server banner: {line:?}"))
        .parse()
        .expect("parse server address")
}

/// A minimal keep-alive HTTP/1.1 client connection (std-only, like
/// everything else here).
struct HttpConnection {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpConnection {
    fn connect(addr: SocketAddr) -> HttpConnection {
        let stream = TcpStream::connect(addr).expect("connect to tsc-serve");
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .expect("read timeout");
        // The request head and body go out as two small writes; without
        // TCP_NODELAY, Nagle + delayed ACK stalls each request ~40ms.
        stream.set_nodelay(true).expect("nodelay");
        HttpConnection {
            stream,
            buf: Vec::new(),
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> Option<(u16, String, Vec<u8>)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes()).ok()?;
        self.stream.write_all(body).ok()?;
        self.read_response(Duration::from_secs(300))
    }

    fn read_response(&mut self, deadline: Duration) -> Option<(u16, String, Vec<u8>)> {
        let started = Instant::now();
        let mut chunk = [0u8; 8192];
        loop {
            if let Some((status, headers, payload, consumed)) = parse_response(&self.buf) {
                self.buf.drain(..consumed);
                return Some((status, headers, payload));
            }
            if started.elapsed() > deadline {
                return None;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => return None,
            }
        }
    }
}

fn parse_response(buf: &[u8]) -> Option<(u16, String, Vec<u8>, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_end - 4]).ok()?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .map(String::from)
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let total = head_end + content_length;
    if buf.len() < total {
        return None;
    }
    Some((
        status,
        head.to_string(),
        buf[head_end..total].to_vec(),
        total,
    ))
}

/// One-shot request on a fresh connection.
fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> Option<(u16, String, Vec<u8>)> {
    HttpConnection::connect(addr).request(method, path, body)
}
