//! Criterion benches of the finite-volume thermal solver — the kernel
//! behind every figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsc_thermal::{CgSolver, Heatsink, Problem, SorSolver};
use tsc_units::{Length, Power, ThermalConductivity};

fn slab(n: usize, nz: usize) -> Problem {
    let mut p = Problem::uniform_block(
        n,
        n,
        nz,
        Length::from_millimeters(1.0),
        Length::from_millimeters(1.0),
        Length::from_micrometers(100.0),
        ThermalConductivity::new(10.0),
    );
    p.set_bottom_heatsink(Heatsink::two_phase());
    p.add_power(n / 2, n / 2, nz - 1, Power::from_watts(1.0));
    p
}

fn bench_cg_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cg_solver");
    for n in [8usize, 16, 24] {
        let p = slab(n, 16);
        group.bench_with_input(BenchmarkId::new("lateral_cells", n), &p, |b, p| {
            b.iter(|| CgSolver::new().solve(p).expect("converges"));
        });
    }
    group.finish();
}

fn bench_cg_vs_sor(c: &mut Criterion) {
    let p = slab(12, 12);
    let mut group = c.benchmark_group("cg_vs_sor");
    group.bench_function("cg", |b| {
        b.iter(|| CgSolver::new().solve(&p).expect("converges"));
    });
    group.bench_function("sor", |b| {
        b.iter(|| {
            SorSolver::new()
                .with_tolerance(1e-8)
                .solve(&p)
                .expect("converges")
        });
    });
    group.finish();
}

fn bench_high_contrast(c: &mut Criterion) {
    // The hard case: ultra-low-k layers against silicon (3 orders of
    // magnitude contrast) — what the 3D-IC stacks actually look like.
    let mut p = slab(16, 24);
    for k in (0..24).step_by(4) {
        p.set_layer_conductivity(
            k,
            ThermalConductivity::new(0.31),
            ThermalConductivity::new(5.47),
        );
    }
    c.bench_function("cg_high_contrast_stack", |b| {
        b.iter(|| CgSolver::new().solve(&p).expect("converges"));
    });
}

criterion_group!(
    benches,
    bench_cg_scaling,
    bench_cg_vs_sor,
    bench_high_contrast
);
criterion_main!(benches);
