//! Thermal-pillar characterization.
//!
//! A pillar is a vertically aligned stack of metal rectangles (one per
//! interconnect layer, formed with the `add stripe` command in the
//! paper's Innovus flow) with maximum-density vias between adjacent
//! layers, integrated into the power mesh. The paper's COMSOL
//! characterization finds ≈105 W/m/K effective vertical conductivity at a
//! 100 nm × 100 nm footprint; smaller pillars conduct worse because the
//! copper size effect \[29\] bites harder at via dimensions.
//!
//! Two models are provided:
//! * [`PillarDesign::effective_vertical_k`] — a series-composition closed
//!   form (metal layers in series with via layers) using the
//!   size-dependent copper model; fast enough to call inside placement
//!   loops;
//! * [`PillarDesign::voxel_model`] — a fine voxel model of the pillar in
//!   its surrounding dielectric for FEM cross-checks and the Fig. 3
//!   pillar-reach experiment.

use crate::voxel::VoxelModel;
use tsc_materials::{copper, Anisotropic};
use tsc_units::{Length, Ratio, ThermalConductivity};

/// Geometry of one thermal pillar.
#[derive(Debug, Clone, PartialEq)]
pub struct PillarDesign {
    /// Side of the (square) pillar footprint.
    pub footprint: Length,
    /// Fraction of the BEOL height occupied by metal (stripe) layers;
    /// the rest is via layers.
    pub metal_height_fraction: Ratio,
    /// Effective critical dimension of the stripe copper at a 100 nm
    /// footprint (scales proportionally with footprint).
    pub stripe_dimension_at_100nm: Length,
    /// Effective critical dimension of the max-density via copper at a
    /// 100 nm footprint (scales proportionally with footprint).
    pub via_dimension_at_100nm: Length,
}

impl PillarDesign {
    /// The paper's design point: 100 nm × 100 nm footprint, calibrated so
    /// the effective conductivity is ≈105 W/m/K.
    #[must_use]
    pub fn asap7_100nm() -> Self {
        Self {
            footprint: Length::from_nanometers(100.0),
            metal_height_fraction: Ratio::from_fraction(0.55),
            stripe_dimension_at_100nm: Length::from_nanometers(100.0),
            via_dimension_at_100nm: Length::from_nanometers(32.0),
        }
    }

    /// The same stack at a different footprint (copper dimensions scale
    /// proportionally, capturing the size effect).
    ///
    /// # Panics
    ///
    /// Panics if `footprint` is not strictly positive.
    #[must_use]
    pub fn with_footprint(mut self, footprint: Length) -> Self {
        assert!(
            footprint.meters() > 0.0,
            "pillar footprint must be positive, got {footprint}"
        );
        self.footprint = footprint;
        self
    }

    /// Footprint area of one pillar.
    #[must_use]
    pub fn area(&self) -> tsc_units::Area {
        self.footprint.squared()
    }

    fn scale(&self) -> f64 {
        self.footprint.meters() / 100.0e-9
    }

    /// Effective vertical conductivity of the pillar column: metal layers
    /// in series with via layers, each at its size-dependent copper
    /// conductivity.
    ///
    /// ```
    /// use tsc_homogenize::pillar::PillarDesign;
    /// let k = PillarDesign::asap7_100nm().effective_vertical_k();
    /// assert!((k.get() - 105.0).abs() < 10.0);
    /// ```
    #[must_use]
    pub fn effective_vertical_k(&self) -> ThermalConductivity {
        let s = self.scale();
        let k_stripe = copper::conductivity(self.stripe_dimension_at_100nm * s);
        let k_via = copper::conductivity(self.via_dimension_at_100nm * s);
        let fm = self.metal_height_fraction.fraction();
        let fv = 1.0 - fm;
        ThermalConductivity::new(1.0 / (fm / k_stripe.get() + fv / k_via.get()))
    }

    /// A voxel model of one pillar centered in a square dielectric region
    /// of side `region` and height `height` — the geometry of the Fig. 3
    /// pillar-reach experiment and the placement-time characterization.
    ///
    /// The pillar column is painted with its effective conductivity (the
    /// series model), the surroundings with `dielectric`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is smaller than the footprint or `voxels` < 3.
    #[must_use]
    pub fn voxel_model(
        &self,
        dielectric: Anisotropic,
        region: Length,
        height: Length,
        voxels: usize,
    ) -> VoxelModel {
        assert!(
            region.meters() >= self.footprint.meters(),
            "region must contain the pillar"
        );
        assert!(voxels >= 3, "need at least 3 voxels per side");
        let nz = ((height.meters() / (region.meters() / voxels as f64)).round() as usize).max(3);
        let mut m = VoxelModel::new(
            voxels,
            voxels,
            nz,
            region,
            region,
            height,
            ThermalConductivity::new(1.0),
        );
        m.paint_box_anisotropic(
            0..voxels,
            0..voxels,
            0..nz,
            dielectric.vertical,
            dielectric.lateral,
        );
        // Pillar column: centered, at least one voxel wide.
        let frac = self.footprint.meters() / region.meters();
        let side = ((frac * voxels as f64).round() as usize).max(1);
        let lo = (voxels - side) / 2;
        m.paint_box(
            lo..lo + side,
            lo..lo + side,
            0..nz,
            self.effective_vertical_k(),
        );
        m
    }
}

impl Default for PillarDesign {
    fn default() -> Self {
        Self::asap7_100nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract_k, Axis};
    use tsc_materials::ULTRA_LOW_K_ILD;

    #[test]
    fn design_point_is_105() {
        let k = PillarDesign::asap7_100nm().effective_vertical_k();
        assert!(
            (k.get() - 105.0).abs() < 10.0,
            "100 nm pillar should be ~105 W/m/K, got {k}"
        );
    }

    #[test]
    fn smaller_pillars_conduct_worse() {
        let base = PillarDesign::asap7_100nm();
        let k100 = base.effective_vertical_k().get();
        let k50 = base
            .clone()
            .with_footprint(Length::from_nanometers(50.0))
            .effective_vertical_k()
            .get();
        let k200 = base
            .with_footprint(Length::from_nanometers(200.0))
            .effective_vertical_k()
            .get();
        assert!(k50 < k100 && k100 < k200, "{k50} < {k100} < {k200}");
    }

    #[test]
    fn voxel_model_extraction_matches_mixture() {
        // A pillar occupying f of the region raises vertical k to about
        // (1-f)·k_d + f·k_p (parallel rule).
        let design = PillarDesign::asap7_100nm();
        let region = Length::from_nanometers(500.0);
        let m = design.voxel_model(
            ULTRA_LOW_K_ILD.conductivity,
            region,
            Length::from_micrometers(1.0),
            15,
        );
        let kz = extract_k(&m, Axis::Z).expect("z");
        // Painted column is 3x3 voxels of 15 -> f = 9/225 = 0.04.
        let f = 9.0 / 225.0;
        let expected = (1.0 - f) * 0.2 + f * design.effective_vertical_k().get();
        assert!(
            (kz.get() - expected).abs() / expected < 0.05,
            "kz = {kz}, expected ~{expected}"
        );
    }

    #[test]
    fn area_at_design_point() {
        let a = PillarDesign::asap7_100nm().area();
        assert!((a.square_micrometers() - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "contain the pillar")]
    fn region_must_contain_pillar() {
        let _ = PillarDesign::asap7_100nm().voxel_model(
            ULTRA_LOW_K_ILD.conductivity,
            Length::from_nanometers(50.0),
            Length::from_micrometers(1.0),
            5,
        );
    }
}
