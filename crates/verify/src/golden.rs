//! Golden-flow regression harness.
//!
//! A golden test runs one paper flow on a reduced fixture, serializes
//! the scalars that matter (junction temperature, pillar counts, budget
//! spends, iteration counts) to a [`Json`] record through
//! `tsc_bench::json` (sorted keys, so snapshots diff cleanly), and
//! compares against the checked-in snapshot under `tests/golden/` with
//! per-field *relative* tolerances.
//!
//! * Mismatch → the test fails listing every divergent path, and the
//!   actual record is written to `target/golden-diffs/<name>.json` so
//!   CI can upload it as an artifact.
//! * Intentional change → re-bless with
//!   `UPDATE_GOLDEN=1 cargo test -p tsc-verify --test golden_flows`
//!   and commit the rewritten snapshot. Emission is key-sorted and
//!   deterministic, so the diff is exactly the fields that moved.

use std::fs;
use std::path::PathBuf;

use tsc_bench::json::Json;

/// Relative tolerances for golden comparison: a default plus per-field
/// overrides matched by the final path segment.
#[derive(Debug, Clone)]
pub struct Tolerances {
    default_rel: f64,
    per_field: Vec<(String, f64)>,
}

impl Tolerances {
    /// A tolerance set where every numeric field must agree to
    /// `default_rel` relative error.
    #[must_use]
    pub fn new(default_rel: f64) -> Self {
        Self {
            default_rel,
            per_field: Vec::new(),
        }
    }

    /// Overrides the tolerance for fields whose *name* (final path
    /// segment) equals `field`; chainable.
    #[must_use]
    pub fn field(mut self, field: &str, rel: f64) -> Self {
        self.per_field.push((field.to_string(), rel));
        self
    }

    fn for_path(&self, path: &str) -> f64 {
        let leaf = path.rsplit('.').next().unwrap_or(path);
        self.per_field
            .iter()
            .find(|(name, _)| name == leaf)
            .map_or(self.default_rel, |&(_, rel)| rel)
    }
}

/// Compares two records and returns one human-readable line per
/// divergence (empty = match). Numbers compare relatively per
/// [`Tolerances`]; everything else compares exactly; object key sets
/// must match in both directions.
#[must_use]
pub fn diff(expected: &Json, actual: &Json, tol: &Tolerances) -> Vec<String> {
    let mut out = Vec::new();
    diff_at("$", expected, actual, tol, &mut out);
    out
}

fn diff_at(path: &str, expected: &Json, actual: &Json, tol: &Tolerances, out: &mut Vec<String>) {
    match (expected, actual) {
        (Json::Num(e), Json::Num(a)) => {
            let rel = tol.for_path(path);
            if !crate::close_rel(*e, *a, rel) {
                out.push(format!(
                    "{path}: expected {e}, got {a} (rel diff {:.3e} > tolerance {rel:.1e})",
                    (e - a).abs() / e.abs().max(a.abs()).max(f64::MIN_POSITIVE),
                ));
            }
        }
        (Json::Array(e), Json::Array(a)) => {
            if e.len() != a.len() {
                out.push(format!("{path}: array length {} vs {}", e.len(), a.len()));
                return;
            }
            for (i, (ev, av)) in e.iter().zip(a).enumerate() {
                diff_at(&format!("{path}[{i}]"), ev, av, tol, out);
            }
        }
        (Json::Object(e), Json::Object(a)) => {
            for (key, ev) in e {
                match a.iter().find(|(k, _)| k == key) {
                    Some((_, av)) => diff_at(&format!("{path}.{key}"), ev, av, tol, out),
                    None => out.push(format!("{path}.{key}: missing from actual record")),
                }
            }
            for (key, _) in a {
                if !e.iter().any(|(k, _)| k == key) {
                    out.push(format!("{path}.{key}: not in golden snapshot"));
                }
            }
        }
        (e, a) if e == a => {}
        (e, a) => out.push(format!("{path}: expected {e:?}, got {a:?}")),
    }
}

/// The checked-in snapshot directory (`<repo>/tests/golden`).
#[must_use]
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn diffs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/golden-diffs")
}

/// Asserts `actual` matches the snapshot `tests/golden/<name>.json`.
///
/// With `UPDATE_GOLDEN=1` in the environment the snapshot is rewritten
/// from `actual` instead (re-blessing); emission is key-sorted so the
/// resulting diff is deterministic.
///
/// # Panics
///
/// Panics when the snapshot is missing (with the bless command), fails
/// to parse, or any field diverges beyond its tolerance — after writing
/// the actual record to `target/golden-diffs/<name>.json` for CI
/// artifact upload.
pub fn assert_golden(name: &str, actual: &Json, tol: &Tolerances) {
    let path = golden_dir().join(format!("{name}.json"));
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| !v.is_empty() && v != "0") {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
        fs::write(&path, actual.pretty()).unwrap_or_else(|e| panic!("bless {path:?}: {e}"));
        eprintln!("blessed golden snapshot {path:?}");
        return;
    }
    let text = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden snapshot {path:?} — bless it with \
             `UPDATE_GOLDEN=1 cargo test -p tsc-verify --test golden_flows`"
        )
    });
    let expected = parse(&text).unwrap_or_else(|e| panic!("golden {path:?} unparsable: {e}"));
    let mismatches = diff(&expected, actual, tol);
    if !mismatches.is_empty() {
        let dump = diffs_dir().join(format!("{name}.json"));
        if fs::create_dir_all(diffs_dir()).is_ok() {
            let _ = fs::write(&dump, actual.pretty());
        }
        panic!(
            "golden `{name}` diverged ({} field(s)); actual record dumped to {dump:?}:\n  {}\n\
             intentional change? re-bless with \
             `UPDATE_GOLDEN=1 cargo test -p tsc-verify --test golden_flows`",
            mismatches.len(),
            mismatches.join("\n  "),
        );
    }
}

/// Parses the JSON subset `tsc_bench::json` emits (all of JSON except
/// `\u` surrogate pairs, which the emitter never produces).
///
/// # Errors
///
/// Returns a position-annotated message on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    core::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| core::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(hex);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 passes through unchanged; find the
                // char boundary via the str view.
                let rest = core::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_emitter_output() {
        let doc = Json::object()
            .field("temp_c", 117.25)
            .field("count", 42usize)
            .field("name", "scaffolding \"q\"\n")
            .field("ok", true)
            .field(
                "nested",
                Json::object().field("xs", vec![Json::Num(1.0), Json::Null]),
            );
        let parsed = parse(&doc.pretty()).expect("parses");
        // The emitter sorts keys, so compare via a second emission.
        assert_eq!(parsed.pretty(), doc.pretty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn diff_respects_per_field_tolerance() {
        let expected = Json::object().field("tj", 100.0).field("iters", 50.0);
        let actual = Json::object().field("tj", 100.4).field("iters", 50.0);
        let loose = Tolerances::new(1e-9).field("tj", 1e-2);
        assert!(diff(&expected, &actual, &loose).is_empty());
        let strict = Tolerances::new(1e-9);
        let report = diff(&expected, &actual, &strict);
        assert_eq!(report.len(), 1, "{report:?}");
        assert!(report[0].starts_with("$.tj:"), "{report:?}");
    }

    #[test]
    fn diff_flags_shape_changes() {
        let expected = Json::object().field("a", 1.0);
        let actual = Json::object().field("b", 1.0);
        let report = diff(&expected, &actual, &Tolerances::new(1e-9));
        assert_eq!(report.len(), 2, "missing + extra: {report:?}");
    }
}
