//! Degenerate-limit tests for the solvers, boundaries, and the compact
//! ladder network: cases where the exact answer is known in closed form
//! (zero power, a single cell, an infinite film coefficient, a zero
//! heatsink rise), so any drift is a bug rather than a tolerance
//! question.

use tsc_thermal::network::{Ladder, TierRung};
use tsc_thermal::{CgSolver, Heatsink, MgSolver, Problem, SorSolver};
use tsc_units::{
    AreaThermalResistance, HeatFlux, HeatTransferCoefficient, Length, Power, Temperature,
    ThermalConductivity,
};

fn block(nx: usize, ny: usize, nz: usize) -> Problem {
    Problem::uniform_block(
        nx,
        ny,
        nz,
        Length::from_millimeters(1.0),
        Length::from_millimeters(1.0),
        Length::from_micrometers(10.0 * nz as f64),
        ThermalConductivity::new(140.0),
    )
}

#[test]
fn zero_power_stack_sits_at_ambient_everywhere() {
    // No sources: the exact solution is T ≡ ambient in every cell, for
    // every solver, to solver tolerance around a ~300 K scale.
    let mut p = block(6, 6, 5);
    p.set_bottom_heatsink(Heatsink::two_phase());
    let ambient = Heatsink::two_phase().ambient.kelvin();
    for (label, solution) in [
        ("cg", CgSolver::new().solve(&p).expect("cg")),
        ("sor", SorSolver::new().solve(&p).expect("sor")),
        ("mg", MgSolver::new().solve(&p).expect("mg")),
    ] {
        for (cell, t) in solution.temperatures.iter_kelvin().enumerate() {
            assert!(
                (t - ambient).abs() < 1e-6,
                "{label}: cell {cell} at {t} K, expected ambient {ambient} K"
            );
        }
    }
}

#[test]
fn single_cell_mesh_matches_the_series_resistance_formula() {
    // One cell over a Robin film: T = T_amb + P·(half-cell + film)
    // resistance. The discrete operator must reproduce this exactly.
    let dx = 1e-3;
    let dz = 100e-6;
    let k = 50.0;
    let h = 2.0e5;
    let watts = 0.75;
    let mut p = Problem::uniform_block(
        1,
        1,
        1,
        Length::from_meters(dx),
        Length::from_meters(dx),
        Length::from_meters(dz),
        ThermalConductivity::new(k),
    );
    let ambient = 300.0;
    p.set_bottom_heatsink(Heatsink {
        h: HeatTransferCoefficient::new(h),
        ambient: Temperature::from_kelvin(ambient),
    });
    p.add_power(0, 0, 0, Power::from_watts(watts));
    let area = dx * dx;
    let expected = ambient + watts * ((dz / 2.0) / (k * area) + 1.0 / (h * area));
    let solution = CgSolver::new().solve(&p).expect("single cell");
    let got = solution.temperatures.at(0, 0, 0).kelvin();
    assert!(
        (got - expected).abs() < 1e-9,
        "single-cell analytic mismatch: {got} vs {expected}"
    );
}

#[test]
fn infinite_film_coefficient_is_the_dirichlet_limit() {
    // h → ∞ collapses the Robin series conductance to pure half-cell
    // conduction: the solve must (a) succeed with h = ∞ exactly, and
    // (b) approach the h = 1e12 result (whose residual film resistance
    // still contributes ~10 µK per watt-column, so the comparison is a
    // limit check, not a bitwise one).
    let build = |h: f64| {
        let mut p = block(5, 5, 4);
        p.set_bottom_heatsink(Heatsink {
            h: HeatTransferCoefficient::new(h),
            ambient: Temperature::from_kelvin(300.0),
        });
        p.add_power(2, 2, 3, Power::from_watts(1.2));
        p
    };
    let exact = CgSolver::new()
        .solve(&build(f64::INFINITY))
        .expect("h = ∞ must solve");
    let huge = CgSolver::new().solve(&build(1e12)).expect("h = 1e12");
    for ((t_inf, t_huge), cell) in exact
        .temperatures
        .iter_kelvin()
        .zip(huge.temperatures.iter_kelvin())
        .zip(0..)
    {
        assert!(
            (t_inf - t_huge).abs() < 1e-3,
            "cell {cell}: Dirichlet limit {t_inf} vs near-limit {t_huge}"
        );
    }
    // And the face itself is pinned: the bottom layer sits within the
    // half-cell conduction rise of ambient, far below the top.
    assert!(exact.temperatures.layer_max(0) < exact.temperatures.layer_max(3));
}

#[test]
fn ladder_with_zero_flux_rungs_stays_at_ambient() {
    let rung = TierRung::new(HeatFlux::ZERO, AreaThermalResistance::new(3.3e-6));
    let ladder = Ladder::uniform(Heatsink::two_phase(), rung, 7);
    let ambient = Heatsink::two_phase().ambient;
    assert_eq!(ladder.len(), 7);
    assert!(!ladder.is_empty());
    assert!((ladder.heatsink_rise().kelvin()).abs() < 1e-12);
    for t in ladder.node_temperatures() {
        assert!(
            (t.kelvin() - ambient.kelvin()).abs() < 1e-9,
            "zero-flux node at {t}, expected ambient"
        );
    }
    assert_eq!(ladder.conduction_fraction().fraction(), 0.0);
}

#[test]
fn single_rung_ladder_is_the_two_resistor_formula() {
    let q = HeatFlux::from_watts_per_square_cm(50.0);
    let r = AreaThermalResistance::new(4.0e-6);
    let sink = Heatsink::two_phase();
    let ladder = Ladder::new(sink, vec![TierRung::new(q, r)]);
    let expected = sink.ambient.kelvin() + (q / sink.h).kelvin() + (q * r).kelvin();
    let tj = ladder.junction_temperature().kelvin();
    assert!(
        (tj - expected).abs() < 1e-9,
        "one-rung ladder: {tj} vs analytic {expected}"
    );
}

#[test]
fn max_tiers_within_is_zero_when_one_tier_already_violates() {
    let hot = TierRung::new(
        HeatFlux::from_watts_per_square_cm(500.0),
        AreaThermalResistance::new(1e-4),
    );
    let n = Ladder::max_tiers_within(
        Heatsink::forced_air(),
        hot,
        Temperature::from_celsius(125.0),
        16,
    );
    assert_eq!(n, 0, "an uncoolable tier must report zero tiers");
}
