//! Fault-injection suite (`--features fault-inject`): armed
//! [`tsc_thermal::fault`] plans corrupt solves in controlled,
//! seed-deterministic ways, and every corruption must surface as a
//! *typed* error — [`SolveError::Diverged`],
//! [`SolveError::NotConverged`], or (through the electrothermal loop)
//! `ThermalRunaway`. An `Ok` carrying a non-finite or perturbed field is
//! the one outcome the divergence-safety contract forbids, so any `Ok`
//! here first proves no injection actually fired, then proves the field
//! is finite.
//!
//! The default run covers 4 seeds per solver; CI's nightly-style job
//! widens the sweep with `FAULT_SEEDS=8`.
#![cfg(feature = "fault-inject")]

use tsc_thermal::electrothermal::{solve_electrothermal_with, ElectrothermalError, LeakageModel};
use tsc_thermal::fault::{self, FaultKind, FaultPlan};
use tsc_thermal::{CgSolver, Heatsink, MgSolver, Preconditioner, Problem, SolveError, SorSolver};
use tsc_units::{Length, Power, TempDelta, Temperature, ThermalConductivity};

fn fixture() -> Problem {
    let mut p = Problem::uniform_block(
        8,
        8,
        6,
        Length::from_millimeters(1.0),
        Length::from_millimeters(1.0),
        Length::from_micrometers(60.0),
        ThermalConductivity::new(120.0),
    );
    p.set_bottom_heatsink(Heatsink::two_phase());
    p.add_power(4, 4, 5, Power::from_watts(2.0));
    p.add_power(2, 5, 3, Power::from_watts(1.0));
    p
}

/// Number of fault seeds per solver: 4 by default, widened via the
/// `FAULT_SEEDS` environment variable in the nightly-style CI job.
fn seed_count() -> u64 {
    std::env::var("FAULT_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

type SolverFn = fn(&Problem) -> Result<tsc_thermal::Solution, SolveError>;

const SOLVERS: [(&str, SolverFn); 4] = [
    ("cg-jacobi", |p| CgSolver::new().solve(p)),
    ("cg-mg", |p| {
        CgSolver::new()
            .with_preconditioner(Preconditioner::Multigrid)
            .solve(p)
    }),
    ("sor", |p| SorSolver::new().solve(p)),
    ("mg", |p| MgSolver::new().solve(p)),
];

/// The core contract: under any armed fault, a solver either returns a
/// typed error, or — when the plan's trigger never fired (e.g. the
/// solve converged before the trigger iteration) — an `Ok` whose field
/// is finite and whose injection counter proves nothing was corrupted.
fn assert_fault_surfaces(label: &str, solve: SolverFn, plan: FaultPlan) {
    let p = fixture();
    fault::arm(plan);
    let result = solve(&p);
    let injections = fault::injections();
    fault::disarm();
    match result {
        Err(SolveError::Diverged { residual, .. }) => {
            assert!(
                !residual.is_finite(),
                "{label}/{plan:?}: Diverged must report the non-finite residual, got {residual}"
            );
        }
        Err(SolveError::NotConverged { .. }) => {
            assert!(
                matches!(plan.kind, FaultKind::TruncateBudget),
                "{label}/{plan:?}: NotConverged is only legitimate for budget truncation"
            );
        }
        Err(other) => panic!("{label}/{plan:?}: unexpected error class {other:?}"),
        Ok(solution) => {
            // A truncated budget that the solve still converged within
            // is a legitimate Ok; every data-corrupting kind is not.
            if !matches!(plan.kind, FaultKind::TruncateBudget) {
                assert_eq!(
                    injections, 0,
                    "{label}/{plan:?}: solver returned Ok although a fault was injected"
                );
            }
            assert!(
                solution.temperatures.iter_kelvin().all(|t| t.is_finite()),
                "{label}/{plan:?}: Ok with non-finite temperatures"
            );
        }
    }
}

#[test]
fn seeded_faults_never_yield_silent_ok() {
    for (label, solve) in SOLVERS {
        for seed in 0..seed_count() {
            assert_fault_surfaces(label, solve, FaultPlan::from_seed(seed).targeting_solve(0));
        }
    }
}

#[test]
fn poisoned_iterates_diverge_in_every_solver() {
    for (label, solve) in SOLVERS {
        for kind in [FaultKind::PoisonCellNan, FaultKind::PoisonCellInf] {
            let plan = FaultPlan {
                kind,
                target_solve: 0,
                trigger_iteration: 1,
                cell_position: 0.37,
            };
            let p = fixture();
            fault::arm(plan);
            let result = solve(&p);
            let injections = fault::injections();
            fault::disarm();
            assert_eq!(injections, 1, "{label}/{kind:?}: poison must fire");
            assert!(
                matches!(result, Err(SolveError::Diverged { .. })),
                "{label}/{kind:?}: poisoned iterate must surface as Diverged, got {result:?}"
            );
        }
    }
}

#[test]
fn corrupted_residuals_diverge_in_every_solver() {
    for (label, solve) in SOLVERS {
        for kind in [FaultKind::ResidualNan, FaultKind::ResidualInf] {
            let plan = FaultPlan {
                kind,
                target_solve: 0,
                trigger_iteration: 1,
                cell_position: 0.0,
            };
            let p = fixture();
            fault::arm(plan);
            let result = solve(&p);
            let injections = fault::injections();
            fault::disarm();
            assert!(injections >= 1, "{label}/{kind:?}: corruption must fire");
            assert!(
                matches!(result, Err(SolveError::Diverged { .. })),
                "{label}/{kind:?}: corrupted residual must surface as Diverged, got {result:?}"
            );
        }
    }
}

#[test]
fn truncated_budgets_surface_as_not_converged() {
    for (label, solve) in SOLVERS {
        let plan = FaultPlan {
            kind: FaultKind::TruncateBudget,
            target_solve: 0,
            trigger_iteration: 2,
            cell_position: 0.0,
        };
        let p = fixture();
        fault::arm(plan);
        let result = solve(&p);
        let injections = fault::injections();
        fault::disarm();
        assert_eq!(injections, 1, "{label}: truncation must fire");
        match result {
            Err(SolveError::NotConverged { iterations, .. }) => {
                assert!(
                    iterations <= 2,
                    "{label}: truncated to 2 but reported {iterations} iterations"
                );
            }
            // A solver beating the truncated budget is legal but must
            // still have honored it.
            Ok(solution) => assert!(
                solution.stats.iterations <= 2,
                "{label}: Ok but ran {} iterations past the truncated budget",
                solution.stats.iterations
            ),
            other => panic!("{label}: truncated budget must be NotConverged, got {other:?}"),
        }
    }
}

#[test]
fn electrothermal_loop_reports_thermal_runaway() {
    // Poison the *second* inner solve: the first (pre-loop) solve runs
    // clean, so the divergence happens inside the fixed-point loop and
    // must be classified as ThermalRunaway, not a bare Solve error.
    let p = fixture();
    let plan = FaultPlan {
        kind: FaultKind::PoisonCellNan,
        target_solve: 1,
        trigger_iteration: 1,
        cell_position: 0.6,
    };
    fault::arm(plan);
    let result = solve_electrothermal_with(
        &p,
        &LeakageModel::seven_nm(),
        TempDelta::new(0.01),
        40,
        &CgSolver::new(),
    );
    let injections = fault::injections();
    fault::disarm();
    assert!(injections >= 1, "second-solve poison must fire");
    match result {
        Err(ElectrothermalError::ThermalRunaway { junction, .. }) => {
            assert!(
                junction.kelvin().is_finite(),
                "last good Tj stays reportable"
            );
        }
        other => panic!("in-loop divergence must be ThermalRunaway, got {other:?}"),
    }
}

#[test]
fn electrothermal_first_solve_fault_propagates_as_solve_error() {
    let p = fixture();
    let plan = FaultPlan {
        kind: FaultKind::PoisonCellInf,
        target_solve: 0,
        trigger_iteration: 1,
        cell_position: 0.1,
    };
    fault::arm(plan);
    let result = solve_electrothermal_with(
        &p,
        &LeakageModel::seven_nm(),
        TempDelta::new(0.01),
        40,
        &CgSolver::new(),
    );
    fault::disarm();
    assert!(
        matches!(
            result,
            Err(ElectrothermalError::Solve(SolveError::Diverged { .. }))
        ),
        "pre-loop fault is a Solve error, not runaway: {result:?}"
    );
}

#[test]
fn disarmed_solvers_recover() {
    // After a faulted run, a clean run of the same problem must succeed
    // — injection state cannot leak across solves.
    let p = fixture();
    fault::arm(FaultPlan {
        kind: FaultKind::PoisonCellNan,
        target_solve: 0,
        trigger_iteration: 1,
        cell_position: 0.5,
    });
    let faulted = CgSolver::new().solve(&p);
    fault::disarm();
    assert!(faulted.is_err());
    let clean = CgSolver::new().solve(&p).expect("clean solve succeeds");
    assert!(clean.temperatures.iter_kelvin().all(|t| t.is_finite()));
    assert!(
        clean.temperatures.max_temperature() > Temperature::from_celsius(40.0),
        "field is physical, not zeroed"
    );
}
