//! A small, generic simulated-annealing engine.
//!
//! Used by the thermal-aware floorplanner (the Corblivar substitute) and
//! available for any other combinatorial search in the workspace. Two
//! execution shapes are offered:
//!
//! * [`anneal`] — the classic run-to-completion loop, a thin wrapper
//!   over [`AnnealRun`];
//! * [`AnnealRun`] — a step-sliced run that can stop after any number of
//!   proposals, serialize itself into an [`AnnealCheckpoint`], and
//!   resume bitwise-identically. This is what the `tsc-jobs` scheduler
//!   interleaves with interactive traffic.
//!
//! On top of the single chain, [`TemperedRun`] generalizes the search to
//! parallel tempering: `K` replicas at fixed rung temperatures
//! ([`temperature_ladder`]) exchange configurations in deterministic
//! even/odd swap rounds. All randomness flows through seeded [`Rng64`]
//! streams — no wall clock anywhere — so every run is reproducible
//! per seed regardless of how its rounds are scheduled across threads.

use tsc_rng::Rng64;

/// A problem state that annealing can explore.
pub trait AnnealState: Clone {
    /// Proposes a random neighbour of `self`.
    fn neighbour(&self, rng: &mut Rng64) -> Self;
    /// Cost to minimize (lower is better). Must be finite.
    fn cost(&self) -> f64;
}

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    /// Initial acceptance temperature (in cost units).
    pub t_start: f64,
    /// Final temperature. A round runs whenever the temperature is still
    /// *above* this value, so the last executed round sits just above
    /// `t_end`; no round runs at `t_end` itself.
    pub t_end: f64,
    /// Geometric cooling factor per round, in `(0, 1)`.
    pub cooling: f64,
    /// Proposals per temperature round.
    pub moves_per_round: usize,
}

impl Schedule {
    /// The production schedule: cools 1.0 → 1e-4 at 0.92 per round,
    /// which is ~111 rounds of 120 proposals (~13 k evaluations) — sized
    /// for floorplans of tens of modules.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            t_start: 1.0,
            t_end: 1e-4,
            cooling: 0.92,
            moves_per_round: 120,
        }
    }

    /// A fast schedule for tests: cools 0.5 → 1e-3 at 0.85 per round,
    /// which is ~39 rounds of 40 proposals (~1.5 k evaluations).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            t_start: 0.5,
            t_end: 1e-3,
            cooling: 0.85,
            moves_per_round: 40,
        }
    }

    fn validate(&self) {
        assert!(
            self.t_start > self.t_end && self.t_end > 0.0,
            "need t_start > t_end > 0"
        );
        assert!(
            self.cooling > 0.0 && self.cooling < 1.0,
            "cooling must be in (0, 1)"
        );
        assert!(self.moves_per_round > 0, "moves_per_round must be positive");
    }
}

/// Number of temperature rounds the schedule executes before reaching
/// `t_end`. Computed by the same iterated multiplication the run uses,
/// so it matches the run exactly (a closed-form `powf` would not).
#[must_use]
pub fn schedule_rounds(schedule: &Schedule) -> usize {
    schedule.validate();
    let mut t = schedule.t_start;
    let mut rounds = 0;
    while t > schedule.t_end {
        rounds += 1;
        t *= schedule.cooling;
    }
    rounds
}

/// Outcome of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult<S> {
    /// The best state found.
    pub best: S,
    /// Cost of the best state.
    pub best_cost: f64,
    /// Total proposals evaluated.
    pub proposals: usize,
    /// Proposals accepted.
    pub accepted: usize,
}

/// Everything needed to resume an [`AnnealRun`] bitwise-identically:
/// the RNG word, the global step index, and the current/best states.
/// The temperature is stored explicitly (not recomputed from the step
/// index) because iterated cooling and a closed-form power differ in
/// the last bits.
#[derive(Debug, Clone)]
pub struct AnnealCheckpoint<S> {
    /// Raw RNG word ([`Rng64::state`]).
    pub rng_state: u64,
    /// Global step index: proposals evaluated so far.
    pub step: usize,
    /// Proposals already made in the in-progress temperature round.
    pub round_move: usize,
    /// Exact temperature of the in-progress round.
    pub temperature: f64,
    /// Current chain state.
    pub current: S,
    /// Cost of `current`.
    pub current_cost: f64,
    /// Best state seen so far.
    pub best: S,
    /// Cost of `best`.
    pub best_cost: f64,
    /// Proposals accepted so far.
    pub accepted: usize,
}

/// A step-sliced annealing run: the same chain [`anneal`] walks, but
/// pausable after any proposal and checkpointable in between.
#[derive(Debug, Clone)]
pub struct AnnealRun<S> {
    schedule: Schedule,
    rng: Rng64,
    temperature: f64,
    round_move: usize,
    current: S,
    current_cost: f64,
    best: S,
    best_cost: f64,
    proposals: usize,
    accepted: usize,
}

impl<S: AnnealState> AnnealRun<S> {
    /// Starts a fresh run.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is invalid (see [`Schedule`] field docs).
    #[must_use]
    pub fn new(initial: S, schedule: &Schedule, seed: u64) -> Self {
        schedule.validate();
        let current = initial.clone();
        let current_cost = current.cost();
        Self {
            schedule: *schedule,
            rng: Rng64::seed_from_u64(seed),
            temperature: schedule.t_start,
            round_move: 0,
            best: initial,
            best_cost: current_cost,
            current,
            current_cost,
            proposals: 0,
            accepted: 0,
        }
    }

    /// Resumes a run from a checkpoint. The continuation is
    /// bitwise-identical to the run the checkpoint was taken from.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is invalid.
    #[must_use]
    pub fn from_checkpoint(schedule: &Schedule, cp: AnnealCheckpoint<S>) -> Self {
        schedule.validate();
        Self {
            schedule: *schedule,
            rng: Rng64::from_state(cp.rng_state),
            temperature: cp.temperature,
            round_move: cp.round_move,
            current: cp.current,
            current_cost: cp.current_cost,
            best: cp.best,
            best_cost: cp.best_cost,
            proposals: cp.step,
            accepted: cp.accepted,
        }
    }

    /// Snapshot of the run, valid at any proposal boundary.
    #[must_use]
    pub fn checkpoint(&self) -> AnnealCheckpoint<S> {
        AnnealCheckpoint {
            rng_state: self.rng.state(),
            step: self.proposals,
            round_move: self.round_move,
            temperature: self.temperature,
            current: self.current.clone(),
            current_cost: self.current_cost,
            best: self.best.clone(),
            best_cost: self.best_cost,
            accepted: self.accepted,
        }
    }

    /// `true` once the schedule has cooled past `t_end`.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.temperature <= self.schedule.t_end
    }

    /// Performs up to `max_moves` proposals; returns how many ran
    /// (fewer only when the schedule completes mid-slice).
    pub fn step(&mut self, max_moves: usize) -> usize {
        let mut done = 0;
        while done < max_moves && !self.is_done() {
            let cand = self.current.neighbour(&mut self.rng);
            let cand_cost = cand.cost();
            self.proposals += 1;
            let delta = cand_cost - self.current_cost;
            if delta <= 0.0 || self.rng.gen_f64() < (-delta / self.temperature).exp() {
                self.current = cand;
                self.current_cost = cand_cost;
                self.accepted += 1;
                if self.current_cost < self.best_cost {
                    self.best = self.current.clone();
                    self.best_cost = self.current_cost;
                }
            }
            done += 1;
            self.round_move += 1;
            if self.round_move == self.schedule.moves_per_round {
                self.round_move = 0;
                self.temperature *= self.schedule.cooling;
            }
        }
        done
    }

    /// Best state and cost so far.
    #[must_use]
    pub fn best(&self) -> (&S, f64) {
        (&self.best, self.best_cost)
    }

    /// Raw RNG word (for resume-equivalence assertions).
    #[must_use]
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Finishes the run into a result (valid at any point; callers
    /// normally wait for [`AnnealRun::is_done`]).
    #[must_use]
    pub fn into_result(self) -> AnnealResult<S> {
        AnnealResult {
            best: self.best,
            best_cost: self.best_cost,
            proposals: self.proposals,
            accepted: self.accepted,
        }
    }
}

/// Runs simulated annealing from `initial` with the given schedule and
/// RNG seed (runs are deterministic per seed).
///
/// # Panics
///
/// Panics if the schedule is invalid (see [`Schedule`] field docs).
pub fn anneal<S: AnnealState>(initial: S, schedule: &Schedule, seed: u64) -> AnnealResult<S> {
    let mut run = AnnealRun::new(initial, schedule, seed);
    while !run.is_done() {
        run.step(schedule.moves_per_round);
    }
    run.into_result()
}

/// Geometric temperature ladder for parallel tempering: rung 0 is the
/// hottest (`t_start`), the last rung the coldest (`t_end`).
///
/// # Panics
///
/// Panics if `rungs` is zero or the schedule is invalid.
#[must_use]
pub fn temperature_ladder(schedule: &Schedule, rungs: usize) -> Vec<f64> {
    schedule.validate();
    assert!(rungs > 0, "need at least one tempering rung");
    if rungs == 1 {
        return vec![schedule.t_start];
    }
    let ratio = schedule.t_end / schedule.t_start;
    (0..rungs)
        .map(|i| schedule.t_start * ratio.powf(i as f64 / (rungs - 1) as f64))
        .collect()
}

/// One tempering replica: a Metropolis chain at a fixed rung
/// temperature with its own RNG stream. Fields are public so external
/// schedulers (the `tsc-jobs` fan-out) can move replicas across
/// threads between rounds and serialize them into checkpoints.
#[derive(Debug, Clone)]
pub struct Replica<S> {
    /// The replica's private RNG stream.
    pub rng: Rng64,
    /// Current chain state.
    pub current: S,
    /// Cost of `current`.
    pub current_cost: f64,
    /// Best state this replica has seen.
    pub best: S,
    /// Cost of `best`.
    pub best_cost: f64,
    /// Proposals evaluated by this replica.
    pub proposals: u64,
    /// Proposals accepted by this replica.
    pub accepted: u64,
}

impl<S: AnnealState> Replica<S> {
    /// Fresh replica from `initial` with its own seed.
    #[must_use]
    pub fn new(initial: S, seed: u64) -> Self {
        let current = initial.clone();
        let current_cost = current.cost();
        Self {
            rng: Rng64::seed_from_u64(seed),
            best: initial,
            best_cost: current_cost,
            current,
            current_cost,
            proposals: 0,
            accepted: 0,
        }
    }

    /// One move round at temperature `t`. Candidate costs flow through
    /// `eval` so callers can layer a memo over [`AnnealState::cost`];
    /// `eval` must return exactly what `cost()` would (memoized values
    /// are fine — identical states have identical costs — but any other
    /// substitution breaks bitwise reproducibility).
    pub fn round(&mut self, t: f64, moves: usize, eval: &mut dyn FnMut(&S) -> f64) {
        for _ in 0..moves {
            let cand = self.current.neighbour(&mut self.rng);
            let cand_cost = eval(&cand);
            self.proposals += 1;
            let delta = cand_cost - self.current_cost;
            if delta <= 0.0 || self.rng.gen_f64() < (-delta / t).exp() {
                self.current = cand;
                self.current_cost = cand_cost;
                self.accepted += 1;
                if self.current_cost < self.best_cost {
                    self.best = self.current.clone();
                    self.best_cost = self.current_cost;
                }
            }
        }
    }
}

/// A deterministic parallel-tempering run: `K` replicas at the
/// [`temperature_ladder`] rungs, with even/odd configuration swaps
/// between adjacent rungs after every round.
///
/// Replica move rounds within one round are *independent* (each replica
/// owns its RNG), so a scheduler may run them in any order or on any
/// thread; the swap round is the only synchronization point. Results
/// are therefore bitwise-identical however the rounds are scheduled.
#[derive(Debug, Clone)]
pub struct TemperedRun<S> {
    /// Rung temperatures, hottest first.
    pub ladder: Vec<f64>,
    /// Proposals per replica per round.
    pub moves_per_round: usize,
    /// Total rounds (matches [`schedule_rounds`] of the source
    /// schedule so a tempered run costs `K×` the sequential chain).
    pub rounds: usize,
    /// Rounds completed.
    pub round: usize,
    /// The replicas, parallel to `ladder`.
    pub replicas: Vec<Replica<S>>,
    /// Dedicated stream for swap decisions — seeded, never wall-clock.
    pub swap_rng: Rng64,
    /// Accepted configuration swaps.
    pub swaps_accepted: u64,
}

impl<S: AnnealState> TemperedRun<S> {
    /// Builds a run with `rungs` replicas of `initial`. Replica seeds
    /// and the swap seed all derive from `seed` through a seeder
    /// stream, so the whole ensemble is reproducible per seed.
    ///
    /// # Panics
    ///
    /// Panics if `rungs` is zero or the schedule is invalid.
    #[must_use]
    pub fn new(initial: S, schedule: &Schedule, rungs: usize, seed: u64) -> Self {
        let ladder = temperature_ladder(schedule, rungs);
        let rounds = schedule_rounds(schedule);
        let mut seeder = Rng64::seed_from_u64(seed);
        let replicas: Vec<Replica<S>> = (0..rungs)
            .map(|_| Replica::new(initial.clone(), seeder.next_u64()))
            .collect();
        let swap_rng = Rng64::from_state(seeder.next_u64());
        Self {
            ladder,
            moves_per_round: schedule.moves_per_round,
            rounds,
            round: 0,
            replicas,
            swap_rng,
            swaps_accepted: 0,
        }
    }

    /// `true` once all rounds have run.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.round >= self.rounds
    }

    /// Runs one full round sequentially: every replica's move round,
    /// then the swap round. Fan-out schedulers instead run the move
    /// rounds themselves and call [`TemperedRun::swap_round`].
    pub fn step_round(&mut self, eval: &mut dyn FnMut(&S) -> f64) {
        if self.is_done() {
            return;
        }
        for (i, replica) in self.replicas.iter_mut().enumerate() {
            replica.round(self.ladder[i], self.moves_per_round, eval);
        }
        self.swap_round();
    }

    /// The deterministic even/odd swap sweep: even rounds pair rungs
    /// `(0,1) (2,3) …`, odd rounds `(1,2) (3,4) …`. Each pair draws one
    /// uniform variate (always, so RNG consumption is shape-stable) and
    /// swaps configurations with the Metropolis tempering probability.
    /// Advances the round counter.
    pub fn swap_round(&mut self) {
        let start = self.round % 2;
        let k = self.replicas.len();
        let mut i = start;
        while i + 1 < k {
            let (t_hot, t_cold) = (self.ladder[i], self.ladder[i + 1]);
            let (e_hot, e_cold) = (
                self.replicas[i].current_cost,
                self.replicas[i + 1].current_cost,
            );
            let u = self.swap_rng.gen_f64();
            // p = exp((β_cold − β_hot)(E_cold − E_hot)): a colder rung
            // always adopts a better configuration from its hotter
            // neighbour, and occasionally a worse one.
            let p = ((1.0 / t_cold - 1.0 / t_hot) * (e_cold - e_hot)).exp();
            if u < p {
                let (a, b) = self.replicas.split_at_mut(i + 1);
                std::mem::swap(&mut a[i].current, &mut b[0].current);
                std::mem::swap(&mut a[i].current_cost, &mut b[0].current_cost);
                self.swaps_accepted += 1;
            }
            i += 2;
        }
        self.round += 1;
    }

    /// Best state and cost over all replicas (ties resolved by rung
    /// index, deterministically).
    ///
    /// # Panics
    ///
    /// Panics if the run has no replicas (constructor forbids this).
    #[must_use]
    pub fn best(&self) -> (&S, f64) {
        let mut idx = 0;
        for (i, r) in self.replicas.iter().enumerate() {
            if r.best_cost < self.replicas[idx].best_cost {
                idx = i;
            }
        }
        (&self.replicas[idx].best, self.replicas[idx].best_cost)
    }

    /// Sums of proposals/accepted over all replicas.
    #[must_use]
    pub fn totals(&self) -> (u64, u64) {
        self.replicas
            .iter()
            .fold((0, 0), |(p, a), r| (p + r.proposals, a + r.accepted))
    }

    /// Runs to completion sequentially and returns the ensemble best.
    #[must_use]
    pub fn run_to_completion(mut self) -> AnnealResult<S> {
        let mut eval = |s: &S| s.cost();
        while !self.is_done() {
            self.step_round(&mut eval);
        }
        let (best, best_cost) = self.best();
        let best = best.clone();
        let (proposals, accepted) = self.totals();
        AnnealResult {
            best,
            best_cost,
            proposals: proposals as usize,
            accepted: accepted as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy problem: minimize (x - 7)² over integers via ±1 moves.
    #[derive(Clone, Debug, PartialEq)]
    struct Quad(i64);

    impl AnnealState for Quad {
        fn neighbour(&self, rng: &mut Rng64) -> Self {
            Quad(self.0 + if rng.gen_bool() { 1 } else { -1 })
        }
        fn cost(&self) -> f64 {
            let d = (self.0 - 7) as f64;
            d * d
        }
    }

    #[test]
    fn finds_the_minimum() {
        let r = anneal(Quad(-40), &Schedule::standard(), 1);
        assert_eq!(r.best.0, 7);
        assert_eq!(r.best_cost, 0.0);
        assert!(r.accepted > 0 && r.accepted <= r.proposals);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = anneal(Quad(-40), &Schedule::quick(), 42);
        let b = anneal(Quad(-40), &Schedule::quick(), 42);
        assert_eq!(a.best.0, b.best.0);
        assert_eq!(a.proposals, b.proposals);
        assert_eq!(a.accepted, b.accepted);
        // The tempered ensemble is deterministic per seed too: swap
        // decisions draw from a dedicated seeded stream, never the
        // wall clock.
        let ta = TemperedRun::new(Quad(-40), &Schedule::quick(), 4, 42).run_to_completion();
        let tb = TemperedRun::new(Quad(-40), &Schedule::quick(), 4, 42).run_to_completion();
        assert_eq!(ta.best.0, tb.best.0);
        assert_eq!(ta.best_cost.to_bits(), tb.best_cost.to_bits());
        assert_eq!(ta.proposals, tb.proposals);
        assert_eq!(ta.accepted, tb.accepted);
        let tc = TemperedRun::new(Quad(-40), &Schedule::quick(), 4, 43).run_to_completion();
        assert!(
            tc.accepted != ta.accepted || tc.best.0 != ta.best.0 || tc.proposals == ta.proposals,
            "different seeds explore differently"
        );
    }

    #[test]
    fn best_cost_never_worse_than_initial() {
        for seed in 0..5 {
            let initial = Quad(100);
            let c0 = initial.cost();
            let r = anneal(initial, &Schedule::quick(), seed);
            assert!(r.best_cost <= c0);
        }
    }

    #[test]
    #[should_panic(expected = "cooling must be in (0, 1)")]
    fn invalid_schedule_rejected() {
        let bad = Schedule {
            cooling: 1.5,
            ..Schedule::quick()
        };
        let _ = anneal(Quad(0), &bad, 0);
    }

    #[test]
    fn stepped_run_matches_run_to_completion() {
        // The sliced runner is the same chain as `anneal` regardless of
        // slice size.
        let whole = anneal(Quad(-40), &Schedule::quick(), 5);
        for slice in [1_usize, 7, 40, 1000] {
            let mut run = AnnealRun::new(Quad(-40), &Schedule::quick(), 5);
            while !run.is_done() {
                run.step(slice);
            }
            let r = run.into_result();
            assert_eq!(r.best.0, whole.best.0, "slice {slice}");
            assert_eq!(r.proposals, whole.proposals);
            assert_eq!(r.accepted, whole.accepted);
        }
    }

    #[test]
    fn resume_equivalence() {
        // Checkpoint mid-run (at an awkward, non-round boundary) and
        // resume: the continuation must be bitwise-identical to the
        // uninterrupted run.
        let schedule = Schedule::standard();
        let mut uninterrupted = AnnealRun::new(Quad(-40), &schedule, 9);
        while !uninterrupted.is_done() {
            uninterrupted.step(schedule.moves_per_round);
        }

        let mut first = AnnealRun::new(Quad(-40), &schedule, 9);
        first.step(503);
        let cp = first.checkpoint();
        assert_eq!(cp.step, 503);
        let mut resumed = AnnealRun::from_checkpoint(&schedule, cp);
        while !resumed.is_done() {
            resumed.step(17);
        }

        assert_eq!(resumed.rng_state(), uninterrupted.rng_state());
        let (rb, rc) = resumed.best();
        let (ub, uc) = uninterrupted.best();
        assert_eq!(rb, ub);
        assert_eq!(rc.to_bits(), uc.to_bits());
        let r = resumed.into_result();
        let u = uninterrupted.into_result();
        assert_eq!(r.proposals, u.proposals);
        assert_eq!(r.accepted, u.accepted);
    }

    #[test]
    fn ladder_spans_the_schedule() {
        let s = Schedule::standard();
        let ladder = temperature_ladder(&s, 5);
        assert_eq!(ladder.len(), 5);
        assert!((ladder[0] - s.t_start).abs() < 1e-12);
        assert!((ladder[4] - s.t_end).abs() < 1e-12);
        for w in ladder.windows(2) {
            assert!(w[1] < w[0], "ladder must cool monotonically");
        }
        assert_eq!(temperature_ladder(&s, 1), vec![s.t_start]);
    }

    #[test]
    fn schedule_rounds_counts_executed_rounds() {
        let s = Schedule::quick();
        let r = anneal(Quad(0), &s, 0);
        assert_eq!(r.proposals, schedule_rounds(&s) * s.moves_per_round);
    }

    #[test]
    fn tempered_finds_the_minimum_and_swaps() {
        let run = TemperedRun::new(Quad(-40), &Schedule::standard(), 4, 1);
        let mut live = run;
        let mut eval = |s: &Quad| s.cost();
        while !live.is_done() {
            live.step_round(&mut eval);
        }
        assert!(live.swaps_accepted > 0, "adjacent rungs should exchange");
        let (best, best_cost) = live.best();
        assert_eq!(best.0, 7);
        assert_eq!(best_cost, 0.0);
    }

    #[test]
    fn tempered_is_schedule_order_independent() {
        // Running replica rounds out of order (as a fan-out scheduler
        // would) yields bit-identical results to the sequential path.
        let schedule = Schedule::quick();
        let sequential = TemperedRun::new(Quad(-40), &schedule, 3, 11).run_to_completion();
        let mut shuffled = TemperedRun::new(Quad(-40), &schedule, 3, 11);
        while !shuffled.is_done() {
            // Reverse order within the round.
            for i in (0..shuffled.replicas.len()).rev() {
                let t = shuffled.ladder[i];
                let moves = shuffled.moves_per_round;
                shuffled.replicas[i].round(t, moves, &mut |s| s.cost());
            }
            shuffled.swap_round();
        }
        let (best, best_cost) = shuffled.best();
        assert_eq!(best.0, sequential.best.0);
        assert_eq!(best_cost.to_bits(), sequential.best_cost.to_bits());
        let (p, a) = shuffled.totals();
        assert_eq!(p as usize, sequential.proposals);
        assert_eq!(a as usize, sequential.accepted);
    }
}
