//! Randomized property tests for the geometric-multigrid solver and the
//! multigrid-preconditioned CG: agreement with the plain Jacobi-CG
//! reference, per-cycle residual contraction, and the bitwise
//! parallel-equivalence guarantee inherited from the stencil engine.
//!
//! Meshes here are larger and more heterogeneous than the plain-solver
//! property suite so the hierarchy always has several levels to work
//! with: per-layer conductivity contrast, random sink strength, and a
//! handful of scattered sources.

use tsc_rng::Rng64;
use tsc_thermal::{CgSolver, Heatsink, MgSolver, Preconditioner, Problem};
use tsc_units::{HeatTransferCoefficient, Length, Power, Temperature, ThermalConductivity};

/// A random heterogeneous stack: every layer gets its own conductivity
/// (up to ~300x contrast), the sink strength spans two decades, and a
/// few point sources land anywhere in the volume.
#[derive(Debug, Clone)]
struct HeteroCase {
    nx: usize,
    ny: usize,
    nz: usize,
    layer_k: Vec<f64>,
    h: f64,
    ambient_c: f64,
    sources: Vec<(usize, usize, usize, f64)>,
}

impl HeteroCase {
    fn sample(rng: &mut Rng64) -> Self {
        let nx = rng.gen_range(3..10);
        let ny = rng.gen_range(3..10);
        let nz = rng.gen_range(4..9);
        let layer_k = (0..nz).map(|_| rng.gen_range_f64(0.5..150.0)).collect();
        let sources = (0..4)
            .map(|_| {
                (
                    rng.gen_range(0..nx),
                    rng.gen_range(0..ny),
                    rng.gen_range(0..nz),
                    rng.gen_range_f64(0.05..3.0),
                )
            })
            .collect();
        Self {
            nx,
            ny,
            nz,
            layer_k,
            h: rng.gen_range_f64(1e4..1e6),
            ambient_c: rng.gen_range_f64(20.0..110.0),
            sources,
        }
    }
}

fn build(case: &HeteroCase) -> Problem {
    let mut p = Problem::uniform_block(
        case.nx,
        case.ny,
        case.nz,
        Length::from_millimeters(1.0),
        Length::from_millimeters(1.0),
        Length::from_micrometers(50.0),
        ThermalConductivity::new(case.layer_k[0]),
    );
    for (layer, &k) in case.layer_k.iter().enumerate() {
        p.set_layer_conductivity(
            layer,
            ThermalConductivity::new(k),
            ThermalConductivity::new(k),
        );
    }
    p.set_bottom_heatsink(Heatsink::new(
        HeatTransferCoefficient::new(case.h),
        Temperature::from_celsius(case.ambient_c),
    ));
    for &(i, j, k, w) in &case.sources {
        p.add_power(i, j, k, Power::from_watts(w));
    }
    p
}

fn max_dev_kelvin(a: &tsc_thermal::Solution, b: &tsc_thermal::Solution) -> f64 {
    a.temperatures
        .iter_kelvin()
        .zip(b.temperatures.iter_kelvin())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0_f64, f64::max)
}

/// Standalone V-cycle iteration and MG-preconditioned CG must land on
/// the same temperature field as the plain Jacobi-CG reference.
#[test]
fn mg_and_mg_pcg_agree_with_plain_cg() {
    let mut rng = Rng64::seed_from_u64(0x7001);
    for _ in 0..10 {
        let case = HeteroCase::sample(&mut rng);
        let p = build(&case);
        let reference = CgSolver::new().solve(&p).expect("jacobi cg");
        let standalone = MgSolver::new()
            .with_tolerance(1e-10)
            .with_coarse_limit(24)
            .solve(&p)
            .expect("standalone mg");
        let pcg = CgSolver::new()
            .with_preconditioner(Preconditioner::Multigrid)
            .solve(&p)
            .expect("mg-pcg");
        let dev_mg = max_dev_kelvin(&standalone, &reference);
        let dev_pcg = max_dev_kelvin(&pcg, &reference);
        assert!(dev_mg < 1e-6, "standalone MG deviates by {dev_mg} K");
        assert!(dev_pcg < 1e-6, "MG-PCG deviates by {dev_pcg} K");
        assert_eq!(pcg.stats.preconditioner, Preconditioner::Multigrid);
        assert!(pcg.stats.cycles > 0, "MG-PCG must report V-cycle count");
        assert!(
            !pcg.stats.level_residuals.is_empty(),
            "per-level residuals must be recorded"
        );
    }
}

/// Every V-cycle of the standalone solver contracts the residual: the
/// sampled trajectory must be strictly decreasing (up to the tolerance
/// floor where rounding can stall it).
#[test]
fn every_v_cycle_contracts_the_residual() {
    let mut rng = Rng64::seed_from_u64(0x7002);
    for _ in 0..10 {
        let case = HeteroCase::sample(&mut rng);
        let p = build(&case);
        let sol = MgSolver::new()
            .with_coarse_limit(24)
            .solve(&p)
            .expect("mg solves");
        let traj = &sol.stats.trajectory;
        assert!(traj.len() >= 2, "trajectory too short: {traj:?}");
        for pair in traj.windows(2) {
            let (_, before) = pair[0];
            let (_, after) = pair[1];
            assert!(
                after < before,
                "V-cycle failed to contract: {before} -> {after} (case {case:?})"
            );
        }
    }
}

/// Forced-parallel (threads > 1, crossover 0 so even tiny meshes band)
/// and serial multigrid must produce *bitwise identical* results — the
/// ordered-reduction guarantee extends through smoothing, transfers and
/// the preconditioned CG loop.
#[test]
fn forced_parallel_mg_is_bitwise_identical_to_serial() {
    let mut rng = Rng64::seed_from_u64(0x7003);
    for _ in 0..8 {
        let case = HeteroCase::sample(&mut rng);
        let p = build(&case);
        for threads in [3, 4] {
            let serial = MgSolver::new()
                .with_threads(1)
                .with_coarse_limit(24)
                .solve(&p)
                .expect("serial mg");
            let parallel = MgSolver::new()
                .with_threads(threads)
                .with_parallel_crossover(0)
                .with_coarse_limit(24)
                .solve(&p)
                .expect("parallel mg");
            let identical = serial
                .temperatures
                .iter_kelvin()
                .zip(parallel.temperatures.iter_kelvin())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                identical,
                "standalone MG not bitwise thread-independent at {threads} threads"
            );
            assert_eq!(serial.stats.iterations, parallel.stats.iterations);
        }
    }
}

#[test]
fn forced_parallel_mg_pcg_is_bitwise_identical_to_serial() {
    let mut rng = Rng64::seed_from_u64(0x7004);
    for _ in 0..8 {
        let case = HeteroCase::sample(&mut rng);
        let p = build(&case);
        for threads in [3, 4] {
            let serial = CgSolver::new()
                .with_preconditioner(Preconditioner::Multigrid)
                .with_threads(1)
                .solve(&p)
                .expect("serial mg-pcg");
            let parallel = CgSolver::new()
                .with_preconditioner(Preconditioner::Multigrid)
                .with_threads(threads)
                .with_parallel_crossover(0)
                .solve(&p)
                .expect("parallel mg-pcg");
            let identical = serial
                .temperatures
                .iter_kelvin()
                .zip(parallel.temperatures.iter_kelvin())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                identical,
                "MG-PCG not bitwise thread-independent at {threads} threads"
            );
            assert_eq!(serial.stats.iterations, parallel.stats.iterations);
            assert_eq!(serial.stats.cycles, parallel.stats.cycles);
        }
    }
}

/// The preconditioner actually earns its keep: on these heterogeneous
/// meshes MG-PCG must never need more fine-grid iterations than plain
/// Jacobi CG, and must win clearly on aggregate.
#[test]
fn mg_pcg_needs_fewer_iterations_than_jacobi() {
    let mut rng = Rng64::seed_from_u64(0x7005);
    let (mut total_jacobi, mut total_mg) = (0usize, 0usize);
    for _ in 0..10 {
        let case = HeteroCase::sample(&mut rng);
        let p = build(&case);
        let jacobi = CgSolver::new().solve(&p).expect("jacobi");
        let mg = CgSolver::new()
            .with_preconditioner(Preconditioner::Multigrid)
            .solve(&p)
            .expect("mg-pcg");
        assert!(
            mg.stats.iterations <= jacobi.stats.iterations,
            "MG-PCG took {} iterations vs Jacobi's {} (case {case:?})",
            mg.stats.iterations,
            jacobi.stats.iterations
        );
        total_jacobi += jacobi.stats.iterations;
        total_mg += mg.stats.iterations;
    }
    assert!(
        2 * total_mg <= total_jacobi,
        "MG-PCG must at least halve aggregate iterations: {total_mg} vs {total_jacobi}"
    );
}
