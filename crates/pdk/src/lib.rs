//! A 7 nm-class predictive metal stack — the ASAP7 substitute.
//!
//! The paper implements its flows on the ASAP7 PDK \[11\]. ASAP7's layer
//! geometry is published; this crate reproduces the quantities the
//! thermal/physical-design flows actually consume:
//!
//! * [`MetalStack`] — layer thicknesses/pitches of M1–M9 and the via
//!   layers, the 240 nm M8/V8/M9 "scaffolding target" group, and the
//!   per-layer dielectric assignment (ultra-low-k everywhere, or thermal
//!   dielectric in the upper group — the scaffolding modification);
//! * [`wire`] — per-length wire resistance and capacitance from layer
//!   geometry and dielectric permittivity (parallel-plate + coupling),
//!   and the repeatered-wire (buffered Elmore) delay per length that the
//!   timing-penalty model builds on.
//!
//! # Example: the scaffolding dielectric swap
//!
//! ```
//! use tsc_pdk::MetalStack;
//!
//! let baseline = MetalStack::asap7();
//! let scaffolded = MetalStack::asap7().with_thermal_dielectric_upper();
//! // Upper-layer signal capacitance doubles (ε 2 -> 4)...
//! let c0 = baseline.upper_wire_capacitance_per_length();
//! let c1 = scaffolded.upper_wire_capacitance_per_length();
//! assert!((c1 / c0 - 2.0).abs() < 1e-9);
//! // ...but repeatered delay only grows by sqrt(2) on those layers.
//! let d0 = baseline.upper_repeatered_delay_per_length();
//! let d1 = scaffolded.upper_repeatered_delay_per_length();
//! assert!((d1 / d0 - 2.0_f64.sqrt()).abs() < 1e-6);
//! ```

// No crate outside tsc-thermal may contain `unsafe` (enforced
// statically here and by `cargo run -p tsc-analyze`).
#![forbid(unsafe_code)]

mod stack;
pub mod wire;

pub use stack::{Layer, LayerGroup, MetalStack};
