//! Fig. 5 — dielectric constant of polycrystalline diamond vs grain
//! size, and the Maxwell-Garnett porosity inset (Eq. 2).

use tsc_bench::{banner, compare, series};
use tsc_materials::dielectric::{
    design_permittivity, grain_size_permittivity, maxwell_garnett, porosity_for_target, FREE_SPACE,
    LITERATURE_FILMS, SINGLE_CRYSTAL_DIAMOND,
};
use tsc_units::RelativePermittivity;

fn main() {
    banner("Fig. 5: dielectric constant vs grain size (literature fit)");
    let sweep: Vec<(f64, f64)> = (0..=50)
        .map(|i| {
            let d = 30.0 + (1500.0 - 30.0) * f64::from(i) / 50.0;
            (d, grain_size_permittivity(d).get())
        })
        .collect();
    series("epsilon(grain size nm)", sweep);

    println!("literature anchors:");
    for &(d, e) in &LITERATURE_FILMS {
        compare(
            &format!("  ε at {d:.0} nm grains"),
            format!("{e:.1}"),
            format!("{:.2}", grain_size_permittivity(d).get()),
        );
    }

    banner("Fig. 5 inset: Maxwell-Garnett porosity (Eq. 2)");
    let host = SINGLE_CRYSTAL_DIAMOND;
    let inset: Vec<(f64, f64)> = (0..=20)
        .map(|i| {
            let f = f64::from(i) / 20.0;
            (f * 100.0, maxwell_garnett(host, FREE_SPACE, f).get())
        })
        .collect();
    series("epsilon(volume % air), bulk diamond host", inset);

    compare(
        "modern ultra-low-k dielectrics",
        "ε ≈ 2",
        format!("{}", RelativePermittivity::ULTRA_LOW_K.get()),
    );
    compare(
        "pessimistic scaffolding design value",
        "ε = 4",
        format!("{}", design_permittivity().get()),
    );
    let f4 = porosity_for_target(host, design_permittivity()).expect("reachable");
    compare(
        "porosity needed for ε = 4 from bulk diamond",
        "(design space, Fig. 5 inset)",
        format!("{:.0} % air", f4 * 100.0),
    );
    let f2 = porosity_for_target(host, RelativePermittivity::new(2.0)).expect("reachable");
    compare(
        "porosity to match today's ultra-low-k (ε = 2)",
        "(upper bound of inset)",
        format!("{:.0} % air", f2 * 100.0),
    );
}
