//! Linear solvers for the assembled finite-volume system.
//!
//! The discretized problem is `A·T = b` with `A` symmetric positive
//! definite whenever at least one convective boundary is present:
//!
//! * diagonal: sum of all face conductances incident on the cell (plus the
//!   boundary conductance for cells on a heatsink face);
//! * off-diagonal: minus the shared face conductance;
//! * right-hand side: injected power plus `G_boundary · T_ambient`.
//!
//! [`CgSolver`] (Jacobi-preconditioned conjugate gradients) is the
//! workhorse; [`SorSolver`] (successive over-relaxation) provides an
//! algorithmically independent cross-check used by the validation tests.

use crate::analysis::EnergyBalance;
use crate::field::TemperatureField;
use crate::problem::Problem;
use tsc_geometry::{Dim3, Grid3};
use tsc_units::Power;

/// Failure modes of a solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// Neither face carries a heatsink: the pure-Neumann problem is
    /// singular (temperature defined only up to a constant).
    NoBoundary,
    /// The iteration did not reach the tolerance within the budget.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Final relative residual.
        residual: f64,
    },
}

impl core::fmt::Display for SolveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NoBoundary => {
                write!(f, "no heatsink attached: steady-state problem is singular")
            }
            Self::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge within {iterations} iterations (residual {residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// Convergence statistics of a successful solve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SolverStats {
    /// Iterations used.
    pub iterations: usize,
    /// Final relative residual `‖b − A·T‖ / ‖b‖`.
    pub residual: f64,
}

/// A solved thermal problem.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The temperature field.
    pub temperatures: TemperatureField,
    /// Convergence statistics.
    pub stats: SolverStats,
    /// Global energy balance (injected vs extracted power).
    pub energy: EnergyBalance,
}

/// Pre-assembled face conductances and right-hand side.
#[derive(Debug)]
pub(crate) struct Assembled {
    dim: Dim3,
    gx: Vec<f64>,
    gy: Vec<f64>,
    gz: Vec<f64>,
    g_bottom: Vec<f64>,
    g_top: Vec<f64>,
    diag: Vec<f64>,
    rhs: Vec<f64>,
    t_bottom: f64,
    t_top: f64,
    initial_guess: f64,
}

impl Assembled {
    /// Mesh dimensions of the assembled system.
    pub(crate) fn dim(&self) -> Dim3 {
        self.dim
    }

    /// The assembled right-hand side (power + boundary terms).
    pub(crate) fn rhs(&self) -> &[f64] {
        &self.rhs
    }

    /// Jacobi-preconditioned CG on the diagonally shifted system
    /// `(A + diag(shift))·x = rhs`, warm-started from `x` — the inner
    /// solve of implicit-Euler transient stepping.
    pub(crate) fn cg_shifted(
        &self,
        shift: &[f64],
        rhs: &[f64],
        x: &mut [f64],
        tol: f64,
        max_iter: usize,
    ) -> Result<SolverStats, SolveError> {
        let n = self.dim.len();
        debug_assert_eq!(shift.len(), n);
        debug_assert_eq!(rhs.len(), n);
        debug_assert_eq!(x.len(), n);
        let b_norm = norm(rhs).max(f64::MIN_POSITIVE);
        let matvec_shifted = |v: &[f64], out: &mut [f64]| {
            self.matvec(v, out);
            for c in 0..n {
                out[c] += shift[c] * v[c];
            }
        };
        let mut r = vec![0.0; n];
        let mut ax = vec![0.0; n];
        matvec_shifted(x, &mut ax);
        for c in 0..n {
            r[c] = rhs[c] - ax[c];
        }
        let diag: Vec<f64> = self.diag.iter().zip(shift).map(|(d, s)| d + s).collect();
        let mut z: Vec<f64> = r.iter().zip(&diag).map(|(ri, di)| ri / di).collect();
        let mut pv = z.clone();
        let mut rz = dot(&r, &z);
        let mut ap = vec![0.0; n];
        let mut residual = norm(&r) / b_norm;
        let mut iterations = 0;
        while residual > tol && iterations < max_iter {
            matvec_shifted(&pv, &mut ap);
            let alpha = rz / dot(&pv, &ap);
            for c in 0..n {
                x[c] += alpha * pv[c];
                r[c] -= alpha * ap[c];
            }
            for c in 0..n {
                z[c] = r[c] / diag[c];
            }
            let rz_next = dot(&r, &z);
            let beta = rz_next / rz;
            rz = rz_next;
            for c in 0..n {
                pv[c] = z[c] + beta * pv[c];
            }
            residual = norm(&r) / b_norm;
            iterations += 1;
        }
        if residual > tol {
            return Err(SolveError::NotConverged {
                iterations,
                residual,
            });
        }
        Ok(SolverStats {
            iterations,
            residual,
        })
    }

    pub(crate) fn build(p: &Problem) -> Result<Self, SolveError> {
        let bottom = p.bottom_heatsink();
        let top = p.top_heatsink();
        if bottom.is_none() && top.is_none() {
            return Err(SolveError::NoBoundary);
        }
        let dim = p.dim();
        let (nx, ny, nz) = (dim.nx, dim.ny, dim.nz);
        let mut gx = vec![0.0; (nx.saturating_sub(1)) * ny * nz];
        let mut gy = vec![0.0; nx * ny.saturating_sub(1) * nz];
        let mut gz = vec![0.0; nx * ny * nz.saturating_sub(1)];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if i + 1 < nx {
                        gx[(k * ny + j) * (nx - 1) + i] = p.gx(i, j, k);
                    }
                    if j + 1 < ny {
                        gy[(k * (ny - 1) + j) * nx + i] = p.gy(i, j, k);
                    }
                    if k + 1 < nz {
                        gz[(k * ny + j) * nx + i] = p.gz(i, j, k);
                    }
                }
            }
        }
        let mut g_bottom = vec![0.0; nx * ny];
        let mut g_top = vec![0.0; nx * ny];
        for j in 0..ny {
            for i in 0..nx {
                g_bottom[j * nx + i] = p.g_bottom(i, j);
                g_top[j * nx + i] = p.g_top(i, j);
            }
        }
        let t_bottom = bottom.map_or(0.0, |hs| hs.ambient.kelvin());
        let t_top = top.map_or(0.0, |hs| hs.ambient.kelvin());

        let n = dim.len();
        let mut diag = vec![0.0; n];
        let mut rhs = p.power_flat().to_vec();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = dim.flat(i, j, k);
                    let mut d = 0.0;
                    if i + 1 < nx {
                        d += gx[(k * ny + j) * (nx - 1) + i];
                    }
                    if i > 0 {
                        d += gx[(k * ny + j) * (nx - 1) + i - 1];
                    }
                    if j + 1 < ny {
                        d += gy[(k * (ny - 1) + j) * nx + i];
                    }
                    if j > 0 {
                        d += gy[(k * (ny - 1) + j - 1) * nx + i];
                    }
                    if k + 1 < nz {
                        d += gz[(k * ny + j) * nx + i];
                    }
                    if k > 0 {
                        d += gz[((k - 1) * ny + j) * nx + i];
                    }
                    if k == 0 {
                        let g = g_bottom[j * nx + i];
                        d += g;
                        rhs[c] += g * t_bottom;
                    }
                    if k == nz - 1 {
                        let g = g_top[j * nx + i];
                        d += g;
                        rhs[c] += g * t_top;
                    }
                    diag[c] = d;
                }
            }
        }
        let initial_guess = if bottom.is_some() { t_bottom } else { t_top };
        Ok(Self {
            dim,
            gx,
            gy,
            gz,
            g_bottom,
            g_top,
            diag,
            rhs,
            t_bottom,
            t_top,
            initial_guess,
        })
    }

    /// `y = A·x` (matrix-free seven-point stencil).
    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        let (nx, ny, nz) = (self.dim.nx, self.dim.ny, self.dim.nz);
        for (c, out) in y.iter_mut().enumerate() {
            *out = self.diag[c] * x[c];
        }
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = self.dim.flat(i, j, k);
                    if i + 1 < nx {
                        let g = self.gx[(k * ny + j) * (nx - 1) + i];
                        let d = c + 1;
                        y[c] -= g * x[d];
                        y[d] -= g * x[c];
                    }
                    if j + 1 < ny {
                        let g = self.gy[(k * (ny - 1) + j) * nx + i];
                        let d = c + nx;
                        y[c] -= g * x[d];
                        y[d] -= g * x[c];
                    }
                    if k + 1 < nz {
                        let g = self.gz[(k * ny + j) * nx + i];
                        let d = c + nx * ny;
                        y[c] -= g * x[d];
                        y[d] -= g * x[c];
                    }
                }
            }
        }
    }

    fn energy_balance(&self, t: &[f64], injected: f64) -> EnergyBalance {
        let (nx, ny, nz) = (self.dim.nx, self.dim.ny, self.dim.nz);
        let mut extracted = 0.0;
        for j in 0..ny {
            for i in 0..nx {
                let cb = self.dim.flat(i, j, 0);
                extracted += self.g_bottom[j * nx + i] * (t[cb] - self.t_bottom);
                let ct = self.dim.flat(i, j, nz - 1);
                extracted += self.g_top[j * nx + i] * (t[ct] - self.t_top);
            }
        }
        EnergyBalance {
            injected: Power::from_watts(injected),
            extracted: Power::from_watts(extracted),
        }
    }

    fn into_solution(self, t: Vec<f64>, stats: SolverStats, injected: f64) -> Solution {
        let energy = self.energy_balance(&t, injected);
        let mut grid = Grid3::filled(self.dim, 0.0);
        grid.as_mut_slice().copy_from_slice(&t);
        Solution {
            temperatures: TemperatureField::from_kelvin(grid),
            stats,
            energy,
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Jacobi-preconditioned conjugate-gradient solver.
///
/// ```
/// use tsc_thermal::CgSolver;
/// let solver = CgSolver::new().with_tolerance(1e-10).with_max_iterations(20_000);
/// assert!(solver.tolerance() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgSolver {
    tol: f64,
    max_iter: usize,
}

impl CgSolver {
    /// Default solver: relative tolerance `1e-9`, generous iteration cap.
    #[must_use]
    pub fn new() -> Self {
        Self {
            tol: 1e-9,
            max_iter: 50_000,
        }
    }

    /// Builder: sets the relative residual tolerance.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tol < 1`.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        assert!(tol > 0.0 && tol < 1.0, "tolerance must be in (0, 1)");
        self.tol = tol;
        self
    }

    /// Builder: sets the iteration cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_iter` is zero.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iter: usize) -> Self {
        assert!(max_iter > 0, "iteration cap must be positive");
        self.max_iter = max_iter;
        self
    }

    /// Configured tolerance.
    #[must_use]
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    /// Solves the problem.
    ///
    /// # Errors
    ///
    /// [`SolveError::NoBoundary`] when no heatsink is attached;
    /// [`SolveError::NotConverged`] when the residual stalls above the
    /// tolerance.
    pub fn solve(&self, p: &Problem) -> Result<Solution, SolveError> {
        let asm = Assembled::build(p)?;
        let n = asm.dim.len();
        let b_norm = norm(&asm.rhs).max(f64::MIN_POSITIVE);

        let mut x = vec![asm.initial_guess; n];
        let mut r = vec![0.0; n];
        let mut ax = vec![0.0; n];
        asm.matvec(&x, &mut ax);
        for c in 0..n {
            r[c] = asm.rhs[c] - ax[c];
        }
        let mut z: Vec<f64> = r.iter().zip(&asm.diag).map(|(ri, di)| ri / di).collect();
        let mut pv = z.clone();
        let mut rz = dot(&r, &z);
        let mut ap = vec![0.0; n];
        let mut residual = norm(&r) / b_norm;
        let mut iterations = 0;

        while residual > self.tol && iterations < self.max_iter {
            asm.matvec(&pv, &mut ap);
            let alpha = rz / dot(&pv, &ap);
            for c in 0..n {
                x[c] += alpha * pv[c];
                r[c] -= alpha * ap[c];
            }
            for c in 0..n {
                z[c] = r[c] / asm.diag[c];
            }
            let rz_next = dot(&r, &z);
            let beta = rz_next / rz;
            rz = rz_next;
            for c in 0..n {
                pv[c] = z[c] + beta * pv[c];
            }
            residual = norm(&r) / b_norm;
            iterations += 1;
        }

        if residual > self.tol {
            return Err(SolveError::NotConverged {
                iterations,
                residual,
            });
        }
        let injected = p.total_power().watts();
        Ok(asm.into_solution(
            x,
            SolverStats {
                iterations,
                residual,
            },
            injected,
        ))
    }
}

impl Default for CgSolver {
    fn default() -> Self {
        Self::new()
    }
}

/// Successive over-relaxation (Gauss-Seidel with relaxation factor ω).
///
/// Slower than CG on large meshes but algorithmically independent — used
/// to cross-check CG solutions as the paper cross-checks PACT against
/// COMSOL and Celsius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SorSolver {
    omega: f64,
    tol: f64,
    max_sweeps: usize,
}

impl SorSolver {
    /// Default: ω = 1.9, tolerance 1e-9.
    #[must_use]
    pub fn new() -> Self {
        Self {
            omega: 1.9,
            tol: 1e-9,
            max_sweeps: 200_000,
        }
    }

    /// Builder: relaxation factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < omega < 2` (SOR stability bound).
    #[must_use]
    pub fn with_omega(mut self, omega: f64) -> Self {
        assert!(
            omega > 0.0 && omega < 2.0,
            "SOR requires 0 < omega < 2, got {omega}"
        );
        self.omega = omega;
        self
    }

    /// Builder: relative residual tolerance.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tol < 1`.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        assert!(tol > 0.0 && tol < 1.0, "tolerance must be in (0, 1)");
        self.tol = tol;
        self
    }

    /// Builder: sweep cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_sweeps` is zero.
    #[must_use]
    pub fn with_max_sweeps(mut self, max_sweeps: usize) -> Self {
        assert!(max_sweeps > 0, "sweep cap must be positive");
        self.max_sweeps = max_sweeps;
        self
    }

    /// Solves the problem.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CgSolver::solve`].
    pub fn solve(&self, p: &Problem) -> Result<Solution, SolveError> {
        let asm = Assembled::build(p)?;
        let dim = asm.dim;
        let (nx, ny, nz) = (dim.nx, dim.ny, dim.nz);
        let n = dim.len();
        let b_norm = norm(&asm.rhs).max(f64::MIN_POSITIVE);
        let mut x = vec![asm.initial_guess; n];
        let mut sweeps = 0;
        let mut residual = f64::INFINITY;

        while sweeps < self.max_sweeps {
            for k in 0..nz {
                for j in 0..ny {
                    for i in 0..nx {
                        let c = dim.flat(i, j, k);
                        let mut sigma = 0.0;
                        if i > 0 {
                            sigma += asm.gx[(k * ny + j) * (nx - 1) + i - 1] * x[c - 1];
                        }
                        if i + 1 < nx {
                            sigma += asm.gx[(k * ny + j) * (nx - 1) + i] * x[c + 1];
                        }
                        if j > 0 {
                            sigma += asm.gy[(k * (ny - 1) + j - 1) * nx + i] * x[c - nx];
                        }
                        if j + 1 < ny {
                            sigma += asm.gy[(k * (ny - 1) + j) * nx + i] * x[c + nx];
                        }
                        if k > 0 {
                            sigma += asm.gz[((k - 1) * ny + j) * nx + i] * x[c - nx * ny];
                        }
                        if k + 1 < nz {
                            sigma += asm.gz[(k * ny + j) * nx + i] * x[c + nx * ny];
                        }
                        let gs = (asm.rhs[c] + sigma) / asm.diag[c];
                        x[c] += self.omega * (gs - x[c]);
                    }
                }
            }
            sweeps += 1;
            if sweeps % 10 == 0 || sweeps == self.max_sweeps {
                let mut ax = vec![0.0; n];
                asm.matvec(&x, &mut ax);
                let r: f64 = asm
                    .rhs
                    .iter()
                    .zip(&ax)
                    .map(|(b, a)| (b - a) * (b - a))
                    .sum::<f64>()
                    .sqrt();
                residual = r / b_norm;
                if residual <= self.tol {
                    break;
                }
            }
        }

        if residual > self.tol {
            return Err(SolveError::NotConverged {
                iterations: sweeps,
                residual,
            });
        }
        let injected = p.total_power().watts();
        Ok(asm.into_solution(
            x,
            SolverStats {
                iterations: sweeps,
                residual,
            },
            injected,
        ))
    }
}

impl Default for SorSolver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatsink::Heatsink;
    use tsc_units::{HeatFlux, HeatTransferCoefficient, Length, Temperature, ThermalConductivity};

    fn slab(nx: usize, ny: usize, nz: usize, k: f64) -> Problem {
        Problem::uniform_block(
            nx,
            ny,
            nz,
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.0),
            Length::from_micrometers(100.0),
            ThermalConductivity::new(k),
        )
    }

    #[test]
    fn no_boundary_is_singular() {
        let p = slab(4, 4, 4, 100.0);
        assert_eq!(
            CgSolver::new().solve(&p).unwrap_err(),
            SolveError::NoBoundary
        );
        assert_eq!(
            SorSolver::new().solve(&p).unwrap_err(),
            SolveError::NoBoundary
        );
    }

    /// Analytic 1-D check: uniform flux q'' through a slab of thickness L,
    /// conductivity k, into a sink of coefficient h:
    /// `T_top = T_amb + q''/h + q''·L/k` (within half-cell discretization).
    #[test]
    fn one_dimensional_slab_matches_analytic() {
        let mut p = slab(4, 4, 32, 10.0);
        p.set_bottom_heatsink(Heatsink::new(
            HeatTransferCoefficient::new(1e5),
            Temperature::from_celsius(25.0),
        ));
        let q = HeatFlux::from_watts_per_square_cm(100.0);
        p.add_uniform_top_flux(q);
        let sol = CgSolver::new().solve(&p).expect("converges");
        let t_top = sol.temperatures.layer_max(31).celsius();
        // Source sits at the top cell *center*, so conduction spans
        // L - dz/2 of the slab.
        let l_eff = 100e-6 * (1.0 - 0.5 / 32.0);
        let expected = 25.0 + 1e6 / 1e5 + 1e6 * l_eff / 10.0;
        assert!(
            (t_top - expected).abs() < 0.05,
            "expected {expected:.3} °C, got {t_top:.3} °C"
        );
    }

    #[test]
    fn energy_is_conserved() {
        let mut p = slab(8, 8, 8, 50.0);
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_power(3, 4, 7, tsc_units::Power::from_watts(2.5));
        p.add_power(1, 1, 3, tsc_units::Power::from_watts(0.5));
        let sol = CgSolver::new().solve(&p).expect("converges");
        assert!(
            sol.energy.relative_error() < 1e-6,
            "balance error {}",
            sol.energy.relative_error()
        );
    }

    #[test]
    fn maximum_principle_holds() {
        // With all heat injected and a single sink, every temperature sits
        // at or above ambient and the peak is at a heated cell.
        let mut p = slab(8, 8, 6, 20.0);
        p.set_bottom_heatsink(Heatsink::microfluidic());
        p.add_power(4, 4, 5, tsc_units::Power::from_watts(1.0));
        let sol = CgSolver::new().solve(&p).expect("converges");
        let ambient = Temperature::from_celsius(25.0);
        assert!(sol.temperatures.min_temperature() >= ambient - tsc_units::TempDelta::new(1e-9));
        assert_eq!(
            sol.temperatures.hottest_cell(),
            tsc_geometry::Index3::new(4, 4, 5)
        );
    }

    #[test]
    fn cg_and_sor_agree() {
        let mut p = slab(6, 6, 6, 5.0);
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_power(2, 3, 5, tsc_units::Power::from_watts(1.0));
        p.set_layer_conductivity(
            3,
            ThermalConductivity::new(0.5),
            ThermalConductivity::new(2.0),
        );
        let a = CgSolver::new().solve(&p).expect("cg");
        let b = SorSolver::new()
            .with_tolerance(1e-10)
            .solve(&p)
            .expect("sor");
        let ta = a.temperatures.max_temperature().kelvin();
        let tb = b.temperatures.max_temperature().kelvin();
        assert!(
            (ta - tb).abs() < 1e-3,
            "solvers disagree: {ta:.6} vs {tb:.6}"
        );
    }

    #[test]
    fn top_heatsink_works_alone() {
        let mut p = slab(4, 4, 4, 100.0);
        p.set_top_heatsink(Heatsink::forced_air());
        p.add_power(0, 0, 0, tsc_units::Power::from_watts(0.1));
        let sol = CgSolver::new().solve(&p).expect("converges");
        assert!(sol.energy.relative_error() < 1e-6);
        // Heat must flow up: bottom is hotter than top.
        assert!(sol.temperatures.layer_max(0) > sol.temperatures.layer_max(3));
    }

    #[test]
    fn hotter_with_more_power() {
        let mut p1 = slab(6, 6, 4, 10.0);
        p1.set_bottom_heatsink(Heatsink::two_phase());
        p1.add_power(3, 3, 3, tsc_units::Power::from_watts(1.0));
        let mut p2 = p1.clone();
        p2.add_power(3, 3, 3, tsc_units::Power::from_watts(1.0));
        let t1 = CgSolver::new()
            .solve(&p1)
            .expect("p1")
            .temperatures
            .max_temperature();
        let t2 = CgSolver::new()
            .solve(&p2)
            .expect("p2")
            .temperatures
            .max_temperature();
        assert!(t2 > t1);
    }

    #[test]
    fn cooler_with_pillar_inclusion() {
        // A poor-conductivity stack heated at the top; blending a 10%
        // high-k column under the source must reduce the peak.
        let make = |with_pillar: bool| {
            let mut p = slab(6, 6, 8, 0.5);
            p.set_bottom_heatsink(Heatsink::two_phase());
            p.add_power(3, 3, 7, tsc_units::Power::from_watts(0.5));
            if with_pillar {
                for k in 0..8 {
                    p.blend_vertical_inclusion(3, 3, k, 0.1, ThermalConductivity::new(105.0));
                }
            }
            CgSolver::new()
                .solve(&p)
                .expect("solve")
                .temperatures
                .max_temperature()
        };
        let without = make(false);
        let with = make(true);
        assert!(
            with.kelvin() + 1.0 < without.kelvin(),
            "pillar must cool: {with} vs {without}"
        );
    }

    #[test]
    fn unconverged_reports_stats() {
        let mut p = slab(8, 8, 8, 0.2);
        p.set_bottom_heatsink(Heatsink::two_phase());
        p.add_power(4, 4, 7, tsc_units::Power::from_watts(1.0));
        let err = CgSolver::new()
            .with_max_iterations(1)
            .solve(&p)
            .unwrap_err();
        match err {
            SolveError::NotConverged {
                iterations,
                residual,
            } => {
                assert_eq!(iterations, 1);
                assert!(residual > 0.0);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }
}
