//! Property-based tests for the finite-volume solver: physical invariants
//! that must hold for *any* well-posed problem.

use proptest::prelude::*;
use tsc_thermal::{CgSolver, Heatsink, Problem, SorSolver};
use tsc_units::{
    HeatTransferCoefficient, Length, Power, TempDelta, Temperature, ThermalConductivity,
};

/// A small random problem: dimensions, conductivity contrast, heat
/// placement and sink parameters all fuzzed.
#[derive(Debug, Clone)]
struct RandomCase {
    nx: usize,
    ny: usize,
    nz: usize,
    k_base: f64,
    k_layer: f64,
    hot_layer: usize,
    hot_i: usize,
    hot_j: usize,
    hot_k: usize,
    watts: f64,
    h: f64,
    ambient_c: f64,
}

fn random_case() -> impl Strategy<Value = RandomCase> {
    (
        2usize..7,
        2usize..7,
        2usize..6,
        0.1f64..200.0,
        0.1f64..200.0,
        0usize..6,
        0usize..7,
        0usize..7,
        0usize..6,
        0.01f64..5.0,
        1e4f64..1e6,
        20.0f64..110.0,
    )
        .prop_map(
            |(nx, ny, nz, k_base, k_layer, hot_layer, hot_i, hot_j, hot_k, watts, h, ambient_c)| {
                RandomCase {
                    nx,
                    ny,
                    nz,
                    k_base,
                    k_layer,
                    hot_layer: hot_layer % nz,
                    hot_i: hot_i % nx,
                    hot_j: hot_j % ny,
                    hot_k: hot_k % nz,
                    watts,
                    h,
                    ambient_c,
                }
            },
        )
}

fn build(case: &RandomCase) -> Problem {
    let mut p = Problem::uniform_block(
        case.nx,
        case.ny,
        case.nz,
        Length::from_millimeters(1.0),
        Length::from_millimeters(1.0),
        Length::from_micrometers(50.0),
        ThermalConductivity::new(case.k_base),
    );
    p.set_layer_conductivity(
        case.hot_layer,
        ThermalConductivity::new(case.k_layer),
        ThermalConductivity::new(case.k_layer),
    );
    p.set_bottom_heatsink(Heatsink::new(
        HeatTransferCoefficient::new(case.h),
        Temperature::from_celsius(case.ambient_c),
    ));
    p.add_power(
        case.hot_i,
        case.hot_j,
        case.hot_k,
        Power::from_watts(case.watts),
    );
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn energy_always_balances(case in random_case()) {
        // The residual tolerance is 1e-9, but ill-conditioned random
        // cases (high contrast + weak sinks) amplify it into the energy
        // functional; 1e-4 relative is still far beyond any physical
        // modelling error.
        let sol = CgSolver::new().solve(&build(&case)).expect("well-posed");
        prop_assert!(sol.energy.relative_error() < 1e-4,
            "imbalance {}", sol.energy.relative_error());
    }

    #[test]
    fn maximum_principle(case in random_case()) {
        let sol = CgSolver::new().solve(&build(&case)).expect("well-posed");
        let ambient = Temperature::from_celsius(case.ambient_c);
        // No cell may fall below ambient (single sink, sources only).
        prop_assert!(sol.temperatures.min_temperature() >= ambient - TempDelta::new(1e-9));
        // The hottest cell is the heated one.
        let hottest = sol.temperatures.hottest_cell();
        prop_assert_eq!((hottest.i, hottest.j, hottest.k),
            (case.hot_i, case.hot_j, case.hot_k));
    }

    #[test]
    fn power_scaling_is_linear(case in random_case()) {
        // Steady conduction is linear: doubling power doubles every rise.
        let p1 = build(&case);
        let mut p2 = build(&case);
        p2.add_power(case.hot_i, case.hot_j, case.hot_k, Power::from_watts(case.watts));
        let s1 = CgSolver::new().solve(&p1).expect("p1");
        let s2 = CgSolver::new().solve(&p2).expect("p2");
        let ambient = Temperature::from_celsius(case.ambient_c);
        let rise1 = (s1.temperatures.max_temperature() - ambient).kelvin();
        let rise2 = (s2.temperatures.max_temperature() - ambient).kelvin();
        prop_assert!((rise2 - 2.0 * rise1).abs() <= 1e-6 * rise1.max(1e-12),
            "rise1 {rise1}, rise2 {rise2}");
    }

    #[test]
    fn better_conductivity_never_hurts(case in random_case()) {
        let p1 = build(&case);
        let mut better = case.clone();
        better.k_base *= 2.0;
        better.k_layer *= 2.0;
        let p2 = build(&better);
        let t1 = CgSolver::new().solve(&p1).expect("p1").temperatures.max_temperature();
        let t2 = CgSolver::new().solve(&p2).expect("p2").temperatures.max_temperature();
        prop_assert!(t2 <= t1 + TempDelta::new(1e-9),
            "doubling k heated the chip: {t1} -> {t2}");
    }

    #[test]
    fn stronger_heatsink_never_hurts(case in random_case()) {
        let p1 = build(&case);
        let mut better = case.clone();
        better.h *= 3.0;
        let p2 = build(&better);
        let t1 = CgSolver::new().solve(&p1).expect("p1").temperatures.max_temperature();
        let t2 = CgSolver::new().solve(&p2).expect("p2").temperatures.max_temperature();
        prop_assert!(t2 <= t1 + TempDelta::new(1e-9));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cg_and_sor_agree_on_random_problems(case in random_case()) {
        let p = build(&case);
        let a = CgSolver::new().solve(&p).expect("cg");
        let b = SorSolver::new().with_tolerance(1e-10).solve(&p).expect("sor");
        let ta = a.temperatures.max_temperature().kelvin();
        let tb = b.temperatures.max_temperature().kelvin();
        prop_assert!((ta - tb).abs() < 1e-3 * (ta - 273.15).abs().max(1.0),
            "cg {ta} vs sor {tb}");
    }
}
