//! Property tests for the mixed-precision solve path: the f32 inner
//! multigrid-CG wrapped in f64 iterative refinement must land on the
//! same answer as the pure-f64 path, for *any* well-posed heterogeneous
//! problem — the refinement loop, not the f32 arithmetic, owns the
//! final tolerance.
//!
//! Cases come from a deterministic [`Rng64`] stream per test, with
//! per-cell conductivity scatter and a buried low-k slab so the
//! operator has real contrast (the regime where f32 rounding would
//! show if the refinement were broken).

use tsc_rng::Rng64;
use tsc_thermal::{CgSolver, Heatsink, Precision, Preconditioner, Problem, Smoother, Solution};
use tsc_units::{
    HeatFlux, HeatTransferCoefficient, Length, Power, Temperature, ThermalConductivity,
};

/// A random heterogeneous stack: moderate mesh (large enough for a real
/// multigrid hierarchy), a buried low-k slab, per-cell lateral scatter,
/// a point source and a uniform top flux.
#[derive(Debug, Clone)]
struct RandomCase {
    nx: usize,
    ny: usize,
    nz: usize,
    k_base: f64,
    k_slab: f64,
    slab: usize,
    scatter_seed: u64,
    hot_i: usize,
    hot_j: usize,
    watts: f64,
    flux: f64,
    h: f64,
}

impl RandomCase {
    fn sample(rng: &mut Rng64) -> Self {
        let nx = rng.gen_range(8..17);
        let ny = rng.gen_range(8..17);
        let nz = rng.gen_range(6..13);
        Self {
            nx,
            ny,
            nz,
            k_base: rng.gen_range_f64(50.0..200.0),
            k_slab: rng.gen_range_f64(0.5..5.0),
            slab: rng.gen_range(1..nz - 1),
            scatter_seed: rng.next_u64(),
            hot_i: rng.gen_range(0..nx),
            hot_j: rng.gen_range(0..ny),
            watts: rng.gen_range_f64(0.05..2.0),
            flux: rng.gen_range_f64(20.0..150.0),
            h: rng.gen_range_f64(5e4..5e5),
        }
    }
}

fn build(case: &RandomCase) -> Problem {
    let mut p = Problem::uniform_block(
        case.nx,
        case.ny,
        case.nz,
        Length::from_millimeters(1.0),
        Length::from_millimeters(1.0),
        Length::from_micrometers(40.0),
        ThermalConductivity::new(case.k_base),
    );
    p.set_layer_conductivity(
        case.slab,
        ThermalConductivity::new(case.k_slab),
        ThermalConductivity::new(2.0 * case.k_slab),
    );
    // Per-cell scatter in the top layer (±50%), so no two rows of the
    // operator are alike.
    let mut scatter = Rng64::seed_from_u64(case.scatter_seed);
    for j in 0..case.ny {
        for i in 0..case.nx {
            let f = 0.5 + scatter.gen_range_f64(0.0..1.0);
            p.set_conductivity(
                i,
                j,
                case.nz - 1,
                ThermalConductivity::new(case.k_base * f),
                ThermalConductivity::new(case.k_base * f),
            );
        }
    }
    p.set_bottom_heatsink(Heatsink::new(
        HeatTransferCoefficient::new(case.h),
        Temperature::from_celsius(25.0),
    ));
    p.add_power(
        case.hot_i,
        case.hot_j,
        case.nz - 1,
        Power::from_watts(case.watts),
    );
    p.add_uniform_top_flux(HeatFlux::from_watts_per_square_cm(case.flux));
    p
}

fn max_deviation_kelvin(a: &Solution, b: &Solution) -> f64 {
    a.temperatures
        .iter_kelvin()
        .zip(b.temperatures.iter_kelvin())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0_f64, f64::max)
}

/// The refinement loop owns the tolerance: at 1e-11 relative residual the
/// mixed and pure-f64 solutions must agree far below any physical scale.
#[test]
fn mixed_matches_f64_on_random_heterogeneous_meshes() {
    let mut rng = Rng64::seed_from_u64(0x6101);
    for round in 0..6 {
        let case = RandomCase::sample(&mut rng);
        let p = build(&case);
        let f64_sol = CgSolver::new()
            .with_tolerance(1e-11)
            .with_preconditioner(Preconditioner::Multigrid)
            .solve(&p)
            .expect("f64 solve");
        let mixed_sol = CgSolver::new()
            .with_tolerance(1e-11)
            .with_precision(Precision::Mixed)
            .solve(&p)
            .expect("mixed solve");
        assert_eq!(mixed_sol.stats.precision, Precision::Mixed);
        assert!(
            mixed_sol.stats.refinements >= 1,
            "round {round}: mixed solve reported no refinement passes"
        );
        assert!(mixed_sol.stats.residual <= 1e-11, "round {round}");
        let dev = max_deviation_kelvin(&f64_sol, &mixed_sol);
        assert!(
            dev < 1e-7,
            "round {round} ({case:?}): mixed deviates from f64 by {dev} K"
        );
    }
}

/// Chebyshev and red-black smoothing are different multigrid engines but
/// precondition the same operator: both must reach the same fixed point.
#[test]
fn chebyshev_and_red_black_mixed_agree() {
    let mut rng = Rng64::seed_from_u64(0x6102);
    for round in 0..4 {
        let case = RandomCase::sample(&mut rng);
        let p = build(&case);
        let rb = CgSolver::new()
            .with_tolerance(1e-11)
            .with_precision(Precision::Mixed)
            .with_smoother(Smoother::RedBlack)
            .solve(&p)
            .expect("red-black mixed");
        let cheb = CgSolver::new()
            .with_tolerance(1e-11)
            .with_precision(Precision::Mixed)
            .with_smoother(Smoother::Chebyshev)
            .solve(&p)
            .expect("chebyshev mixed");
        let dev = max_deviation_kelvin(&rb, &cheb);
        assert!(
            dev < 1e-7,
            "round {round} ({case:?}): smoothers disagree by {dev} K"
        );
    }
}

/// The Chebyshev smoother is also valid on the pure-f64 multigrid path;
/// it must agree with the default red-black smoother there too.
#[test]
fn chebyshev_f64_multigrid_matches_red_black() {
    let mut rng = Rng64::seed_from_u64(0x6103);
    for round in 0..4 {
        let case = RandomCase::sample(&mut rng);
        let p = build(&case);
        let rb = CgSolver::new()
            .with_tolerance(1e-11)
            .with_preconditioner(Preconditioner::Multigrid)
            .solve(&p)
            .expect("red-black f64");
        let cheb = CgSolver::new()
            .with_tolerance(1e-11)
            .with_preconditioner(Preconditioner::Multigrid)
            .with_smoother(Smoother::Chebyshev)
            .solve(&p)
            .expect("chebyshev f64");
        let dev = max_deviation_kelvin(&rb, &cheb);
        assert!(
            dev < 1e-8,
            "round {round} ({case:?}): f64 smoothers disagree by {dev} K"
        );
    }
}

/// Mixed solves keep the engine's determinism guarantee: the f32 inner
/// kernels use the same per-slab ordered reductions as the f64 path, so
/// any thread count reproduces the serial bits.
#[test]
fn mixed_is_bitwise_thread_count_independent() {
    let mut rng = Rng64::seed_from_u64(0x6104);
    for round in 0..4 {
        let case = RandomCase::sample(&mut rng);
        let p = build(&case);
        let solve = |threads: usize| {
            CgSolver::new()
                .with_tolerance(1e-11)
                .with_precision(Precision::Mixed)
                .with_threads(threads)
                .with_parallel_crossover(0)
                .solve(&p)
                .expect("mixed solve")
        };
        let serial: Vec<u64> = solve(1)
            .temperatures
            .iter_kelvin()
            .map(f64::to_bits)
            .collect();
        for threads in [2, 4] {
            let parallel: Vec<u64> = solve(threads)
                .temperatures
                .iter_kelvin()
                .map(f64::to_bits)
                .collect();
            assert_eq!(
                serial, parallel,
                "round {round}: {threads} threads changed the mixed-path bits"
            );
        }
    }
}
