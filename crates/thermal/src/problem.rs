//! The discretized thermal problem: mesh, conductivities, sources,
//! boundary conditions.

use crate::heatsink::Heatsink;
use tsc_geometry::{Dim3, Grid2, Grid3};
use tsc_units::{HeatFlux, Length, Power, ThermalConductivity};

/// A steady-state conduction problem on a structured mesh.
///
/// The mesh is uniform laterally (cells of `dx × dy`) and non-uniform
/// vertically (per-layer thickness `dz[k]`, bottom `k = 0` to top).
/// Conductivity is anisotropic per cell: `kz` cross-plane, `kxy` in-plane.
/// Heat sources are stored as watts per cell. Side walls are adiabatic;
/// the bottom and top faces may carry a convective [`Heatsink`], whose
/// ambient may optionally vary per column via
/// [`Problem::set_bottom_ambient_map`] /
/// [`Problem::set_top_ambient_map`] (the manufactured-solution
/// verification hook: combined with an `h → ∞` heatsink it prescribes
/// Dirichlet face data).
///
/// Build one directly, via [`Problem::uniform_block`], or from a layer
/// stack with [`StackMeshBuilder`](crate::StackMeshBuilder).
#[derive(Debug, Clone)]
pub struct Problem {
    dim: Dim3,
    dx: Length,
    dy: Length,
    dz: Vec<Length>,
    /// Cross-plane conductivity per cell (W/m/K).
    kz: Grid3<f64>,
    /// In-plane conductivity per cell (W/m/K).
    kxy: Grid3<f64>,
    /// Heat injected per cell (W).
    power: Grid3<f64>,
    bottom: Option<Heatsink>,
    top: Option<Heatsink>,
    /// Per-column ambient override (K) for the bottom Robin boundary.
    bottom_ambient: Option<Grid2<f64>>,
    /// Per-column ambient override (K) for the top Robin boundary.
    top_ambient: Option<Grid2<f64>>,
}

impl Problem {
    /// Creates a problem over an `nx × ny` lateral grid with the given
    /// per-layer thicknesses, initialized to the given isotropic
    /// conductivity and zero power.
    ///
    /// # Panics
    ///
    /// Panics if `dz` is empty, any thickness or pitch is non-positive,
    /// or `k` is non-positive.
    #[must_use]
    pub fn new(
        nx: usize,
        ny: usize,
        dx: Length,
        dy: Length,
        dz: Vec<Length>,
        k: ThermalConductivity,
    ) -> Self {
        assert!(!dz.is_empty(), "at least one z layer required");
        assert!(
            dx.meters() > 0.0 && dy.meters() > 0.0,
            "lateral pitch must be positive"
        );
        assert!(
            dz.iter().all(|t| t.meters() > 0.0),
            "layer thicknesses must be positive"
        );
        assert!(k.get() > 0.0, "conductivity must be positive, got {k}");
        let dim = Dim3::new(nx, ny, dz.len());
        Self {
            dim,
            dx,
            dy,
            dz,
            kz: Grid3::filled(dim, k.get()),
            kxy: Grid3::filled(dim, k.get()),
            power: Grid3::filled(dim, 0.0),
            bottom: None,
            top: None,
            bottom_ambient: None,
            top_ambient: None,
        }
    }

    /// Convenience: a homogeneous block of total thickness `height` split
    /// into `nz` equal layers.
    ///
    /// # Panics
    ///
    /// As for [`Problem::new`]; additionally if `nz == 0`. `width` and
    /// `depth` are the *total* lateral extents, divided into `nx`/`ny`
    /// cells.
    #[must_use]
    pub fn uniform_block(
        nx: usize,
        ny: usize,
        nz: usize,
        width: Length,
        depth: Length,
        height: Length,
        k: ThermalConductivity,
    ) -> Self {
        assert!(nz > 0, "nz must be positive");
        let dz = vec![height / nz as f64; nz];
        Self::new(nx, ny, width / nx as f64, depth / ny as f64, dz, k)
    }

    /// Mesh dimensions.
    #[must_use]
    pub fn dim(&self) -> Dim3 {
        self.dim
    }

    /// Lateral cell pitch in x.
    #[must_use]
    pub fn dx(&self) -> Length {
        self.dx
    }

    /// Lateral cell pitch in y.
    #[must_use]
    pub fn dy(&self) -> Length {
        self.dy
    }

    /// Per-layer thicknesses, bottom to top.
    #[must_use]
    pub fn dz(&self) -> &[Length] {
        &self.dz
    }

    /// Total stack height.
    #[must_use]
    pub fn height(&self) -> Length {
        self.dz.iter().copied().sum()
    }

    /// Bottom heatsink, if any.
    #[must_use]
    pub fn bottom_heatsink(&self) -> Option<Heatsink> {
        self.bottom
    }

    /// Top heatsink, if any.
    #[must_use]
    pub fn top_heatsink(&self) -> Option<Heatsink> {
        self.top
    }

    /// Attaches a heatsink to the bottom face (`k = 0`).
    pub fn set_bottom_heatsink(&mut self, hs: Heatsink) {
        self.bottom = Some(hs);
    }

    /// Attaches a heatsink to the top face (`k = nz − 1`).
    pub fn set_top_heatsink(&mut self, hs: Heatsink) {
        self.top = Some(hs);
    }

    /// Prescribes a per-column ambient temperature (kelvin) for the
    /// bottom Robin boundary, overriding the bottom [`Heatsink`]'s
    /// scalar ambient. With an `h → ∞` film the boundary degenerates to
    /// Dirichlet face data — the analytic-boundary injection hook used
    /// by the `tsc-verify` manufactured-solution oracle. Ignored until a
    /// bottom heatsink is attached.
    ///
    /// # Panics
    ///
    /// Panics when the map's dimensions differ from the lateral mesh or
    /// any entry is non-finite.
    pub fn set_bottom_ambient_map(&mut self, map: Grid2<f64>) {
        assert!(
            map.nx() == self.dim.nx && map.ny() == self.dim.ny,
            "ambient map must be {}x{}, got {}x{}",
            self.dim.nx,
            self.dim.ny,
            map.nx(),
            map.ny()
        );
        assert!(
            map.iter().all(|t| t.is_finite()),
            "ambient map entries must be finite"
        );
        self.bottom_ambient = Some(map);
    }

    /// Prescribes a per-column ambient temperature (kelvin) for the top
    /// Robin boundary. See [`Problem::set_bottom_ambient_map`].
    ///
    /// # Panics
    ///
    /// Panics when the map's dimensions differ from the lateral mesh or
    /// any entry is non-finite.
    pub fn set_top_ambient_map(&mut self, map: Grid2<f64>) {
        assert!(
            map.nx() == self.dim.nx && map.ny() == self.dim.ny,
            "ambient map must be {}x{}, got {}x{}",
            self.dim.nx,
            self.dim.ny,
            map.nx(),
            map.ny()
        );
        assert!(
            map.iter().all(|t| t.is_finite()),
            "ambient map entries must be finite"
        );
        self.top_ambient = Some(map);
    }

    /// The bottom-boundary ambient override, if one is set.
    #[must_use]
    pub fn bottom_ambient_map(&self) -> Option<&Grid2<f64>> {
        self.bottom_ambient.as_ref()
    }

    /// The top-boundary ambient override, if one is set.
    #[must_use]
    pub fn top_ambient_map(&self) -> Option<&Grid2<f64>> {
        self.top_ambient.as_ref()
    }

    /// Ambient temperature (K) seen by the bottom face of column
    /// `(i, j)`: the per-column override when present, else the bottom
    /// heatsink's scalar ambient. Zero without a bottom heatsink.
    pub(crate) fn bottom_ambient_at(&self, i: usize, j: usize) -> f64 {
        match (&self.bottom_ambient, self.bottom) {
            (Some(map), Some(_)) => map[(i, j)],
            (None, Some(hs)) => hs.ambient.kelvin(),
            _ => 0.0,
        }
    }

    /// Ambient temperature (K) seen by the top face of column `(i, j)`.
    pub(crate) fn top_ambient_at(&self, i: usize, j: usize) -> f64 {
        match (&self.top_ambient, self.top) {
            (Some(map), Some(_)) => map[(i, j)],
            (None, Some(hs)) => hs.ambient.kelvin(),
            _ => 0.0,
        }
    }

    /// Sets the anisotropic conductivity of one cell.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds or either conductivity is non-positive.
    pub fn set_conductivity(
        &mut self,
        i: usize,
        j: usize,
        k: usize,
        vertical: ThermalConductivity,
        lateral: ThermalConductivity,
    ) {
        assert!(
            vertical.get() > 0.0 && lateral.get() > 0.0,
            "conductivity must be positive"
        );
        self.kz[(i, j, k)] = vertical.get();
        self.kxy[(i, j, k)] = lateral.get();
    }

    /// Sets the conductivity of an entire z layer.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of bounds or either conductivity is
    /// non-positive.
    pub fn set_layer_conductivity(
        &mut self,
        k: usize,
        vertical: ThermalConductivity,
        lateral: ThermalConductivity,
    ) {
        for j in 0..self.dim.ny {
            for i in 0..self.dim.nx {
                self.set_conductivity(i, j, k, vertical, lateral);
            }
        }
    }

    /// Blends a vertical high-conductivity inclusion (e.g. a pillar
    /// occupying `fraction` of the cell footprint) into cell `(i, j, k)`
    /// using the parallel rule vertically and leaving the lateral value
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds, `fraction` outside `[0, 1]`, or
    /// `k_inclusion` non-positive.
    pub fn blend_vertical_inclusion(
        &mut self,
        i: usize,
        j: usize,
        k: usize,
        fraction: f64,
        k_inclusion: ThermalConductivity,
    ) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "inclusion fraction must be within [0, 1], got {fraction}"
        );
        assert!(k_inclusion.get() > 0.0, "conductivity must be positive");
        let base = self.kz[(i, j, k)];
        self.kz[(i, j, k)] = (1.0 - fraction) * base + fraction * k_inclusion.get();
    }

    /// Adds heat to one cell.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn add_power(&mut self, i: usize, j: usize, k: usize, p: Power) {
        self.power[(i, j, k)] += p.watts();
    }

    /// Distributes a uniform heat flux over the entire top layer.
    pub fn add_uniform_top_flux(&mut self, flux: HeatFlux) {
        let per_cell = flux * (self.dx * self.dy);
        let top = self.dim.nz - 1;
        for j in 0..self.dim.ny {
            for i in 0..self.dim.nx {
                self.add_power(i, j, top, per_cell);
            }
        }
    }

    /// Paints a lateral power-density map (W/cell aggregated from W/m²)
    /// onto z layer `k`. The map is resampled to the mesh resolution if
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of bounds.
    pub fn add_flux_map(&mut self, k: usize, map: &Grid2<f64>) {
        assert!(k < self.dim.nz, "layer {k} out of range");
        let cell_area = (self.dx * self.dy).square_meters();
        let resampled;
        let map = if map.nx() == self.dim.nx && map.ny() == self.dim.ny {
            map
        } else {
            resampled = map.resampled(self.dim.nx, self.dim.ny);
            &resampled
        };
        for j in 0..self.dim.ny {
            for i in 0..self.dim.nx {
                self.power[(i, j, k)] += map[(i, j)] * cell_area;
            }
        }
    }

    /// Zeroes every cell's injected power while leaving geometry,
    /// conductivity and boundary conditions untouched.  The operator
    /// identity ([`crate::operator_fingerprint`] deliberately excludes
    /// power) is preserved, so a repowered problem re-solved through a
    /// [`crate::SolveContext`] is a pure power-delta: operator and
    /// hierarchy reuse plus a warm start.
    pub fn clear_power(&mut self) {
        for p in self.power.as_mut_slice() {
            *p = 0.0;
        }
    }

    /// Total injected power.
    #[must_use]
    pub fn total_power(&self) -> Power {
        Power::from_watts(self.power.iter().sum())
    }

    /// Power injected in one cell (W).
    #[must_use]
    pub fn cell_power(&self, i: usize, j: usize, k: usize) -> Power {
        Power::from_watts(self.power[(i, j, k)])
    }

    /// Cross-plane conductivity of a cell.
    #[must_use]
    pub fn kz_at(&self, i: usize, j: usize, k: usize) -> ThermalConductivity {
        ThermalConductivity::new(self.kz[(i, j, k)])
    }

    /// In-plane conductivity of a cell.
    #[must_use]
    pub fn kxy_at(&self, i: usize, j: usize, k: usize) -> ThermalConductivity {
        ThermalConductivity::new(self.kxy[(i, j, k)])
    }

    // --- assembly helpers used by the solvers ---------------------------

    /// Face conductance between laterally adjacent cells (x direction).
    pub(crate) fn gx(&self, i: usize, j: usize, k: usize) -> f64 {
        // Between (i,j,k) and (i+1,j,k): area dy*dz, distance dx/2 each side.
        let area = (self.dy * self.dz[k]).square_meters();
        let half = self.dx.meters() / 2.0;
        let k1 = self.kxy[(i, j, k)];
        let k2 = self.kxy[(i + 1, j, k)];
        area / (half / k1 + half / k2)
    }

    /// Face conductance between laterally adjacent cells (y direction).
    pub(crate) fn gy(&self, i: usize, j: usize, k: usize) -> f64 {
        let area = (self.dx * self.dz[k]).square_meters();
        let half = self.dy.meters() / 2.0;
        let k1 = self.kxy[(i, j, k)];
        let k2 = self.kxy[(i, j + 1, k)];
        area / (half / k1 + half / k2)
    }

    /// Face conductance between vertically adjacent cells.
    pub(crate) fn gz(&self, i: usize, j: usize, k: usize) -> f64 {
        let area = (self.dx * self.dy).square_meters();
        let h1 = self.dz[k].meters() / 2.0;
        let h2 = self.dz[k + 1].meters() / 2.0;
        let k1 = self.kz[(i, j, k)];
        let k2 = self.kz[(i, j, k + 1)];
        area / (h1 / k1 + h2 / k2)
    }

    /// Boundary conductance of the bottom face of cell `(i, j, 0)`:
    /// half-cell conduction in series with the convective film.
    pub(crate) fn g_bottom(&self, i: usize, j: usize) -> f64 {
        let Some(hs) = self.bottom else { return 0.0 };
        let area = (self.dx * self.dy).square_meters();
        let half = self.dz[0].meters() / 2.0;
        let k1 = self.kz[(i, j, 0)];
        1.0 / (half / (k1 * area) + 1.0 / (hs.h.get() * area))
    }

    /// Boundary conductance of the top face of cell `(i, j, nz − 1)`.
    pub(crate) fn g_top(&self, i: usize, j: usize) -> f64 {
        let Some(hs) = self.top else { return 0.0 };
        let area = (self.dx * self.dy).square_meters();
        let top = self.dim.nz - 1;
        let half = self.dz[top].meters() / 2.0;
        let k1 = self.kz[(i, j, top)];
        1.0 / (half / (k1 * area) + 1.0 / (hs.h.get() * area))
    }

    /// Raw power slice (W per cell) in flat order.
    ///
    /// Public so batch planners can fingerprint a family of repainted
    /// loads (see [`crate::affine_family`]) without re-deriving the
    /// staging order.
    pub fn power_flat(&self) -> &[f64] {
        self.power.as_slice()
    }

    /// Raw cross-plane conductivity slice in flat order — the
    /// [`crate::SolveContext`] compares it to detect operator changes.
    pub(crate) fn kz_flat(&self) -> &[f64] {
        self.kz.as_slice()
    }

    /// Raw in-plane conductivity slice in flat order.
    pub(crate) fn kxy_flat(&self) -> &[f64] {
        self.kxy.as_slice()
    }

    /// Heat flowing *out* through the bottom heatsink for a given solved
    /// field (positive = extracted). Zero when no bottom sink is attached.
    ///
    /// Used by homogenization to measure the through-flux between two
    /// fixed-temperature faces.
    #[must_use]
    pub fn boundary_power_bottom(&self, field: &crate::TemperatureField) -> Power {
        if self.bottom.is_none() {
            return Power::ZERO;
        }
        let mut w = 0.0;
        for j in 0..self.dim.ny {
            for i in 0..self.dim.nx {
                w += self.g_bottom(i, j)
                    * (field.at(i, j, 0).kelvin() - self.bottom_ambient_at(i, j));
            }
        }
        Power::from_watts(w)
    }

    /// Heat flowing *out* through the top heatsink (positive = extracted).
    /// Zero when no top sink is attached.
    #[must_use]
    pub fn boundary_power_top(&self, field: &crate::TemperatureField) -> Power {
        if self.top.is_none() {
            return Power::ZERO;
        }
        let top = self.dim.nz - 1;
        let mut w = 0.0;
        for j in 0..self.dim.ny {
            for i in 0..self.dim.nx {
                w += self.g_top(i, j) * (field.at(i, j, top).kelvin() - self.top_ambient_at(i, j));
            }
        }
        Power::from_watts(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_units::Temperature;

    fn simple() -> Problem {
        Problem::uniform_block(
            4,
            4,
            2,
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.0),
            Length::from_micrometers(10.0),
            ThermalConductivity::new(100.0),
        )
    }

    #[test]
    fn geometry_accessors() {
        let p = simple();
        assert_eq!(p.dim(), Dim3::new(4, 4, 2));
        assert!((p.dx().micrometers() - 250.0).abs() < 1e-9);
        assert!((p.height().micrometers() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn power_accumulates() {
        let mut p = simple();
        p.add_power(1, 1, 0, Power::from_watts(2.0));
        p.add_power(1, 1, 0, Power::from_watts(3.0));
        assert!((p.cell_power(1, 1, 0).watts() - 5.0).abs() < 1e-12);
        assert!((p.total_power().watts() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_top_flux_total() {
        let mut p = simple();
        p.add_uniform_top_flux(HeatFlux::from_watts_per_square_cm(100.0));
        // 1 mm² die at 100 W/cm² -> 1 W.
        assert!((p.total_power().watts() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flux_map_resamples() {
        let mut p = simple();
        let map = Grid2::filled(8, 8, 1e6); // 100 W/cm² as W/m², finer than mesh
        p.add_flux_map(1, &map);
        assert!((p.total_power().watts() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn face_conductances_symmetric_for_uniform_k() {
        let p = simple();
        let g1 = p.gx(0, 0, 0);
        let g2 = p.gx(2, 3, 1);
        assert!((g1 - g2).abs() < 1e-18);
        // Analytic: k*A/d with A = dy*dz = 250e-6 * 5e-6, d = dx = 250e-6.
        let expected = 100.0 * 250e-6 * 5e-6 / 250e-6;
        assert!((g1 - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn vertical_conductance_uses_harmonic_mean() {
        let mut p = simple();
        p.set_layer_conductivity(
            1,
            ThermalConductivity::new(1.0),
            ThermalConductivity::new(1.0),
        );
        let g = p.gz(0, 0, 0);
        let area = 250e-6_f64 * 250e-6;
        let expected = area / (2.5e-6 / 100.0 + 2.5e-6 / 1.0);
        assert!((g - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn boundary_conductance_includes_film_and_half_cell() {
        let mut p = simple();
        assert_eq!(p.g_bottom(0, 0), 0.0);
        p.set_bottom_heatsink(Heatsink::new(
            tsc_units::HeatTransferCoefficient::new(1e6),
            Temperature::from_celsius(100.0),
        ));
        let area = 250e-6_f64 * 250e-6;
        let expected = 1.0 / (2.5e-6 / (100.0 * area) + 1.0 / (1e6 * area));
        assert!((p.g_bottom(0, 0) - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn pillar_blend_raises_kz_only() {
        let mut p = simple();
        let kxy_before = p.kxy_at(1, 1, 0);
        p.blend_vertical_inclusion(1, 1, 0, 0.1, ThermalConductivity::new(1000.0));
        assert!((p.kz_at(1, 1, 0).get() - (0.9 * 100.0 + 0.1 * 1000.0)).abs() < 1e-9);
        assert_eq!(p.kxy_at(1, 1, 0), kxy_before);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn blend_rejects_bad_fraction() {
        let mut p = simple();
        p.blend_vertical_inclusion(0, 0, 0, 1.5, ThermalConductivity::new(1.0));
    }

    #[test]
    #[should_panic(expected = "at least one z layer")]
    fn empty_stack_rejected() {
        let _ = Problem::new(
            2,
            2,
            Length::from_micrometers(1.0),
            Length::from_micrometers(1.0),
            vec![],
            ThermalConductivity::new(1.0),
        );
    }
}
