//! Quickstart: stack a DNN accelerator 12 tiers high, cool it with
//! thermal scaffolding, and check the junction temperature.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use thermal_scaffolding::core::flows::{run_flow, CoolingStrategy, FlowConfig};
use thermal_scaffolding::designs::gemmini;
use thermal_scaffolding::thermal::Heatsink;
use thermal_scaffolding::units::{Ratio, Temperature};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A single-tier design: the Gemmini-class accelerator with its
    //    interleaved SRAM LLC (floorplan + power map, Fig. 8a).
    let design = gemmini::design();
    println!("design: {design}");
    println!(
        "per-tier worst-case power: {:.2} W ({:.0} W/cm² die average)",
        design.total_power(Ratio::ONE).watts(),
        design.average_flux(Ratio::ONE).watts_per_square_cm()
    );

    // 2. The scaffolding flow: thermal dielectric in M8/V8/M9 + pillar
    //    constellations bought with a 10 % footprint / 3 % delay budget.
    let config = FlowConfig {
        strategy: CoolingStrategy::Scaffolding,
        tiers: 12,
        heatsink: Heatsink::two_phase(),
        t_limit: Temperature::from_celsius(125.0),
        area_budget: Ratio::from_percent(10.0),
        delay_budget: Ratio::from_percent(3.0),
        ..FlowConfig::default()
    };
    let result = run_flow(&design, &config)?;

    println!(
        "scaffolded {} tiers: Tj = {} (limit {}) — {}",
        result.tiers,
        result.junction_temperature,
        config.t_limit,
        if result.meets_limit { "OK" } else { "TOO HOT" }
    );
    println!(
        "spent: {:.1} % footprint, {:.1} % delay, {:.1} % pillar density",
        result.footprint_penalty.percent(),
        result.delay_penalty.percent(),
        result.pillar_density.percent()
    );

    // 3. The same stack with conventional 3D thermal fails dramatically.
    let conventional = run_flow(
        &design,
        &FlowConfig {
            strategy: CoolingStrategy::ConventionalDummyVias,
            ..config
        },
    )?;
    println!(
        "conventional 3D thermal at the same budgets: Tj = {} — {}",
        conventional.junction_temperature,
        if conventional.meets_limit {
            "OK"
        } else {
            "TOO HOT"
        }
    );

    // 4. Tier-by-tier profile of the scaffolded stack.
    println!("tier profile (bottom to top):");
    for (t, temp) in result.solution.tier_profile().iter().enumerate() {
        println!("  tier {t:>2}: {temp}");
    }
    println!("energy balance: {}", result.solution.solution.energy);
    Ok(())
}
