//! The `tsc-analyze` gate binary.
//!
//! ```text
//! cargo run -p tsc-analyze                                   # lint + lock-order pass
//! cargo run -p tsc-analyze --features race-check -- --race-check
//!                                                            # + dynamic race checks
//! cargo run -p tsc-analyze -- --root path/to/tree            # analyze an arbitrary tree
//! ```
//!
//! Exit status: `0` clean, `1` violations or race-check failures,
//! `2` usage / environment errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use tsc_analyze::{lint_workspace, lockgraph, walk};

fn main() -> ExitCode {
    let mut race_check = false;
    let mut lint = true;
    let mut root_override: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--race-check" => race_check = true,
            "--no-lint" => lint = false,
            "--root" => match args.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("tsc-analyze: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "tsc-analyze: in-repo static-analysis gate\n\n\
                     USAGE: tsc-analyze [--race-check] [--no-lint] [--root DIR]\n\n\
                     --race-check  also run the dynamic write-set race checker and the\n\
                     \x20             schedule-perturbation harness (requires building with\n\
                     \x20             `--features race-check`)\n\
                     --no-lint     skip the source lint pass (the lock-order pass still runs)\n\
                     --root DIR    analyze every .rs file under DIR instead of the workspace\n\
                     \x20             (lock-order pass only; the lint pass stays on the\n\
                     \x20             workspace classification rules)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tsc-analyze: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let mut failed = false;
    let root = root_override.clone().unwrap_or_else(walk::workspace_root);

    if lint && root_override.is_none() {
        match lint_workspace(&root) {
            Ok(report) => {
                for (file, v) in &report.violations {
                    let rel = file.strip_prefix(&root).unwrap_or(file);
                    eprintln!("{}:{}: [{}] {}", rel.display(), v.line, v.rule, v.message);
                }
                if report.clean() {
                    println!("tsc-analyze: lint clean ({} files)", report.files);
                } else {
                    eprintln!(
                        "tsc-analyze: {} violation(s) across {} files",
                        report.violations.len(),
                        report.files
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("tsc-analyze: cannot walk workspace: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // The cross-file concurrency pass always runs: over the workspace by
    // default, or over an arbitrary tree with --root.
    let concurrency = if let Some(dir) = &root_override {
        walk::rs_files_under(dir).and_then(|files| lockgraph::analyze_files(dir, &files))
    } else {
        lockgraph::analyze_workspace(&root)
    };
    match concurrency {
        Ok(report) => {
            print!("{}", report.render_graph());
            for (file, v) in &report.violations {
                let rel = file.strip_prefix(&root).unwrap_or(file);
                eprintln!("{}:{}: [{}] {}", rel.display(), v.line, v.rule, v.message);
            }
            if report.clean() {
                println!(
                    "tsc-analyze: concurrency pass clean ({} files)",
                    report.files
                );
            } else {
                eprintln!(
                    "tsc-analyze: {} concurrency violation(s) across {} files",
                    report.violations.len(),
                    report.files
                );
                failed = true;
            }
        }
        Err(e) => {
            eprintln!("tsc-analyze: cannot run concurrency pass: {e}");
            return ExitCode::from(2);
        }
    }

    if race_check {
        #[cfg(feature = "race-check")]
        {
            match tsc_analyze::dynamic::run() {
                Ok(summary) => println!("{summary}"),
                Err(e) => {
                    eprintln!("tsc-analyze: race check FAILED: {e}");
                    failed = true;
                }
            }
        }
        #[cfg(not(feature = "race-check"))]
        {
            eprintln!(
                "tsc-analyze: built without the race checker — rerun as\n  \
                 cargo run -p tsc-analyze --features race-check -- --race-check"
            );
            return ExitCode::from(2);
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
