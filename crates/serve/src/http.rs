//! A hand-rolled, strictly bounded HTTP/1.1 parser.
//!
//! The service accepts bytes from untrusted sockets, so every dimension of
//! a request is capped *before* allocation: head size, header count, and
//! body size.  Parsing is incremental — [`parse_request`] is called on a
//! growing buffer and reports [`Parsed::Partial`] until a full request is
//! available, which makes split reads and pipelined requests natural to
//! handle.  Malformed input maps to a typed [`ParseError`] (and hence a
//! clean 4xx/5xx), never a panic.

use std::fmt;

/// Hard caps applied while parsing.  Exceeding any cap aborts the parse
/// with a typed error before the offending data is buffered further.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum size of the request line + headers + blank line, in bytes.
    pub max_head: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum declared `Content-Length`, in bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 8 * 1024,
            max_headers: 64,
            max_body: 1 << 20,
        }
    }
}

/// A fully parsed request.  Header names are stored lowercased; values are
/// trimmed of surrounding whitespace.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to be closed.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// Outcome of an incremental parse attempt.
#[derive(Debug)]
pub enum Parsed {
    /// A complete request plus the number of buffer bytes it consumed.
    Complete(Request, usize),
    /// More bytes are needed.
    Partial,
}

/// Typed parse failures; each maps to a specific HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Structurally invalid request (bad request line, bare LF, bad
    /// content-length syntax, duplicate content-length) → 400.
    Malformed(&'static str),
    /// Head or header-count cap exceeded → 431.
    HeadTooLarge,
    /// Declared body exceeds the cap → 413.
    BodyTooLarge,
    /// `Transfer-Encoding` is not supported by this server → 501.
    UnsupportedTransferEncoding,
}

impl ParseError {
    /// The HTTP status code this error should be answered with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Malformed(_) => 400,
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge => 413,
            ParseError::UnsupportedTransferEncoding => 501,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Malformed(why) => write!(f, "malformed request: {why}"),
            ParseError::HeadTooLarge => write!(f, "request head too large"),
            ParseError::BodyTooLarge => write!(f, "request body too large"),
            ParseError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding not supported")
            }
        }
    }
}

/// Find the end of the head (`\r\n\r\n`) in `buf`, returning the index one
/// past the terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Attempt to parse one request from the front of `buf`.
///
/// Returns `Parsed::Partial` when the buffer holds a valid prefix of a
/// request, `Parsed::Complete(req, consumed)` once the head and declared
/// body are fully buffered, and an error for any malformed or over-limit
/// input.  The caller drains `consumed` bytes and may call again with the
/// remainder (pipelining).
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Parsed, ParseError> {
    let head_end = match find_head_end(buf) {
        Some(end) => {
            if end > limits.max_head {
                return Err(ParseError::HeadTooLarge);
            }
            end
        }
        None => {
            // No terminator yet: reject early if the head can no longer fit,
            // or if a bare LF line-ending sneaks in.
            if buf.len() >= limits.max_head {
                return Err(ParseError::HeadTooLarge);
            }
            if has_bare_lf(buf) {
                return Err(ParseError::Malformed("bare LF line ending"));
            }
            return Ok(Parsed::Partial);
        }
    };

    let head = &buf[..head_end - 4];
    let head_str =
        std::str::from_utf8(head).map_err(|_| ParseError::Malformed("head is not valid UTF-8"))?;
    if head_str.contains('\u{0}') {
        return Err(ParseError::Malformed("NUL byte in head"));
    }

    let mut lines = head_str.split("\r\n");
    let request_line = lines
        .next()
        .ok_or(ParseError::Malformed("empty request line"))?;
    if request_line.contains('\n') {
        return Err(ParseError::Malformed("bare LF line ending"));
    }

    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(ParseError::Malformed("missing method"))?;
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or(ParseError::Malformed("missing or invalid path"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(ParseError::Malformed("extra tokens in request line"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed("invalid method token"));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.contains('\n') {
            return Err(ParseError::Malformed("bare LF line ending"));
        }
        if headers.len() >= limits.max_headers {
            return Err(ParseError::HeadTooLarge);
        }
        let colon = line
            .find(':')
            .ok_or(ParseError::Malformed("header line without colon"))?;
        let name = &line[..colon];
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(ParseError::Malformed("invalid header name"));
        }
        let name = name.to_ascii_lowercase();
        let value = line[colon + 1..].trim().to_string();

        if name == "transfer-encoding" {
            return Err(ParseError::UnsupportedTransferEncoding);
        }
        if name == "content-length" {
            if content_length.is_some() {
                return Err(ParseError::Malformed("duplicate content-length"));
            }
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseError::Malformed("non-numeric content-length"));
            }
            let parsed: usize = value
                .parse()
                .map_err(|_| ParseError::Malformed("content-length overflow"))?;
            if parsed > limits.max_body {
                return Err(ParseError::BodyTooLarge);
            }
            content_length = Some(parsed);
        }
        headers.push((name, value));
    }

    let body_len = content_length.unwrap_or(0);
    let total = head_end + body_len;
    if buf.len() < total {
        return Ok(Parsed::Partial);
    }

    Ok(Parsed::Complete(
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body: buf[head_end..total].to_vec(),
        },
        total,
    ))
}

/// True when the buffered prefix contains an LF that is not preceded by CR.
fn has_bare_lf(buf: &[u8]) -> bool {
    buf.iter()
        .enumerate()
        .any(|(i, &b)| b == b'\n' && (i == 0 || buf[i - 1] != b'\r'))
}

/// An outgoing response.  `to_bytes` renders a complete HTTP/1.1 message
/// with `Content-Length` always present so responses are self-delimiting.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// When set, emitted as a `Retry-After` header (seconds) — used by 429s.
    pub retry_after: Option<u32>,
    /// Additional headers appended verbatim (e.g. the sub-second
    /// `X-Retry-After-Ms` hint).  Names and values must be header-safe;
    /// all call sites pass literals or rendered integers.
    pub extra_headers: Vec<(String, String)>,
    /// When true, emits `Connection: close` and the server drops the socket.
    pub close: bool,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
            extra_headers: Vec::new(),
            close: false,
        }
    }

    pub fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.as_bytes().to_vec(),
            retry_after: None,
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        let body = tsc_bench::json::Json::object()
            .field("error", message)
            .pretty();
        Response::json(status, body)
    }

    pub fn with_close(mut self) -> Self {
        self.close = true;
        self
    }

    pub fn with_retry_after(mut self, seconds: u32) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Append an extra header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.extra_headers.push((name.to_string(), value));
        self
    }

    /// Render the full wire message.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\n",
                self.status,
                status_reason(self.status)
            )
            .as_bytes(),
        );
        out.extend_from_slice(format!("Content-Type: {}\r\n", self.content_type).as_bytes());
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        if let Some(secs) = self.retry_after {
            out.extend_from_slice(format!("Retry-After: {secs}\r\n").as_bytes());
        }
        for (name, value) in &self.extra_headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if self.close {
            out.extend_from_slice(b"Connection: close\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// Reason phrases for every status the server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(raw: &[u8]) -> (Request, usize) {
        match parse_request(raw, &Limits::default()) {
            Ok(Parsed::Complete(req, used)) => (req, used),
            other => panic!("expected complete request, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_minimal_get() {
        let (req, used) = parse_ok(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(used, 34);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_and_reports_consumed_bytes() {
        let raw = b"POST /v1/solve HTTP/1.1\r\nContent-Length: 4\r\n\r\n{}{}extra";
        let (req, used) = parse_ok(raw);
        assert_eq!(req.body, b"{}{}");
        assert_eq!(&raw[used..], b"extra");
    }

    #[test]
    fn split_reads_report_partial_until_complete() {
        let full = b"POST /v1/solve HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        for cut in 1..full.len() {
            match parse_request(&full[..cut], &Limits::default()) {
                Ok(Parsed::Partial) => {}
                other => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
        let (req, used) = parse_ok(full);
        assert_eq!(req.body, b"{}");
        assert_eq!(used, full.len());
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
        ] {
            let err = parse_request(raw, &Limits::default()).unwrap_err();
            assert_eq!(
                err.status(),
                400,
                "input {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn rejects_bad_content_length() {
        for raw in [
            &b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"[..],
            b"POST / HTTP/1.1\r\nContent-Length: 1e3\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: \r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\nx",
        ] {
            let err = parse_request(raw, &Limits::default()).unwrap_err();
            assert_eq!(err.status(), 400);
        }
    }

    #[test]
    fn enforces_size_caps() {
        let limits = Limits {
            max_head: 64,
            max_headers: 2,
            max_body: 8,
        };
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100));
        assert_eq!(
            parse_request(long_head.as_bytes(), &limits).unwrap_err(),
            ParseError::HeadTooLarge
        );
        let many_headers = b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n";
        assert_eq!(
            parse_request(many_headers, &limits).unwrap_err(),
            ParseError::HeadTooLarge
        );
        let big_body = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
        assert_eq!(
            parse_request(big_body, &limits).unwrap_err(),
            ParseError::BodyTooLarge
        );
    }

    #[test]
    fn rejects_transfer_encoding_and_bare_lf() {
        let te = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(
            parse_request(te, &Limits::default()).unwrap_err().status(),
            501
        );
        let lf = b"GET / HTTP/1.1\nHost: x\n\n";
        assert_eq!(
            parse_request(lf, &Limits::default()).unwrap_err().status(),
            400
        );
    }

    #[test]
    fn response_wire_format_is_self_delimiting() {
        let bytes = Response::error(429, "queue full")
            .with_retry_after(1)
            .with_close()
            .to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Content-Length: "));
        assert!(text.contains("\"error\": \"queue full\""));
    }
}
