//! Physical-design substrate: floorplanning, dummy fill, timing
//! penalties, power estimation and thermal-aware task scheduling.
//!
//! This crate stands in for the commercial flow of Fig. 6 (Innovus
//! floorplanning and fill, Corblivar simulated annealing, DC/PTPX power
//! estimation) with open reimplementations of the published algorithms:
//!
//! * [`floorplan`] — sequence-pair floorplanning with simulated
//!   annealing; the cost blends area and a fast peak-temperature proxy
//!   with the weight sweep of Sec. IIIB, under an HPWL wirelength
//!   constraint;
//! * [`anneal`] — the generic annealing engine behind it;
//! * [`fill`] — the timing-aware dummy-fill model: achievable fill
//!   density rises with area slack (Fig. 7b), bought with coupling
//!   capacitance; dummy *vias* convert fill into vertical conduction;
//! * [`timing`] — the critical-path delay-penalty model calibrated to
//!   the paper's three design points (scaffolding 10 % area → 3 % delay;
//!   pillars-only 34 % → 7 %; dummy fill 78 % → 17 %);
//! * [`power`] — activity-based module power (utilization scaling of
//!   Sec. IIIC, 72 % simulated → 100 % worst-case);
//! * [`schedule`] — thermal-aware task assignment: rank tier copies by
//!   simulated thermal resistance, give the hottest-running copies the
//!   coolest tasks (Sec. IIIB).

// No crate outside tsc-thermal may contain `unsafe` (enforced
// statically here and by `cargo run -p tsc-analyze`).
#![forbid(unsafe_code)]

pub mod anneal;
pub mod fill;
pub mod floorplan;
pub mod power;
pub mod schedule;
pub mod synthesis;
pub mod timing;
pub mod trace;
