//! Scalar observations quoted in Secs. I and IV: the 85 % ladder share,
//! the macro-hotspot reduction (Obs. 4b) and the misalignment tolerance
//! (Obs. 4c).

use tsc_bench::{banner, compare, series};
use tsc_core::beol::BeolProperties;
use tsc_core::studies::{
    macro_hotspot_pair, misaligned_rise, tolerable_misalignment, MacroStudyConfig, MisalignConfig,
};
use tsc_thermal::network::{Ladder, TierRung};
use tsc_thermal::Heatsink;
use tsc_units::{HeatFlux, Length, TempDelta};

fn main() -> Result<(), tsc_thermal::SolveError> {
    banner("Sec. I: tier-resistance share of the junction rise (3 tiers)");
    let rung = TierRung::new(
        HeatFlux::from_watts_per_square_cm(53.0),
        BeolProperties::conventional().tier_resistance(),
    );
    let ladder = Ladder::uniform(Heatsink::two_phase(), rung, 3);
    compare(
        "conduction share of Tj rise, 3-tier conventional stack",
        "85 %",
        format!("{:.0} %", ladder.conduction_fraction().percent()),
    );

    banner("Observation 4b: the 25 µm hard-macro hotspot (6-tier Gemmini)");
    let cfg = MacroStudyConfig::default();
    let (ulk, td) = macro_hotspot_pair(&cfg)?;
    compare(
        "macro excess rise, ultra-low-k upper layers",
        "15 °C",
        format!("{:.1} °C", ulk.kelvin()),
    );
    compare(
        "macro excess rise, thermal dielectric",
        "5 °C",
        format!("{:.1} °C", td.kelvin()),
    );
    compare(
        "reduction factor",
        "3x",
        format!("{:.1}x", ulk.kelvin() / td.kelvin()),
    );

    banner("Observation 4c: inter-tier pillar misalignment tolerance");
    let mcfg = MisalignConfig::default();
    let offsets: Vec<Length> = [0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4]
        .iter()
        .map(|&um| Length::from_micrometers(um))
        .collect();
    for scaffolded in [false, true] {
        let aligned = misaligned_rise(&mcfg, scaffolded, Length::ZERO)?;
        let pts: Vec<(f64, f64)> = offsets
            .iter()
            .map(|&off| {
                let r = misaligned_rise(&mcfg, scaffolded, off)?;
                Ok::<_, tsc_thermal::SolveError>((off.micrometers(), (r - aligned).kelvin()))
            })
            .collect::<Result<_, _>>()?;
        series(
            &format!(
                "misalignment penalty K vs offset µm ({})",
                if scaffolded {
                    "thermal dielectric"
                } else {
                    "ultra-low-k"
                }
            ),
            pts,
        );
    }
    let budget = TempDelta::new(1.0);
    let tol_ulk = tolerable_misalignment(&mcfg, false, &offsets, budget)?;
    let tol_td = tolerable_misalignment(&mcfg, true, &offsets, budget)?;
    compare(
        "tolerable offset, ultra-low-k",
        "300 nm",
        format!("{:.0} nm", tol_ulk.nanometers()),
    );
    compare(
        "tolerable offset, thermal dielectric",
        "1 µm",
        format!("{:.2} µm", tol_td.micrometers()),
    );
    Ok(())
}
