//! Deterministic solver fault injection
//! (`--features fault-inject` only — zero cost otherwise).
//!
//! The divergence-safety contract says no solver path ever returns `Ok`
//! with a non-finite or silently-perturbed temperature field. This
//! module *attacks* that contract on purpose: a seeded [`FaultPlan`]
//! breaks one solve in a controlled way — poisoning a cell of the
//! iterate with NaN/∞ at solve entry, corrupting a residual evaluation
//! mid-iteration, or truncating the iteration budget — and the
//! `tsc-verify` harness asserts every injected fault surfaces as a
//! typed error ([`crate::SolveError::Diverged`],
//! [`crate::SolveError::NotConverged`], or
//! `ElectrothermalError::ThermalRunaway` through the coupled loop),
//! never as a quietly wrong `Ok`.
//!
//! Plans are armed per **thread** ([`arm`]/[`disarm`]), so concurrently
//! running tests cannot contaminate each other, and every knob is
//! derived from a `tsc-rng` seed ([`FaultPlan::from_seed`]) so a failing
//! seed replays exactly.

use std::cell::Cell;

/// What to break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrite one cell of the iterate with NaN at solve entry.
    PoisonCellNan,
    /// Overwrite one cell of the iterate with +∞ at solve entry.
    PoisonCellInf,
    /// Replace a residual evaluation with NaN once the trigger
    /// iteration is reached.
    ResidualNan,
    /// Replace a residual evaluation with +∞ once the trigger iteration
    /// is reached.
    ResidualInf,
    /// Truncate the iteration/sweep/cycle budget to the trigger value.
    TruncateBudget,
}

/// A deterministic description of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// The corruption to apply.
    pub kind: FaultKind,
    /// Zero-based index of the solver invocation (per thread, counted
    /// from [`arm`]) the fault targets; earlier and later solves run
    /// clean. Lets a fault fire inside e.g. the electrothermal loop's
    /// *second* inner solve rather than the first.
    pub target_solve: usize,
    /// Iteration at which residual corruption fires, and the truncated
    /// budget for [`FaultKind::TruncateBudget`].
    pub trigger_iteration: usize,
    /// Poisoned cell as a fraction of the field length in `[0, 1)`.
    pub cell_position: f64,
}

impl FaultPlan {
    /// Derives a plan from a seed: every field comes from one
    /// `tsc-rng` SplitMix64 stream, so a seed fully determines the
    /// fault and a failing seed replays bit-for-bit.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = tsc_rng::Rng64::seed_from_u64(seed);
        let kind = match rng.gen_range(0..5) {
            0 => FaultKind::PoisonCellNan,
            1 => FaultKind::PoisonCellInf,
            2 => FaultKind::ResidualNan,
            3 => FaultKind::ResidualInf,
            _ => FaultKind::TruncateBudget,
        };
        Self {
            kind,
            target_solve: rng.gen_range(0..2),
            trigger_iteration: rng.gen_range(1..8),
            cell_position: rng.gen_f64(),
        }
    }

    /// The same plan retargeted at another solve invocation.
    #[must_use]
    pub fn targeting_solve(mut self, index: usize) -> Self {
        self.target_solve = index;
        self
    }
}

thread_local! {
    static PLAN: Cell<Option<FaultPlan>> = const { Cell::new(None) };
    /// Solver invocations since the plan was armed.
    static SOLVES: Cell<usize> = const { Cell::new(0) };
    /// Corruptions actually applied.
    static INJECTIONS: Cell<usize> = const { Cell::new(0) };
}

/// Arms `plan` on the calling thread and resets the solve/injection
/// counters. The plan stays armed (faulting every matching solve) until
/// [`disarm`].
pub fn arm(plan: FaultPlan) {
    PLAN.with(|p| p.set(Some(plan)));
    SOLVES.with(|s| s.set(0));
    INJECTIONS.with(|i| i.set(0));
}

/// Clears the calling thread's plan; subsequent solves run clean.
pub fn disarm() {
    PLAN.with(|p| p.set(None));
}

/// Corruptions applied since the last [`arm`] — harnesses assert this
/// moved to prove the fault actually fired (a plan targeting solve 3 of
/// a 1-solve run injects nothing).
#[must_use]
pub fn injections() -> usize {
    INJECTIONS.with(Cell::get)
}

/// Solver invocations observed since the last [`arm`].
#[must_use]
pub fn solves_started() -> usize {
    SOLVES.with(Cell::get)
}

/// True when the armed plan targets the solve currently running.
fn active() -> Option<FaultPlan> {
    let plan = PLAN.with(Cell::get)?;
    let current = SOLVES.with(Cell::get);
    (current == plan.target_solve + 1).then_some(plan)
}

fn record_injection() {
    INJECTIONS.with(|i| i.set(i.get() + 1));
}

// --- hooks called by the solver kernels (crate-internal) ---------------

/// Marks the entry of one solver kernel invocation.
pub(crate) fn begin_solve() {
    if PLAN.with(Cell::get).is_some() {
        SOLVES.with(|s| s.set(s.get() + 1));
    }
}

/// Applies cell poisoning to the initial iterate, if armed for it.
pub(crate) fn poison_field(x: &mut [f64]) {
    let Some(plan) = active() else { return };
    let value = match plan.kind {
        FaultKind::PoisonCellNan => f64::NAN,
        FaultKind::PoisonCellInf => f64::INFINITY,
        _ => return,
    };
    if x.is_empty() {
        return;
    }
    let idx = ((plan.cell_position * x.len() as f64) as usize).min(x.len() - 1);
    x[idx] = value;
    record_injection();
}

/// Corrupts a residual evaluation once the trigger iteration is
/// reached, if armed for it.
pub(crate) fn corrupt_residual(iteration: usize, residual: f64) -> f64 {
    let Some(plan) = active() else {
        return residual;
    };
    let poisoned = match plan.kind {
        FaultKind::ResidualNan => f64::NAN,
        FaultKind::ResidualInf => f64::INFINITY,
        _ => return residual,
    };
    if iteration >= plan.trigger_iteration {
        record_injection();
        poisoned
    } else {
        residual
    }
}

/// Truncates an iteration budget, if armed for it.
pub(crate) fn truncated_budget(budget: usize) -> usize {
    let Some(plan) = active() else {
        return budget;
    };
    if plan.kind == FaultKind::TruncateBudget && plan.trigger_iteration < budget {
        record_injection();
        plan.trigger_iteration.max(1)
    } else {
        budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic() {
        assert_eq!(FaultPlan::from_seed(7), FaultPlan::from_seed(7));
        // Distinct seeds eventually differ (checked over a small range
        // so the test is robust to any one collision).
        assert!((0..16)
            .map(FaultPlan::from_seed)
            .any(|p| p != FaultPlan::from_seed(0)));
    }

    #[test]
    fn inactive_plan_is_a_no_op() {
        disarm();
        let mut x = vec![1.0, 2.0];
        poison_field(&mut x);
        assert_eq!(x, vec![1.0, 2.0]);
        assert_eq!(corrupt_residual(5, 0.5), 0.5);
        assert_eq!(truncated_budget(100), 100);
    }

    #[test]
    fn poison_targets_the_requested_solve_only() {
        arm(FaultPlan {
            kind: FaultKind::PoisonCellNan,
            target_solve: 1,
            trigger_iteration: 1,
            cell_position: 0.5,
        });
        let mut x = vec![1.0; 8];
        begin_solve(); // solve 0: not the target
        poison_field(&mut x);
        assert!(x.iter().all(|v| v.is_finite()));
        begin_solve(); // solve 1: fires
        poison_field(&mut x);
        assert_eq!(x.iter().filter(|v| v.is_nan()).count(), 1);
        assert_eq!(injections(), 1);
        disarm();
    }

    #[test]
    fn residual_corruption_waits_for_trigger() {
        arm(FaultPlan {
            kind: FaultKind::ResidualInf,
            target_solve: 0,
            trigger_iteration: 3,
            cell_position: 0.0,
        });
        begin_solve();
        assert_eq!(corrupt_residual(2, 0.25), 0.25);
        assert!(corrupt_residual(3, 0.25).is_infinite());
        disarm();
    }

    #[test]
    fn budget_truncation_clamps() {
        arm(FaultPlan {
            kind: FaultKind::TruncateBudget,
            target_solve: 0,
            trigger_iteration: 2,
            cell_position: 0.0,
        });
        begin_solve();
        assert_eq!(truncated_budget(50_000), 2);
        assert_eq!(injections(), 1);
        disarm();
    }
}
