//! `Vec::new` inside a parallel-region closure.
pub fn step(plan: &ExecPlan, x: &mut [f64]) {
    plan.map_mut(x, |_range, chunk| {
        let scratch: Vec<f64> = Vec::new();
        let _ = (scratch, chunk);
    });
}
