//! Table I — cooling-strategy penalties across designs at the paper's
//! near-constant scaffolding tier counts (Gemmini 12, Rocket 13,
//! Fujitsu-scale 12).

use tsc_bench::{banner, compare};
use tsc_core::flows::CoolingStrategy;
use tsc_core::scaling::table1_row;
use tsc_designs::{fujitsu, gemmini, rocket};

type Row = (
    &'static str,
    usize,
    usize,
    [(&'static str, &'static str); 3],
);

fn main() -> Result<(), tsc_thermal::SolveError> {
    banner("Table I: penalties to reach the scaffolding tier count");

    let paper: [Row; 3] = [
        (
            "Gemmini (A), 12 tiers",
            12,
            14,
            [
                ("conventional 3D thermal", "78 % / 17 %"),
                ("vertical conduction only", "34 % / 7 %"),
                ("scaffolding", "10 % / 3 %"),
            ],
        ),
        (
            "Rocket (B), 13 tiers",
            13,
            14,
            [
                ("conventional 3D thermal", "69 % / 13 %"),
                ("vertical conduction only", "25 % / 7 %"),
                ("scaffolding", "10.6 % / 2.6 %"),
            ],
        ),
        (
            "Fujitsu-scale (C), 12 tiers",
            12,
            20,
            [
                ("conventional 3D thermal", "74 % / n/a"),
                ("vertical conduction only", "30 % / n/a"),
                ("scaffolding", "9.4 % / n/a"),
            ],
        ),
    ];
    let designs = [gemmini::design(), rocket::design(), fujitsu::design()];

    for ((label, tiers, cells, rows), design) in paper.iter().zip(&designs) {
        banner(label);
        for ((strategy, paper_vals), strat) in rows.iter().zip([
            CoolingStrategy::ConventionalDummyVias,
            CoolingStrategy::VerticalOnly,
            CoolingStrategy::Scaffolding,
        ]) {
            let row = table1_row(design, strat, *tiers, *cells)?;
            let measured = match (row.footprint_percent, row.delay_percent) {
                (Some(a), Some(dl)) => format!("{a:.1} % / {dl:.1} %"),
                _ => "infeasible within 95 % area".to_string(),
            };
            compare(strategy, paper_vals, measured);
        }
    }
    println!();
    println!(
        "note: our chip-scale abstraction smears pillar constellations per \
         mesh cell, so the vertical-conduction-only column lands below the \
         paper's 25-34 % — the ordering and the scaffolding column match. \
         See EXPERIMENTS.md."
    );
    Ok(())
}
