//! Render the top-tier temperature map of a 12-tier scaffolded Gemmini
//! stack — where the hotspots live and what the pillars do about them.
//!
//! ```sh
//! cargo run --release --example thermal_map
//! ```

use thermal_scaffolding::core::flows::{run_flow, CoolingStrategy, FlowConfig};
use thermal_scaffolding::designs::gemmini;
use thermal_scaffolding::thermal::render_layer_ascii;
use thermal_scaffolding::units::Ratio;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = gemmini::design();
    for strategy in [
        CoolingStrategy::Scaffolding,
        CoolingStrategy::ConventionalDummyVias,
    ] {
        let cfg = FlowConfig {
            strategy,
            tiers: 12,
            area_budget: Ratio::from_percent(10.0),
            delay_budget: Ratio::from_percent(3.0),
            lateral_cells: 32,
            ..FlowConfig::default()
        };
        let r = run_flow(&design, &cfg)?;
        let top = *r.solution.layout.device_layers.last().expect("tiers");
        println!(
            "== {strategy}: top-tier device layer (Tj = {}, range shaded min->max) ==",
            r.junction_temperature
        );
        println!(
            "{}",
            render_layer_ascii(&r.solution.solution.temperatures, top)
        );
        println!("   legend: systolic array bottom-left (hot), LLC bank field right/top\n");
    }
    Ok(())
}
