//! Activity-based power estimation — the VCS/PrimePower substitute.
//!
//! The paper simulates benchmark activity (spmv on Rocket, matrix
//! multiplication on the systolic array), extracts per-functional-unit
//! maximum power, and scales systolic-array power from the simulated
//! 72 % utilization to a 100 % worst case. The thermal flows only
//! consume the resulting W/cm² maps, so this module models exactly
//! that: nominal peak densities per unit type, scaled by utilization
//! and clock frequency.

use tsc_units::{Frequency, HeatFlux, Ratio};

/// Functional-unit classes with their peak power densities at 100 %
/// utilization and the nominal 1 GHz clock (values consistent with the
/// Fig. 8 power maps: the systolic array peaks at 95 W/cm² at 1 GHz, and
/// the Rocket pipeline reaches the ~120 W/cm² top of the Fig. 8c color
/// scale at its 1.25 GHz clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitClass {
    /// Systolic-array processing elements.
    SystolicArray,
    /// In-order scalar pipeline.
    ScalarCore,
    /// Floating-point unit.
    Fpu,
    /// SRAM macro (cache/scratchpad).
    Sram,
    /// Control / miscellaneous logic.
    Control,
    /// Page-table walker and MMU logic.
    Mmu,
}

impl UnitClass {
    /// Peak power density at 100 % utilization, 1 GHz.
    #[must_use]
    pub fn nominal_density(self) -> HeatFlux {
        let w_per_cm2 = match self {
            Self::SystolicArray => 95.0,
            Self::ScalarCore => 96.0,
            Self::Fpu => 90.0,
            Self::Sram => 25.0,
            Self::Control => 40.0,
            Self::Mmu => 35.0,
        };
        HeatFlux::from_watts_per_square_cm(w_per_cm2)
    }

    /// Leakage floor as a fraction of nominal (dissipated even at zero
    /// utilization).
    #[must_use]
    pub fn leakage_fraction(self) -> Ratio {
        match self {
            Self::Sram => Ratio::from_percent(30.0),
            _ => Ratio::from_percent(10.0),
        }
    }
}

/// The utilization measured in the paper's simulated matmul workload.
#[must_use]
pub fn simulated_utilization() -> Ratio {
    Ratio::from_percent(72.0)
}

/// Power density of a unit at the given utilization and clock:
/// `leakage + (1 − leakage) · u · (f / 1 GHz)` of nominal.
///
/// # Panics
///
/// Panics if `utilization` is outside `[0, 1]` or `clock` non-positive.
///
/// ```
/// use tsc_phydes::power::{density, UnitClass};
/// use tsc_units::{Frequency, Ratio};
///
/// let full = density(UnitClass::SystolicArray, Ratio::ONE, Frequency::from_gigahertz(1.0));
/// assert!((full.watts_per_square_cm() - 95.0).abs() < 1e-9);
/// let sim = density(UnitClass::SystolicArray, Ratio::from_percent(72.0),
///     Frequency::from_gigahertz(1.0));
/// assert!(sim < full);
/// ```
#[must_use]
pub fn density(class: UnitClass, utilization: Ratio, clock: Frequency) -> HeatFlux {
    assert!(
        utilization.is_proper(),
        "utilization must be within [0, 1], got {utilization}"
    );
    assert!(clock.get() > 0.0, "clock must be positive");
    let nominal = class.nominal_density();
    let leak = class.leakage_fraction().fraction();
    let f_scale = clock.gigahertz();
    let dynamic = (1.0 - leak) * utilization.fraction() * f_scale;
    nominal * (leak + dynamic)
}

/// Worst-case scaling of Sec. IIIC: measured density at simulated
/// utilization, scaled to the 100 % worst case.
#[must_use]
pub fn worst_case_from_simulated(measured: HeatFlux) -> HeatFlux {
    measured * (1.0 / simulated_utilization().fraction())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_at_full_utilization() {
        let d = density(
            UnitClass::SystolicArray,
            Ratio::ONE,
            Frequency::from_gigahertz(1.0),
        );
        assert!((d.watts_per_square_cm() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_floor_at_idle() {
        let d = density(UnitClass::Sram, Ratio::ZERO, Frequency::from_gigahertz(1.0));
        assert!((d.watts_per_square_cm() - 0.3 * 25.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_utilization_and_clock() {
        let ghz = Frequency::from_gigahertz(1.0);
        let half = density(UnitClass::Fpu, Ratio::from_percent(50.0), ghz);
        let full = density(UnitClass::Fpu, Ratio::ONE, ghz);
        assert!(half < full);
        let fast = density(UnitClass::Fpu, Ratio::ONE, Frequency::from_gigahertz(1.25));
        assert!(full < fast);
    }

    #[test]
    fn worst_case_scaling_matches_paper() {
        // 72% simulated -> 100%: measured * (100/72).
        let measured = HeatFlux::from_watts_per_square_cm(68.4);
        let wc = worst_case_from_simulated(measured);
        assert!((wc.watts_per_square_cm() - 95.0).abs() < 0.1);
    }

    #[test]
    fn scalar_core_is_the_hottest_class() {
        let ghz = Frequency::from_gigahertz(1.0);
        let core = density(UnitClass::ScalarCore, Ratio::ONE, ghz);
        for c in [
            UnitClass::SystolicArray,
            UnitClass::Fpu,
            UnitClass::Sram,
            UnitClass::Control,
            UnitClass::Mmu,
        ] {
            assert!(density(c, Ratio::ONE, ghz) <= core);
        }
        // At Rocket's 1.25 GHz clock the pipeline reaches the top of the
        // Fig. 8c color scale (~120 W/cm²).
        let fast = density(
            UnitClass::ScalarCore,
            Ratio::ONE,
            Frequency::from_gigahertz(1.25),
        );
        assert!((fast.watts_per_square_cm() - 117.6).abs() < 0.5, "{fast}");
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn utilization_validated() {
        let _ = density(
            UnitClass::Fpu,
            Ratio::from_percent(150.0),
            Frequency::from_gigahertz(1.0),
        );
    }
}
