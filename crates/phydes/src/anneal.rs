//! A small, generic simulated-annealing engine.
//!
//! Used by the thermal-aware floorplanner (the Corblivar substitute) and
//! available for any other combinatorial search in the workspace.

use tsc_rng::Rng64;

/// A problem state that annealing can explore.
pub trait AnnealState: Clone {
    /// Proposes a random neighbour of `self`.
    fn neighbour(&self, rng: &mut Rng64) -> Self;
    /// Cost to minimize (lower is better). Must be finite.
    fn cost(&self) -> f64;
}

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    /// Initial acceptance temperature (in cost units).
    pub t_start: f64,
    /// Final temperature; the run stops when reached.
    pub t_end: f64,
    /// Geometric cooling factor per round, in `(0, 1)`.
    pub cooling: f64,
    /// Proposals per temperature round.
    pub moves_per_round: usize,
}

impl Schedule {
    /// A schedule sized for floorplans of tens of modules.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            t_start: 1.0,
            t_end: 1e-4,
            cooling: 0.92,
            moves_per_round: 120,
        }
    }

    /// A fast schedule for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            t_start: 0.5,
            t_end: 1e-3,
            cooling: 0.85,
            moves_per_round: 40,
        }
    }

    fn validate(&self) {
        assert!(
            self.t_start > self.t_end && self.t_end > 0.0,
            "need t_start > t_end > 0"
        );
        assert!(
            self.cooling > 0.0 && self.cooling < 1.0,
            "cooling must be in (0, 1)"
        );
        assert!(self.moves_per_round > 0, "moves_per_round must be positive");
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult<S> {
    /// The best state found.
    pub best: S,
    /// Cost of the best state.
    pub best_cost: f64,
    /// Total proposals evaluated.
    pub proposals: usize,
    /// Proposals accepted.
    pub accepted: usize,
}

/// Runs simulated annealing from `initial` with the given schedule and
/// RNG seed (runs are deterministic per seed).
///
/// # Panics
///
/// Panics if the schedule is invalid (see [`Schedule`] field docs).
pub fn anneal<S: AnnealState>(initial: S, schedule: &Schedule, seed: u64) -> AnnealResult<S> {
    schedule.validate();
    let mut rng = Rng64::seed_from_u64(seed);
    let mut current = initial.clone();
    let mut current_cost = current.cost();
    let mut best = initial;
    let mut best_cost = current_cost;
    let mut proposals = 0;
    let mut accepted = 0;

    let mut t = schedule.t_start;
    while t > schedule.t_end {
        for _ in 0..schedule.moves_per_round {
            let cand = current.neighbour(&mut rng);
            let cand_cost = cand.cost();
            proposals += 1;
            let delta = cand_cost - current_cost;
            if delta <= 0.0 || rng.gen_f64() < (-delta / t).exp() {
                current = cand;
                current_cost = cand_cost;
                accepted += 1;
                if current_cost < best_cost {
                    best = current.clone();
                    best_cost = current_cost;
                }
            }
        }
        t *= schedule.cooling;
    }

    AnnealResult {
        best,
        best_cost,
        proposals,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy problem: minimize (x - 7)² over integers via ±1 moves.
    #[derive(Clone, Debug)]
    struct Quad(i64);

    impl AnnealState for Quad {
        fn neighbour(&self, rng: &mut Rng64) -> Self {
            Quad(self.0 + if rng.gen_bool() { 1 } else { -1 })
        }
        fn cost(&self) -> f64 {
            let d = (self.0 - 7) as f64;
            d * d
        }
    }

    #[test]
    fn finds_the_minimum() {
        let r = anneal(Quad(-40), &Schedule::standard(), 1);
        assert_eq!(r.best.0, 7);
        assert_eq!(r.best_cost, 0.0);
        assert!(r.accepted > 0 && r.accepted <= r.proposals);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = anneal(Quad(-40), &Schedule::quick(), 42);
        let b = anneal(Quad(-40), &Schedule::quick(), 42);
        assert_eq!(a.best.0, b.best.0);
        assert_eq!(a.proposals, b.proposals);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn best_cost_never_worse_than_initial() {
        for seed in 0..5 {
            let initial = Quad(100);
            let c0 = initial.cost();
            let r = anneal(initial, &Schedule::quick(), seed);
            assert!(r.best_cost <= c0);
        }
    }

    #[test]
    #[should_panic(expected = "cooling must be in (0, 1)")]
    fn invalid_schedule_rejected() {
        let bad = Schedule {
            cooling: 1.5,
            ..Schedule::quick()
        };
        let _ = anneal(Quad(0), &bad, 0);
    }
}
