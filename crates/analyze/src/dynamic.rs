//! The dynamic half of the gate (`--features race-check` only): drives
//! every solver of `tsc-thermal` through forced-parallel solves with the
//! engine's write-set instrumentation live, then re-runs them under
//! permuted band schedules and asserts bitwise-identical fields.
//!
//! A detected race panics inside the engine (see `tsc_thermal::race`),
//! which [`run`] reports as an `Err` so the gate binary exits nonzero.

use tsc_thermal::race;
use tsc_thermal::{CgSolver, Heatsink, MgSolver, Preconditioner, Problem, SorSolver};
use tsc_units::{HeatFlux, Length, ThermalConductivity};

/// Threads forced onto every solve — enough bands to make interleaving
/// interesting on the reduced mesh.
const THREADS: usize = 4;

/// Schedule-perturbation seeds replayed against the unperturbed solve.
const SEEDS: [u64; 3] = [1, 2, 3];

/// A reduced heterogeneous stack: silicon device slabs sandwiching a
/// low-k BEOL-like slab, bottom heatsink, top-surface power — small
/// enough to solve in milliseconds, layered enough that every band
/// carries distinct coefficients.
fn reduced_problem() -> Problem {
    let mut p = Problem::uniform_block(
        24,
        24,
        8,
        Length::from_millimeters(1.0),
        Length::from_millimeters(1.0),
        Length::from_micrometers(40.0),
        ThermalConductivity::new(148.0),
    );
    // Two buried low-conductivity anisotropic slabs (BEOL stand-ins).
    p.set_layer_conductivity(
        2,
        ThermalConductivity::new(1.2),
        ThermalConductivity::new(2.4),
    );
    p.set_layer_conductivity(
        5,
        ThermalConductivity::new(0.9),
        ThermalConductivity::new(1.8),
    );
    p.set_bottom_heatsink(Heatsink::two_phase());
    p.add_uniform_top_flux(HeatFlux::from_watts_per_square_cm(150.0));
    p
}

/// One named solver configuration exercised by the harness.
struct Case {
    name: &'static str,
    solve: fn(&Problem) -> Result<Vec<u64>, String>,
}

/// Solves and returns the field as raw bit patterns for exact
/// comparison across schedules.
fn bits(
    result: Result<tsc_thermal::Solution, tsc_thermal::SolveError>,
) -> Result<Vec<u64>, String> {
    let sol = result.map_err(|e| format!("solve failed: {e}"))?;
    Ok(sol.temperatures.iter_kelvin().map(f64::to_bits).collect())
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "cg-jacobi",
            solve: |p| {
                bits(
                    CgSolver::new()
                        .with_threads(THREADS)
                        .with_parallel_crossover(0)
                        .solve(p),
                )
            },
        },
        Case {
            name: "cg-multigrid",
            solve: |p| {
                bits(
                    CgSolver::new()
                        .with_preconditioner(Preconditioner::Multigrid)
                        .with_threads(THREADS)
                        .with_parallel_crossover(0)
                        .solve(p),
                )
            },
        },
        Case {
            name: "sor",
            solve: |p| {
                bits(
                    SorSolver::new()
                        .with_threads(THREADS)
                        .with_parallel_crossover(0)
                        .solve(p),
                )
            },
        },
        Case {
            name: "multigrid",
            solve: |p| {
                bits(
                    MgSolver::new()
                        .with_threads(THREADS)
                        .with_parallel_crossover(0)
                        .solve(p),
                )
            },
        },
    ]
}

/// Runs the full dynamic suite. Returns a human-readable summary on
/// success.
///
/// # Errors
///
/// Returns a description of the first failure: a solve error, an
/// instrumentation gap (no regions checked), or a schedule-perturbed
/// solve whose field is not bitwise identical to the unperturbed one.
pub fn run() -> Result<String, String> {
    let p = reduced_problem();
    let mut lines = Vec::new();
    let mut total_regions = 0_usize;

    for case in cases() {
        // Pass 1: parallel execution with live write-set checking. Any
        // discipline violation panics inside the engine; a missing
        // instrumentation path shows up as a stuck region counter.
        race::set_schedule_seed(None);
        race::reset_regions();
        let baseline = (case.solve)(&p).map_err(|e| format!("{}: {e}", case.name))?;
        let regions = race::regions_checked();
        if regions == 0 {
            return Err(format!(
                "{}: no parallel regions were checked — instrumentation did not run",
                case.name
            ));
        }
        total_regions += regions;

        // Pass 2: permuted band schedules must reproduce the field bit
        // for bit — any cross-band ordering dependence changes it.
        for seed in SEEDS {
            race::set_schedule_seed(Some(seed));
            let perturbed = (case.solve)(&p);
            race::set_schedule_seed(None);
            let perturbed = perturbed.map_err(|e| format!("{} seed {seed}: {e}", case.name))?;
            if perturbed != baseline {
                let first = baseline
                    .iter()
                    .zip(&perturbed)
                    .position(|(a, b)| a != b)
                    .unwrap_or(0);
                return Err(format!(
                    "{}: schedule seed {seed} changed the field (first difference at \
                     flat index {first}) — a cross-band ordering dependence",
                    case.name
                ));
            }
        }
        lines.push(format!(
            "  {:<13} {} region(s) race-checked, {} permuted schedules bitwise-identical",
            case.name,
            regions,
            SEEDS.len()
        ));
    }

    let mut summary = format!(
        "tsc-analyze: race check passed ({} solver configuration(s), {} parallel region(s))\n",
        lines.len(),
        total_regions
    );
    summary.push_str(&lines.join("\n"));
    Ok(summary)
}
