//! Candidate-evaluation dedupe: an FNV-1a fingerprint memo.
//!
//! SA chains revisit states (accept A→B then B→A), tempering replicas
//! cross paths after swap rounds, and sweep requests repeat points —
//! all producing *identical* candidate evaluations. The memo keys each
//! candidate by the same FNV-1a hash family the serve tier's coalescing
//! keys use and returns the cached cost instead of re-evaluating.
//!
//! Concurrency model: shards run lock-free, so each [`ShardWork`]
//! carries an immutable [`EvalMemo`] snapshot (an `Arc` taken at the
//! last barrier) plus a private overlay of its own evaluations; the
//! engine merges overlays back at the barrier. Memoization never
//! changes results — identical candidates have identical costs — so
//! dedupe counters are the only thing that varies with cache state
//! (and they are deliberately excluded from checkpoints).
//!
//! [`ShardWork`]: crate::ShardWork

use std::collections::HashMap;
use std::sync::Arc;

/// FNV-1a 64-bit offset basis (matches the serve tier's coalescing-key
/// hash).
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte slice.
#[must_use]
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A shard-local view of the evaluation memo: an immutable snapshot
/// shared across concurrent shards plus a private overlay.
///
/// Costs are stored as raw `f64` bits so lookups are exact — a memo hit
/// returns the cached evaluation bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct EvalMemo {
    snapshot: Arc<HashMap<u64, u64>>,
    local: HashMap<u64, u64>,
    hits: u64,
    misses: u64,
}

impl EvalMemo {
    /// A view over the barrier snapshot.
    #[must_use]
    pub fn with_snapshot(snapshot: Arc<HashMap<u64, u64>>) -> Self {
        Self {
            snapshot,
            ..Self::default()
        }
    }

    /// Returns the memoized cost for `fingerprint`, or computes it via
    /// `eval`, recording it in the private overlay.
    pub fn cost_or_eval(&mut self, fingerprint: u64, eval: impl FnOnce() -> f64) -> f64 {
        if let Some(&bits) = self
            .snapshot
            .get(&fingerprint)
            .or_else(|| self.local.get(&fingerprint))
        {
            self.hits += 1;
            return f64::from_bits(bits);
        }
        let cost = eval();
        self.misses += 1;
        self.local.insert(fingerprint, cost.to_bits());
        cost
    }

    /// Memo hits recorded by this view.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Fresh evaluations recorded by this view.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drains the private overlay and counters into the master map the
    /// engine keeps; called under the barrier.
    pub fn merge_into(self, master: &mut HashMap<u64, u64>) -> (u64, u64) {
        for (k, v) in self.local {
            master.entry(k).or_insert(v);
        }
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_candidates_evaluate_once() {
        let mut memo = EvalMemo::default();
        let mut evals = 0;
        let a = memo.cost_or_eval(42, || {
            evals += 1;
            1.5
        });
        let b = memo.cost_or_eval(42, || {
            evals += 1;
            999.0
        });
        assert_eq!(evals, 1, "identical fingerprint must evaluate once");
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
    }

    #[test]
    fn snapshot_hits_count_and_merge_preserves_entries() {
        let mut master = HashMap::new();
        master.insert(7_u64, 2.0_f64.to_bits());
        let snapshot = Arc::new(master.clone());
        let mut memo = EvalMemo::with_snapshot(snapshot);
        assert_eq!(memo.cost_or_eval(7, || unreachable!()), 2.0);
        let _ = memo.cost_or_eval(8, || 3.0);
        let (hits, misses) = memo.merge_into(&mut master);
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(master.len(), 2);
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") — the classic published test vector.
        assert_eq!(fnv1a_bytes(b"a"), 0xAF63_DC4C_8601_EC8C);
    }
}
