//! Scoped-thread parallel execution engine shared by the solvers.
//!
//! The finite-volume operators are matrix-free stencils over a flat
//! `nx·ny·nz` array, so the natural unit of work distribution is the
//! **z-slab** (one `nx·ny` plane): bands of whole slabs are contiguous in
//! the flat (x-fastest) ordering, give each worker cache-friendly
//! streaming access, and make the gather-form seven-point stencil
//! race-free — every worker writes only its own band and reads its
//! neighbours' boundary slabs immutably.
//!
//! Workers are `std::thread::scope` threads spawned per parallel region.
//! That costs a few tens of microseconds per region, which is why the
//! solvers only engage the engine above a crossover problem size (see
//! [`crate::CgSolver::with_parallel_crossover`]); below it, a
//! single-band plan runs the identical code serially on the caller's
//! thread, so small problems pay nothing and results stay bitwise
//! reproducible per thread count.

use std::ops::Range;
use tsc_geometry::Dim3;

/// How a solve distributes its element-wise and stencil work.
///
/// A plan is a partition of the flat cell range into contiguous,
/// slab-aligned bands: `bands.len() == 1` means serial execution on the
/// calling thread (no spawns at all).
#[derive(Debug, Clone)]
pub(crate) struct ExecPlan {
    bands: Vec<Range<usize>>,
}

impl ExecPlan {
    /// Builds a plan for `dim` using up to `threads` workers, falling
    /// back to serial when the problem is below `crossover` cells or
    /// fewer slabs than workers exist.
    pub(crate) fn new(dim: Dim3, threads: usize, crossover: usize) -> Self {
        let n = dim.len();
        let slab = dim.nx * dim.ny;
        let t = if threads > 1 && n >= crossover {
            threads.min(dim.nz.max(1))
        } else {
            1
        };
        let mut bands = Vec::with_capacity(t);
        let (base, rem) = (dim.nz / t, dim.nz % t);
        let mut k0 = 0;
        for b in 0..t {
            let nk = base + usize::from(b < rem);
            bands.push(k0 * slab..(k0 + nk) * slab);
            k0 += nk;
        }
        Self { bands }
    }

    /// The slab-aligned flat ranges, one per worker.
    #[cfg(test)]
    pub(crate) fn bands(&self) -> &[Range<usize>] {
        &self.bands
    }

    /// Number of workers this plan engages (1 = serial).
    pub(crate) fn threads(&self) -> usize {
        self.bands.len()
    }

    /// Runs `f` once per band with a mutable view of `out` restricted to
    /// that band, returning each band's result in band order.
    ///
    /// Serial plans call `f` inline; parallel plans fan the bands out
    /// across scoped threads. `f` receives the band's absolute flat
    /// range plus the matching sub-slice of `out` (indexed from 0).
    pub(crate) fn map_mut<R, F>(&self, out: &mut [f64], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>, &mut [f64]) -> R + Sync,
    {
        if self.bands.len() == 1 {
            let r = self.bands[0].clone();
            return vec![f(r.clone(), &mut out[r])];
        }
        let chunks = split_mut(out, &self.bands);
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .bands
                .iter()
                .cloned()
                .zip(chunks)
                .map(|(range, chunk)| {
                    let f = &f;
                    s.spawn(move || f(range, chunk))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("solver worker panicked"))
                .collect()
        })
    }

    /// Like [`ExecPlan::map_mut`] but with two banded mutable arrays —
    /// the fused MG-preconditioned CG update (`x`, `r`) region, which
    /// has no Jacobi `z` array to scale in place.
    pub(crate) fn map2_mut<R, F>(&self, a: &mut [f64], b: &mut [f64], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>, &mut [f64], &mut [f64]) -> R + Sync,
    {
        if self.bands.len() == 1 {
            let r = self.bands[0].clone();
            return vec![f(r.clone(), &mut a[r.clone()], &mut b[r])];
        }
        let (ca, cb) = (split_mut(a, &self.bands), split_mut(b, &self.bands));
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .bands
                .iter()
                .cloned()
                .zip(ca.into_iter().zip(cb))
                .map(|(range, (sa, sb))| {
                    let f = &f;
                    s.spawn(move || f(range, sa, sb))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("solver worker panicked"))
                .collect()
        })
    }

    /// Like [`ExecPlan::map_mut`] but with three banded mutable arrays —
    /// the fused CG update (`x`, `r`, `z`) region.
    pub(crate) fn map3_mut<R, F>(&self, a: &mut [f64], b: &mut [f64], c: &mut [f64], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>, &mut [f64], &mut [f64], &mut [f64]) -> R + Sync,
    {
        if self.bands.len() == 1 {
            let r = self.bands[0].clone();
            return vec![f(
                r.clone(),
                &mut a[r.clone()],
                &mut b[r.clone()],
                &mut c[r],
            )];
        }
        let (ca, cb, cc) = (
            split_mut(a, &self.bands),
            split_mut(b, &self.bands),
            split_mut(c, &self.bands),
        );
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .bands
                .iter()
                .cloned()
                .zip(ca)
                .zip(cb.into_iter().zip(cc))
                .map(|((range, sa), (sb, sc))| {
                    let f = &f;
                    s.spawn(move || f(range, sa, sb, sc))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("solver worker panicked"))
                .collect()
        })
    }

    /// Runs `f` once per band against a [`SharedSlice`] — the red-black
    /// SOR region, where disjointness of writes is by cell colour rather
    /// than by band and so cannot be expressed as sub-slice ownership.
    pub(crate) fn for_each_shared<F>(&self, x: &mut [f64], f: F)
    where
        F: Fn(Range<usize>, &SharedSlice<'_>) + Sync,
    {
        let shared = SharedSlice::new(x);
        if self.bands.len() == 1 {
            f(self.bands[0].clone(), &shared);
            return;
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .bands
                .iter()
                .cloned()
                .map(|range| {
                    let f = &f;
                    let shared = &shared;
                    s.spawn(move || f(range, shared))
                })
                .collect();
            for h in handles {
                h.join().expect("solver worker panicked");
            }
        })
    }
}

/// Splits one mutable slice into per-band sub-slices (bands must be a
/// contiguous partition starting at 0).
fn split_mut<'a>(mut s: &'a mut [f64], bands: &[Range<usize>]) -> Vec<&'a mut [f64]> {
    let mut out = Vec::with_capacity(bands.len());
    for r in bands {
        let (head, tail) = s.split_at_mut(r.len());
        out.push(head);
        s = tail;
    }
    debug_assert!(s.is_empty(), "bands must partition the slice");
    out
}

/// A shared view of a mutable `f64` slice for stencil passes whose write
/// pattern is provably disjoint but not band-contiguous.
///
/// Red-black SOR writes only cells of the active colour
/// (`(i + j + k) % 2 == colour`) inside the worker's own k-band, and
/// reads only cells of the *other* colour (every stencil neighbour flips
/// parity) — no cell is ever written by two workers in the same pass,
/// and no cell is read while any worker may write it. The unsafe
/// surface is confined to this type; callers uphold the invariant above.
pub(crate) struct SharedSlice<'a> {
    ptr: *mut f64,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [f64]>,
}

// SAFETY: access discipline is delegated to the caller per the type-level
// contract (disjoint writes, no read of a concurrently written cell).
unsafe impl Sync for SharedSlice<'_> {}
unsafe impl Send for SharedSlice<'_> {}

impl<'a> SharedSlice<'a> {
    pub(crate) fn new(s: &'a mut [f64]) -> Self {
        Self {
            ptr: s.as_mut_ptr(),
            len: s.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Reads element `i`.
    ///
    /// # Safety
    ///
    /// `i < len`, and no concurrent writer may target `i` during this
    /// pass (guaranteed by the colour discipline).
    #[inline]
    pub(crate) unsafe fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) }
    }

    /// Writes element `i`.
    ///
    /// # Safety
    ///
    /// `i < len`, and `i` must belong exclusively to the calling worker
    /// for this pass (own band, active colour).
    #[inline]
    pub(crate) unsafe fn set(&self, i: usize, v: f64) {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) = v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_partition_and_align_to_slabs() {
        let dim = Dim3::new(3, 4, 10); // slab = 12
        let plan = ExecPlan::new(dim, 4, 0);
        assert_eq!(plan.threads(), 4);
        let mut expect_start = 0;
        for band in plan.bands() {
            assert_eq!(band.start, expect_start);
            assert_eq!(band.len() % 12, 0, "band must hold whole slabs");
            expect_start = band.end;
        }
        assert_eq!(expect_start, dim.len());
    }

    #[test]
    fn below_crossover_is_serial() {
        let dim = Dim3::new(4, 4, 4);
        let plan = ExecPlan::new(dim, 8, 1_000_000);
        assert_eq!(plan.threads(), 1);
        assert_eq!(plan.bands(), std::slice::from_ref(&(0..dim.len())));
    }

    #[test]
    fn never_more_bands_than_slabs() {
        let dim = Dim3::new(8, 8, 3);
        let plan = ExecPlan::new(dim, 16, 0);
        assert_eq!(plan.threads(), 3);
    }

    #[test]
    fn map_mut_covers_every_cell() {
        let dim = Dim3::new(2, 2, 9);
        let plan = ExecPlan::new(dim, 4, 0);
        let mut out = vec![0.0; dim.len()];
        let partials = plan.map_mut(&mut out, |range, chunk| {
            for (local, c) in range.clone().enumerate() {
                chunk[local] = c as f64;
            }
            range.len()
        });
        assert_eq!(partials.iter().sum::<usize>(), dim.len());
        for (c, v) in out.iter().enumerate() {
            assert_eq!(*v, c as f64);
        }
    }

    #[test]
    fn shared_slice_roundtrips() {
        let dim = Dim3::new(2, 2, 4);
        let plan = ExecPlan::new(dim, 2, 0);
        let mut x = vec![1.0; dim.len()];
        plan.for_each_shared(&mut x, |range, shared| {
            for c in range {
                // SAFETY: bands are disjoint; each worker touches only
                // its own band here.
                unsafe { shared.set(c, shared.get(c) + c as f64) };
            }
        });
        for (c, v) in x.iter().enumerate() {
            assert_eq!(*v, 1.0 + c as f64);
        }
    }
}
