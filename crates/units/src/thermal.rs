//! Heat-conduction quantities: conductivity, conductance, resistance, and
//! convective heat-transfer coefficients.

use crate::length::{Area, Length};
use crate::power::{HeatFlux, Power};
use crate::temperature::TempDelta;

quantity! {
    /// Bulk thermal conductivity `k`, stored in W/m/K.
    ///
    /// This is the central material quantity of the paper: porous
    /// ultra-low-k dielectric sits at ≈0.2 W/m/K while the proposed
    /// nanocrystalline-diamond thermal dielectric reaches 105.7–500 W/m/K —
    /// the "500× increase" of Fig. 4.
    ///
    /// ```
    /// use tsc_units::ThermalConductivity;
    /// let ultra_low_k = ThermalConductivity::new(0.2);
    /// let diamond = ThermalConductivity::new(100.0);
    /// assert!((diamond / ultra_low_k - 500.0).abs() < 1e-9);
    /// ```
    ThermalConductivity, "W/m/K", "Creates a thermal conductivity from W/m/K."
}

quantity! {
    /// Lumped thermal conductance `G = k·A/L`, stored in W/K.
    ///
    /// ```
    /// use tsc_units::{Power, TempDelta, ThermalConductance};
    /// let g = ThermalConductance::new(2.0);
    /// let q: Power = g * TempDelta::new(3.0);
    /// assert_eq!(q.watts(), 6.0);
    /// ```
    ThermalConductance, "W/K", "Creates a thermal conductance from W/K."
}

quantity! {
    /// Lumped thermal resistance `R = 1/G`, stored in K/W.
    ///
    /// ```
    /// use tsc_units::{Power, ThermalResistance};
    /// let r = ThermalResistance::new(0.5);
    /// let rise = r * Power::from_watts(10.0);
    /// assert_eq!(rise.kelvin(), 5.0);
    /// ```
    ThermalResistance, "K/W", "Creates a thermal resistance from K/W."
}

quantity! {
    /// Area-specific thermal resistance, stored in m²·K/W.
    ///
    /// Grain-boundary resistance in the effective-thermal-conductivity model
    /// (Eq. 1) is expressed in this unit: the paper extracts
    /// `R = 1.15 m²K/GW = 1.15e-9 m²K/W`.
    ///
    /// ```
    /// use tsc_units::AreaThermalResistance;
    /// let r = AreaThermalResistance::from_m2_kelvin_per_gigawatt(1.15);
    /// assert!((r.get() - 1.15e-9).abs() < 1e-21);
    /// ```
    AreaThermalResistance, "m^2*K/W", "Creates an area-specific thermal resistance from m²·K/W."
}

quantity! {
    /// Convective heat-transfer coefficient `h`, stored in W/m²/K.
    ///
    /// The paper's heatsinks are abstracted to exactly this number:
    /// two-phase porous-copper cooling reaches `h = 10⁶ W/m²/K` (with a
    /// 100 °C ambient) and Si-integrated microfluidics `h = 10⁵ W/m²/K`
    /// (room-temperature water).
    ///
    /// ```
    /// use tsc_units::{HeatFlux, HeatTransferCoefficient};
    /// let h = HeatTransferCoefficient::TWO_PHASE;
    /// let q = HeatFlux::from_watts_per_square_cm(1000.0);
    /// assert!(((q / h).kelvin() - 10.0).abs() < 1e-9); // 1000 W/cm² at 10 °C rise
    /// ```
    HeatTransferCoefficient, "W/m^2/K", "Creates a heat-transfer coefficient from W/m²/K."
}

impl AreaThermalResistance {
    /// Creates a value from the paper's m²·K/GW unit.
    #[must_use]
    pub fn from_m2_kelvin_per_gigawatt(r: f64) -> Self {
        Self::new(r * 1e-9)
    }
}

impl HeatTransferCoefficient {
    /// Two-phase porous-copper heatsink of Palko et al. (ITherm 2016),
    /// `h = 10⁶ W/m²/K`; requires boiling water, i.e. a 100 °C ambient.
    pub const TWO_PHASE: Self = Self::new(1.0e6);

    /// Si-integrated microfluidic heatsink (Tuckerman & Pease),
    /// `h = 10⁵ W/m²/K`; works with room-temperature water.
    pub const MICROFLUIDIC: Self = Self::new(1.0e5);
}

impl ThermalConductivity {
    /// Conductance of a prism of cross-section `area` and length `length`:
    /// `G = k·A/L`.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero or negative.
    #[must_use]
    pub fn conductance(self, area: Area, length: Length) -> ThermalConductance {
        assert!(
            length.get() > 0.0,
            "conductance requires a positive path length, got {length}"
        );
        ThermalConductance::new(self.get() * area.get() / length.get())
    }

    /// Area-specific resistance of a slab of the given thickness:
    /// `R'' = t/k`.
    #[must_use]
    pub fn slab_resistance(self, thickness: Length) -> AreaThermalResistance {
        AreaThermalResistance::new(thickness.get() / self.get())
    }
}

impl ThermalConductance {
    /// The reciprocal resistance `R = 1/G`.
    #[must_use]
    pub fn to_resistance(self) -> ThermalResistance {
        ThermalResistance::new(1.0 / self.get())
    }
}

impl ThermalResistance {
    /// The reciprocal conductance `G = 1/R`.
    #[must_use]
    pub fn to_conductance(self) -> ThermalConductance {
        ThermalConductance::new(1.0 / self.get())
    }

    /// Series combination (sum of resistances).
    #[must_use]
    pub fn in_series(self, other: Self) -> Self {
        self + other
    }

    /// Parallel combination `R₁R₂/(R₁+R₂)`.
    #[must_use]
    pub fn in_parallel(self, other: Self) -> Self {
        Self::new(self.get() * other.get() / (self.get() + other.get()))
    }
}

impl AreaThermalResistance {
    /// Lumped resistance over a footprint: `R = R''/A`.
    #[must_use]
    pub fn over_area(self, area: Area) -> ThermalResistance {
        ThermalResistance::new(self.get() / area.get())
    }

    /// The slab conductivity that would produce this resistance at the
    /// given thickness: `k = t/R''`.
    #[must_use]
    pub fn to_conductivity(self, thickness: Length) -> ThermalConductivity {
        ThermalConductivity::new(thickness.get() / self.get())
    }
}

// --- Physical-law operators -------------------------------------------------

impl core::ops::Mul<TempDelta> for ThermalConductance {
    type Output = Power;
    /// Fourier's law in lumped form: `q = G·ΔT`.
    fn mul(self, rhs: TempDelta) -> Power {
        Power::new(self.get() * rhs.get())
    }
}

impl core::ops::Mul<Power> for ThermalResistance {
    type Output = TempDelta;
    /// Temperature rise across a lumped resistance: `ΔT = R·q`.
    fn mul(self, rhs: Power) -> TempDelta {
        TempDelta::new(self.get() * rhs.get())
    }
}

impl core::ops::Mul<ThermalResistance> for Power {
    type Output = TempDelta;
    fn mul(self, rhs: ThermalResistance) -> TempDelta {
        rhs * self
    }
}

impl core::ops::Div<ThermalConductance> for Power {
    type Output = TempDelta;
    /// `ΔT = q / G`.
    fn div(self, rhs: ThermalConductance) -> TempDelta {
        TempDelta::new(self.get() / rhs.get())
    }
}

impl core::ops::Div<HeatTransferCoefficient> for HeatFlux {
    type Output = TempDelta;
    /// Newton's law of cooling: `ΔT = q'' / h`.
    fn div(self, rhs: HeatTransferCoefficient) -> TempDelta {
        TempDelta::new(self.get() / rhs.get())
    }
}

impl core::ops::Mul<Area> for HeatTransferCoefficient {
    type Output = ThermalConductance;
    /// Convective boundary conductance: `G = h·A`.
    fn mul(self, rhs: Area) -> ThermalConductance {
        ThermalConductance::new(self.get() * rhs.get())
    }
}

impl core::ops::Mul<AreaThermalResistance> for HeatFlux {
    type Output = TempDelta;
    /// `ΔT = q'' · R''`.
    fn mul(self, rhs: AreaThermalResistance) -> TempDelta {
        TempDelta::new(self.get() * rhs.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conductance_of_prism() {
        // 100 nm x 100 nm pillar, 1 µm tall, k = 105 W/m/K.
        let k = ThermalConductivity::new(105.0);
        let g = k.conductance(
            Length::from_nanometers(100.0).squared(),
            Length::from_micrometers(1.0),
        );
        assert!((g.get() - 105.0 * 1e-14 / 1e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive path length")]
    fn conductance_rejects_zero_length() {
        let _ = ThermalConductivity::new(1.0).conductance(Area::new(1.0), Length::ZERO);
    }

    #[test]
    fn series_parallel_resistance() {
        let a = ThermalResistance::new(2.0);
        let b = ThermalResistance::new(2.0);
        assert!((a.in_series(b).get() - 4.0).abs() < 1e-12);
        assert!((a.in_parallel(b).get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resistance_conductance_round_trip() {
        let g = ThermalConductance::new(4.0);
        assert!((g.to_resistance().to_conductance().get() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn slab_resistance_and_back() {
        // 1 µm of V0-V7 BEOL at k=0.31: R'' = 3.2e-6 m²K/W.
        let k = ThermalConductivity::new(0.31);
        let t = Length::from_micrometers(1.0);
        let r = k.slab_resistance(t);
        assert!((r.get() - 1e-6 / 0.31).abs() < 1e-12);
        assert!((r.to_conductivity(t).get() - 0.31).abs() < 1e-12);
    }

    #[test]
    fn newtons_law_of_cooling() {
        // The headline heatsink claim: 1000 W/cm² with a 10 °C rise at h=1e6.
        let rise = HeatFlux::from_watts_per_square_cm(1000.0) / HeatTransferCoefficient::TWO_PHASE;
        assert!((rise.kelvin() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn flux_through_slab() {
        let q = HeatFlux::from_watts_per_square_cm(53.0);
        let r = ThermalConductivity::new(0.31).slab_resistance(Length::from_micrometers(1.0));
        let dt = q * r;
        assert!((dt.kelvin() - 53.0e4 * 1e-6 / 0.31).abs() < 1e-9);
    }

    #[test]
    fn named_heatsinks() {
        assert_eq!(HeatTransferCoefficient::TWO_PHASE.get(), 1.0e6);
        assert_eq!(HeatTransferCoefficient::MICROFLUIDIC.get(), 1.0e5);
    }
}
