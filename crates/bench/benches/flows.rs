//! Criterion benches of the end-to-end cooling flows (the Fig. 9/10/11
//! inner loop) and the compact-ladder fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsc_core::beol::BeolProperties;
use tsc_core::flows::{run_flow, CoolingStrategy, FlowConfig};
use tsc_core::stack::{build, compact_ladder, StackConfig};
use tsc_designs::gemmini;
use tsc_thermal::{CgSolver, Heatsink};
use tsc_units::Ratio;

fn cfg(strategy: CoolingStrategy, tiers: usize) -> FlowConfig {
    FlowConfig {
        strategy,
        tiers,
        area_budget: Ratio::from_percent(10.0),
        delay_budget: Ratio::from_percent(3.0),
        lateral_cells: 10,
        ..FlowConfig::default()
    }
}

fn bench_flow_per_strategy(c: &mut Criterion) {
    let d = gemmini::design();
    let mut group = c.benchmark_group("run_flow_6_tiers");
    group.sample_size(10);
    for strategy in [
        CoolingStrategy::Scaffolding,
        CoolingStrategy::VerticalOnly,
        CoolingStrategy::ConventionalDummyVias,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy}")),
            &strategy,
            |b, &s| {
                b.iter(|| run_flow(&d, &cfg(s, 6)).expect("solves"));
            },
        );
    }
    group.finish();
}

fn bench_tier_count_scaling(c: &mut Criterion) {
    let d = gemmini::design();
    let mut group = c.benchmark_group("run_flow_tiers");
    group.sample_size(10);
    for tiers in [3usize, 6, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(tiers), &tiers, |b, &n| {
            b.iter(|| run_flow(&d, &cfg(CoolingStrategy::Scaffolding, n)).expect("solves"));
        });
    }
    group.finish();
}

fn bench_stack_assembly_vs_solve(c: &mut Criterion) {
    let d = gemmini::design();
    let stack_cfg = StackConfig::uniform(12, BeolProperties::scaffolded(), Heatsink::two_phase())
        .with_lateral_cells(10);
    c.bench_function("stack_build_only", |b| {
        b.iter(|| build(&d, &stack_cfg));
    });
    let problem = build(&d, &stack_cfg).problem;
    let mut group = c.benchmark_group("stack_solve_only");
    group.sample_size(10);
    group.bench_function("cg_12_tiers", |b| {
        b.iter(|| {
            CgSolver::new()
                .with_tolerance(1e-8)
                .solve(&problem)
                .expect("converges")
        });
    });
    group.finish();
    c.bench_function("compact_ladder_12_tiers", |b| {
        b.iter(|| compact_ladder(&d, &stack_cfg).junction_temperature());
    });
}

criterion_group!(
    benches,
    bench_flow_per_strategy,
    bench_tier_count_scaling,
    bench_stack_assembly_vs_solve
);
criterion_main!(benches);
