//! Property tests over the three evaluated designs: power bookkeeping
//! must be exact regardless of rasterization resolution, utilization or
//! lateral scale.

use proptest::prelude::*;
use tsc_designs::{fujitsu, gemmini, rocket, Design};
use tsc_units::Ratio;

fn designs() -> Vec<Design> {
    vec![gemmini::design(), rocket::design(), fujitsu::design()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn power_map_conserves_total_power(
        which in 0usize..3,
        cells in 16usize..64,
        util_pct in 10.0f64..100.0,
    ) {
        let d = &designs()[which];
        let util = Ratio::from_percent(util_pct);
        let map = d.power_map(cells, cells, util);
        let cell_area = d.die_area().square_meters() / (cells * cells) as f64;
        let rasterized: f64 = map.iter().sum::<f64>() * cell_area;
        let exact = d.total_power(util).watts();
        // Area-weighted deposition conserves power exactly at any
        // resolution.
        prop_assert!((rasterized - exact).abs() / exact < 1e-9,
            "{}: rasterized {rasterized} vs exact {exact} at {cells} cells",
            d.name);
    }

    #[test]
    fn power_is_linear_in_utilization_above_leakage(
        which in 0usize..3,
        u1 in 0.2f64..0.5,
    ) {
        // Dynamic power dominates: doubling utilization should raise
        // power by nearly the dynamic share.
        let d = &designs()[which];
        let p1 = d.total_power(Ratio::from_fraction(u1)).watts();
        let p2 = d.total_power(Ratio::from_fraction(2.0 * u1)).watts();
        prop_assert!(p2 > p1);
        let p0 = d.total_power(Ratio::ZERO).watts();
        // (p2 - p0) = 2 (p1 - p0) exactly, by the affine power model.
        prop_assert!(((p2 - p0) - 2.0 * (p1 - p0)).abs() < 1e-9 * p2.max(1e-12));
    }

    #[test]
    fn lateral_scaling_preserves_density(
        which in 0usize..3,
        factor in 1.5f64..6.0,
    ) {
        let d = &designs()[which];
        let s = d.scaled(factor);
        let f0 = d.average_flux(Ratio::ONE).watts_per_square_meter();
        let f1 = s.average_flux(Ratio::ONE).watts_per_square_meter();
        prop_assert!((f0 - f1).abs() / f0 < 1e-9);
        prop_assert!(
            (s.die_area().square_meters() / d.die_area().square_meters()
                - factor * factor).abs() < 1e-6
        );
    }

    #[test]
    fn heat_sources_cover_all_units(which in 0usize..3) {
        let d = &designs()[which];
        let hs = d.heat_sources(Ratio::ONE);
        prop_assert_eq!(hs.len(), d.units.len());
        // Macro flags survive the conversion.
        let macros = hs.iter().filter(|h| h.is_macro).count();
        let unit_macros = d.units.iter().filter(|u| u.is_macro).count();
        prop_assert_eq!(macros, unit_macros);
    }
}
