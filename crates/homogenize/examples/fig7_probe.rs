//! Quick probe of the Fig. 7c homogenization table at default resolution.

use tsc_homogenize::{extract_k, slice, Axis};
use tsc_materials::{THERMAL_DIELECTRIC_DESIGN, ULTRA_LOW_K_ILD};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lower = slice::SliceGeometry::default_lower();
    let upper = slice::SliceGeometry::default_upper();

    let m = slice::lower_beol(ULTRA_LOW_K_ILD.conductivity, &lower);
    println!(
        "V0-V7 ULK:        vertical {:.3}  lateral {:.3}   (paper: 0.31 / 5.47)",
        extract_k(&m, Axis::Z)?.get(),
        extract_k(&m, Axis::X)?.get()
    );

    let m = slice::upper_beol(ULTRA_LOW_K_ILD.conductivity, &upper);
    println!(
        "M8-M9 ULK:        vertical {:.2}  lateral {:.2}   (paper: 6.9 / 13.6)",
        extract_k(&m, Axis::Z)?.get(),
        extract_k(&m, Axis::X)?.get()
    );

    let m = slice::upper_beol(THERMAL_DIELECTRIC_DESIGN.conductivity, &upper);
    println!(
        "M8-M9 thermal-d:  vertical {:.2}  lateral {:.2}   (paper: 93.59 / 101.73)",
        extract_k(&m, Axis::Z)?.get(),
        extract_k(&m, Axis::X)?.get()
    );
    Ok(())
}
