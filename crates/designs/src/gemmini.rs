//! The Gemmini-class systolic-array accelerator with interleaved 3D SRAM
//! LLC (Fig. 2b / Fig. 8a-b).
//!
//! Published parameters: 16×16 processing elements, 256 kB scratchpad,
//! 4 MB last-level cache interleaved with the logic tier, systolic-array
//! peak power density 95 W/cm² (Fig. 3), per-tier die-average ≈53 W/cm²
//! (3 stacked tiers dissipate 159 W/cm², Sec. IV Observation 1).
//!
//! The LLC follows the Fig. 8a overlay: a fine grid of small SRAM bank
//! macros (16 kB each, ~84 µm on a side) tiling the L-shaped region
//! around the array, with routing gaps between banks — the gaps are
//! where the pillar placement algorithm threads its constellations.

use crate::design::{Design, DesignUnit};
use crate::sram::SramMacro;
use tsc_geometry::Rect;
use tsc_phydes::power::UnitClass;
use tsc_units::{Frequency, Length, Ratio};

/// Number of processing elements per side of the systolic array.
pub const PE_PER_SIDE: usize = 16;

/// Scratchpad capacity (bytes).
pub const SCRATCHPAD_BYTES: usize = 256 << 10;

/// Last-level cache capacity (bytes).
pub const LLC_BYTES: usize = 4 << 20;

/// Capacity of one LLC bank macro (bytes).
pub const LLC_BANK_BYTES: usize = 16 << 10;

fn mm(v: f64) -> Length {
    Length::from_millimeters(v)
}

/// Builds the single-tier Gemmini design.
///
/// ```
/// use tsc_designs::gemmini;
/// use tsc_units::Ratio;
///
/// let d = gemmini::design();
/// // Per-tier die-average power density ≈ 53 W/cm² at worst case.
/// let avg = d.average_flux(Ratio::ONE).watts_per_square_cm();
/// assert!((avg - 53.0).abs() < 4.0, "{avg}");
/// ```
#[must_use]
pub fn design() -> Design {
    let die = Rect::from_origin_size(Length::ZERO, Length::ZERO, mm(2.6), mm(2.6));
    let bank_side = SramMacro::with_capacity(LLC_BANK_BYTES).square_side();

    let mut units = vec![
        DesignUnit::new(
            "systolic-array",
            Rect::from_origin_size(mm(0.0), mm(0.0), mm(1.7), mm(1.7)),
            UnitClass::SystolicArray,
            false,
        ),
        DesignUnit::new(
            "controller",
            Rect::from_origin_size(mm(2.2), mm(1.8), mm(0.30), mm(0.30)),
            UnitClass::Control,
            false,
        ),
        DesignUnit::new(
            "accumulator",
            Rect::from_origin_size(mm(2.2), mm(1.42), mm(0.33), mm(0.33)),
            UnitClass::Fpu,
            false,
        ),
    ];
    // Scratchpad: 16 banks of 16 kB in a 4x4 cluster at the top-right
    // corner, with pillar gaps between banks (everything is banked in an
    // ultra-dense design — a monolithic 256 kB macro would be the
    // Observation-4b hotspot).
    let sp_banks = SCRATCHPAD_BYTES / LLC_BANK_BYTES;
    let sp_pitch = bank_side + Length::from_micrometers(18.0);
    for b in 0..sp_banks {
        let (bi, bj) = (b % 4, b / 4);
        units.push(DesignUnit::new(
            format!("scratchpad{b}"),
            Rect::from_origin_size(
                mm(2.17) + sp_pitch * bi as f64,
                mm(2.17) + sp_pitch * bj as f64,
                bank_side,
                bank_side,
            ),
            UnitClass::Sram,
            true,
        ));
    }
    // LLC bank grid: 256 banks of 16 kB on a ~102 µm pitch filling the
    // L-shaped region, skipping anything already placed (with a 10 µm
    // keep-out that becomes the pillar gap).
    let total_banks = LLC_BYTES / LLC_BANK_BYTES;
    let pitch = bank_side + Length::from_micrometers(18.0);
    let keepout = Length::from_micrometers(10.0);
    let mut placed = 0usize;
    let mut y = Length::from_micrometers(30.0);
    while placed < total_banks && y + bank_side < die.height() {
        let mut x = Length::from_micrometers(30.0);
        while placed < total_banks && x + bank_side < die.width() {
            let r = Rect::from_origin_size(x, y, bank_side, bank_side);
            let blocked = units
                .iter()
                .any(|u| u.rect.inflated(keepout).intersects(&r));
            if !blocked {
                units.push(DesignUnit::new(
                    format!("llc{placed}"),
                    r,
                    UnitClass::Sram,
                    true,
                ));
                placed += 1;
            }
            x += pitch;
        }
        y += pitch;
    }
    assert_eq!(
        placed, total_banks,
        "die must have room for the full LLC bank grid"
    );
    Design::new(
        "Gemmini DNN accelerator",
        die,
        units,
        Frequency::from_gigahertz(1.0),
    )
}

/// Die-average flux of `n` stacked tiers at the given utilization —
/// the y-axis bookkeeping of Fig. 9 ("3 tiers = 159 W/cm²").
#[must_use]
pub fn stack_flux(n: usize, utilization: Ratio) -> tsc_units::HeatFlux {
    design().average_flux(utilization) * n as f64
}

/// A *memory tier* on the same footprint: the "silicon memory, memory
/// access devices, and additional BEOL … also present on each tier" of
/// Fig. 1. The die is tiled wall-to-wall with 16 kB SRAM banks (≈16 MB
/// per tier) plus a row of access logic — the heterogeneous counterpart
/// for logic/memory interleaved stacks.
#[must_use]
pub fn memory_tier() -> Design {
    let die = Rect::from_origin_size(Length::ZERO, Length::ZERO, mm(2.6), mm(2.6));
    let bank_side = SramMacro::with_capacity(LLC_BANK_BYTES).square_side();
    let pitch = bank_side + Length::from_micrometers(18.0);
    let mut units = vec![DesignUnit::new(
        "access-logic",
        Rect::from_origin_size(mm(0.03), mm(2.45), mm(2.5), mm(0.12)),
        UnitClass::Control,
        false,
    )];
    let keepout = Length::from_micrometers(10.0);
    let mut placed = 0usize;
    let mut y = Length::from_micrometers(30.0);
    while y + bank_side < die.height() {
        let mut x = Length::from_micrometers(30.0);
        while x + bank_side < die.width() {
            let r = Rect::from_origin_size(x, y, bank_side, bank_side);
            let blocked = units
                .iter()
                .any(|u| u.rect.inflated(keepout).intersects(&r));
            if !blocked {
                units.push(DesignUnit::new(
                    format!("bank{placed}"),
                    r,
                    UnitClass::Sram,
                    true,
                ));
                placed += 1;
            }
            x += pitch;
        }
        y += pitch;
    }
    Design::new(
        "Gemmini 3D SRAM memory tier",
        die,
        units,
        Frequency::from_gigahertz(1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tier_average_near_53() {
        let avg = design().average_flux(Ratio::ONE).watts_per_square_cm();
        assert!((avg - 53.0).abs() < 4.0, "per-tier average {avg} W/cm²");
    }

    #[test]
    fn three_tiers_near_159() {
        let f = stack_flux(3, Ratio::ONE).watts_per_square_cm();
        assert!((f - 159.0).abs() < 12.0, "3-tier stack {f} W/cm²");
    }

    #[test]
    fn twelve_tiers_near_636() {
        let f = stack_flux(12, Ratio::ONE).watts_per_square_cm();
        assert!((f - 636.0).abs() < 48.0, "12-tier stack {f} W/cm²");
    }

    #[test]
    fn array_peaks_at_95() {
        let d = design();
        let hs = d.heat_sources(Ratio::ONE);
        let array = hs
            .iter()
            .find(|h| h.name == "systolic-array")
            .expect("array");
        assert!((array.flux.watts_per_square_cm() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn llc_is_256_banks_of_16kb() {
        let d = design();
        let banks = d.units.iter().filter(|u| u.name.starts_with("llc")).count();
        assert_eq!(banks, LLC_BYTES / LLC_BANK_BYTES);
        assert_eq!(banks, 256);
    }

    #[test]
    fn banks_leave_pillar_gaps() {
        // Between any two adjacent banks there is a routing gap of at
        // least 10 µm — the lanes the pillar placer uses.
        let d = design();
        let banks: Vec<_> = d
            .units
            .iter()
            .filter(|u| u.name.starts_with("llc"))
            .collect();
        let a = &banks[0].rect;
        let nearest = banks[1..]
            .iter()
            .map(|b| a.gap_to(&b.rect).micrometers())
            .fold(f64::INFINITY, f64::min);
        assert!(nearest >= 10.0, "nearest bank gap {nearest} µm");
    }

    #[test]
    fn macros_cover_a_substantial_fraction() {
        let frac = design().macro_fraction().percent();
        assert!((25.0..45.0).contains(&frac), "macro fraction {frac}%");
    }

    #[test]
    fn design_is_legal_by_construction() {
        let d = design();
        assert_eq!(d.units.len(), 3 + 16 + 256);
    }

    #[test]
    fn utilization_scaling_lowers_power() {
        let d = design();
        let sim = d.average_flux(Ratio::from_percent(72.0));
        let max = d.average_flux(Ratio::ONE);
        assert!(sim < max);
    }

    #[test]
    fn memory_tier_is_cool_and_dense() {
        let m = memory_tier();
        // Same footprint as the logic tier.
        assert_eq!(m.die, design().die);
        // Far cooler than the logic tier (SRAM-only).
        let logic = design().average_flux(Ratio::ONE).watts_per_square_cm();
        let mem = m.average_flux(Ratio::ONE).watts_per_square_cm();
        assert!(
            mem < 0.5 * logic,
            "memory tier {mem} vs logic tier {logic} W/cm²"
        );
        // Dense: ~16 MB of banks per tier.
        let banks = m
            .units
            .iter()
            .filter(|u| u.name.starts_with("bank"))
            .count();
        let megabytes = banks * LLC_BANK_BYTES / (1 << 20);
        assert!(
            (6..=16).contains(&megabytes),
            "{banks} banks = {megabytes} MB"
        );
    }
}
