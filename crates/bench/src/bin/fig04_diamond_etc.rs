//! Fig. 4 — modeled in-plane thermal conductivity of nanocrystalline
//! diamond vs grain size (Eq. 1), with the paper's anchors.

use tsc_bench::{banner, compare, series};
use tsc_materials::diamond::{EtcModel, EXPERIMENTAL_FILMS, IN_PLANE_MAX, IN_PLANE_MIN};
use tsc_units::{AreaThermalResistance, Length};

fn main() {
    banner("Fig. 4: diamond thermal conductivity vs grain size (ETC model)");
    let m = EtcModel::calibrated();

    let sweep: Vec<(f64, f64)> = (0..=60)
        .map(|i| {
            let d = 10.0_f64 * 10.0_f64.powf(i as f64 / 60.0 * 2.3); // 10 nm .. ~2 µm
            (d, m.in_plane_conductivity(Length::from_nanometers(d)).get())
        })
        .collect();
    series("k_in_plane(grain size nm)", sweep);

    let k160 = m.in_plane_conductivity(Length::from_nanometers(160.0));
    compare(
        "k at 160 nm grains (one 7nm-PDK upper-layer thickness)",
        format!("{} W/m/K", IN_PLANE_MIN.get()),
        format!("{:.1} W/m/K", k160.get()),
    );
    compare(
        "increase over ultra-low-k ILD (0.2 W/m/K)",
        "500x",
        format!("{:.0}x", k160.get() / 0.2),
    );
    let k_large = m.in_plane_conductivity(Length::from_micrometers(1.9));
    compare(
        "large-grain (1.9 µm) film vs conservative design max",
        format!(">= {} W/m/K", IN_PLANE_MAX.get()),
        format!("{:.0} W/m/K", k_large.get()),
    );
    compare(
        "extracted grain-boundary resistance",
        "1.15 m²K/GW",
        format!(
            "{:.2} m²K/GW (model input)",
            m.grain_boundary_resistance.get() * 1e9
        ),
    );

    banner("experimental films used in the fit (grain nm, growth °C)");
    for &(d, t) in &EXPERIMENTAL_FILMS {
        println!(
            "  {d:>6.0} nm grains (grown at {t:>3.0} °C): model k = {:>6.1} W/m/K",
            m.in_plane_conductivity(Length::from_nanometers(d)).get()
        );
    }

    banner("through-plane range of the 240 nm scaffolding layer");
    let g = Length::from_nanometers(160.0);
    let t = Length::from_nanometers(240.0);
    let worst = m.through_plane_conductivity(g, t, EtcModel::TBR_DEMONSTRATED);
    let best = m.through_plane_conductivity(g, t, AreaThermalResistance::ZERO);
    compare(
        "through-plane at demonstrated film boundary resistance",
        "30 W/m/K",
        format!("{:.1} W/m/K", worst.get()),
    );
    compare(
        "through-plane at ideal boundary",
        "105.7 W/m/K",
        format!("{:.1} W/m/K", best.get()),
    );
}
