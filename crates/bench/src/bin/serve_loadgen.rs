//! Seeded closed-loop load generator for the `tsc-serve` solve service
//! and the `tsc-route` shard router.
//!
//! Spawns *real* server processes (the `tsc-serve` / `tsc-route`
//! binaries, discovered next to this one or via `--server-bin` /
//! `TSC_SERVE_BIN` / `TSC_ROUTE_BIN`), drives them with client threads
//! over keep-alive connections, and records four experiments in
//! `BENCH_SERVE.json`:
//!
//! 1. **Pooling** — the same hot/cold workload with the context pool
//!    enabled and disabled (the PR-5 baseline experiment).
//! 2. **Batch amortization** — K fingerprint-shared items issued
//!    sequentially vs as one `POST /v1/batch`, where items after the
//!    first are warm power-delta solves.
//! 3. **Sharded scaling** — the router at N=1,2,4 shards, consistent
//!    hashing vs random routing (the A/B), measuring whether the hot
//!    context hit rate survives horizontal scale-out.
//! 4. **Priority overload** — interactive p50/p99 alone vs under a
//!    background flood, with per-class shed counts.
//! 5. **Transient sessions** — streamed `POST /v1/transient` sessions
//!    (NDJSON over one connection): steps/sec under a DVFS toggle,
//!    open→first-step latency, pooled-state reuse on reopen, and the
//!    in-band `thermal_runaway` alarm path.
//!
//! Clients honor the server's 429 backpressure hints
//! (`X-Retry-After-Ms`) instead of hammering a full queue.
//!
//! Usage: `serve_loadgen [--smoke] [--clients N] [--requests N]
//! [--hot-pct P] [--seed S] [--out PATH] [--server-bin PATH]
//! [--route-bin PATH]`.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tsc_bench::json::Json;
use tsc_bench::prom::{sample_value, validate_exposition};
use tsc_phydes::anneal::{anneal, AnnealState, Schedule};
use tsc_phydes::floorplan::{FloorplanProblem, Module, Net, SpCandidate};
use tsc_rng::Rng64;
use tsc_units::Ratio;

#[derive(Clone)]
struct Options {
    clients: usize,
    requests_per_client: usize,
    hot_pct: u64,
    seed: u64,
    out: PathBuf,
    server_bin: Option<PathBuf>,
    route_bin: Option<PathBuf>,
    smoke: bool,
    phase: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            clients: 4,
            // 4 × 120 = 480 completions per phase: a p99 with ~5 samples
            // above it, instead of the ~160-sample tail of the old
            // default.
            requests_per_client: 120,
            hot_pct: 95,
            seed: 0x0D1E5E1,
            out: PathBuf::from("BENCH_SERVE.json"),
            server_bin: None,
            route_bin: None,
            smoke: false,
            phase: "all".to_string(),
        }
    }
}

/// The reduced Gemmini fixture (the accelerator's memory tier) at two hot
/// geometries — both fit the context pool, so steady state is all hits.
const HOT_BODIES: [&str; 2] = [
    r#"{"design": "gemmini-memory", "tiers": 4, "lateral_cells": 16, "area_budget_percent": 10}"#,
    r#"{"design": "gemmini-memory", "tiers": 4, "lateral_cells": 16, "area_budget_percent": 12}"#,
];

/// A cold body: same mesh cost as the hot ones, but a unique pillar
/// budget — a unique operator fingerprint, hence always a pool miss.
fn cold_body(unique: u64) -> String {
    // Budgets 5.00..9.99% — disjoint from the hot budgets.
    let budget = 5.0 + (unique % 500) as f64 * 0.01;
    format!(
        r#"{{"design": "gemmini-memory", "tiers": 4, "lateral_cells": 16, "area_budget_percent": {budget}}}"#
    )
}

/// Hot bodies for the sharded experiment: `n` distinct operator
/// fingerprints (distinct pillar budgets), deliberately more than one
/// shard's `--shard-pool-cap` so a single pool cannot hold the working
/// set but N=4 shards × affinity routing can.
fn sharded_hot_bodies(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let budget = 10.0 + i as f64 * 1.5;
            format!(
                r#"{{"design": "gemmini-memory", "tiers": 4, "lateral_cells": 16, "area_budget_percent": {budget}}}"#
            )
        })
        .collect()
}

fn main() {
    let options = match parse_args(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    tsc_bench::banner("tsc-serve load generator");
    let wants = |name: &str| options.phase == "all" || options.phase == name;
    let mut record = Json::object().field("mode", if options.smoke { "smoke" } else { "full" });

    if wants("pool") {
        let pooled = run_phase(&options, 8);
        record = if options.smoke {
            println!(
                "smoke: {} requests, {:.1} req/s, hit rate {:.1}%",
                pooled.completed,
                pooled.throughput_rps,
                pooled.hot_hit_rate * 100.0
            );
            record.field("pooled", pooled.to_json())
        } else {
            let no_pool = run_phase(&options, 0);
            let speedup = if no_pool.throughput_rps > 0.0 {
                pooled.throughput_rps / no_pool.throughput_rps
            } else {
                0.0
            };
            println!(
                "pooled: {:.1} req/s (p50 {:.1} ms, p99 {:.1} ms over {} samples), hot-key hit rate {:.1}%",
                pooled.throughput_rps,
                pooled.p50_us / 1e3,
                pooled.p99_us / 1e3,
                pooled.latency_samples,
                pooled.hot_hit_rate * 100.0
            );
            println!(
                "no-pool: {:.1} req/s (p50 {:.1} ms, p99 {:.1} ms over {} samples)",
                no_pool.throughput_rps,
                no_pool.p50_us / 1e3,
                no_pool.p99_us / 1e3,
                no_pool.latency_samples
            );
            println!("speedup from context pooling: {speedup:.2}x");
            record
                .field("pooled", pooled.to_json())
                .field("no_pool", no_pool.to_json())
                .field("pooling_speedup", speedup)
                .field("hot_hit_rate_target", 0.9)
                .field("speedup_target", 5.0)
                .field("meets_targets", pooled.hot_hit_rate > 0.9 && speedup >= 5.0)
        };
    }

    if wants("batch") {
        record = record.field("batch", run_batch_phase(&options));
    }
    if wants("sharded") {
        record = record.field("sharded", run_sharded_phase(&options));
    }
    if wants("priority") && !options.smoke {
        record = record.field("priority", run_priority_phase(&options));
    }
    if wants("transient") {
        record = record.field("transient", run_transient_phase(&options));
    }
    if wants("jobs") {
        record = record.field("jobs", run_jobs_phase(&options));
    }

    let record = record.field(
        "workload",
        Json::object()
            .field("clients", options.clients)
            .field("requests_per_client", options.requests_per_client)
            .field("hot_pct", options.hot_pct as usize)
            .field("hot_keys", HOT_BODIES.len())
            .field("seed", options.seed as f64)
            .field("fixture", "gemmini-memory tiers=4 cells=16"),
    );

    std::fs::write(&options.out, record.pretty()).expect("write BENCH_SERVE.json");
    println!("wrote {}", options.out.display());
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    const USAGE: &str = "usage: serve_loadgen [--smoke] [--clients N] [--requests N] \
                         [--hot-pct P] [--seed S] [--out PATH] [--server-bin PATH] \
                         [--route-bin PATH] \
                         [--phase all|pool|batch|sharded|priority|transient|jobs]";
    let mut options = Options::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--smoke" => {
                options.smoke = true;
                options.clients = 2;
                options.requests_per_client = 3;
            }
            "--clients" => {
                options.clients = value()?
                    .parse::<usize>()
                    .map_err(|_| "--clients: integer expected".to_string())?
                    .clamp(1, 64)
            }
            "--requests" => {
                options.requests_per_client = value()?
                    .parse::<usize>()
                    .map_err(|_| "--requests: integer expected".to_string())?
                    .clamp(1, 10_000)
            }
            "--hot-pct" => {
                options.hot_pct = value()?
                    .parse::<u64>()
                    .map_err(|_| "--hot-pct: integer expected".to_string())?
                    .min(100)
            }
            "--seed" => {
                options.seed = value()?
                    .parse::<u64>()
                    .map_err(|_| "--seed: integer expected".to_string())?
            }
            "--out" => options.out = PathBuf::from(value()?),
            "--server-bin" => options.server_bin = Some(PathBuf::from(value()?)),
            "--route-bin" => options.route_bin = Some(PathBuf::from(value()?)),
            "--phase" => {
                let phase = value()?;
                if ![
                    "all",
                    "pool",
                    "batch",
                    "sharded",
                    "priority",
                    "transient",
                    "jobs",
                ]
                .contains(&phase.as_str())
                {
                    return Err(format!("unknown phase {phase:?}\n{USAGE}"));
                }
                options.phase = phase;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(options)
}

/// Locate a sibling binary: explicit path, env var, or next to this
/// executable in the same cargo profile directory.
fn sibling_binary(explicit: &Option<PathBuf>, env: &str, name: &str) -> PathBuf {
    if let Some(path) = explicit {
        return path.clone();
    }
    if let Ok(path) = std::env::var(env) {
        return PathBuf::from(path);
    }
    let mut dir = std::env::current_exe().expect("current_exe");
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir.join(format!("{name}{}", std::env::consts::EXE_SUFFIX))
}

fn server_binary(options: &Options) -> PathBuf {
    sibling_binary(&options.server_bin, "TSC_SERVE_BIN", "tsc-serve")
}

fn route_binary(options: &Options) -> PathBuf {
    sibling_binary(&options.route_bin, "TSC_ROUTE_BIN", "tsc-route")
}

/// A spawned server or router child plus its parsed listen address.
struct Spawned {
    child: Child,
    addr: SocketAddr,
}

impl Spawned {
    fn spawn(bin: &PathBuf, args: &[&str], banner: &str) -> Spawned {
        let mut child = Command::new(bin)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
        let addr = read_listen_line(&mut child, banner);
        Spawned { child, addr }
    }

    /// Graceful drain: POST /v1/shutdown, then reap.
    fn shutdown(mut self) {
        let (status, _, _) =
            http_request(self.addr, "POST", "/v1/shutdown", &[], b"").expect("shutdown");
        assert_eq!(status, 200);
        let _ = self.child.wait();
    }
}

fn spawn_server(options: &Options, args: &[&str]) -> Spawned {
    let bin = server_binary(options);
    let spawned = Spawned::spawn(&bin, args, "tsc-serve listening on ");
    let (status, _, _) = http_request(spawned.addr, "GET", "/healthz", &[], b"").expect("healthz");
    assert_eq!(status, 200, "server failed its liveness probe");
    spawned
}

fn spawn_router(options: &Options, args: &[&str]) -> Spawned {
    let bin = route_binary(options);
    // The router needs to find tsc-serve for its shard children even when
    // the loadgen was pointed at binaries elsewhere.
    let serve_bin = server_binary(options);
    let mut child = Command::new(&bin)
        .args(args)
        .env("TSC_SERVE_BIN", &serve_bin)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
    let addr = read_listen_line(&mut child, "tsc-route listening on ");
    let (status, _, _) = http_request(addr, "GET", "/healthz", &[], b"").expect("healthz");
    assert_eq!(status, 200, "router failed its liveness probe");
    Spawned { child, addr }
}

struct Phase {
    pool_cap: usize,
    completed: u64,
    failed: u64,
    shed_429: u64,
    wall_seconds: f64,
    throughput_rps: f64,
    latency_samples: u64,
    p50_us: f64,
    p99_us: f64,
    hot_sent: u64,
    cold_sent: u64,
    pool_hits: f64,
    pool_misses: f64,
    coalesced: f64,
    backend_solves: f64,
    hot_hit_rate: f64,
    warm_starts: f64,
}

impl Phase {
    fn to_json(&self) -> Json {
        Json::object()
            .field("pool_cap", self.pool_cap)
            .field("completed", self.completed as f64)
            .field("failed", self.failed as f64)
            .field("shed_429_honored", self.shed_429 as f64)
            .field("wall_seconds", self.wall_seconds)
            .field("throughput_rps", self.throughput_rps)
            .field("latency_samples", self.latency_samples as f64)
            .field("p50_ms", self.p50_us / 1e3)
            .field("p99_ms", self.p99_us / 1e3)
            .field("hot_requests", self.hot_sent as f64)
            .field("cold_requests", self.cold_sent as f64)
            .field("context_pool_hits", self.pool_hits)
            .field("context_pool_misses", self.pool_misses)
            .field("hot_hit_rate", self.hot_hit_rate)
            .field("coalesced_requests", self.coalesced)
            .field("backend_solves", self.backend_solves)
            .field("warm_starts", self.warm_starts)
    }
}

/// Spawn a server with the given pool capacity, run the hot/cold solve
/// workload, scrape `/metrics`, shut the server down, and summarize.
fn run_phase(options: &Options, pool_cap: usize) -> Phase {
    let server = spawn_server(
        options,
        &[
            "--port",
            "0",
            "--workers",
            "2",
            "--queue-cap",
            "64",
            "--pool-cap",
            &pool_cap.to_string(),
        ],
    );
    let addr = server.addr;
    let hot_bodies: Vec<String> = HOT_BODIES.iter().map(|b| (*b).to_string()).collect();
    let outcome = drive_workload(
        addr,
        options,
        &hot_bodies,
        options.hot_pct,
        options.requests_per_client,
        "interactive",
    );

    let metrics_text = scrape_metrics(addr);
    server.shutdown();
    summarize(pool_cap, &outcome, &metrics_text)
}

struct WorkloadOutcome {
    completed: u64,
    failed: u64,
    shed_429: u64,
    wall_seconds: f64,
    latencies: Vec<u64>,
    hot_sent: u64,
    cold_sent: u64,
}

/// Drive the seeded hot/cold mix with `options.clients` closed-loop
/// clients against `addr` and gather per-request latencies.
fn drive_workload(
    addr: SocketAddr,
    options: &Options,
    hot_bodies: &[String],
    hot_pct: u64,
    requests_per_client: usize,
    priority: &str,
) -> WorkloadOutcome {
    let hot_counter = Arc::new(AtomicU64::new(0));
    let cold_counter = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let workers: Vec<_> = (0..options.clients)
        .map(|client_id| {
            let options = options.clone();
            let hot_bodies = hot_bodies.to_vec();
            let priority = priority.to_string();
            let hot_counter = Arc::clone(&hot_counter);
            let cold_counter = Arc::clone(&cold_counter);
            thread::spawn(move || {
                client_loop(
                    addr,
                    client_id,
                    &options,
                    &hot_bodies,
                    hot_pct,
                    requests_per_client,
                    &priority,
                    &hot_counter,
                    &cold_counter,
                )
            })
        })
        .collect();

    let mut latencies: Vec<u64> = Vec::new();
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut shed = 0u64;
    for worker in workers {
        let stats = worker.join().expect("client thread");
        completed += stats.0;
        failed += stats.1;
        shed += stats.2;
        latencies.extend(stats.3);
    }
    latencies.sort_unstable();
    WorkloadOutcome {
        completed,
        failed,
        shed_429: shed,
        wall_seconds: started.elapsed().as_secs_f64(),
        latencies,
        hot_sent: hot_counter.load(Ordering::Relaxed),
        cold_sent: cold_counter.load(Ordering::Relaxed),
    }
}

fn scrape_metrics(addr: SocketAddr) -> String {
    let (status, _, metrics_text) =
        http_request(addr, "GET", "/metrics", &[], b"").expect("metrics scrape");
    assert_eq!(status, 200);
    let metrics_text = String::from_utf8_lossy(&metrics_text).into_owned();
    validate_exposition(&metrics_text).expect("metrics must be valid Prometheus text");
    metrics_text
}

fn summarize(pool_cap: usize, outcome: &WorkloadOutcome, metrics_text: &str) -> Phase {
    let scrape = |series: &str| sample_value(metrics_text, series).unwrap_or(0.0);
    let pool_hits = scrape("tsc_context_pool_hits_total");
    let pool_misses = scrape("tsc_context_pool_misses_total");
    // Cold keys are unique, so every cold backend solve is a miss; the
    // remaining misses are hot-key cold starts (and evictions).
    let hot_misses = (pool_misses - outcome.cold_sent as f64).max(0.0);
    let hot_hit_rate = if pool_hits + hot_misses > 0.0 {
        pool_hits / (pool_hits + hot_misses)
    } else {
        0.0
    };

    Phase {
        pool_cap,
        completed: outcome.completed,
        failed: outcome.failed,
        shed_429: outcome.shed_429,
        wall_seconds: outcome.wall_seconds,
        throughput_rps: outcome.completed as f64 / outcome.wall_seconds.max(1e-9),
        latency_samples: outcome.latencies.len() as u64,
        p50_us: percentile(&outcome.latencies, 0.50),
        p99_us: percentile(&outcome.latencies, 0.99),
        hot_sent: outcome.hot_sent,
        cold_sent: outcome.cold_sent,
        pool_hits,
        pool_misses,
        coalesced: scrape("tsc_coalesced_requests_total"),
        backend_solves: scrape("tsc_backend_solves_total"),
        hot_hit_rate,
        warm_starts: scrape("tsc_context_warm_starts_total"),
    }
}

/// One closed-loop client: a keep-alive connection issuing the seeded
/// hot/cold mix, reconnecting if the server closes on it, honoring 429
/// backpressure hints.
#[allow(clippy::too_many_arguments)]
fn client_loop(
    addr: SocketAddr,
    client_id: usize,
    options: &Options,
    hot_bodies: &[String],
    hot_pct: u64,
    requests_per_client: usize,
    priority: &str,
    hot_counter: &AtomicU64,
    cold_counter: &AtomicU64,
) -> (u64, u64, u64, Vec<u64>) {
    let mut rng = Rng64::seed_from_u64(options.seed ^ (client_id as u64).wrapping_mul(0x9E37));
    let mut connection = HttpConnection::connect(addr);
    let mut ok = 0u64;
    let mut bad = 0u64;
    let mut shed = 0u64;
    let mut latencies = Vec::with_capacity(requests_per_client);
    let headers = [("X-Priority", priority)];

    for iteration in 0..requests_per_client {
        let body = if rng.next_u64() % 100 < hot_pct {
            hot_counter.fetch_add(1, Ordering::Relaxed);
            hot_bodies[(rng.next_u64() % hot_bodies.len() as u64) as usize].clone()
        } else {
            cold_counter.fetch_add(1, Ordering::Relaxed);
            // 10_007 is coprime with the 500-budget cycle in cold_body,
            // so clients draw from disjoint cold budgets instead of all
            // colliding at iteration 0.
            cold_body((client_id * 10_007 + iteration) as u64)
        };
        let started = Instant::now();
        let (result, retried_429) = request_honoring_hints(
            &mut connection,
            addr,
            "POST",
            "/v1/solve",
            &headers,
            body.as_bytes(),
            4,
            Duration::from_secs(2),
        );
        shed += retried_429;
        match result {
            Some((200, _, _)) => {
                ok += 1;
                latencies.push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            Some((status, _, body)) => {
                bad += 1;
                eprintln!(
                    "client {client_id}: status {status}: {}",
                    String::from_utf8_lossy(&body)
                );
            }
            None => bad += 1,
        }
    }
    (ok, bad, shed, latencies)
}

/// Issue a request, absorbing up to `max_retries` 429s by sleeping the
/// server-provided `X-Retry-After-Ms` hint (capped).  Returns the final
/// response plus the number of 429s honored along the way.
#[allow(clippy::too_many_arguments)]
fn request_honoring_hints(
    connection: &mut HttpConnection,
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    max_retries: usize,
    sleep_cap: Duration,
) -> (Option<(u16, String, Vec<u8>)>, u64) {
    let mut honored = 0u64;
    for _ in 0..=max_retries {
        let result = connection.request(method, path, headers, body).or_else(|| {
            // The server may close keep-alive connections during its
            // drain; one reconnect attempt per request.
            *connection = HttpConnection::connect(addr);
            connection.request(method, path, headers, body)
        });
        match result {
            Some((429, head, _)) => {
                honored += 1;
                let hint_ms = header_value(&head, "x-retry-after-ms")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(250);
                thread::sleep(Duration::from_millis(hint_ms).min(sleep_cap));
            }
            other => return (other, honored),
        }
    }
    // Retries exhausted: report the last 429 as the outcome.
    (connection.request(method, path, headers, body), honored)
}

/// Batch amortization: the same K fingerprint-shared items (identical
/// geometry, different utilization) issued sequentially vs as a single
/// `/v1/batch`, each against a fresh server so caches start cold.
fn run_batch_phase(options: &Options) -> Json {
    let items: usize = if options.smoke { 6 } else { 24 };
    let bodies: Vec<String> = (0..items)
        .map(|i| {
            let utilization = 30.0 + i as f64 * 2.0;
            format!(
                r#"{{"design": "gemmini-memory", "tiers": 4, "lateral_cells": 16, "utilization_percent": {utilization}}}"#
            )
        })
        .collect();

    // Sequential: one keep-alive connection, items one at a time.
    let server = spawn_server(
        options,
        &["--port", "0", "--workers", "1", "--pool-cap", "8"],
    );
    let mut connection = HttpConnection::connect(server.addr);
    let sequential_start = Instant::now();
    for body in &bodies {
        let (status, _, reply) = connection
            .request("POST", "/v1/solve", &[], body.as_bytes())
            .expect("sequential solve");
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&reply));
    }
    let sequential_seconds = sequential_start.elapsed().as_secs_f64();
    drop(connection);
    server.shutdown();

    // Batch: the same items in one envelope, fresh server.
    let server = spawn_server(
        options,
        &["--port", "0", "--workers", "1", "--pool-cap", "8"],
    );
    let envelope = format!(r#"{{"items": [{}]}}"#, bodies.join(", "));
    let batch_start = Instant::now();
    let (status, _, reply) =
        http_request(server.addr, "POST", "/v1/batch", &[], envelope.as_bytes())
            .expect("batch request");
    let batch_seconds = batch_start.elapsed().as_secs_f64();
    let reply = String::from_utf8_lossy(&reply).into_owned();
    assert_eq!(status, 200, "{reply}");
    let parsed = tsc_bench::json::parse(&reply).expect("batch envelope");
    assert_eq!(
        parsed.get("errors").and_then(Json::as_usize),
        Some(0),
        "batch items must all succeed: {reply}"
    );
    assert_eq!(parsed.get("count").and_then(Json::as_usize), Some(items));
    let metrics_text = scrape_metrics(server.addr);
    let warm_items = sample_value(&metrics_text, "tsc_batch_group_warm_items_total").unwrap_or(0.0);
    let superposed = sample_value(&metrics_text, "tsc_batch_affine_rescales_total").unwrap_or(0.0);
    let backend_solves = sample_value(&metrics_text, "tsc_backend_solves_total").unwrap_or(0.0);
    server.shutdown();

    let amortization = if batch_seconds > 0.0 {
        sequential_seconds / batch_seconds
    } else {
        0.0
    };
    println!(
        "batch: {items} fingerprint-shared items, sequential {:.0} ms vs batch {:.0} ms — {amortization:.2}x",
        sequential_seconds * 1e3,
        batch_seconds * 1e3
    );
    Json::object()
        .field("items", items)
        .field("sequential_seconds", sequential_seconds)
        .field("batch_seconds", batch_seconds)
        .field(
            "sequential_ms_per_item",
            sequential_seconds * 1e3 / items as f64,
        )
        .field("batch_ms_per_item", batch_seconds * 1e3 / items as f64)
        .field("warm_items", warm_items)
        .field("superposed_items", superposed)
        .field("batch_backend_solves", backend_solves)
        .field("amortization", amortization)
        .field("amortization_target", 2.0)
        .field("meets_target", amortization >= 2.0)
        .field(
            "fixture",
            "gemmini-memory tiers=4 cells=16, utilization sweep",
        )
}

/// Sharded scaling: drive `tsc-route` at N shards with hash vs random
/// affinity over a working set of hot fingerprints that exceeds one
/// shard's pool capacity.
fn run_sharded_phase(options: &Options) -> Json {
    // 12 hot fingerprints against 6 pool slots per shard: one shard can
    // never hold the working set, N=4 with hash affinity holds all of it
    // (~3 keys per shard plus headroom for hash imbalance and the 10 %
    // cold stream's LRU churn).
    const SHARD_POOL_CAP: usize = 6;
    const HOT_KEYS: usize = 12;
    let shard_counts: &[usize] = if options.smoke { &[1] } else { &[1, 2, 4] };
    let requests_per_client = if options.smoke { 6 } else { 90 };
    let hot_bodies = sharded_hot_bodies(HOT_KEYS);

    let mut runs = Vec::new();
    let mut hash_n4_hit_rate = 0.0;
    let mut random_n4_hit_rate = 1.0;
    for &shards in shard_counts {
        for affinity in ["hash", "random"] {
            let router = spawn_router(
                options,
                &[
                    "--port",
                    "0",
                    "--shards",
                    &shards.to_string(),
                    "--affinity",
                    affinity,
                    "--shard-workers",
                    "1",
                    "--shard-pool-cap",
                    &SHARD_POOL_CAP.to_string(),
                    "--shard-queue-cap",
                    "64",
                    "--probe-interval-ms",
                    "200",
                ],
            );
            let outcome = drive_workload(
                router.addr,
                options,
                &hot_bodies,
                90,
                requests_per_client,
                "batch",
            );
            // The router's /metrics aggregates shard counters, so the
            // same hit-rate arithmetic works on the merged exposition.
            let metrics_text = scrape_metrics(router.addr);
            router.shutdown();
            let phase = summarize(SHARD_POOL_CAP, &outcome, &metrics_text);
            assert_eq!(
                phase.failed, 0,
                "sharded run N={shards} affinity={affinity} had failures"
            );
            println!(
                "sharded N={shards} {affinity}: {:.1} req/s, hot hit rate {:.1}% \
                 (p50 {:.1} ms, p99 {:.1} ms over {} samples)",
                phase.throughput_rps,
                phase.hot_hit_rate * 100.0,
                phase.p50_us / 1e3,
                phase.p99_us / 1e3,
                phase.latency_samples
            );
            if shards == 4 && affinity == "hash" {
                hash_n4_hit_rate = phase.hot_hit_rate;
            }
            if shards == 4 && affinity == "random" {
                random_n4_hit_rate = phase.hot_hit_rate;
            }
            runs.push(
                phase
                    .to_json()
                    .field("shards", shards)
                    .field("affinity", affinity),
            );
        }
    }

    let mut record = Json::object()
        .field("runs", runs)
        .field("hot_keys", HOT_KEYS)
        .field("shard_pool_cap", SHARD_POOL_CAP)
        .field("hot_pct", 90)
        .field(
            "note",
            "12 hot fingerprints vs pool cap 6: one shard cannot hold the working set; \
             hash affinity at N=4 gives each shard ~3 keys plus churn headroom",
        );
    if !options.smoke {
        record = record
            .field("hash_n4_hot_hit_rate", hash_n4_hit_rate)
            .field("random_n4_hot_hit_rate", random_n4_hit_rate)
            .field("hot_hit_rate_target", 0.9)
            .field("meets_target", hash_n4_hit_rate >= 0.9)
            .field("routing_ab_gap", hash_n4_hit_rate - random_n4_hit_rate);
    }
    record
}

/// Priority overload: interactive latency alone vs under a background
/// flood against a deliberately small queue, with per-class sheds.
fn run_priority_phase(options: &Options) -> Json {
    // Background probes are cheap relative to the interactive solve, so
    // head-of-line blocking behind a non-preemptible in-flight
    // background job stays a small fraction of the interactive latency —
    // the experiment isolates queueing interference, not compute.  Each
    // flooder uses its own utilization so the three streams cannot
    // coalesce into one in-flight slot (which would leave the queue
    // empty and nothing to shed).
    let background_body = |flooder: usize| {
        format!(
            r#"{{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6, "utilization_percent": {}}}"#,
            35 + flooder * 7
        )
    };
    let measured = if options.smoke { 10 } else { 40 };

    let server_args: [&str; 8] = [
        "--port",
        "0",
        "--workers",
        "1",
        "--queue-cap",
        "4",
        "--pool-cap",
        "8",
    ];

    // Uncontended baseline.
    let server = spawn_server(options, &server_args);
    let uncontended = interactive_latencies(server.addr, measured);
    server.shutdown();

    // Overload: background flooders honoring (capped) retry hints while
    // the interactive client runs the same measured sequence.
    let server = spawn_server(options, &server_args);
    let addr = server.addr;
    let stop = Arc::new(AtomicBool::new(false));
    let flooders: Vec<_> = (0..3)
        .map(|flooder| {
            let stop = Arc::clone(&stop);
            let body = background_body(flooder);
            thread::spawn(move || {
                let mut connection = HttpConnection::connect(addr);
                let headers = [("X-Priority", "background")];
                let mut shed = 0u64;
                let mut sent = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Cap the honored sleep low so pressure is sustained
                    // for the whole measurement window.
                    let (result, honored) = request_honoring_hints(
                        &mut connection,
                        addr,
                        "POST",
                        "/v1/solve",
                        &headers,
                        body.as_bytes(),
                        1,
                        Duration::from_millis(50),
                    );
                    shed += honored;
                    if result.is_some() {
                        sent += 1;
                    }
                }
                (sent, shed)
            })
        })
        .collect();

    // Let the flood saturate the queue before measuring.
    thread::sleep(Duration::from_millis(300));
    let contended = interactive_latencies(addr, measured);
    stop.store(true, Ordering::Relaxed);
    let mut background_done = 0u64;
    let mut background_shed = 0u64;
    for flooder in flooders {
        let (sent, shed) = flooder.join().expect("flooder thread");
        background_done += sent;
        background_shed += shed;
    }
    let metrics_text = scrape_metrics(addr);
    let shed_series = |class: &str| {
        sample_value(
            &metrics_text,
            &format!("tsc_shed_total{{class=\"{class}\"}}"),
        )
        .unwrap_or(0.0)
    };
    let interactive_shed = shed_series("interactive");
    let background_shed_serverside = shed_series("background");
    server.shutdown();

    let ratio = if uncontended.1 > 0.0 {
        contended.1 / uncontended.1
    } else {
        0.0
    };
    println!(
        "priority: interactive p99 {:.1} ms uncontended vs {:.1} ms under background flood \
         ({ratio:.2}x), background honored {background_shed} sheds",
        uncontended.1 / 1e3,
        contended.1 / 1e3
    );
    Json::object()
        .field(
            "uncontended",
            Json::object()
                .field("p50_ms", uncontended.0 / 1e3)
                .field("p99_ms", uncontended.1 / 1e3)
                .field("latency_samples", uncontended.2),
        )
        .field(
            "overload",
            Json::object()
                .field("p50_ms", contended.0 / 1e3)
                .field("p99_ms", contended.1 / 1e3)
                .field("latency_samples", contended.2)
                .field("interactive_429", contended.3 as f64)
                .field("background_completed", background_done as f64)
                .field("background_shed_honored", background_shed as f64)
                .field("background_shed_serverside", background_shed_serverside)
                .field("interactive_shed_serverside", interactive_shed),
        )
        .field("interactive_p99_ratio", ratio)
        .field("ratio_target", 1.5)
        .field(
            "meets_target",
            ratio <= 1.5 && contended.3 == 0 && background_shed_serverside > 0.0,
        )
}

/// Transient sessions: streamed NDJSON stepping over one connection.
///
/// Measures steady stepping throughput under a DVFS utilization toggle,
/// the open→first-step latency (which includes staging the implicit
/// operator on a pool miss), whether a reopened session reuses the
/// pooled state, and — in full mode — that a runaway trace delivers the
/// in-band alarm.  Smoke mode is the CI gate: open, 3 steps with a
/// trajectory line each, clean close.
fn run_transient_phase(options: &Options) -> Json {
    let steps: usize = if options.smoke { 3 } else { 120 };
    let body = r#"{"design": "gemmini-memory", "tiers": 4, "lateral_cells": 16,
                   "dt_seconds": 0.0005}"#;
    let server = spawn_server(
        options,
        &["--port", "0", "--workers", "2", "--pool-cap", "8"],
    );
    let addr = server.addr;

    // First session: pool miss, staged from scratch.
    let open_start = Instant::now();
    let mut session = TransientSession::open(addr, body);
    let open = session.next_event();
    assert_eq!(event_field(&open, "event"), "open");
    let first_miss = event_field(&open, "pool") == "miss";
    session.send(r#"{"op": "step"}"#);
    let first = session.next_event();
    assert_eq!(event_field(&first, "event"), "step");
    let open_to_first_step = open_start.elapsed();

    // DVFS toggle halfway through the stepping run.
    let stepping_start = Instant::now();
    let half = (steps.saturating_sub(1) / 2).max(1);
    session.send(&format!(r#"{{"op": "step", "steps": {half}}}"#));
    for _ in 0..half {
        let event = session.next_event();
        assert_eq!(event_field(&event, "event"), "step", "{}", event.pretty());
        assert!(
            event.get("peak_celsius").and_then(Json::as_f64).is_some(),
            "step events must carry the trajectory"
        );
    }
    session.send(r#"{"op": "power", "utilization_percent": 30}"#);
    assert_eq!(event_field(&session.next_event(), "event"), "power");
    let rest = steps - 1 - half;
    if rest > 0 {
        session.send(&format!(r#"{{"op": "step", "steps": {rest}}}"#));
        for _ in 0..rest {
            assert_eq!(event_field(&session.next_event(), "event"), "step");
        }
    }
    let stepping_seconds = stepping_start.elapsed().as_secs_f64();
    session.send(r#"{"op": "close"}"#);
    let closed = session.next_event();
    assert_eq!(event_field(&closed, "event"), "closed");
    drop(session);

    // Reopen on the same geometry: the pooled state must be reused.
    let mut session = TransientSession::open(addr, body);
    let reopened = session.next_event();
    let reopen_hit = event_field(&reopened, "pool") == "hit";
    session.send(r#"{"op": "close"}"#);
    assert_eq!(event_field(&session.next_event(), "event"), "closed");
    drop(session);

    // Full mode only: a trace that must trip the runaway detector.
    let mut alarms_seen = 0u64;
    if !options.smoke {
        let runaway_body = r#"{"design": "gemmini-memory", "tiers": 4, "lateral_cells": 16,
                               "dt_seconds": 0.001, "runaway_celsius": 30.0}"#;
        let mut session = TransientSession::open(addr, runaway_body);
        assert_eq!(event_field(&session.next_event(), "event"), "open");
        session.send(r#"{"op": "step", "steps": 200}"#);
        session.send(r#"{"op": "close"}"#);
        loop {
            let event = session.next_event();
            match event_field(&event, "event").as_str() {
                "alarm" => alarms_seen += 1,
                "closed" => break,
                _ => {}
            }
        }
        assert!(alarms_seen > 0, "runaway trace must deliver an alarm");
    }

    let metrics_text = scrape_metrics(addr);
    let scrape = |series: &str| sample_value(&metrics_text, series).unwrap_or(0.0);
    let sessions_total = scrape("tsc_transient_sessions_total");
    let steps_total = scrape("tsc_transient_steps_total");
    let alarms_total = scrape("tsc_transient_runaway_alarms_total");
    server.shutdown();

    let stepped = (steps - 1) as f64;
    let steps_per_second = if stepping_seconds > 0.0 {
        stepped / stepping_seconds
    } else {
        0.0
    };
    println!(
        "transient: {steps} steps streamed ({steps_per_second:.0} steps/s), \
         open→first-step {:.1} ms, reopen pool {}, {alarms_seen} alarm(s)",
        open_to_first_step.as_secs_f64() * 1e3,
        if reopen_hit { "hit" } else { "miss" },
    );
    Json::object()
        .field("steps_streamed", steps)
        .field("steps_per_second", steps_per_second)
        .field(
            "open_to_first_step_ms",
            open_to_first_step.as_secs_f64() * 1e3,
        )
        .field("first_open_pool_miss", first_miss)
        .field("reopen_pool_hit", reopen_hit)
        .field("runaway_alarms", alarms_seen as f64)
        .field("sessions_total", sessions_total)
        .field("steps_total_serverside", steps_total)
        .field("alarms_total_serverside", alarms_total)
        .field(
            "fixture",
            "gemmini-memory tiers=4 cells=16, dt=0.5ms, DVFS toggle to 30%",
        )
}

fn event_field(event: &Json, key: &str) -> String {
    event
        .get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing {key:?} in {}", event.pretty()))
        .to_string()
}

/// A streamed `POST /v1/transient` session: close-delimited NDJSON, so
/// it cannot share [`HttpConnection`]'s Content-Length framing.
struct TransientSession {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl TransientSession {
    fn open(addr: SocketAddr, body: &str) -> TransientSession {
        let stream = TcpStream::connect(addr).expect("connect transient session");
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .expect("read timeout");
        stream.set_nodelay(true).expect("nodelay");
        let mut session = TransientSession {
            stream,
            buf: Vec::new(),
        };
        let head = format!(
            "POST /v1/transient HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        session
            .stream
            .write_all(head.as_bytes())
            .expect("send open");
        session
            .stream
            .write_all(body.as_bytes())
            .expect("send open");
        // Consume the streaming response head.
        let head =
            session.read_until(|buf| buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4));
        let head = String::from_utf8_lossy(&head).into_owned();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad session head: {head:?}"));
        assert_eq!(status, 200, "session refused: {head:?}");
        session
    }

    fn read_until(&mut self, until: impl Fn(&[u8]) -> Option<usize>) -> Vec<u8> {
        let started = Instant::now();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(end) = until(&self.buf) {
                return self.buf.drain(..end).collect();
            }
            assert!(
                started.elapsed() < Duration::from_secs(300),
                "transient session stalled; buffered: {:?}",
                String::from_utf8_lossy(&self.buf)
            );
            match self.stream.read(&mut chunk) {
                Ok(0) => panic!(
                    "server closed the session early; buffered: {:?}",
                    String::from_utf8_lossy(&self.buf)
                ),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) => panic!("session read failed: {e}"),
            }
        }
    }

    fn next_event(&mut self) -> Json {
        let line = self.read_until(|buf| buf.iter().position(|&b| b == b'\n').map(|p| p + 1));
        let text = String::from_utf8_lossy(&line).into_owned();
        tsc_bench::json::parse(text.trim())
            .unwrap_or_else(|e| panic!("bad session event {text:?}: {e}"))
    }

    fn send(&mut self, line: &str) {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send session command");
    }
}

/// The offline twin of the service's `floorplan_sa` job state: an
/// `AnnealState` over the shared sequence-pair problem.  Kept local so
/// the baseline goes through exactly the public `anneal()` entry point
/// a user without the service would call.
#[derive(Clone)]
struct OfflineFpState {
    problem: Arc<FloorplanProblem>,
    cand: SpCandidate,
}

impl AnnealState for OfflineFpState {
    fn neighbour(&self, rng: &mut Rng64) -> Self {
        OfflineFpState {
            problem: Arc::clone(&self.problem),
            cand: self.problem.neighbour(&self.cand, rng),
        }
    }

    fn cost(&self) -> f64 {
        self.problem.cost(&self.cand)
    }
}

/// The Gemmini floorplan fixture, derived identically to the service's
/// `tsc_jobs::floorplan_problem_for("gemmini", 0.3, 1.2)` so offline and
/// job anneal the same objective.  `tsc-bench` cannot import `tsc-jobs`
/// (the jobs crate depends on this one for its JSON dialect), so the
/// derivation is mirrored here; keep the two in sync.
fn gemmini_floorplan_problem() -> FloorplanProblem {
    let design = tsc_designs::gemmini::design();
    let utilization = Ratio::from_percent(70.0);
    let mut units: Vec<&tsc_designs::DesignUnit> = design.units.iter().collect();
    units.sort_by(|a, b| {
        b.rect
            .area()
            .square_meters()
            .total_cmp(&a.rect.area().square_meters())
            .then_with(|| a.name.cmp(&b.name))
    });
    units.truncate(32);
    let modules: Vec<Module> = units
        .iter()
        .map(|u| {
            let power = u.power(utilization, design.clock);
            if u.is_macro {
                Module::hard_macro(u.name.clone(), u.rect.width(), u.rect.height(), power)
            } else {
                Module::soft(u.name.clone(), u.rect.width(), u.rect.height(), power)
            }
        })
        .collect();
    let n = modules.len();
    let mut nets: Vec<Net> = (1..n).map(|i| Net { a: 0, b: i }).collect();
    nets.extend((1..n.saturating_sub(1)).map(|i| Net { a: i, b: i + 1 }));
    FloorplanProblem::new(
        modules,
        nets,
        Ratio::from_fraction(0.3),
        Ratio::from_fraction(1.2),
    )
}

/// Jobs phase: the same Gemmini floorplan search is run twice — offline
/// as `replicas` sequential `anneal()` multi-starts (what a user
/// without the service runs to explore that many chains), and as one
/// parallel-tempered `/v1/jobs` submission covering the same number of
/// chains.  The service wins on wall-clock from two independent
/// mechanisms: the cross-replica fingerprint memo skips re-evaluating
/// revisited candidates even on a single core, and on multi-core hosts
/// the replica shards additionally run in parallel.  A second job then
/// runs while interactive `/v1/solve` latency is sampled, to show
/// background slices do not starve foreground traffic.
fn run_jobs_phase(options: &Options) -> Json {
    let (schedule, schedule_label, replicas) = if options.smoke {
        (Schedule::quick(), "quick", 2usize)
    } else {
        (Schedule::standard(), "standard", 4usize)
    };
    let seed = options.seed;

    // Offline baseline: `replicas` independent sequential chains, no
    // memoization, no service.  Seeds match the breadth of the tempered
    // search, not its exact streams (tempering couples chains through
    // swaps; "offline SA" has no analogue of that).
    let problem = Arc::new(gemmini_floorplan_problem());
    let started = Instant::now();
    let mut offline_best = f64::INFINITY;
    let mut offline_proposals = 0usize;
    for chain in 0..replicas {
        let initial = OfflineFpState {
            problem: Arc::clone(&problem),
            cand: problem.initial(),
        };
        let outcome = anneal(initial, &schedule, seed.wrapping_add(chain as u64));
        offline_best = offline_best.min(outcome.best_cost);
        offline_proposals += outcome.proposals;
    }
    let offline_wall = started.elapsed().as_secs_f64();
    println!(
        "jobs: offline {replicas}-start sequential anneal ({schedule_label}): \
         {offline_wall:.2}s, best cost {offline_best:.4}, {offline_proposals} proposals"
    );

    let server = spawn_server(
        options,
        &[
            "--port",
            "0",
            "--workers",
            "4",
            "--queue-cap",
            "64",
            "--pool-cap",
            "8",
        ],
    );
    let addr = server.addr;
    let spec = format!(
        r#"{{"kind": "floorplan_sa", "design": "gemmini", "schedule": "{schedule_label}", "replicas": {replicas}, "seed": {seed}}}"#
    );

    // Timed service run: the tempered job with the box to itself, so the
    // speedup number is job-vs-baseline, not job-vs-(baseline + probe
    // traffic stealing the worker pool).
    let started = Instant::now();
    let id = submit_job(addr, &spec);
    let done = poll_job(addr, &id, |state| state == "done");
    let job_wall = started.elapsed().as_secs_f64();

    let result = done.get("result").expect("done job carries its result");
    let field = |key: &str| {
        result
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("result field {key:?}: {}", result.pretty()))
    };
    let job_best_cost = field("best_cost");
    let job_evals = field("evals");
    let dedup_hits = field("dedup_hits");

    // Interference run: a fresh job occupies the background class while
    // a foreground client measures interactive solve latency.
    let measured = if options.smoke { 8 } else { 40 };
    let (idle_p50, idle_p99, _, _) = interactive_latencies(addr, measured);
    let flood_id = submit_job(addr, &spec);
    let (busy_p50, busy_p99, busy_samples, busy_rejected) = interactive_latencies(addr, measured);
    let flood_doc = poll_job(addr, &flood_id, |_| true);
    let flood_live = matches!(
        flood_doc.get("state").and_then(Json::as_str),
        Some("queued") | Some("running")
    );
    let (status, _, _) = http_request(
        addr,
        "POST",
        &format!("/v1/jobs/{flood_id}/cancel"),
        &[],
        b"",
    )
    .expect("cancel interference job");
    assert_eq!(status, 200, "cancel interference job");

    let metrics_text = scrape_metrics(addr);
    server.shutdown();

    let speedup = if job_wall > 0.0 {
        offline_wall / job_wall
    } else {
        0.0
    };
    println!(
        "jobs: tempered /v1/jobs run ({replicas} replicas): {job_wall:.2}s, \
         best cost {job_best_cost:.4}, {job_evals} fresh evals, {dedup_hits} dedup hits"
    );
    println!(
        "jobs: wall-clock speedup vs offline {speedup:.2}x; interactive p99 \
         {:.1} ms idle -> {:.1} ms during job ({busy_samples} samples, {busy_rejected} shed)",
        idle_p99 / 1e3,
        busy_p99 / 1e3
    );
    if !options.smoke {
        assert!(
            speedup > 1.0,
            "tempered job ({job_wall:.2}s) must beat the {replicas}-start sequential \
             offline anneal ({offline_wall:.2}s)"
        );
        assert!(dedup_hits > 0.0, "fingerprint memo never hit");
        assert!(
            flood_live,
            "interference job finished before the latency sweep; during-job p99 is \
             not a during-job measurement"
        );
    }

    Json::object()
        .field("schedule", schedule_label)
        .field("replicas", replicas)
        .field("seed", seed as f64)
        .field(
            "offline",
            Json::object()
                .field("chains", replicas)
                .field("wall_seconds", offline_wall)
                .field("best_cost", offline_best)
                .field("proposals", offline_proposals),
        )
        .field(
            "service",
            Json::object()
                .field("wall_seconds", job_wall)
                .field("best_cost", job_best_cost)
                .field("evals", job_evals)
                .field("dedup_hits", dedup_hits)
                .field(
                    "slices",
                    sample_value(&metrics_text, "tsc_job_slices_total").unwrap_or(0.0),
                ),
        )
        .field("speedup_vs_offline", speedup)
        .field(
            "interactive",
            Json::object()
                .field("idle_p50_ms", idle_p50 / 1e3)
                .field("idle_p99_ms", idle_p99 / 1e3)
                .field("during_job_p50_ms", busy_p50 / 1e3)
                .field("during_job_p99_ms", busy_p99 / 1e3)
                .field("samples", busy_samples)
                .field("rejected_429", busy_rejected as f64)
                .field("job_live_throughout", flood_live),
        )
}

/// Submit a job spec; returns the job id after asserting a 202.
fn submit_job(addr: SocketAddr, spec: &str) -> String {
    let (status, _, body) =
        http_request(addr, "POST", "/v1/jobs", &[], spec.as_bytes()).expect("job submission");
    assert_eq!(
        status,
        202,
        "job submission: {}",
        String::from_utf8_lossy(&body)
    );
    let accepted =
        tsc_bench::json::parse(&String::from_utf8_lossy(&body)).expect("submit envelope");
    accepted
        .get("id")
        .and_then(Json::as_str)
        .expect("submit envelope has an id")
        .to_string()
}

/// Poll a job's status doc until `until(state)` holds; panics on
/// `failed` (a bench job must never fail) and on a 10-minute stall.
fn poll_job(addr: SocketAddr, id: &str, until: impl Fn(&str) -> bool) -> Json {
    let path = format!("/v1/jobs/{id}");
    let started = Instant::now();
    loop {
        assert!(
            started.elapsed() < Duration::from_secs(600),
            "job {id} did not reach the polled state within 600s"
        );
        let (status, _, body) = http_request(addr, "GET", &path, &[], b"").expect("job status");
        assert_eq!(
            status,
            200,
            "job status: {}",
            String::from_utf8_lossy(&body)
        );
        let doc = tsc_bench::json::parse(&String::from_utf8_lossy(&body)).expect("status doc");
        let state = doc
            .get("state")
            .and_then(Json::as_str)
            .expect("status doc has a state")
            .to_string();
        assert_ne!(state, "failed", "job failed: {}", doc.pretty());
        if until(&state) {
            return doc;
        }
        // A coarse poll: each status GET costs the server a table lock
        // and a progress render, which on small hosts competes with the
        // job's own slices.
        thread::sleep(Duration::from_millis(100));
    }
}

/// Sequentially issue `count` interactive solves and return
/// `(p50_us, p99_us, samples, n_429)`.
///
/// The client rotates utilization across a small sweep, the shape of a
/// placement hot loop: every request is a genuine repowered warm solve
/// (milliseconds), not a replay of the identical body (which the warm
/// start answers in microseconds and which would make the p99 ratio a
/// noise measurement).
fn interactive_latencies(addr: SocketAddr, count: usize) -> (f64, f64, usize, u64) {
    let interactive_body = |i: usize| {
        format!(
            r#"{{"design": "gemmini-memory", "tiers": 4, "lateral_cells": 16, "utilization_percent": {}}}"#,
            40 + 10 * (i % 6)
        )
    };
    let mut connection = HttpConnection::connect(addr);
    let headers = [("X-Priority", "interactive")];
    // Warm the context pool and stack cache over the whole sweep so the
    // measurement is steady-state.
    for i in 0..6 {
        let _ = connection.request(
            "POST",
            "/v1/solve",
            &headers,
            interactive_body(i).as_bytes(),
        );
    }
    let mut latencies = Vec::with_capacity(count);
    let mut rejected = 0u64;
    for i in 0..count {
        let body = interactive_body(i);
        let started = Instant::now();
        match connection.request("POST", "/v1/solve", &headers, body.as_bytes()) {
            Some((200, _, _)) => {
                latencies.push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            Some((429, _, _)) => rejected += 1,
            Some((status, _, body)) => panic!(
                "interactive solve returned {status}: {}",
                String::from_utf8_lossy(&body)
            ),
            None => panic!("interactive solve got no response"),
        }
    }
    latencies.sort_unstable();
    (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        latencies.len(),
        rejected,
    )
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

fn read_listen_line(child: &mut Child, banner: &str) -> SocketAddr {
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut reader = BufReader::new(stdout);
    // Skip informational lines (e.g. the router's per-shard spawn notes)
    // until the listen banner appears.
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read listen line");
        assert!(n > 0, "child exited before printing its listen banner");
        if let Some(rest) = line.trim().strip_prefix(banner) {
            break rest.parse().expect("parse listen address");
        }
    };
    // Keep draining the child's stdout in the background so it can never
    // block on a full pipe.
    thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    addr
}

/// A minimal keep-alive HTTP/1.1 client connection (std-only, like
/// everything else here).
struct HttpConnection {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpConnection {
    fn connect(addr: SocketAddr) -> HttpConnection {
        let stream = TcpStream::connect(addr).expect("connect to tsc-serve");
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .expect("read timeout");
        // The request head and body go out as two small writes; without
        // TCP_NODELAY, Nagle + delayed ACK stalls each request ~40ms.
        stream.set_nodelay(true).expect("nodelay");
        HttpConnection {
            stream,
            buf: Vec::new(),
        }
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Option<(u16, String, Vec<u8>)> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: loadgen\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        self.stream.write_all(head.as_bytes()).ok()?;
        self.stream.write_all(body).ok()?;
        self.read_response(Duration::from_secs(300))
    }

    fn read_response(&mut self, deadline: Duration) -> Option<(u16, String, Vec<u8>)> {
        let started = Instant::now();
        let mut chunk = [0u8; 8192];
        loop {
            if let Some((status, headers, payload, consumed)) = parse_response(&self.buf) {
                self.buf.drain(..consumed);
                return Some((status, headers, payload));
            }
            if started.elapsed() > deadline {
                return None;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => return None,
            }
        }
    }
}

fn parse_response(buf: &[u8]) -> Option<(u16, String, Vec<u8>, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_end - 4]).ok()?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let content_length: usize = header_value(head, "content-length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let total = head_end + content_length;
    if buf.len() < total {
        return None;
    }
    Some((
        status,
        head.to_string(),
        buf[head_end..total].to_vec(),
        total,
    ))
}

/// Case-insensitive header lookup in a raw response head.
fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        if k.trim().eq_ignore_ascii_case(name) {
            Some(v.trim().to_string())
        } else {
            None
        }
    })
}

/// One-shot request on a fresh connection.
fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Option<(u16, String, Vec<u8>)> {
    HttpConnection::connect(addr).request(method, path, headers, body)
}
