//! Fig. 9 — peak temperature vs stacked tier count for the three
//! designs under conventional 3D thermal and scaffolding, both on the
//! two-phase heatsink, at the paper's 10 % area / 2.8 % delay point.

use tsc_bench::{banner, compare, series};
use tsc_core::flows::{CoolingStrategy, FlowConfig};
use tsc_core::scaling::{max_tiers, tier_curve};
use tsc_designs::{fujitsu, gemmini, rocket};
use tsc_units::{Ratio, Temperature};

fn main() -> Result<(), tsc_thermal::SolveError> {
    banner("Fig. 9: peak temperature vs tier count (two-phase heatsink)");

    let base = |strategy| FlowConfig {
        strategy,
        area_budget: Ratio::from_percent(10.0),
        delay_budget: Ratio::from_percent(2.8),
        t_limit: Temperature::from_celsius(125.0),
        lateral_cells: 16,
        ..FlowConfig::default()
    };

    // The Fujitsu-scale design is 100x the area: simulate it at the same
    // physical cell pitch by scaling the cell count (capped for runtime;
    // power density, the thermal driver, is scale-invariant).
    let designs = [
        ("Gemmini DNN accelerator", gemmini::design(), 16usize),
        ("Rocket RISC-V core", rocket::design(), 16),
        ("Fujitsu Research accelerator", fujitsu::design(), 24),
    ];

    for (name, design, cells) in &designs {
        for strategy in [
            CoolingStrategy::ConventionalDummyVias,
            CoolingStrategy::Scaffolding,
        ] {
            let cfg = FlowConfig {
                lateral_cells: *cells,
                ..base(strategy)
            };
            let cap = 16;
            let curve = tier_curve(design, &cfg, cap)?;
            series(
                &format!("{name} / {strategy}: Tj °C vs tiers"),
                curve.iter().map(|p| (p.tiers as f64, p.junction_celsius)),
            );
        }
    }

    banner("supported tiers at Tj < 125 °C (the Fig. 9 crossings)");
    let anchors = [
        (
            "Gemmini, conventional",
            gemmini::design(),
            CoolingStrategy::ConventionalDummyVias,
            16,
            "3",
        ),
        (
            "Gemmini, scaffolding",
            gemmini::design(),
            CoolingStrategy::Scaffolding,
            16,
            "12",
        ),
        (
            "Rocket, scaffolding",
            rocket::design(),
            CoolingStrategy::Scaffolding,
            16,
            "13",
        ),
        (
            "Fujitsu-scale, scaffolding",
            fujitsu::design(),
            CoolingStrategy::Scaffolding,
            24,
            "12",
        ),
    ];
    for (label, design, strategy, cells, paper) in anchors {
        let cfg = FlowConfig {
            lateral_cells: cells,
            ..base(strategy)
        };
        let n = max_tiers(&design, &cfg, 16)?;
        compare(label, format!("{paper} tiers"), format!("{n} tiers"));
    }

    banner("stack power-density bookkeeping");
    compare(
        "3 Gemmini tiers",
        "159 W/cm²",
        format!(
            "{:.0} W/cm²",
            gemmini::stack_flux(3, Ratio::ONE).watts_per_square_cm()
        ),
    );
    compare(
        "12 Gemmini tiers",
        "636 W/cm²",
        format!(
            "{:.0} W/cm²",
            gemmini::stack_flux(12, Ratio::ONE).watts_per_square_cm()
        ),
    );
    Ok(())
}
