//! Probe the misalignment penalty curves.
use tsc_core::studies::{misaligned_rise, MisalignConfig};
use tsc_units::Length;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for side in [0.8, 1.2] {
        let cfg = MisalignConfig {
            pillar_side: Length::from_micrometers(side),
            cells: 40,
            ..MisalignConfig::default()
        };
        for scaffolded in [false, true] {
            let aligned = misaligned_rise(&cfg, scaffolded, Length::ZERO)?;
            print!(
                "side {side} µm, scaffolded {scaffolded}: aligned {:.2} K; penalties:",
                aligned.kelvin()
            );
            for off in [0.3, 0.6, 1.0, 1.4] {
                let r = misaligned_rise(&cfg, scaffolded, Length::from_micrometers(off))?;
                print!("  {off}µm: {:+.2} K", (r - aligned).kelvin());
            }
            println!();
        }
    }
    Ok(())
}
