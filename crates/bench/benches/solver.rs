//! Benches of the finite-volume thermal solver — the kernel behind
//! every figure — including the serial-vs-parallel comparison on the
//! paper's Gemmini 12-tier stack.
//!
//! Run with `cargo bench --bench solver`; set `BENCH_FAST=1` for a
//! 3-sample smoke pass. Results are recorded in `EXPERIMENTS.md`.

use tsc_bench::json::Json;
use tsc_bench::timing::Bench;
use tsc_core::beol::BeolProperties;
use tsc_core::stack::{build, StackConfig};
use tsc_designs::gemmini;
use tsc_thermal::{
    CgSolver, Heatsink, MgSolver, Precision, Preconditioner, Problem, Smoother, Solution, SorSolver,
};
use tsc_units::{Length, Power, ThermalConductivity};

fn slab(n: usize, nz: usize) -> Problem {
    let mut p = Problem::uniform_block(
        n,
        n,
        nz,
        Length::from_millimeters(1.0),
        Length::from_millimeters(1.0),
        Length::from_micrometers(100.0),
        ThermalConductivity::new(10.0),
    );
    p.set_bottom_heatsink(Heatsink::two_phase());
    p.add_power(n / 2, n / 2, nz - 1, Power::from_watts(1.0));
    p
}

/// The paper's end-to-end fixture: the Gemmini accelerator stacked 12
/// tiers high on a two-phase heatsink, scaffolded BEOL. `lateral` cells
/// per die edge; the mesh has `1 + 12·4 = 49` z-slabs.
fn gemmini_12_tier(lateral: usize) -> Problem {
    let cfg = StackConfig::uniform(12, BeolProperties::scaffolded(), Heatsink::two_phase())
        .with_lateral_cells(lateral);
    build(&gemmini::design(), &cfg).problem
}

fn bench_cg_scaling(b: &Bench) {
    for n in [8usize, 16, 24] {
        let p = slab(n, 16);
        b.run(&format!("lateral_cells/{n}"), 10, || {
            CgSolver::new().solve(&p).expect("converges")
        });
    }
}

fn bench_cg_vs_sor(b: &Bench) {
    let p = slab(12, 12);
    b.run("cg", 10, || CgSolver::new().solve(&p).expect("converges"));
    b.run("sor", 10, || {
        SorSolver::new()
            .with_tolerance(1e-8)
            .solve(&p)
            .expect("converges")
    });
}

fn bench_high_contrast(b: &Bench) {
    // The hard case: ultra-low-k layers against silicon (3 orders of
    // magnitude contrast) — what the 3D-IC stacks actually look like.
    let mut p = slab(16, 24);
    for k in (0..24).step_by(4) {
        p.set_layer_conductivity(
            k,
            ThermalConductivity::new(0.31),
            ThermalConductivity::new(5.47),
        );
    }
    b.run("cg_high_contrast_stack", 10, || {
        CgSolver::new().solve(&p).expect("converges")
    });
}

/// Serial vs parallel on the Gemmini 12-tier mesh: the tentpole
/// comparison. Also cross-checks that the parallel CG and the red-black
/// SOR land on the same temperature field (≤ 1e-3 K) and that parallel
/// CG reproduces serial CG exactly.
fn bench_parallel_gemmini(b: &Bench) {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let fast = std::env::var_os("BENCH_FAST").is_some();
    let lateral = if fast { 32 } else { 64 };
    let p = gemmini_12_tier(lateral);
    let cells = lateral * lateral * 49;
    println!(
        "  gemmini 12-tier mesh: {lateral}x{lateral}x49 = {cells} cells, host threads: {threads}"
    );

    let serial_solver = CgSolver::new().with_tolerance(1e-8).with_threads(1);
    let parallel_solver = CgSolver::new()
        .with_tolerance(1e-8)
        .with_threads(threads)
        .with_parallel_crossover(0);

    let serial = b.run("cg_serial", 5, || serial_solver.solve(&p).expect("serial"));
    let parallel = b.run("cg_parallel", 5, || {
        parallel_solver.solve(&p).expect("parallel")
    });
    println!(
        "  cg speedup: {:.2}x on {} threads",
        serial.seconds() / parallel.seconds(),
        threads
    );

    // Correctness cross-checks ride along with the timing run.
    let s = serial_solver.solve(&p).expect("serial");
    let q = parallel_solver.solve(&p).expect("parallel");
    let max_diff = s
        .temperatures
        .iter_kelvin()
        .zip(q.temperatures.iter_kelvin())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    assert!(
        max_diff <= 1e-9,
        "parallel CG deviates from serial by {max_diff} K"
    );
    println!(
        "  parallel vs serial CG: max |dT| = {max_diff:.3e} K, \
         {} iterations, {} matvecs, solve {:.3}s (assembly {:.3}s)",
        q.stats.iterations, q.stats.matvecs, q.stats.solve_seconds, q.stats.assembly_seconds
    );

    // SOR cross-check on a smaller mesh (SOR converges far slower on the
    // full fixture; the cross-check is about agreement, not speed).
    let p_small = gemmini_12_tier(16);
    let cg = CgSolver::new()
        .with_tolerance(1e-10)
        .solve(&p_small)
        .expect("cg");
    let sor = SorSolver::new()
        .with_tolerance(1e-9)
        .with_threads(threads)
        .with_parallel_crossover(0)
        .solve(&p_small)
        .expect("sor");
    let tj_cg = cg.temperatures.max_temperature().kelvin();
    let tj_sor = sor.temperatures.max_temperature().kelvin();
    assert!(
        (tj_cg - tj_sor).abs() <= 1e-3,
        "CG/SOR cross-check failed: {tj_cg} vs {tj_sor}"
    );
    println!(
        "  cg/sor cross-check (16x16x49): |dTj| = {:.3e} K",
        (tj_cg - tj_sor).abs()
    );
}

fn max_dev_kelvin(a: &Solution, b: &Solution) -> f64 {
    a.temperatures
        .iter_kelvin()
        .zip(b.temperatures.iter_kelvin())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0_f64, f64::max)
}

fn record(mesh: &str, cells: usize, solver: &str, tol: f64, sol: &Solution, seconds: f64) -> Json {
    Json::object()
        .field("mesh", mesh)
        .field("cells", cells)
        .field("solver", solver)
        .field("preconditioner", sol.stats.preconditioner.to_string())
        .field("precision", sol.stats.precision.to_string())
        .field("tolerance", tol)
        .field("iterations", sol.stats.iterations)
        .field("refinements", sol.stats.refinements)
        .field("matvecs", sol.stats.matvecs)
        .field("cycles", sol.stats.cycles)
        .field("wall_seconds_median", seconds)
}

/// Jacobi-CG vs MG-PCG on the Gemmini 12-tier mesh — the PR-2
/// acceptance comparison — plus the standalone multigrid cycle on the
/// high-contrast slab. (Standalone stationary MG is preconditioner-only
/// on the full fixture: 49 thin tiers of three-orders-of-magnitude
/// contrast put the V-cycle's condition number near 200, which CG
/// absorbs in O(√κ) iterations while plain iteration needs O(κ) — same
/// split every production aggregation-multigrid code makes.) Emits
/// `BENCH_SOLVER.json` at the repo root with one machine-readable
/// entry per solver.
fn bench_multigrid_gemmini(b: &Bench) {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let fast = std::env::var_os("BENCH_FAST").is_some();
    let lateral = if fast { 32 } else { 64 };
    let p = gemmini_12_tier(lateral);
    let cells = lateral * lateral * 49;
    let mesh = format!("gemmini_12_tier/{lateral}x{lateral}x49");
    let tol = 1e-11;
    println!("  mesh: {mesh} = {cells} cells");

    let jacobi = CgSolver::new().with_tolerance(tol).with_threads(threads);
    let mg_pcg = jacobi.with_preconditioner(Preconditioner::Multigrid);

    let samples = 5;
    let t_jacobi = b.run("cg_jacobi", samples, || jacobi.solve(&p).expect("jacobi"));
    let t_mg_pcg = b.run("cg_mg_pcg", samples, || mg_pcg.solve(&p).expect("mg-pcg"));

    let s_jacobi = jacobi.solve(&p).expect("jacobi");
    let s_mg_pcg = mg_pcg.solve(&p).expect("mg-pcg");

    let dev_pcg = max_dev_kelvin(&s_jacobi, &s_mg_pcg);
    assert!(
        dev_pcg <= 1e-6,
        "MG-PCG deviates from Jacobi-CG by {dev_pcg} K"
    );
    let reduction = s_jacobi.stats.iterations as f64 / s_mg_pcg.stats.iterations as f64;
    assert!(
        reduction >= 3.0,
        "MG-PCG iteration reduction below 3x: jacobi {} vs mg-pcg {}",
        s_jacobi.stats.iterations,
        s_mg_pcg.stats.iterations
    );
    println!(
        "  jacobi-cg: {} iterations, {} matvecs; mg-pcg: {} iterations \
         ({} V-cycles, {} matvecs)",
        s_jacobi.stats.iterations,
        s_jacobi.stats.matvecs,
        s_mg_pcg.stats.iterations,
        s_mg_pcg.stats.cycles,
        s_mg_pcg.stats.matvecs,
    );
    println!("  mg-pcg iteration reduction: {reduction:.1}x, max |dT| = {dev_pcg:.3e} K");

    // The mixed-precision path: f32 inner MG-CG with Chebyshev smoothing
    // under f64 iterative refinement, to the same 1e-11 tolerance.
    let mixed = mg_pcg
        .with_precision(Precision::Mixed)
        .with_smoother(Smoother::Chebyshev);
    let t_mixed = b.run("cg_mixed_cheb", samples, || mixed.solve(&p).expect("mixed"));
    let s_mixed = mixed.solve(&p).expect("mixed");
    let dev_mixed = max_dev_kelvin(&s_jacobi, &s_mixed);
    assert!(
        dev_mixed <= 1e-6,
        "mixed-precision CG deviates from Jacobi-CG by {dev_mixed} K"
    );
    let speedup = t_mg_pcg.seconds() / t_mixed.seconds();
    println!(
        "  mixed (f32 inner, chebyshev): {} refinements, {} inner iterations, \
         {} V-cycles; {speedup:.2}x vs f64 mg-pcg, max |dT| = {dev_mixed:.3e} K",
        s_mixed.stats.refinements, s_mixed.stats.iterations, s_mixed.stats.cycles,
    );

    // Standalone cycle cross-check on the high-contrast slab (the
    // hardest mesh it converges on as a stationary iteration).
    let mut hc = slab(16, 24);
    for k in (0..24).step_by(4) {
        hc.set_layer_conductivity(
            k,
            ThermalConductivity::new(0.31),
            ThermalConductivity::new(5.47),
        );
    }
    let mg = MgSolver::new().with_tolerance(tol).with_threads(threads);
    let t_mg = b.run("mg_standalone_high_contrast", samples, || {
        mg.solve(&hc).expect("mg")
    });
    let s_mg = mg.solve(&hc).expect("mg");
    let s_hc_cg = jacobi.solve(&hc).expect("jacobi");
    let dev_mg = max_dev_kelvin(&s_hc_cg, &s_mg);
    assert!(
        dev_mg <= 1e-6,
        "standalone MG deviates from Jacobi-CG by {dev_mg} K"
    );
    println!(
        "  mg standalone (high-contrast 16x16x24): {} cycles, max |dT| = {dev_mg:.3e} K",
        s_mg.stats.cycles
    );

    let doc = Json::object()
        .field("bench", "solver")
        .field("fast_mode", fast)
        .field("threads", threads)
        .field(
            "entries",
            vec![
                record(&mesh, cells, "cg", tol, &s_jacobi, t_jacobi.seconds()),
                record(&mesh, cells, "cg", tol, &s_mg_pcg, t_mg_pcg.seconds()),
                record(&mesh, cells, "cg", tol, &s_mixed, t_mixed.seconds()),
                record(
                    "high_contrast_slab/16x16x24",
                    16 * 16 * 24,
                    "multigrid",
                    tol,
                    &s_mg,
                    t_mg.seconds(),
                ),
            ],
        )
        .field(
            "mg_vs_jacobi",
            Json::object()
                .field("iteration_reduction", reduction)
                .field("max_abs_dt_kelvin", dev_pcg),
        )
        .field(
            "mixed_vs_f64",
            Json::object()
                .field("wall_clock_speedup", speedup)
                .field("max_abs_dt_kelvin", dev_mixed),
        );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SOLVER.json");
    std::fs::write(path, doc.pretty()).expect("write BENCH_SOLVER.json");
    println!("  wrote {path}");
}

fn main() {
    let b = Bench::group("cg_solver");
    bench_cg_scaling(&b);
    let b = Bench::group("cg_vs_sor");
    bench_cg_vs_sor(&b);
    let b = Bench::group("high_contrast");
    bench_high_contrast(&b);
    let b = Bench::group("parallel_gemmini");
    bench_parallel_gemmini(&b);
    let b = Bench::group("multigrid_gemmini");
    bench_multigrid_gemmini(&b);
}
