//! Golden transient-trajectory regression: a DVFS on/off utilization
//! schedule stepped through [`TransientRun`] on the Gemmini scaffolding
//! stack, with the per-step peak trajectory snapshot to
//! `tests/golden/transient_dvfs_gemmini.json`.
//!
//! Re-bless after an intentional scheme change with
//! `UPDATE_GOLDEN=1 cargo test -p tsc-verify --test golden_transient`.
//! Hotspot indices and step counters snapshot at zero tolerance; peak
//! temperatures carry the usual 0.1% relative slack so innocuous
//! arithmetic reassociation does not churn the snapshot.

use tsc_bench::json::Json;
use tsc_core::beol::BeolProperties;
use tsc_core::stack::{self, StackConfig};
use tsc_designs::gemmini;
use tsc_geometry::Grid3;
use tsc_thermal::transient::{capacity, TransientRun};
use tsc_thermal::Heatsink;
use tsc_units::Ratio;
use tsc_verify::golden::{assert_golden, Tolerances};

/// The DVFS schedule: utilization percent and how many steps to hold it.
/// Two full on/off cycles so the snapshot covers both the heating and
/// the cooling flank of the trajectory.
const SCHEDULE: [(f64, usize); 4] = [(100.0, 6), (20.0, 6), (100.0, 6), (20.0, 6)];

const DT_SECONDS: f64 = 5e-4;

fn dvfs_config(utilization_percent: f64) -> StackConfig {
    StackConfig::uniform(4, BeolProperties::scaffolded(), Heatsink::two_phase())
        .with_lateral_cells(8)
        .with_utilizations(vec![Ratio::from_percent(utilization_percent); 4])
}

#[test]
fn golden_transient_dvfs_gemmini() {
    let design = gemmini::design();
    let mut stack = stack::build(&design, &dvfs_config(SCHEDULE[0].0));
    let caps = Grid3::filled(stack.problem.dim(), capacity::SILICON);
    let ambient = Heatsink::two_phase().ambient;
    let mut run = TransientRun::new(&stack.problem, &caps, DT_SECONDS, ambient)
        .expect("transient staging")
        .with_multigrid()
        .expect("multigrid staging");

    let mut trajectory = Vec::new();
    for (utilization, steps) in SCHEDULE {
        // Delta-restage the new power level, exactly as the streaming
        // session endpoint applies a mid-session DVFS update.
        stack::repower(&mut stack, &design, &dvfs_config(utilization));
        run.restage_power_delta(stack.problem.power_flat());
        for _ in 0..steps {
            run.step().expect("step");
            let peak = run.peak();
            trajectory.push(
                Json::object()
                    .field("step", run.steps_taken() as usize)
                    .field("utilization_percent", utilization)
                    .field("peak_celsius", peak.celsius())
                    .field(
                        "hotspot",
                        vec![
                            Json::from(peak.hotspot.i),
                            Json::from(peak.hotspot.j),
                            Json::from(peak.hotspot.k),
                        ],
                    ),
            );
        }
    }

    let peaks: Vec<f64> = trajectory
        .iter()
        .map(|s| {
            s.get("peak_celsius")
                .and_then(Json::as_f64)
                .expect("peak recorded")
        })
        .collect();
    let record = Json::object()
        .field("design", "gemmini")
        .field("dt_seconds", DT_SECONDS)
        .field("steps", run.steps_taken() as usize)
        .field("final_time_seconds", run.time_seconds())
        .field(
            "max_peak_celsius",
            peaks.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        )
        .field("final_peak_celsius", *peaks.last().expect("nonempty"))
        .field("trajectory", trajectory);

    let tolerances = Tolerances::new(1e-3)
        .field("step", 0.0)
        .field("steps", 0.0)
        .field("utilization_percent", 0.0)
        .field("dt_seconds", 0.0)
        .field("final_time_seconds", 0.0)
        .field("hotspot", 0.0);
    assert_golden("transient_dvfs_gemmini", &record, &tolerances);
}
