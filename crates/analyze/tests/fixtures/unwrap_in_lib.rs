//! Fixture: `.unwrap()` and `.expect()` in numeric library code.

pub fn last(xs: &[f64]) -> f64 {
    *xs.last().unwrap()
}

pub fn first(xs: &[f64]) -> f64 {
    *xs.first().expect("non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Result<i32, ()> = Ok(1);
        assert_eq!(v.unwrap(), 1);
    }
}
