//! Child-process management for the shard router: spawn `tsc-serve`
//! backends on ephemeral ports and discover their addresses from the
//! stable listen banner.
//!
//! The router can also front externally managed backends (pass their
//! addresses directly); this module only covers the "spawn my own
//! shards" mode of the `tsc-route` binary and the failover tests.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

/// The banner prefix `tsc-serve` prints once bound; the port discovery
/// here and the load generator both parse it, so it must stay stable.
pub const LISTEN_BANNER: &str = "tsc-serve listening on ";

/// A spawned backend process and the address it bound.
pub struct ShardProcess {
    child: Child,
    addr: String,
}

/// Flags forwarded to each spawned `tsc-serve` child.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    pub workers: usize,
    pub queue_cap: usize,
    pub pool_cap: usize,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec {
            workers: 2,
            queue_cap: 64,
            pool_cap: 8,
        }
    }
}

impl ShardProcess {
    /// Spawn one `tsc-serve` child on an ephemeral port and wait for its
    /// listen banner.
    ///
    /// # Errors
    ///
    /// Spawn failures, or a child that exits / prints garbage before the
    /// banner.
    pub fn spawn(spec: &ShardSpec) -> std::io::Result<ShardProcess> {
        let mut child = Command::new(serve_binary()?)
            .args([
                "--port",
                "0",
                "--workers",
                &spec.workers.to_string(),
                "--queue-cap",
                &spec.queue_cap.to_string(),
                "--pool-cap",
                &spec.pool_cap.to_string(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| std::io::Error::other("child stdout not captured"))?;
        let mut lines = BufReader::new(stdout).lines();
        let banner = match lines.next() {
            Some(Ok(line)) => line,
            Some(Err(err)) => {
                let _ = child.kill();
                return Err(err);
            }
            None => {
                let _ = child.kill();
                return Err(std::io::Error::other("shard exited before its banner"));
            }
        };
        let Some(addr) = banner.strip_prefix(LISTEN_BANNER) else {
            let _ = child.kill();
            return Err(std::io::Error::other(format!(
                "unexpected shard banner: {banner:?}"
            )));
        };
        let addr = addr.trim().to_string();
        // Let the (now unread) stdout pipe fill harmlessly: tsc-serve
        // prints nothing else until shutdown.
        Ok(ShardProcess { child, addr })
    }

    /// The backend's `host:port` address.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Kill the child (used when graceful shutdown was not requested or
    /// did not take).
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ShardProcess {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Locate the `tsc-serve` binary: `TSC_SERVE_BIN` wins, otherwise look
/// next to the current executable (cargo puts workspace binaries in the
/// same target directory).
fn serve_binary() -> std::io::Result<std::path::PathBuf> {
    if let Ok(path) = std::env::var("TSC_SERVE_BIN") {
        return Ok(std::path::PathBuf::from(path));
    }
    let me = std::env::current_exe()?;
    let dir = me
        .parent()
        .ok_or_else(|| std::io::Error::other("current executable has no parent directory"))?;
    // Integration tests live one level down in target/debug/deps.
    for dir in [dir, dir.parent().unwrap_or(dir)] {
        let candidate = dir.join("tsc-serve");
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(std::io::Error::other(
        "tsc-serve binary not found; set TSC_SERVE_BIN",
    ))
}
