//! End-to-end tests of the cross-file concurrency pass: the gate binary
//! against the deadlock/clean fixture trees, the per-pattern
//! `no-alloc-hot` fixtures, and — the regression the serving tier
//! actually depends on — the workspace's own lock-order graph.

use std::path::Path;
use std::process::Command;
use tsc_analyze::lexer::lex;
use tsc_analyze::rules::Context;
use tsc_analyze::{lockgraph, model, walk};

fn fixture_dir(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Run the gate binary with `--root` on a fixture tree.
fn gate_on(dir: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tsc-analyze"))
        .arg("--root")
        .arg(dir)
        .output()
        .expect("gate binary runs")
}

#[test]
fn gate_binary_exits_nonzero_on_deadlock_cycle_fixture() {
    let out = gate_on(&fixture_dir("lockcycle"));
    assert_eq!(out.status.code(), Some(1), "cycle must fail the gate");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("lock-order"), "stderr: {stderr}");
    assert!(
        stderr.contains("Alpha.a_state") && stderr.contains("Beta.b_state"),
        "diagnostic must name both locks: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lock-order graph: 2 node(s)"), "{stdout}");
}

#[test]
fn gate_binary_passes_the_rank_respecting_fixture() {
    let out = gate_on(&fixture_dir("lockclean"));
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("edge Alpha.a_state -> Beta.b_state"),
        "the consistent nesting must still appear as an edge: {stdout}"
    );
}

/// Each `no-alloc-hot` pattern has its own fixture and must fire exactly
/// once on it.
#[test]
fn alloc_hot_fixtures_fire_per_pattern() {
    for (file, expect) in [
        ("vec_new.rs", "Vec::new"),
        ("to_vec.rs", ".to_vec()"),
        ("collect.rs", ".collect()"),
        ("box_new.rs", "Box::new"),
        ("format_macro.rs", "format!"),
        ("vec_macro.rs", "vec!"),
    ] {
        let path = fixture_dir("allochot").join(file);
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let lexed = lex(&src);
        let model = model::build(&lexed);
        let ctx = Context::build(&lexed.tokens, &lexed.comments);
        let hits = lockgraph::lint_no_alloc_hot(&lexed, &model, &ctx);
        assert_eq!(hits.len(), 1, "{file}: {hits:?}");
        assert!(
            hits[0].message.contains(expect),
            "{file} must flag `{expect}`: {}",
            hits[0].message
        );
    }
}

/// The serving tier's regression pin (ISSUE-8 satellite): the workspace
/// graph must contain the full serve lock set as nodes, and must be
/// acyclic — the static half of the cross-check whose dynamic half is
/// the concurrency suites under `--features lock-order`.
#[test]
fn workspace_lock_graph_covers_serve_and_is_acyclic() {
    let root = walk::workspace_root();
    let report = lockgraph::analyze_workspace(&root).expect("workspace walk");

    let names: Vec<&str> = report.nodes.iter().map(|n| n.name.as_str()).collect();
    for expected in [
        "JobQueue.inner",
        "LruPool.entries",
        "Slot.result",
        "Shared.coalesce",
        "Shared.shutdown_flag",
        "RouterShared.table",
        "RouterShared.shutdown_flag",
    ] {
        assert!(
            names.contains(&expected),
            "serve lock `{expected}` missing from graph nodes: {names:?}"
        );
    }

    let cycles: Vec<String> = report
        .violations
        .iter()
        .filter(|(_, v)| v.rule == "lock-order")
        .map(|(f, v)| format!("{}:{}: {}", f.display(), v.line, v.message))
        .collect();
    assert!(
        cycles.is_empty(),
        "workspace lock graph has cycles:\n{}",
        cycles.join("\n")
    );
}

/// The workspace-wide concurrency gate CI enforces: no unwaived
/// diagnostics from any of the cross-file rules.
#[test]
fn workspace_concurrency_pass_is_clean() {
    let root = walk::workspace_root();
    let report = lockgraph::analyze_workspace(&root).expect("workspace walk");
    let rendered: Vec<String> = report
        .violations
        .iter()
        .map(|(f, v)| format!("{}:{}: [{}] {}", f.display(), v.line, v.rule, v.message))
        .collect();
    assert!(report.clean(), "{}", rendered.join("\n"));
}
