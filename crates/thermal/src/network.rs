//! Compact 1-D thermal ladder networks.
//!
//! The fast analysis path (Sec. I of the paper, and the proxy inside
//! floorplanning cost loops): each tier is a heat-flux source separated
//! from the tier below by an area-specific resistance; all heat exits
//! through the heatsink at the bottom. Resistance `m` (between node `m−1`
//! and node `m`) carries the combined flux of every tier at or above `m`,
//! which is what makes the junction rise quadratic in tier count.

use crate::heatsink::Heatsink;
use tsc_units::{AreaThermalResistance, HeatFlux, Ratio, TempDelta, Temperature};

/// One rung of the ladder: a tier's heat flux and the conduction
/// resistance between this tier's source plane and the node below it.
#[derive(Debug, Clone, PartialEq)]
pub struct TierRung {
    /// Heat flux dissipated by this tier.
    pub flux: HeatFlux,
    /// Area-specific resistance from this tier down to the previous node
    /// (tier BEOL + ILV + device-layer contribution).
    pub resistance: AreaThermalResistance,
}

impl TierRung {
    /// Creates a rung.
    #[must_use]
    pub const fn new(flux: HeatFlux, resistance: AreaThermalResistance) -> Self {
        Self { flux, resistance }
    }
}

/// A compact vertical ladder: heatsink at the bottom, `N` rungs above it
/// (rung 0 closest to the sink).
///
/// ```
/// use tsc_thermal::{network::{Ladder, TierRung}, Heatsink};
/// use tsc_units::{AreaThermalResistance, HeatFlux};
///
/// let rung = TierRung::new(
///     HeatFlux::from_watts_per_square_cm(53.0),
///     AreaThermalResistance::new(3.3e-6),
/// );
/// let ladder = Ladder::uniform(Heatsink::two_phase(), rung, 3);
/// let tj = ladder.junction_temperature();
/// assert!(tj.celsius() > 100.0 && tj.celsius() < 125.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ladder {
    heatsink: Heatsink,
    rungs: Vec<TierRung>,
}

impl Ladder {
    /// Creates a ladder from explicit rungs (index 0 nearest the sink).
    ///
    /// # Panics
    ///
    /// Panics if `rungs` is empty.
    #[must_use]
    pub fn new(heatsink: Heatsink, rungs: Vec<TierRung>) -> Self {
        assert!(!rungs.is_empty(), "ladder needs at least one rung");
        Self { heatsink, rungs }
    }

    /// Creates a homogeneous `n`-tier ladder.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn uniform(heatsink: Heatsink, rung: TierRung, n: usize) -> Self {
        assert!(n > 0, "ladder needs at least one rung");
        Self {
            heatsink,
            rungs: vec![rung; n],
        }
    }

    /// Number of tiers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// `false` always (constructors reject empty ladders).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// Total heat flux through the heatsink.
    #[must_use]
    pub fn total_flux(&self) -> HeatFlux {
        self.rungs.iter().map(|r| r.flux).sum()
    }

    /// Temperature rise across the heatsink film.
    #[must_use]
    pub fn heatsink_rise(&self) -> TempDelta {
        self.total_flux() / self.heatsink.h
    }

    /// Node temperatures, rung 0 first.
    #[must_use]
    pub fn node_temperatures(&self) -> Vec<Temperature> {
        let mut above: Vec<HeatFlux> = Vec::with_capacity(self.rungs.len());
        // above[m] = flux crossing resistance m = sum of fluxes of rungs >= m.
        let mut acc = HeatFlux::ZERO;
        for rung in self.rungs.iter().rev() {
            acc += rung.flux;
            above.push(acc);
        }
        above.reverse();

        let mut t = self.heatsink.ambient + self.heatsink_rise();
        let mut out = Vec::with_capacity(self.rungs.len());
        for (rung, crossing) in self.rungs.iter().zip(above) {
            t += crossing * rung.resistance;
            out.push(t);
        }
        out
    }

    /// The junction (hottest node) temperature — the top of the ladder.
    #[must_use]
    pub fn junction_temperature(&self) -> Temperature {
        // node_temperatures() always yields at least the sink node.
        *self
            .node_temperatures()
            .last()
            .expect("ladder is never empty") // tsc-analyze: allow(no-unwrap): never empty
    }

    /// Conduction (ladder) share of the total junction rise —
    /// the paper's "85 % of Tj comes from the tiers" decomposition.
    #[must_use]
    pub fn conduction_fraction(&self) -> Ratio {
        let total = (self.junction_temperature() - self.heatsink.ambient).kelvin();
        if total <= 0.0 {
            return Ratio::ZERO;
        }
        let sink = self.heatsink_rise().kelvin();
        Ratio::from_fraction((total - sink) / total)
    }

    /// The largest tier count for which the junction stays at or below
    /// `limit`, assuming every added tier repeats `rung`. Returns 0 when
    /// even one tier violates the limit, and caps the search at
    /// `max_tiers`.
    #[must_use]
    pub fn max_tiers_within(
        heatsink: Heatsink,
        rung: TierRung,
        limit: Temperature,
        max_tiers: usize,
    ) -> usize {
        let mut best = 0;
        for n in 1..=max_tiers {
            let ladder = Ladder::uniform(heatsink, rung.clone(), n);
            if ladder.junction_temperature() <= limit {
                best = n;
            } else {
                break;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rung(q: f64, r: f64) -> TierRung {
        TierRung::new(
            HeatFlux::from_watts_per_square_cm(q),
            AreaThermalResistance::new(r),
        )
    }

    #[test]
    fn matches_closed_form_for_uniform_stack() {
        let n = 5;
        let ladder = Ladder::uniform(Heatsink::two_phase(), rung(53.0, 3.3e-6), n);
        let expected = tsc_units::ops::stack_junction_temperature(
            n,
            HeatFlux::from_watts_per_square_cm(53.0),
            AreaThermalResistance::new(3.3e-6),
            tsc_units::HeatTransferCoefficient::TWO_PHASE,
            Temperature::from_celsius(100.0),
        );
        assert!(ladder.junction_temperature().approx_eq(expected, 1e-9));
    }

    #[test]
    fn node_temperatures_ascend() {
        let ladder = Ladder::uniform(Heatsink::two_phase(), rung(50.0, 2e-6), 6);
        let nodes = ladder.node_temperatures();
        assert_eq!(nodes.len(), 6);
        for w in nodes.windows(2) {
            assert!(w[1] > w[0], "temperature must rise up the stack");
        }
    }

    #[test]
    fn conduction_dominates_three_tier_conventional() {
        // The Sec. I observation: ~85% of the rise is conduction.
        let ladder = Ladder::uniform(Heatsink::two_phase(), rung(53.0, 3.3e-6), 3);
        let f = ladder.conduction_fraction();
        assert!(f.percent() > 75.0 && f.percent() < 95.0, "{f}");
    }

    #[test]
    fn heterogeneous_rungs_respect_order() {
        // A poor tier near the sink penalizes everyone above it more than
        // the same poor tier at the top.
        let poor = rung(50.0, 1e-5);
        let good = rung(50.0, 1e-7);
        let poor_bottom = Ladder::new(
            Heatsink::two_phase(),
            vec![poor.clone(), good.clone(), good.clone()],
        );
        let poor_top = Ladder::new(Heatsink::two_phase(), vec![good.clone(), good, poor]);
        assert!(poor_bottom.junction_temperature() > poor_top.junction_temperature());
    }

    #[test]
    fn max_tiers_search() {
        let limit = Temperature::from_celsius(125.0);
        let conventional = rung(53.0, 3.3e-6);
        let scaffolded = rung(53.0, 1.2e-7);
        let n_conv = Ladder::max_tiers_within(Heatsink::two_phase(), conventional, limit, 20);
        let n_scaf = Ladder::max_tiers_within(Heatsink::two_phase(), scaffolded, limit, 20);
        assert!((2..=5).contains(&n_conv), "conventional: {n_conv}");
        assert!(n_scaf >= 10, "scaffolded: {n_scaf}");
    }

    #[test]
    fn impossible_limit_gives_zero() {
        let n = Ladder::max_tiers_within(
            Heatsink::two_phase(),
            rung(500.0, 1e-4),
            Temperature::from_celsius(101.0),
            20,
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn total_flux_sums_rungs() {
        let ladder = Ladder::new(
            Heatsink::microfluidic(),
            vec![rung(10.0, 1e-6), rung(20.0, 1e-6), rung(30.0, 1e-6)],
        );
        assert!((ladder.total_flux().watts_per_square_cm() - 60.0).abs() < 1e-9);
    }
}
