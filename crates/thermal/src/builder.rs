//! Mesh construction from layer stacks — the bridge between physical
//! design data (floorplans, material assignments, power maps) and the
//! finite-volume [`Problem`].

use crate::heatsink::Heatsink;
use crate::problem::Problem;
use tsc_geometry::{Grid2, LayerKind, LayerSlab};
use tsc_materials::Anisotropic;
use tsc_units::{Length, ThermalConductivity};

/// One slab of the stack with its material and optional heat source.
#[derive(Debug, Clone)]
pub struct SlabSpec {
    /// Geometry and role of the slab.
    pub slab: LayerSlab,
    /// Anisotropic conductivity of the slab material.
    pub conductivity: Anisotropic,
    /// Power-density map (W/m²) dissipated inside this slab, if any.
    /// Resampled to the mesh resolution; the power is deposited in the
    /// slab's bottom-most mesh layer (device layers are one cell thick).
    pub power: Option<Grid2<f64>>,
}

impl SlabSpec {
    /// Creates a passive (unpowered) slab.
    #[must_use]
    pub fn passive(slab: LayerSlab, conductivity: Anisotropic) -> Self {
        Self {
            slab,
            conductivity,
            power: None,
        }
    }

    /// Creates a powered slab.
    #[must_use]
    pub fn powered(slab: LayerSlab, conductivity: Anisotropic, power: Grid2<f64>) -> Self {
        Self {
            slab,
            conductivity,
            power: Some(power),
        }
    }
}

/// Builds a [`Problem`] from an ordered list of [`SlabSpec`]s
/// (bottom/heatsink side first).
///
/// ```
/// use tsc_geometry::{LayerKind, LayerSlab};
/// use tsc_materials::{Anisotropic, BULK_SILICON};
/// use tsc_thermal::{Heatsink, SlabSpec, StackMeshBuilder, CgSolver};
/// use tsc_units::Length;
///
/// let mut b = StackMeshBuilder::new(
///     8, 8,
///     Length::from_millimeters(1.0), Length::from_millimeters(1.0));
/// b.push(SlabSpec::passive(
///     LayerSlab::new("handle", Length::from_micrometers(10.0), LayerKind::HandleSilicon),
///     BULK_SILICON.conductivity,
/// ));
/// b.set_bottom_heatsink(Heatsink::two_phase());
/// let problem = b.build();
/// assert_eq!(problem.dim().nz, 1); // one 10 µm slab within the default cell cap
/// ```
#[derive(Debug, Clone)]
pub struct StackMeshBuilder {
    nx: usize,
    ny: usize,
    width: Length,
    depth: Length,
    slabs: Vec<SlabSpec>,
    max_cell: Length,
    bottom: Option<Heatsink>,
    top: Option<Heatsink>,
}

impl StackMeshBuilder {
    /// Creates a builder over an `nx × ny` lateral mesh spanning
    /// `width × depth`.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or an extent non-positive.
    #[must_use]
    pub fn new(nx: usize, ny: usize, width: Length, depth: Length) -> Self {
        assert!(nx > 0 && ny > 0, "lateral mesh dimensions must be positive");
        assert!(
            width.meters() > 0.0 && depth.meters() > 0.0,
            "lateral extents must be positive"
        );
        Self {
            nx,
            ny,
            width,
            depth,
            slabs: Vec::new(),
            max_cell: Length::from_micrometers(10.0),
            bottom: None,
            top: None,
        }
    }

    /// Sets the maximum vertical cell thickness (default 10 µm). Thinner
    /// slabs always get at least one cell; thicker slabs are subdivided.
    ///
    /// # Panics
    ///
    /// Panics if `max_cell` is non-positive.
    pub fn set_max_cell_thickness(&mut self, max_cell: Length) {
        assert!(max_cell.meters() > 0.0, "cell thickness must be positive");
        self.max_cell = max_cell;
    }

    /// Appends a slab on top of the stack.
    pub fn push(&mut self, spec: SlabSpec) {
        self.slabs.push(spec);
    }

    /// Attaches the heatsink to the bottom face.
    pub fn set_bottom_heatsink(&mut self, hs: Heatsink) {
        self.bottom = Some(hs);
    }

    /// Attaches a heatsink to the top face.
    pub fn set_top_heatsink(&mut self, hs: Heatsink) {
        self.top = Some(hs);
    }

    /// Number of slabs staged.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slabs.len()
    }

    /// `true` when no slabs are staged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slabs.is_empty()
    }

    /// Index of the first mesh z-layer of each slab after discretization
    /// (parallel to the staged slabs).
    #[must_use]
    pub fn slab_layer_offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.slabs.len());
        let mut z = 0;
        for spec in &self.slabs {
            offsets.push(z);
            z += self.cells_for(spec);
        }
        offsets
    }

    fn cells_for(&self, spec: &SlabSpec) -> usize {
        (spec.slab.thickness.meters() / self.max_cell.meters())
            .ceil()
            .max(1.0) as usize
    }

    /// Builds the finite-volume problem.
    ///
    /// # Panics
    ///
    /// Panics if no slabs were staged.
    #[must_use]
    pub fn build(&self) -> Problem {
        assert!(
            !self.slabs.is_empty(),
            "stack must contain at least one slab"
        );
        let mut dz = Vec::new();
        let mut slab_of_cell = Vec::new();
        for (s, spec) in self.slabs.iter().enumerate() {
            let n = self.cells_for(spec);
            let t = spec.slab.thickness / n as f64;
            for _ in 0..n {
                dz.push(t);
                slab_of_cell.push(s);
            }
        }

        let mut p = Problem::new(
            self.nx,
            self.ny,
            self.width / self.nx as f64,
            self.depth / self.ny as f64,
            dz,
            ThermalConductivity::new(1.0),
        );
        for (k, &s) in slab_of_cell.iter().enumerate() {
            let c = self.slabs[s].conductivity;
            p.set_layer_conductivity(k, c.vertical, c.lateral);
        }
        // Deposit power in the bottom cell of each powered slab.
        let offsets = self.slab_layer_offsets();
        for (s, spec) in self.slabs.iter().enumerate() {
            if let Some(map) = &spec.power {
                p.add_flux_map(offsets[s], map);
            }
        }
        if let Some(hs) = self.bottom {
            p.set_bottom_heatsink(hs);
        }
        if let Some(hs) = self.top {
            p.set_top_heatsink(hs);
        }
        p
    }

    /// Lateral mesh width in cells.
    #[must_use]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Lateral mesh depth in cells.
    #[must_use]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Kinds of the staged slabs, bottom to top (for diagnostics).
    #[must_use]
    pub fn kinds(&self) -> Vec<LayerKind> {
        self.slabs.iter().map(|s| s.slab.kind).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::CgSolver;
    use tsc_materials::{BULK_SILICON, DEVICE_SILICON_THIN, ULTRA_LOW_K_ILD};

    fn device_slab(power_w_per_m2: f64, nx: usize, ny: usize) -> SlabSpec {
        SlabSpec::powered(
            LayerSlab::new(
                "device",
                Length::from_nanometers(100.0),
                LayerKind::DeviceSilicon,
            ),
            DEVICE_SILICON_THIN.conductivity,
            Grid2::filled(nx, ny, power_w_per_m2),
        )
    }

    fn builder() -> StackMeshBuilder {
        let mut b = StackMeshBuilder::new(
            8,
            8,
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.0),
        );
        b.push(SlabSpec::passive(
            LayerSlab::new(
                "handle",
                Length::from_micrometers(10.0),
                LayerKind::HandleSilicon,
            ),
            BULK_SILICON.conductivity,
        ));
        b.push(device_slab(53.0e4, 8, 8)); // 53 W/cm²
        b.push(SlabSpec::passive(
            LayerSlab::new("beol", Length::from_micrometers(1.0), LayerKind::BeolLower),
            ULTRA_LOW_K_ILD.conductivity,
        ));
        b.set_bottom_heatsink(Heatsink::two_phase());
        b
    }

    #[test]
    fn offsets_track_discretization() {
        let b = builder();
        assert_eq!(b.slab_layer_offsets(), vec![0, 1, 2]);
        let p = b.build();
        assert_eq!(p.dim().nz, 3);
        assert!((p.dz()[0].micrometers() - 10.0).abs() < 1e-9);
        assert!((p.dz()[1].nanometers() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn power_lands_in_device_layer() {
        let p = builder().build();
        // 53 W/cm² over 1 mm² = 0.53 W, all in z layer 1.
        assert!((p.total_power().watts() - 0.53).abs() < 1e-9);
        assert!((p.cell_power(0, 0, 1).watts() - 0.53 / 64.0).abs() < 1e-9);
        assert_eq!(p.cell_power(0, 0, 0).watts(), 0.0);
    }

    #[test]
    fn conductivities_follow_materials() {
        let p = builder().build();
        assert!((p.kz_at(0, 0, 0).get() - 180.0).abs() < 1e-9);
        assert!((p.kz_at(0, 0, 1).get() - 30.0).abs() < 1e-9);
        assert!((p.kxy_at(0, 0, 1).get() - 65.0).abs() < 1e-9);
        assert!((p.kz_at(0, 0, 2).get() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn single_tier_solves_to_sane_temperature() {
        let p = builder().build();
        let sol = CgSolver::new().solve(&p).expect("converges");
        let tj = sol.temperatures.max_temperature();
        // One tier of 53 W/cm² on a two-phase sink: ~0.5 °C above the
        // 100 °C ambient (heatsink film dominates).
        assert!(tj.celsius() > 100.0 && tj.celsius() < 102.0, "Tj = {tj}");
        assert!(sol.energy.relative_error() < 1e-6);
    }

    #[test]
    fn thick_slabs_subdivide() {
        let mut b = builder();
        b.set_max_cell_thickness(Length::from_micrometers(2.5));
        assert_eq!(b.slab_layer_offsets(), vec![0, 4, 5]);
        let p = b.build();
        assert_eq!(p.dim().nz, 6);
    }

    #[test]
    #[should_panic(expected = "at least one slab")]
    fn empty_stack_rejected() {
        let b = StackMeshBuilder::new(
            2,
            2,
            Length::from_micrometers(1.0),
            Length::from_micrometers(1.0),
        );
        let _ = b.build();
    }
}
