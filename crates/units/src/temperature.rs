//! Absolute temperatures and temperature differences.
//!
//! The distinction matters: `125 °C − 100 °C` is a 25 K *difference*, not a
//! 25 °C absolute temperature, and adding two absolute temperatures is
//! meaningless. [`Temperature`] therefore only supports subtraction (giving
//! a [`TempDelta`]) and offsetting by a delta.

/// An absolute temperature, stored in kelvin.
///
/// ```
/// use tsc_units::Temperature;
/// let limit = Temperature::from_celsius(125.0);
/// let ambient = Temperature::from_celsius(100.0);
/// let budget = limit - ambient;
/// assert!((budget.kelvin() - 25.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Temperature(f64);

quantity! {
    /// A temperature difference, stored in kelvin.
    ///
    /// ```
    /// use tsc_units::TempDelta;
    /// let per_tier = TempDelta::new(3.0);
    /// assert_eq!((per_tier * 4.0).kelvin(), 12.0);
    /// ```
    TempDelta, "K", "Creates a temperature difference from kelvin."
}

impl Temperature {
    /// Absolute zero.
    pub const ABSOLUTE_ZERO: Self = Self(0.0);

    /// Creates an absolute temperature from kelvin.
    #[must_use]
    pub const fn from_kelvin(k: f64) -> Self {
        Self(k)
    }

    /// Creates an absolute temperature from degrees Celsius.
    #[must_use]
    pub fn from_celsius(c: f64) -> Self {
        Self(c + 273.15)
    }

    /// Value in kelvin.
    #[must_use]
    pub const fn kelvin(self) -> f64 {
        self.0
    }

    /// Value in degrees Celsius.
    #[must_use]
    pub fn celsius(self) -> f64 {
        self.0 - 273.15
    }

    /// The warmer of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// The cooler of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// `true` when the raw value is finite (not NaN/∞).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Approximate equality within `tol` kelvin.
    #[must_use]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.0 - other.0).abs() <= tol
    }
}

impl TempDelta {
    /// Value in kelvin (identical magnitude in °C).
    #[must_use]
    pub const fn kelvin(self) -> f64 {
        self.get()
    }
}

impl core::ops::Sub for Temperature {
    type Output = TempDelta;
    fn sub(self, rhs: Self) -> TempDelta {
        TempDelta::new(self.0 - rhs.0)
    }
}

impl core::ops::Add<TempDelta> for Temperature {
    type Output = Temperature;
    fn add(self, rhs: TempDelta) -> Temperature {
        Temperature(self.0 + rhs.get())
    }
}

impl core::ops::Sub<TempDelta> for Temperature {
    type Output = Temperature;
    fn sub(self, rhs: TempDelta) -> Temperature {
        Temperature(self.0 - rhs.get())
    }
}

impl core::ops::AddAssign<TempDelta> for Temperature {
    fn add_assign(&mut self, rhs: TempDelta) {
        self.0 += rhs.get();
    }
}

impl core::fmt::Display for Temperature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.2} °C", self.celsius())
    }
}

impl Default for Temperature {
    /// Room temperature, 25 °C — the conventional single-phase ambient.
    fn default() -> Self {
        Self::from_celsius(25.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let t = Temperature::from_celsius(125.0);
        assert!((t.kelvin() - 398.15).abs() < 1e-12);
        assert!((t.celsius() - 125.0).abs() < 1e-12);
    }

    #[test]
    fn subtraction_yields_delta() {
        let hot = Temperature::from_celsius(125.0);
        let cold = Temperature::from_celsius(100.0);
        assert!((hot - cold).approx_eq(TempDelta::new(25.0), 1e-12));
    }

    #[test]
    fn offset_by_delta() {
        let ambient = Temperature::from_celsius(100.0);
        let rise = TempDelta::new(6.36);
        let t = ambient + rise;
        assert!((t.celsius() - 106.36).abs() < 1e-12);
        assert!(((t - rise).celsius() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(Temperature::from_celsius(85.0) < Temperature::from_celsius(125.0));
        let a = Temperature::from_celsius(85.0);
        let b = Temperature::from_celsius(125.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_in_celsius() {
        let t = Temperature::from_celsius(125.0);
        assert_eq!(format!("{t}"), "125.00 °C");
    }

    #[test]
    fn default_is_room_temperature() {
        assert!((Temperature::default().celsius() - 25.0).abs() < 1e-12);
    }
}
