//! The bounded job table the scheduler runs from.
//!
//! This is a *plain data structure* — no locking, no threads, no
//! wall-clock reads. `tsc-serve` wraps it in a ranked mutex and passes
//! `Instant`s in from outside, which keeps every transition unit-
//! testable and keeps the scheduling policy (per-class concurrency
//! quotas, TTL eviction, cooperative cancellation) in one place:
//!
//! * jobs are admitted up to `capacity`, then rejected — the table is
//!   distinct from the request queue, so a full table never blocks
//!   interactive traffic;
//! * at most `active_per_class` jobs per [`JobClass`] are `Running`;
//!   the rest wait `Queued` in submit order;
//! * finished entries (and their results) linger for `ttl` so clients
//!   can poll, then evict.

use std::time::{Duration, Instant};

use tsc_bench::json::Json;
use tsc_rng::Rng64;

use crate::checkpoint::hex_u64;
use crate::engine::{Engine, ShardWork};
use crate::spec::{JobKind, JobSpec};

/// Table sizing and retention.
#[derive(Debug, Clone, Copy)]
pub struct TableConfig {
    /// Maximum entries (all states) the table holds.
    pub capacity: usize,
    /// `Running` jobs allowed per class.
    pub active_per_class: usize,
    /// How long terminal entries linger before eviction.
    pub ttl: Duration,
}

impl Default for TableConfig {
    fn default() -> Self {
        Self {
            capacity: 16,
            active_per_class: 2,
            ttl: Duration::from_secs(600),
        }
    }
}

/// Scheduling class of a job (quotas apply per class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// Bounded multi-solve work: sweeps, placements.
    Batch,
    /// Long optimization runs: tempered floorplanning.
    Background,
}

impl JobClass {
    /// The class a kind schedules under.
    #[must_use]
    pub fn of(kind: JobKind) -> Self {
        match kind {
            JobKind::FloorplanSa => Self::Background,
            JobKind::DielectricSweep | JobKind::PillarPlace => Self::Batch,
        }
    }

    /// Wire/metrics label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Batch => "batch",
            Self::Background => "background",
        }
    }
}

/// Lifecycle of a table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a class slot.
    Queued,
    /// Work units are being issued.
    Running,
    /// Finished with a result.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled by the client (or drained).
    Cancelled,
}

impl JobState {
    /// Wire label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Done => "done",
            Self::Failed => "failed",
            Self::Cancelled => "cancelled",
        }
    }

    /// `true` for states that issue no further work.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, Self::Done | Self::Failed | Self::Cancelled)
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The table is at capacity (retry after jobs finish/evict).
    TableFull,
    /// The spec failed engine construction.
    BadSpec(String),
}

/// Monotone lifetime totals the table keeps across evictions, so an
/// exporter can expose counters that never move backwards.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TableCounters {
    /// Jobs that reached [`JobState::Done`].
    pub done: u64,
    /// Jobs that reached [`JobState::Failed`].
    pub failed: u64,
    /// Jobs that reached [`JobState::Cancelled`].
    pub cancelled: u64,
    /// Terminal entries evicted after their TTL.
    pub evicted: u64,
    /// Fresh evaluations performed by jobs that reached a terminal
    /// state (live jobs' evaluations are still on their engines).
    pub evals: u64,
    /// Memo-served evaluations of terminal jobs.
    pub dedup_hits: u64,
}

/// One job in the table.
#[derive(Debug)]
pub struct JobEntry {
    /// Table-unique id (served as 16 hex digits).
    pub id: u64,
    /// Scheduling class.
    pub class: JobClass,
    /// Lifecycle state.
    pub state: JobState,
    /// Spec summary echoed in status documents.
    pub summary: Json,
    /// The engine.
    pub engine: Engine,
    /// Progress events, in order, for `/events` streaming.
    pub events: Vec<Json>,
    /// Failure message, if `Failed`.
    pub error: Option<String>,
    /// Cooperative cancel flag (stops new checkouts).
    pub cancel_requested: bool,
    /// Work units currently out with workers.
    pub inflight: usize,
    /// Admission time.
    pub submitted_at: Instant,
    /// Terminal-transition time (starts the TTL clock).
    pub finished_at: Option<Instant>,
}

impl JobEntry {
    fn push_state_event(&mut self) {
        self.events.push(
            Json::object()
                .field("event", "state")
                .field("state", self.state.label()),
        );
    }

    fn finish(&mut self, state: JobState, now: Instant) {
        self.state = state;
        self.finished_at = Some(now);
        self.push_state_event();
    }

    /// The full status document for `GET /v1/jobs/{id}`.
    #[must_use]
    pub fn status(&self) -> Json {
        let mut doc = Json::object()
            .field("id", hex_u64(self.id))
            .field("state", self.state.label())
            .field("class", self.class.label())
            .field("spec", self.summary.clone())
            .field("progress", self.engine.progress().to_json())
            .field("events", self.events.len());
        if let Some(err) = &self.error {
            doc = doc.field("error", err.as_str());
        }
        if let Some(result) = self.engine.result() {
            if self.state == JobState::Done {
                doc = doc.field("result", result);
            }
        }
        doc
    }
}

/// The bounded job table.
#[derive(Debug)]
pub struct JobTable {
    config: TableConfig,
    entries: Vec<JobEntry>,
    id_rng: Rng64,
    counters: TableCounters,
}

impl JobTable {
    /// An empty table; `id_seed` seeds the id stream.
    #[must_use]
    pub fn new(config: TableConfig, id_seed: u64) -> Self {
        Self {
            config,
            entries: Vec::new(),
            id_rng: Rng64::seed_from_u64(id_seed),
            counters: TableCounters::default(),
        }
    }

    /// Lifetime totals (survive eviction).
    #[must_use]
    pub fn counters(&self) -> TableCounters {
        self.counters
    }

    /// All current entries, in submit order.
    pub fn entries(&self) -> impl Iterator<Item = &JobEntry> {
        self.entries.iter()
    }

    /// Entries currently held (all states).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the table holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(running, queued)` counts for gauges.
    #[must_use]
    pub fn load(&self) -> (usize, usize) {
        let running = self
            .entries
            .iter()
            .filter(|e| e.state == JobState::Running)
            .count();
        let queued = self
            .entries
            .iter()
            .filter(|e| e.state == JobState::Queued)
            .count();
        (running, queued)
    }

    fn active(&self, class: JobClass) -> usize {
        self.entries
            .iter()
            .filter(|e| e.class == class && e.state == JobState::Running)
            .count()
    }

    /// Admits a job.
    ///
    /// # Errors
    ///
    /// [`SubmitError::TableFull`] at capacity, [`SubmitError::BadSpec`]
    /// when the engine rejects the spec (unknown design, bad resume
    /// checkpoint).
    pub fn submit(&mut self, spec: &JobSpec, now: Instant) -> Result<u64, SubmitError> {
        if self.entries.len() >= self.config.capacity {
            return Err(SubmitError::TableFull);
        }
        let engine = Engine::from_spec(spec).map_err(SubmitError::BadSpec)?;
        let id = loop {
            let id = self.id_rng.next_u64();
            if id != 0 && self.get(id).is_none() {
                break id;
            }
        };
        let mut entry = JobEntry {
            id,
            class: JobClass::of(spec.kind),
            state: JobState::Queued,
            summary: spec.summary(),
            engine,
            events: Vec::new(),
            error: None,
            cancel_requested: false,
            inflight: 0,
            submitted_at: now,
            finished_at: None,
        };
        entry.push_state_event();
        self.entries.push(entry);
        Ok(id)
    }

    /// Looks up an entry.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<&JobEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    fn get_mut(&mut self, id: u64) -> Option<&mut JobEntry> {
        self.entries.iter_mut().find(|e| e.id == id)
    }

    /// Promotes queued jobs within quotas and checks out up to `max`
    /// work units, round-robin across running jobs so one job cannot
    /// monopolize the worker pool.
    pub fn next_slices(&mut self, max: usize, now: Instant) -> Vec<(u64, ShardWork)> {
        // Promotion in submit order.
        for i in 0..self.entries.len() {
            if self.entries[i].state != JobState::Queued {
                continue;
            }
            let class = self.entries[i].class;
            if self.active(class) < self.config.active_per_class {
                self.entries[i].state = JobState::Running;
                self.entries[i].push_state_event();
            }
        }
        let mut out = Vec::new();
        loop {
            let before = out.len();
            for i in 0..self.entries.len() {
                if out.len() >= max {
                    return out;
                }
                let entry = &mut self.entries[i];
                if entry.state != JobState::Running || entry.cancel_requested {
                    continue;
                }
                if let Some(work) = entry.engine.next_work() {
                    entry.inflight += 1;
                    out.push((entry.id, work));
                } else if entry.inflight == 0 {
                    // Nothing checked out and nothing to issue: the
                    // engine ended without a completion call (e.g. an
                    // engine that was already done on admission).
                    let id = entry.id;
                    self.settle(id, now);
                }
            }
            if out.len() == before {
                return out;
            }
        }
    }

    /// Folds a terminal state out of the engine once nothing is in
    /// flight.
    fn settle(&mut self, id: u64, now: Instant) {
        let Some(idx) = self.entries.iter().position(|e| e.id == id) else {
            return;
        };
        let finished = {
            let entry = &mut self.entries[idx];
            if entry.state.is_terminal() || entry.inflight > 0 {
                return;
            }
            if let Some(msg) = entry.engine.failed() {
                entry.error = Some(msg.to_string());
                entry.finish(JobState::Failed, now);
                Some(JobState::Failed)
            } else if entry.engine.is_done() {
                entry.finish(JobState::Done, now);
                Some(JobState::Done)
            } else if entry.cancel_requested {
                entry.finish(JobState::Cancelled, now);
                Some(JobState::Cancelled)
            } else {
                None
            }
        };
        if let Some(state) = finished {
            self.record_terminal(idx, state);
        }
    }

    /// Folds a terminal transition into the lifetime counters.
    fn record_terminal(&mut self, idx: usize, state: JobState) {
        let progress = self.entries[idx].engine.progress();
        match state {
            JobState::Done => self.counters.done += 1,
            JobState::Failed => self.counters.failed += 1,
            JobState::Cancelled => self.counters.cancelled += 1,
            JobState::Queued | JobState::Running => {}
        }
        self.counters.evals += progress.evals;
        self.counters.dedup_hits += progress.dedup_hits;
    }

    /// Returns a completed work unit. Events the engine emits are
    /// buffered on the entry; terminal transitions settle here.
    pub fn complete(&mut self, id: u64, work: ShardWork, now: Instant) {
        let Some(entry) = self.get_mut(id) else {
            return; // Entry evicted while the shard ran: drop it.
        };
        entry.inflight = entry.inflight.saturating_sub(1);
        let events = entry.engine.complete_shard(work);
        entry.events.extend(events);
        self.settle(id, now);
    }

    /// Requests cancellation. Queued jobs cancel immediately; running
    /// jobs stop issuing work and settle when in-flight units return.
    /// Returns the entry's state after the request.
    pub fn cancel(&mut self, id: u64, now: Instant) -> Option<JobState> {
        let idx = self.entries.iter().position(|e| e.id == id)?;
        let finished = {
            let entry = &mut self.entries[idx];
            if !entry.state.is_terminal() {
                entry.cancel_requested = true;
                if entry.inflight == 0 {
                    entry.finish(JobState::Cancelled, now);
                    true
                } else {
                    false
                }
            } else {
                false
            }
        };
        if finished {
            self.record_terminal(idx, JobState::Cancelled);
        }
        Some(self.entries[idx].state)
    }

    /// Writes off a work unit a worker lost (panic mid-slice): the
    /// engine can never be advanced safely again, so the entry fails
    /// immediately instead of waiting on a return that will not come.
    pub fn abandon(&mut self, id: u64, error: &str, now: Instant) {
        let Some(idx) = self.entries.iter().position(|e| e.id == id) else {
            return;
        };
        let finished = {
            let entry = &mut self.entries[idx];
            entry.inflight = entry.inflight.saturating_sub(1);
            if entry.state.is_terminal() {
                false
            } else {
                entry.error = Some(error.to_string());
                entry.finish(JobState::Failed, now);
                true
            }
        };
        if finished {
            self.record_terminal(idx, JobState::Failed);
        }
    }

    /// Evicts terminal entries whose TTL has lapsed; returns how many.
    pub fn evict_expired(&mut self, now: Instant) -> usize {
        let ttl = self.config.ttl;
        let before = self.entries.len();
        self.entries.retain(|e| {
            !(e.state.is_terminal()
                && e.inflight == 0
                && e.finished_at.is_some_and(|t| now.duration_since(t) >= ttl))
        });
        let evicted = before - self.entries.len();
        self.counters.evicted += evicted as u64;
        evicted
    }

    /// `true` while any non-terminal entry exists (the pump uses this
    /// to decide whether to keep polling).
    #[must_use]
    pub fn has_live_jobs(&self) -> bool {
        self.entries.iter().any(|e| !e.state.is_terminal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_bench::json::{parse, Json};

    fn fp_spec(seed: u64) -> JobSpec {
        let body = parse(&format!(
            r#"{{"kind": "floorplan_sa", "design": "rocket", "replicas": 2, "seed": {seed}}}"#
        ))
        .expect("json");
        JobSpec::parse(&body).expect("spec")
    }

    fn drain(table: &mut JobTable, now: Instant) {
        loop {
            let slices = table.next_slices(8, now);
            if slices.is_empty() {
                break;
            }
            for (id, mut work) in slices {
                work.run();
                table.complete(id, work, now);
            }
        }
    }

    #[test]
    fn quotas_keep_excess_jobs_queued() {
        let config = TableConfig {
            capacity: 8,
            active_per_class: 1,
            ttl: Duration::from_secs(60),
        };
        let now = Instant::now();
        let mut table = JobTable::new(config, 1);
        let a = table.submit(&fp_spec(1), now).expect("submit");
        let b = table.submit(&fp_spec(2), now).expect("submit");
        let slices = table.next_slices(8, now);
        assert!(!slices.is_empty());
        assert_eq!(table.get(a).expect("a").state, JobState::Running);
        assert_eq!(
            table.get(b).expect("b").state,
            JobState::Queued,
            "class quota of 1 must hold the second job back"
        );
        assert!(slices.iter().all(|(id, _)| *id == a));
        for (id, mut work) in slices {
            work.run();
            table.complete(id, work, now);
        }
        drain(&mut table, now);
        assert_eq!(table.get(a).expect("a").state, JobState::Done);
        assert_eq!(table.get(b).expect("b").state, JobState::Done);
    }

    #[test]
    fn table_full_rejects_and_ttl_evicts() {
        let config = TableConfig {
            capacity: 1,
            active_per_class: 1,
            ttl: Duration::from_secs(10),
        };
        let now = Instant::now();
        let mut table = JobTable::new(config, 2);
        let id = table.submit(&fp_spec(1), now).expect("submit");
        assert_eq!(table.submit(&fp_spec(2), now), Err(SubmitError::TableFull));
        drain(&mut table, now);
        assert_eq!(table.get(id).expect("entry").state, JobState::Done);
        assert_eq!(table.evict_expired(now), 0, "TTL has not lapsed yet");
        let later = now + Duration::from_secs(11);
        assert_eq!(table.evict_expired(later), 1);
        assert!(table.get(id).is_none());
        assert!(table.submit(&fp_spec(3), later).is_ok());
    }

    #[test]
    fn cancel_mid_run_settles_after_inflight_returns() {
        let now = Instant::now();
        let mut table = JobTable::new(TableConfig::default(), 3);
        let id = table.submit(&fp_spec(5), now).expect("submit");
        let slices = table.next_slices(1, now);
        assert_eq!(slices.len(), 1);
        assert_eq!(
            table.cancel(id, now),
            Some(JobState::Running),
            "a job with in-flight work stays running until it drains"
        );
        assert!(
            table.next_slices(8, now).is_empty(),
            "a cancel-requested job must stop issuing work"
        );
        for (sid, mut work) in slices {
            work.run();
            table.complete(sid, work, now);
        }
        assert_eq!(table.get(id).expect("entry").state, JobState::Cancelled);
        // Cancelling a terminal job is a no-op.
        assert_eq!(table.cancel(id, now), Some(JobState::Cancelled));
    }

    #[test]
    fn abandon_fails_the_job_and_counters_stay_monotone() {
        let now = Instant::now();
        let mut table = JobTable::new(TableConfig::default(), 7);
        let id = table.submit(&fp_spec(3), now).expect("submit");
        let mut slices = table.next_slices(1, now);
        assert_eq!(slices.len(), 1);
        // The worker that held this slice panicked: the unit is gone.
        table.abandon(id, "worker panicked", now);
        assert_eq!(table.get(id).expect("entry").state, JobState::Failed);
        assert_eq!(table.counters().failed, 1);
        // A straggler returning a slice for a terminal entry is harmless.
        let (sid, mut work) = slices.pop().expect("slice");
        work.run();
        table.complete(sid, work, now);
        assert_eq!(table.get(id).expect("entry").state, JobState::Failed);
        assert_eq!(table.counters().failed, 1, "no double count");
        let later = now + Duration::from_secs(601);
        assert_eq!(table.evict_expired(later), 1);
        assert_eq!(table.counters().evicted, 1);
    }

    #[test]
    fn bad_specs_are_rejected_with_a_message() {
        let now = Instant::now();
        let mut table = JobTable::new(TableConfig::default(), 4);
        let body = parse(r#"{"kind": "floorplan_sa", "design": "warp-core"}"#).expect("json");
        let spec = JobSpec::parse(&body).expect("spec parses; engine rejects");
        match table.submit(&spec, now) {
            Err(SubmitError::BadSpec(msg)) => assert!(msg.contains("warp-core")),
            other => panic!("expected BadSpec, got {other:?}"),
        }
    }

    #[test]
    fn status_document_carries_result_when_done() {
        let now = Instant::now();
        let mut table = JobTable::new(TableConfig::default(), 5);
        let id = table.submit(&fp_spec(9), now).expect("submit");
        drain(&mut table, now);
        let status = table.get(id).expect("entry").status();
        assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
        assert!(status.get("result").is_some());
        assert!(status
            .get("progress")
            .and_then(|p| p.get("fraction"))
            .and_then(Json::as_f64)
            .is_some_and(|f| (f - 1.0).abs() < 1e-12));
    }
}
