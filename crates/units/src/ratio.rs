//! Dimensionless ratios expressed in percent-friendly form.

/// A dimensionless ratio with percentage constructors/accessors.
///
/// Used for the paper's headline overheads — footprint penalty, delay
/// penalty, metal fill density, utilization, porosity — all of which are
/// quoted in percent.
///
/// ```
/// use tsc_units::Ratio;
/// let footprint_penalty = Ratio::from_percent(10.0);
/// let delay_penalty = Ratio::from_fraction(0.03);
/// assert!((footprint_penalty.fraction() - 0.10).abs() < 1e-12);
/// assert!((delay_penalty.percent() - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ratio(f64);

impl Ratio {
    /// Zero.
    pub const ZERO: Self = Self(0.0);

    /// One hundred percent.
    pub const ONE: Self = Self(1.0);

    /// Creates a ratio from a fraction (`0.10` = 10 %).
    #[must_use]
    pub const fn from_fraction(fraction: f64) -> Self {
        Self(fraction)
    }

    /// Creates a ratio from a percentage (`10.0` = 10 %).
    #[must_use]
    pub fn from_percent(percent: f64) -> Self {
        Self(percent / 100.0)
    }

    /// Value as a fraction.
    #[must_use]
    pub const fn fraction(self) -> f64 {
        self.0
    }

    /// Value as a percentage.
    #[must_use]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// The complementary ratio `1 − self`.
    #[must_use]
    pub fn complement(self) -> Self {
        Self(1.0 - self.0)
    }

    /// The smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// The larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Clamps into `[0, 1]`.
    #[must_use]
    pub fn saturate(self) -> Self {
        Self(self.0.clamp(0.0, 1.0))
    }

    /// `true` when in `[0, 1]`.
    #[must_use]
    pub fn is_proper(self) -> bool {
        (0.0..=1.0).contains(&self.0)
    }

    /// Approximate equality within `tol` (as fraction).
    #[must_use]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.0 - other.0).abs() <= tol
    }
}

impl core::ops::Add for Ratio {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl core::ops::Sub for Ratio {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl core::ops::Mul for Ratio {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self(self.0 * rhs.0)
    }
}

impl core::ops::Mul<f64> for Ratio {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl core::ops::Div for Ratio {
    type Output = f64;
    fn div(self, rhs: Self) -> f64 {
        self.0 / rhs.0
    }
}

impl core::fmt::Display for Ratio {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.2}%", self.percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_fraction_round_trip() {
        let r = Ratio::from_percent(78.0);
        assert!((r.fraction() - 0.78).abs() < 1e-12);
        assert!((Ratio::from_fraction(0.78).percent() - 78.0).abs() < 1e-12);
    }

    #[test]
    fn complement() {
        assert!((Ratio::from_percent(34.0).complement().percent() - 66.0).abs() < 1e-9);
    }

    #[test]
    fn saturate_and_proper() {
        assert!(Ratio::from_fraction(1.4)
            .saturate()
            .approx_eq(Ratio::ONE, 1e-12));
        assert!(Ratio::from_fraction(-0.1)
            .saturate()
            .approx_eq(Ratio::ZERO, 1e-12));
        assert!(Ratio::from_percent(50.0).is_proper());
        assert!(!Ratio::from_percent(150.0).is_proper());
    }

    #[test]
    fn display_as_percent() {
        assert_eq!(format!("{}", Ratio::from_percent(10.2)), "10.20%");
    }

    #[test]
    fn ratio_products_compose() {
        // 90% placement density of an 80% utilization region.
        let r = Ratio::from_percent(90.0) * Ratio::from_percent(80.0);
        assert!((r.percent() - 72.0).abs() < 1e-9);
    }
}
