//! Explore how far tier stacking goes under different heatsinks and
//! junction-temperature limits (the Fig. 11 / Observation 3 questions).
//!
//! ```sh
//! cargo run --release --example heatsink_explorer
//! ```

use thermal_scaffolding::core::flows::{CoolingStrategy, FlowConfig};
use thermal_scaffolding::core::scaling::max_tiers;
use thermal_scaffolding::designs::gemmini;
use thermal_scaffolding::thermal::Heatsink;
use thermal_scaffolding::units::{HeatTransferCoefficient, Ratio, Temperature};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = gemmini::design();
    let sinks = [
        (
            "two-phase porous copper (boiling water)",
            Heatsink::two_phase(),
        ),
        ("Si-integrated microfluidics", Heatsink::microfluidic()),
        ("forced air", Heatsink::forced_air()),
        (
            "hypothetical h = 3e5, 25 °C",
            Heatsink::new(
                HeatTransferCoefficient::new(3.0e5),
                Temperature::from_celsius(25.0),
            ),
        ),
    ];
    let limits = [125.0, 105.0, 85.0];

    println!("supported Gemmini tiers (scaffolding at 10 % area / 3 % delay):");
    println!(
        "{:<42} {:>8} {:>8} {:>8}",
        "heatsink", "125 °C", "105 °C", "85 °C"
    );
    for (name, heatsink) in sinks {
        print!("{name:<42}");
        for limit in limits {
            let cfg = FlowConfig {
                strategy: CoolingStrategy::Scaffolding,
                heatsink,
                t_limit: Temperature::from_celsius(limit),
                area_budget: Ratio::from_percent(10.0),
                delay_budget: Ratio::from_percent(3.0),
                lateral_cells: 12,
                ..FlowConfig::default()
            };
            let n = max_tiers(&design, &cfg, 16)?;
            print!(" {n:>8}");
        }
        println!();
    }
    println!();
    println!(
        "reading: the two-phase sink dominates at the 125 °C limit but its\n\
         boiling coolant makes sub-100 °C limits unreachable; microfluidics\n\
         trade peak heat removal for a 25 °C ambient — exactly the Fig. 11\n\
         crossover."
    );
    Ok(())
}
