//! The software/hardware co-design toy of Fig. 12: four individually
//! power-gated MAC units, only one active at a time. Compare a single
//! shared pillar (reachable through the thermal dielectric) against a
//! gating-unaware 4x pillar covering.
//!
//! ```sh
//! cargo run --release --example codesign_gating
//! ```

use thermal_scaffolding::core::beol;
use thermal_scaffolding::core::codesign::{
    dielectric_sweep, reduction_vs_baseline, Arrangement, ToyConfig,
};
use thermal_scaffolding::units::Length;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ToyConfig::default();
    let side = Length::from_micrometers(1.0);
    println!(
        "toy: 4 MAC heat sources in a {} µm domain, one active at a time",
        cfg.domain.micrometers()
    );

    let single_td = reduction_vs_baseline(
        &cfg,
        beol::upper_thermal_dielectric(),
        Arrangement::SingleCentral { side },
    )?;
    let single_ulk = reduction_vs_baseline(
        &cfg,
        beol::upper_ultra_low_k(),
        Arrangement::SingleCentral { side },
    )?;
    let covering = reduction_vs_baseline(
        &cfg,
        beol::upper_ultra_low_k(),
        Arrangement::UniformCovering {
            reference_side: side,
        },
    )?;

    println!("peak-temperature reduction vs no pillars:");
    println!("  one shared pillar + thermal dielectric : {single_td}");
    println!("  one shared pillar, ultra-low-k         : {single_ulk}  <- useless without the dielectric");
    println!("  4x pillar covering, ultra-low-k        : {covering}   <- 4x the pillar area");
    println!();

    println!("reduction vs dielectric conductivity (the Fig. 12b curve):");
    for (k, r) in dielectric_sweep(&cfg, side, &[5.0, 50.0, 105.7, 250.0, 500.0])? {
        let bars = "#".repeat((r.percent() / 2.0) as usize);
        println!("  k = {k:>6.1} W/m/K: {:>6.1} % {bars}", r.percent());
    }
    println!();
    println!(
        "co-design takeaway: once software guarantees one-of-N activity,\n\
         the dielectric lets a single pillar serve all N gated units at\n\
         75 % less pillar footprint."
    );
    Ok(())
}
