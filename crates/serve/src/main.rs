//! The `tsc-serve` binary: parse flags, start the server, print the bound
//! address, and drain gracefully when a client POSTs `/v1/shutdown`.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Duration;

use tsc_serve::{Server, ServerConfig};

const USAGE: &str = "usage: tsc-serve [--port N] [--workers N] [--queue-cap N] \
                     [--pool-cap N] [--deadline-ms N] [--session-cap N]";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        port: 7070,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .max(2),
        ..ServerConfig::default()
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<u64, String> {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))?
                .parse::<u64>()
                .map_err(|_| format!("{name} requires a non-negative integer"))
        };
        match flag.as_str() {
            "--port" => config.port = value("--port")? as u16,
            "--workers" => config.workers = (value("--workers")? as usize).clamp(1, 64),
            "--queue-cap" => config.queue_cap = (value("--queue-cap")? as usize).clamp(1, 4096),
            "--pool-cap" => config.pool_cap = (value("--pool-cap")? as usize).min(256),
            "--deadline-ms" => {
                config.deadline = Duration::from_millis(value("--deadline-ms")?.clamp(1, 600_000));
            }
            "--session-cap" => {
                config.session_cap = (value("--session-cap")? as usize).clamp(1, 256);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("tsc-serve: bind failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    // The load generator and the CI smoke test parse this exact line to
    // discover the ephemeral port — keep the format stable.
    println!("tsc-serve listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    server.wait_for_shutdown_request();
    server.shutdown();
    println!("tsc-serve: drained and stopped");
    ExitCode::SUCCESS
}
