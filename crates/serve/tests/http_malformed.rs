//! Property tests for the HTTP layer: seeded corpora of malformed,
//! truncated, and oversized requests against a live server.  The
//! invariant is always the same — a clean 4xx/5xx (or a clean close for
//! an empty connection), never a panic, a hang, or a partial write — and
//! the server must still answer `/healthz` after the whole corpus.

mod common;

use std::time::Duration;

use common::{one_shot, TestClient};
use tsc_rng::Rng64;
use tsc_serve::{Server, ServerConfig};

fn start_server() -> Server {
    Server::start(ServerConfig {
        // Tight caps so the corpus can trip every limit cheaply.
        limits: tsc_serve::Limits {
            max_head: 2048,
            max_headers: 16,
            max_body: 4096,
        },
        idle_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

fn assert_alive(server: &Server) {
    let resp = one_shot(server.addr(), "GET", "/healthz", &[], b"");
    assert_eq!(resp.status, 200, "server must stay alive");
}

#[test]
fn random_garbage_never_panics_or_hangs() {
    let server = start_server();
    let mut rng = Rng64::seed_from_u64(0x5E21);

    for round in 0..40 {
        let len = 1 + (rng.next_u64() % 200) as usize;
        let garbage: Vec<u8> = (0..len)
            .map(|_| {
                // Bias toward printable ASCII with occasional control
                // bytes, CR and LF — the interesting parser edges.
                match rng.next_u64() % 10 {
                    0 => b'\r',
                    1 => b'\n',
                    2 => (rng.next_u64() % 32) as u8,
                    _ => 0x20 + (rng.next_u64() % 95) as u8,
                }
            })
            .collect();
        let mut client = TestClient::connect(server.addr());
        client.send_raw(&garbage);
        client.shutdown_write();
        // Either a clean error response or a clean close — both fine; a
        // hang (deadline exceeded with no close) is the failure mode.
        if let Some(resp) = client.read_response(Duration::from_secs(10)) {
            assert!(
                (400..=501).contains(&resp.status),
                "round {round}: garbage got status {}",
                resp.status
            );
        }
    }
    assert_alive(&server);
    assert_eq!(server.metrics().worker_panics.get(), 0);
    server.shutdown();
}

#[test]
fn mutated_valid_requests_get_clean_errors() {
    let server = start_server();
    let mut rng = Rng64::seed_from_u64(0xBADC0DE);
    let valid = common::format_request(
        "POST",
        "/v1/solve",
        &[],
        br#"{"design": "gemmini-memory", "tiers": 2, "lateral_cells": 6}"#,
    );

    for round in 0..40 {
        let mut mutated = valid.clone();
        match rng.next_u64() % 4 {
            // Truncate mid-request then EOF.
            0 => {
                let cut = 1 + (rng.next_u64() as usize % (mutated.len() - 1));
                mutated.truncate(cut);
            }
            // Flip one byte in the head.
            1 => {
                let head_len = mutated.len() - 60;
                let at = rng.next_u64() as usize % head_len;
                mutated[at] = mutated[at].wrapping_add(1 + (rng.next_u64() % 200) as u8);
            }
            // Corrupt the JSON body.
            2 => {
                let at = mutated.len() - 1 - (rng.next_u64() as usize % 20);
                mutated[at] = b'@';
            }
            // Duplicate a chunk of the request line.
            _ => {
                let dup: Vec<u8> = mutated[..10].to_vec();
                mutated.splice(0..0, dup);
            }
        }
        let mut client = TestClient::connect(server.addr());
        client.send_raw(&mutated);
        client.shutdown_write();
        if let Some(resp) = client.read_response(Duration::from_secs(30)) {
            // A mutation can leave the request valid (e.g. a body-corrupting
            // flip may still be JSON) — any complete response is fine, as
            // long as it is a whole one and the server survives.
            assert!(
                resp.status == 200 || (400..=501).contains(&resp.status),
                "round {round}: status {}",
                resp.status
            );
        }
    }
    assert_alive(&server);
    assert_eq!(server.metrics().worker_panics.get(), 0);
    server.shutdown();
}

#[test]
fn oversized_dimensions_trip_the_right_caps() {
    let server = start_server();
    let addr = server.addr();

    // Declared body beyond max_body → 413.
    let mut client = TestClient::connect(addr);
    client.send_raw(b"POST /v1/solve HTTP/1.1\r\nHost: t\r\nContent-Length: 100000\r\n\r\n");
    let resp = client.read_response(Duration::from_secs(10)).expect("413");
    assert_eq!(resp.status, 413);

    // Header overflow → 431.
    let mut raw = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..32 {
        raw.extend_from_slice(format!("X-Filler-{i}: {i}\r\n").as_bytes());
    }
    raw.extend_from_slice(b"\r\n");
    let mut client = TestClient::connect(addr);
    client.send_raw(&raw);
    let resp = client.read_response(Duration::from_secs(10)).expect("431");
    assert_eq!(resp.status, 431);

    // A head that can never terminate → 431 once the cap is hit, even
    // without a blank line.
    let mut client = TestClient::connect(addr);
    client.send_raw(format!("GET /{} HTTP/1.1\r\n", "a".repeat(4000)).as_bytes());
    let resp = client.read_response(Duration::from_secs(10)).expect("431");
    assert_eq!(resp.status, 431);

    // Non-digit and negative content-lengths → 400.
    for bad in ["-5", "12x", "1e3", ""] {
        let mut client = TestClient::connect(addr);
        client.send_raw(
            format!("POST /v1/solve HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n").as_bytes(),
        );
        let resp = client.read_response(Duration::from_secs(10)).expect("400");
        assert_eq!(resp.status, 400, "content-length {bad:?}");
    }

    // Transfer-encoding → 501.
    let mut client = TestClient::connect(addr);
    client.send_raw(b"POST /v1/solve HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    let resp = client.read_response(Duration::from_secs(10)).expect("501");
    assert_eq!(resp.status, 501);

    assert_alive(&server);
    server.shutdown();
}

#[test]
fn split_reads_reassemble_into_one_request() {
    let server = start_server();
    let mut rng = Rng64::seed_from_u64(0x517);
    let valid = common::format_request("GET", "/v1/designs", &[], b"");

    for _ in 0..10 {
        let mut client = TestClient::connect(server.addr());
        let mut sent = 0;
        while sent < valid.len() {
            let n = 1 + rng.next_u64() as usize % (valid.len() - sent);
            client.send_raw(&valid[sent..sent + n]);
            sent += n;
            std::thread::sleep(Duration::from_millis(1));
        }
        let resp = client
            .read_response(Duration::from_secs(10))
            .expect("reply");
        assert_eq!(resp.status, 200);
        assert!(resp.body_str().contains("gemmini"));
    }
    server.shutdown();
}

#[test]
fn stalled_partial_request_gets_408() {
    let server = start_server();
    let mut client = TestClient::connect(server.addr());
    // Send half a request line and go silent (without closing).
    client.send_raw(b"GET /healthz HT");
    let resp = client
        .read_response(Duration::from_secs(10))
        .expect("408 after idle timeout");
    assert_eq!(resp.status, 408);
    server.shutdown();
}
