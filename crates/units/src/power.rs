//! Power quantities: total [`Power`], areal [`HeatFlux`], and volumetric
//! heat generation [`VolumetricHeat`].

use crate::length::{Area, Volume};

quantity! {
    /// Dissipated power, stored in watts.
    ///
    /// ```
    /// use tsc_units::Power;
    /// let tier = Power::from_watts(53.0);
    /// let stack: Power = std::iter::repeat(tier).take(12).sum();
    /// assert!((stack.watts() - 636.0).abs() < 1e-9);
    /// ```
    Power, "W", "Creates a power from watts."
}

quantity! {
    /// Areal power density (heat flux), stored in W/m².
    ///
    /// The paper quotes densities in W/cm² (e.g. the Gemmini systolic array
    /// peaks at 95 W/cm²); use [`HeatFlux::from_watts_per_square_cm`].
    ///
    /// ```
    /// use tsc_units::HeatFlux;
    /// let q = HeatFlux::from_watts_per_square_cm(95.0);
    /// assert!((q.watts_per_square_meter() - 9.5e5).abs() < 1e-6);
    /// ```
    HeatFlux, "W/m^2", "Creates a heat flux from watts per square meter."
}

quantity! {
    /// Volumetric heat generation, stored in W/m³.
    ///
    /// Used when a heat source is smeared through the thickness of a device
    /// layer in the finite-volume solver.
    ///
    /// ```
    /// use tsc_units::VolumetricHeat;
    /// let g = VolumetricHeat::new(1e12);
    /// assert_eq!(g.get(), 1e12);
    /// ```
    VolumetricHeat, "W/m^3", "Creates a volumetric heat generation rate from W/m³."
}

impl Power {
    /// Creates a power from watts (alias of [`Power::new`]).
    #[must_use]
    pub const fn from_watts(w: f64) -> Self {
        Self::new(w)
    }

    /// Creates a power from milliwatts.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        Self::new(mw * 1e-3)
    }

    /// Value in watts.
    #[must_use]
    pub const fn watts(self) -> f64 {
        self.get()
    }

    /// Value in milliwatts.
    #[must_use]
    pub fn milliwatts(self) -> f64 {
        self.get() * 1e3
    }
}

impl HeatFlux {
    /// Creates a heat flux from W/cm² (the paper's customary unit).
    #[must_use]
    pub fn from_watts_per_square_cm(w_per_cm2: f64) -> Self {
        Self::new(w_per_cm2 * 1e4)
    }

    /// Value in W/m².
    #[must_use]
    pub const fn watts_per_square_meter(self) -> f64 {
        self.get()
    }

    /// Value in W/cm².
    #[must_use]
    pub fn watts_per_square_cm(self) -> f64 {
        self.get() * 1e-4
    }
}

impl core::ops::Mul<Area> for HeatFlux {
    type Output = Power;
    fn mul(self, rhs: Area) -> Power {
        Power::new(self.get() * rhs.get())
    }
}

impl core::ops::Mul<HeatFlux> for Area {
    type Output = Power;
    fn mul(self, rhs: HeatFlux) -> Power {
        rhs * self
    }
}

impl core::ops::Div<Area> for Power {
    type Output = HeatFlux;
    fn div(self, rhs: Area) -> HeatFlux {
        HeatFlux::new(self.get() / rhs.get())
    }
}

impl core::ops::Mul<Volume> for VolumetricHeat {
    type Output = Power;
    fn mul(self, rhs: Volume) -> Power {
        Power::new(self.get() * rhs.get())
    }
}

impl core::ops::Div<Volume> for Power {
    type Output = VolumetricHeat;
    fn div(self, rhs: Volume) -> VolumetricHeat {
        VolumetricHeat::new(self.get() / rhs.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::length::Length;

    #[test]
    fn flux_times_area_is_power() {
        // 95 W/cm^2 over a 0.5 cm^2 array -> 47.5 W.
        let q = HeatFlux::from_watts_per_square_cm(95.0);
        let a = Area::from_square_cm(0.5);
        assert!(((q * a).watts() - 47.5).abs() < 1e-9);
        assert!(((a * q).watts() - 47.5).abs() < 1e-9);
    }

    #[test]
    fn power_div_area_is_flux() {
        let p = Power::from_watts(636.0);
        let a = Area::from_square_cm(1.0);
        assert!(((p / a).watts_per_square_cm() - 636.0).abs() < 1e-9);
    }

    #[test]
    fn volumetric_round_trip() {
        let v = Length::from_micrometers(100.0).squared() * Length::from_nanometers(100.0);
        let p = Power::from_watts(0.01);
        let g = p / v;
        assert!(((g * v).watts() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn milliwatt_conversion() {
        assert!((Power::from_milliwatts(250.0).watts() - 0.25).abs() < 1e-12);
        assert!((Power::from_watts(0.25).milliwatts() - 250.0).abs() < 1e-9);
    }
}
