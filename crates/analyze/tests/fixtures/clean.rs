//! Fixture: numeric library code the gate must accept, including
//! correctly allow-listed and SAFETY-commented sites.

use std::collections::BTreeMap;

pub fn total(power: &BTreeMap<String, f64>) -> f64 {
    power.values().sum::<f64>()
}

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}

pub fn head(xs: &[f64]) -> f64 {
    // tsc-analyze: allow(no-unwrap): callers guarantee non-empty input
    *xs.first().expect("non-empty")
}

pub fn peek(xs: &[f64]) -> f64 {
    let p = xs.as_ptr();
    // SAFETY: index 0 is in bounds for any non-empty slice; callers
    // guarantee non-emptiness.
    unsafe { *p.add(0) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_here() {
        let v: Result<f64, ()> = Ok(1.0);
        assert!(close(v.unwrap(), 1.0));
    }
}
