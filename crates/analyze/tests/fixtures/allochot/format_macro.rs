//! `format!` inside a parallel-region closure.
pub fn step(plan: &ExecPlan, x: &mut [f64]) {
    plan.map_mut(x, |range, chunk| {
        let label = format!("band {range:?}");
        let _ = (label, chunk);
    });
}
