//! Quick wall-clock comparison of the tier-1 solver configurations on
//! the Gemmini 64×64×49 mesh — a faster inner loop than the full
//! Criterion bench when iterating on kernels. Ignored by default:
//!
//! `cargo test --release -p tsc-bench --test kernel_profile -- --ignored --nocapture`

use std::time::Instant;
use tsc_core::beol::BeolProperties;
use tsc_core::stack::{build, StackConfig};
use tsc_designs::gemmini;
use tsc_thermal::{CgSolver, Heatsink, Precision, Preconditioner, Smoother};

#[test]
#[ignore]
fn profile_solvers() {
    let cfg = StackConfig::uniform(12, BeolProperties::scaffolded(), Heatsink::two_phase())
        .with_lateral_cells(64);
    let p = build(&gemmini::design(), &cfg).problem;

    for (name, solver) in [
        (
            "f64 mg-pcg rb",
            CgSolver::new()
                .with_tolerance(1e-11)
                .with_preconditioner(Preconditioner::Multigrid),
        ),
        (
            "f64 mg-pcg cheb",
            CgSolver::new()
                .with_tolerance(1e-11)
                .with_preconditioner(Preconditioner::Multigrid)
                .with_smoother(Smoother::Chebyshev),
        ),
        (
            "mixed rb",
            CgSolver::new()
                .with_tolerance(1e-11)
                .with_precision(Precision::Mixed),
        ),
        (
            "mixed cheb",
            CgSolver::new()
                .with_tolerance(1e-11)
                .with_precision(Precision::Mixed)
                .with_smoother(Smoother::Chebyshev),
        ),
    ] {
        let t = Instant::now();
        let sol = solver.solve(&p).expect("solve");
        println!(
            "{name:16} {:8.3}s  it {:5}  cycles {:5}  refine {:2}  res {:.2e}",
            t.elapsed().as_secs_f64(),
            sol.stats.iterations,
            sol.stats.cycles,
            sol.stats.refinements,
            sol.stats.residual,
        );
    }
}
