//! Fig. 12 — the power-gating co-design toy: one active MAC of four,
//! single shared pillar + thermal dielectric vs 4× gating-unaware
//! pillar covering.

use tsc_bench::{banner, compare, series};
use tsc_core::beol;
use tsc_core::codesign::{
    dielectric_sweep, reduction_vs_baseline, solve_toy, Arrangement, ToyConfig,
};
use tsc_units::Length;

fn main() -> Result<(), tsc_thermal::SolveError> {
    banner("Fig. 12: power-gating co-design (one of four MACs active)");
    let cfg = ToyConfig::default();
    let side = Length::from_micrometers(1.0);

    let single_td = reduction_vs_baseline(
        &cfg,
        beol::upper_thermal_dielectric(),
        Arrangement::SingleCentral { side },
    )?;
    let covering = reduction_vs_baseline(
        &cfg,
        beol::upper_ultra_low_k(),
        Arrangement::UniformCovering {
            reference_side: side,
        },
    )?;
    let single_ulk = reduction_vs_baseline(
        &cfg,
        beol::upper_ultra_low_k(),
        Arrangement::SingleCentral { side },
    )?;

    compare(
        "single shared pillar + thermal dielectric",
        "40 % peak-T reduction",
        format!("{:.1} %", single_td.percent()),
    );
    compare(
        "4x pillar covering, no thermal dielectric",
        "32 % peak-T reduction",
        format!("{:.1} %", covering.percent()),
    );
    compare(
        "single shared pillar WITHOUT dielectric (the co-design point)",
        "(useless)",
        format!("{:.1} %", single_ulk.percent()),
    );

    let a = solve_toy(
        &cfg,
        beol::upper_thermal_dielectric(),
        Arrangement::SingleCentral { side },
    )?;
    let b = solve_toy(
        &cfg,
        beol::upper_ultra_low_k(),
        Arrangement::UniformCovering {
            reference_side: side,
        },
    )?;
    compare(
        "pillar-area saving of the shared pillar",
        "75 % less",
        format!(
            "{:.0} % less ({} vs {})",
            (1.0 - a.pillar_area.fraction() / b.pillar_area.fraction()) * 100.0,
            a.pillar_area,
            b.pillar_area
        ),
    );

    banner("Fig. 12b: reduction vs thermal-dielectric conductivity");
    let ks = [5.0, 25.0, 50.0, 105.7, 200.0, 350.0, 500.0];
    let sweep = dielectric_sweep(&cfg, side, &ks)?;
    series(
        "peak-T reduction % vs dielectric k (W/m/K)",
        sweep.iter().map(|(k, r)| (*k, r.percent())),
    );
    let last = sweep.last().expect("swept").1;
    compare(
        "reduction at k = 500 W/m/K",
        ">70 % (paper trend)",
        format!("{:.1} %", last.percent()),
    );
    Ok(())
}
