//! Fig. 10 — supported-tier heatmaps over (area penalty × delay penalty)
//! for conventional 3D thermal and scaffolding.

use tsc_bench::{banner, compare, heatmap, parallel_sweep};
use tsc_core::flows::{CoolingStrategy, FlowConfig};
use tsc_core::scaling::{max_tiers, penalty_map};
use tsc_designs::gemmini;
use tsc_units::Ratio;

fn main() -> Result<(), tsc_thermal::SolveError> {
    banner("Fig. 10: supported tiers over penalty budgets (Gemmini, 125 °C)");
    let d = gemmini::design();
    let areas: Vec<f64> = vec![0.0, 2.0, 4.0, 6.0, 9.0, 12.0, 20.0, 40.0, 60.0, 78.0];
    let delays: Vec<f64> = vec![0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 9.0, 17.0];

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    for (strategy, cap) in [
        (CoolingStrategy::ConventionalDummyVias, 14usize),
        (CoolingStrategy::Scaffolding, 14),
    ] {
        // Each (area, delay) cell is an independent tier search: fan the
        // grid out across all cores.
        let jobs: Vec<_> = areas
            .iter()
            .flat_map(|&a| delays.iter().map(move |&dl| (a, dl)))
            .map(|(a, dl)| {
                let d = &d;
                move || {
                    let base = FlowConfig {
                        strategy,
                        area_budget: Ratio::from_percent(a),
                        delay_budget: Ratio::from_percent(dl),
                        lateral_cells: 12,
                        ..FlowConfig::default()
                    };
                    max_tiers(d, &base, cap).expect("solves")
                }
            })
            .collect();
        let flat = parallel_sweep(jobs, threads);
        let rows: Vec<Vec<usize>> = flat
            .chunks(delays.len())
            .map(|chunk| chunk.to_vec())
            .collect();
        heatmap(&format!("{strategy}"), &delays, &areas, &rows);
        println!();
    }

    banner("Fig. 10 anchors");
    let pick = |cells: &[tsc_core::scaling::PenaltyCell], a: f64, dl: f64| {
        cells
            .iter()
            .find(|c| c.area_percent == a && c.delay_percent == dl)
            .map(|c| c.supported_tiers)
            .unwrap_or(0)
    };
    let conv = penalty_map(
        &d,
        CoolingStrategy::ConventionalDummyVias,
        &[9.0],
        &[4.0],
        14,
        12,
    )?;
    compare(
        "conventional at ~(9 % area, 4 % delay)",
        "~4 tiers",
        format!("{} tiers", pick(&conv, 9.0, 4.0)),
    );
    let scaf = penalty_map(&d, CoolingStrategy::Scaffolding, &[9.0], &[3.0], 14, 12)?;
    compare(
        "scaffolding at ~(9 % area, 3 % delay)",
        "~12 tiers",
        format!("{} tiers", pick(&scaf, 9.0, 3.0)),
    );
    Ok(())
}
