//! Criterion benches of the BEOL homogenization (Fig. 7) kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use tsc_homogenize::pillar::PillarDesign;
use tsc_homogenize::{extract_k, slice, Axis};
use tsc_materials::{THERMAL_DIELECTRIC_DESIGN, ULTRA_LOW_K_ILD};
use tsc_units::Length;

fn coarse_lower() -> slice::SliceGeometry {
    slice::SliceGeometry {
        resolution: Length::from_nanometers(125.0),
        extent: Length::from_micrometers(1.5),
        ..slice::SliceGeometry::default_lower()
    }
}

fn coarse_upper() -> slice::SliceGeometry {
    slice::SliceGeometry {
        resolution: Length::from_nanometers(80.0),
        extent: Length::from_micrometers(1.28),
        ..slice::SliceGeometry::default_upper()
    }
}

fn bench_slice_generation(c: &mut Criterion) {
    c.bench_function("lower_beol_slice_build", |b| {
        b.iter(|| slice::lower_beol(ULTRA_LOW_K_ILD.conductivity, &coarse_lower()));
    });
    c.bench_function("upper_beol_slice_build", |b| {
        b.iter(|| slice::upper_beol(THERMAL_DIELECTRIC_DESIGN.conductivity, &coarse_upper()));
    });
}

fn bench_extraction(c: &mut Criterion) {
    let lower = slice::lower_beol(ULTRA_LOW_K_ILD.conductivity, &coarse_lower());
    let upper = slice::upper_beol(ULTRA_LOW_K_ILD.conductivity, &coarse_upper());
    let mut group = c.benchmark_group("extract_k");
    group.sample_size(20);
    group.bench_function("lower_vertical", |b| {
        b.iter(|| extract_k(&lower, Axis::Z).expect("converges"));
    });
    group.bench_function("lower_lateral", |b| {
        b.iter(|| extract_k(&lower, Axis::X).expect("converges"));
    });
    group.bench_function("upper_vertical", |b| {
        b.iter(|| extract_k(&upper, Axis::Z).expect("converges"));
    });
    group.finish();
}

fn bench_pillar_models(c: &mut Criterion) {
    let design = PillarDesign::asap7_100nm();
    c.bench_function("pillar_series_model", |b| {
        b.iter(|| design.effective_vertical_k());
    });
    let model = design.voxel_model(
        ULTRA_LOW_K_ILD.conductivity,
        Length::from_nanometers(500.0),
        Length::from_micrometers(1.0),
        15,
    );
    let mut group = c.benchmark_group("pillar_fem");
    group.sample_size(20);
    group.bench_function("pillar_voxel_extraction", |b| {
        b.iter(|| extract_k(&model, Axis::Z).expect("converges"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_slice_generation,
    bench_extraction,
    bench_pillar_models
);
criterion_main!(benches);
