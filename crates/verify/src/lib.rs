//! Verification harness for the thermal-scaffolding workspace.
//!
//! Three pillars, each exercised by this crate's test suite:
//!
//! * [`mms`] — a **method-of-manufactured-solutions oracle**: smooth
//!   analytic temperature fields with derived source terms and boundary
//!   data, injected into [`tsc_thermal::Problem`] via the per-column
//!   ambient-map hooks, so every solver's discretization order can be
//!   *measured* (`cargo test -p tsc-verify` asserts L2 order ≳ 2 across
//!   mesh refinements for CG, MG-preconditioned CG, SOR, and standalone
//!   multigrid).
//! * [`golden`] — a **golden-flow regression harness**: the paper flows
//!   run on reduced fixtures, key scalars snapshot to
//!   `tests/golden/*.json`, compared with per-field relative tolerances.
//!   `UPDATE_GOLDEN=1 cargo test -p tsc-verify` re-blesses.
//! * **fault injection** (tests behind `--features fault-inject`) —
//!   seeded [`tsc_thermal::fault`] plans corrupt solves and the suite
//!   proves every fault surfaces as a typed error, never a silently
//!   wrong `Ok`.
//!
//! The crate also exports [`assert_close!`], the shared float-comparison
//! macro used across the workspace's integration tests.

// No crate outside tsc-thermal may contain `unsafe` (enforced
// statically here and by `cargo run -p tsc-analyze`).
#![forbid(unsafe_code)]

pub mod golden;
pub mod mms;

/// True when `a` and `b` agree to relative tolerance `rel`, measured
/// against the larger magnitude (with a subnormal floor so exact zeros
/// compare equal).
#[must_use]
pub fn close_rel(a: f64, b: f64, rel: f64) -> bool {
    let scale = a.abs().max(b.abs());
    a == b || (a - b).abs() <= rel * scale
}

/// True when `a` and `b` agree to absolute tolerance `abs`.
#[must_use]
pub fn close_abs(a: f64, b: f64, abs: f64) -> bool {
    a == b || (a - b).abs() <= abs
}

/// Asserts two floats agree to a *named* tolerance.
///
/// The workspace convention for float assertions in tests: every
/// comparison states whether its tolerance is relative or absolute and
/// the failure message reports both values, the difference, and the
/// bound — no more bare `(a - b).abs() < eps` with silent semantics.
///
/// ```
/// use tsc_verify::assert_close;
/// assert_close!(100.0_f64, 100.4, rel = 5e-3);
/// assert_close!(0.0_f64, 1e-12, abs = 1e-9);
/// assert_close!(1.0_f64, 1.0, rel = 0.0, "context {}", 42);
/// ```
#[macro_export]
macro_rules! assert_close {
    ($a:expr, $b:expr, rel = $tol:expr $(,)?) => {
        $crate::assert_close!($a, $b, rel = $tol, "values differ");
    };
    ($a:expr, $b:expr, rel = $tol:expr, $($ctx:tt)+) => {{
        let (a, b, tol): (f64, f64, f64) = ($a, $b, $tol);
        assert!(
            $crate::close_rel(a, b, tol),
            "{}: {a} vs {b} (diff {:.3e}, rel tolerance {tol:.1e} of {:.3e})",
            format_args!($($ctx)+),
            (a - b).abs(),
            a.abs().max(b.abs()),
        );
    }};
    ($a:expr, $b:expr, abs = $tol:expr $(,)?) => {
        $crate::assert_close!($a, $b, abs = $tol, "values differ");
    };
    ($a:expr, $b:expr, abs = $tol:expr, $($ctx:tt)+) => {{
        let (a, b, tol): (f64, f64, f64) = ($a, $b, $tol);
        assert!(
            $crate::close_abs(a, b, tol),
            "{}: {a} vs {b} (diff {:.3e}, abs tolerance {tol:.1e})",
            format_args!($($ctx)+),
            (a - b).abs(),
        );
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn rel_form_accepts_within_tolerance() {
        assert_close!(100.0, 100.0 + 1e-7, rel = 1e-8);
        assert_close!(-5.0, -5.0, rel = 0.0);
        assert_close!(0.0, 0.0, rel = 0.0);
    }

    #[test]
    #[should_panic(expected = "rel tolerance")]
    fn rel_form_rejects_outside_tolerance() {
        assert_close!(100.0, 101.0, rel = 1e-6);
    }

    #[test]
    fn abs_form_handles_zero_reference() {
        assert_close!(0.0, 1e-12, abs = 1e-9);
    }

    #[test]
    #[should_panic(expected = "hot cell 3")]
    fn context_appears_in_failure() {
        assert_close!(1.0, 2.0, abs = 1e-9, "hot cell {}", 3);
    }
}
